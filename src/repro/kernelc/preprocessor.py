"""Minimal preprocessor: comments, object-like ``#define`` and ``-D`` options.

OpenCL programs receive macros both from ``#define`` lines in the source and
from build options passed to ``clBuildProgram`` (``-D NAME=VALUE``).  Both are
supported; function-like macros and conditionals are not needed by our kernel
corpus and are rejected loudly rather than mis-expanded.
"""

from __future__ import annotations

import re

from repro.errors import ParseError

_IDENT = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_DEFINE = re.compile(r"^\s*#\s*define\s+([A-Za-z_][A-Za-z0-9_]*)(\(?)\s*(.*)$")
_OTHER_DIRECTIVE = re.compile(r"^\s*#\s*(\w+)")

# Macros every translation unit sees, mirroring OpenCL's barrier flags.
PREDEFINED = {
    "CLK_LOCAL_MEM_FENCE": "1",
    "CLK_GLOBAL_MEM_FENCE": "2",
}


def parse_options(options):
    """Parse a ``clBuildProgram``-style options string into a macro dict."""
    macros = {}
    if not options:
        return macros
    parts = options.split()
    i = 0
    while i < len(parts):
        part = parts[i]
        if part == "-D":
            i += 1
            if i >= len(parts):
                raise ParseError("-D requires an argument")
            part = "-D" + parts[i]
        if part.startswith("-D"):
            body = part[2:]
            name, _, value = body.partition("=")
            if not _IDENT.fullmatch(name):
                raise ParseError("bad macro name in options: {!r}".format(name))
            macros[name] = value if value else "1"
        elif part.startswith("-"):
            pass  # unknown flags are ignored, as real drivers do
        else:
            raise ParseError("unexpected build option: {!r}".format(part))
        i += 1
    return macros


def _strip_comments(source):
    """Remove // and /* */ comments, preserving newlines for line numbers."""
    out = []
    i = 0
    n = len(source)
    while i < n:
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
        elif source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise ParseError("unterminated block comment")
            out.append("\n" * source.count("\n", i, end + 2))
            i = end + 2
        else:
            out.append(source[i])
            i += 1
    return "".join(out)


def _substitute(line, macros):
    """Replace whole-identifier occurrences of macro names in ``line``."""
    # Iterate to a fixed point so macros may reference earlier macros; bound
    # the depth to catch accidental recursion.
    for _ in range(16):
        changed = False

        def repl(match):
            nonlocal changed
            name = match.group(0)
            if name in macros:
                changed = True
                return macros[name]
            return name

        line = _IDENT.sub(repl, line)
        if not changed:
            return line
    raise ParseError("macro expansion did not terminate (recursive #define?)")


def preprocess(source, options=None):
    """Return preprocessed source text with macros expanded.

    Line structure is preserved exactly (each ``#define`` line becomes a blank
    line) so lexer positions refer to the original source.
    """
    macros = dict(PREDEFINED)
    macros.update(parse_options(options))

    source = _strip_comments(source)
    out_lines = []
    for lineno, line in enumerate(source.split("\n"), start=1):
        match = _DEFINE.match(line)
        if match:
            name, paren, value = match.groups()
            if paren == "(":
                raise ParseError("function-like macros are not supported", lineno)
            macros[name] = _substitute(value.strip(), macros)
            out_lines.append("")
            continue
        other = _OTHER_DIRECTIVE.match(line)
        if other:
            directive = other.group(1)
            if directive == "pragma":
                out_lines.append("")  # pragmas are accepted and ignored
                continue
            raise ParseError("unsupported preprocessor directive #%s" % directive, lineno)
        out_lines.append(_substitute(line, macros))
    return "\n".join(out_lines)
