"""Builtin function signatures shared by sema, lowering and the interpreter.

Three families:

* **work-item** builtins (``get_global_id`` etc.) — the functions the accelOS
  transformation replaces with runtime-library calls (paper §6.2 step 3),
* **synchronisation/atomics** (``barrier``, ``atomic_*``),
* **math** builtins mapped to numpy scalar operations by the interpreter.
"""

from __future__ import annotations

import math

from repro.kernelc import types as T


class Builtin:
    """Signature record for a builtin function."""

    __slots__ = ("name", "category", "arg_count", "result")

    def __init__(self, name, category, arg_count, result):
        self.name = name
        self.category = category  # 'workitem' | 'sync' | 'atomic' | 'math'
        self.arg_count = arg_count
        self.result = result  # Type, or callable(arg_types) -> Type

    def result_type(self, arg_types):
        if callable(self.result):
            return self.result(arg_types)
        return self.result


def _numeric_result(arg_types):
    """Result type of polymorphic math builtins: common type of args."""
    ty = arg_types[0]
    for other in arg_types[1:]:
        ty = T.common_type(ty, other)
    return ty


def _float_result(_arg_types):
    return T.FLOAT


def _atomic_result(arg_types):
    return arg_types[0].pointee


# Work-item query builtins.  All take one uint dimension argument except
# get_work_dim.  They are exactly the set the paper's JIT transform rewrites.
WORKITEM_BUILTINS = {}
for _name in ("get_global_id", "get_local_id", "get_group_id",
              "get_global_size", "get_local_size", "get_num_groups",
              "get_global_offset"):
    WORKITEM_BUILTINS[_name] = Builtin(_name, "workitem", 1, T.SIZE_T)
WORKITEM_BUILTINS["get_work_dim"] = Builtin("get_work_dim", "workitem", 0, T.UINT)

SYNC_BUILTINS = {
    "barrier": Builtin("barrier", "sync", 1, T.VOID),
    "mem_fence": Builtin("mem_fence", "sync", 1, T.VOID),
}

ATOMIC_BUILTINS = {
    "atomic_add": Builtin("atomic_add", "atomic", 2, _atomic_result),
    "atomic_sub": Builtin("atomic_sub", "atomic", 2, _atomic_result),
    "atomic_min": Builtin("atomic_min", "atomic", 2, _atomic_result),
    "atomic_max": Builtin("atomic_max", "atomic", 2, _atomic_result),
    "atomic_xchg": Builtin("atomic_xchg", "atomic", 2, _atomic_result),
    "atomic_cmpxchg": Builtin("atomic_cmpxchg", "atomic", 3, _atomic_result),
    "atomic_inc": Builtin("atomic_inc", "atomic", 1, _atomic_result),
    "atomic_dec": Builtin("atomic_dec", "atomic", 1, _atomic_result),
}

# Math builtins and their scalar implementations (used by the interpreter).
# Unary float ops always return float; min/max/abs are type-polymorphic.
_UNARY_FLOAT = {
    "sqrt": math.sqrt,
    "rsqrt": lambda x: 1.0 / math.sqrt(x) if x > 0 else float("inf"),
    "fabs": abs,
    "exp": math.exp,
    "log": lambda x: math.log(x) if x > 0 else float("-inf"),
    "log2": lambda x: math.log2(x) if x > 0 else float("-inf"),
    "sin": math.sin,
    "cos": math.cos,
    "tan": math.tan,
    "floor": math.floor,
    "ceil": math.ceil,
    "native_exp": math.exp,
    "native_sqrt": math.sqrt,
}

_BINARY_FLOAT = {
    "pow": lambda a, b: math.pow(a, b),
    "fmin": min,
    "fmax": max,
    "atan2": math.atan2,
    "fmod": math.fmod,
}

MATH_BUILTINS = {}
for _name in _UNARY_FLOAT:
    MATH_BUILTINS[_name] = Builtin(_name, "math", 1, _float_result)
for _name in _BINARY_FLOAT:
    MATH_BUILTINS[_name] = Builtin(_name, "math", 2, _float_result)
MATH_BUILTINS["min"] = Builtin("min", "math", 2, _numeric_result)
MATH_BUILTINS["max"] = Builtin("max", "math", 2, _numeric_result)
MATH_BUILTINS["abs"] = Builtin("abs", "math", 1, _numeric_result)
MATH_BUILTINS["clamp"] = Builtin("clamp", "math", 3, _numeric_result)
MATH_BUILTINS["mad"] = Builtin("mad", "math", 3, _numeric_result)
MATH_BUILTINS["fma"] = Builtin("fma", "math", 3, _float_result)

ALL_BUILTINS = {}
ALL_BUILTINS.update(WORKITEM_BUILTINS)
ALL_BUILTINS.update(SYNC_BUILTINS)
ALL_BUILTINS.update(ATOMIC_BUILTINS)
ALL_BUILTINS.update(MATH_BUILTINS)


def is_builtin(name):
    return name in ALL_BUILTINS


def lookup(name):
    return ALL_BUILTINS[name]


def evaluate_math(name, args):
    """Evaluate a math builtin on Python scalars (interpreter hook)."""
    if name in _UNARY_FLOAT:
        return _UNARY_FLOAT[name](float(args[0]))
    if name in _BINARY_FLOAT:
        return _BINARY_FLOAT[name](float(args[0]), float(args[1]))
    if name == "min":
        return min(args[0], args[1])
    if name == "max":
        return max(args[0], args[1])
    if name == "abs":
        return abs(args[0])
    if name == "clamp":
        return min(max(args[0], args[1]), args[2])
    if name in ("mad", "fma"):
        return args[0] * args[1] + args[2]
    raise KeyError(name)
