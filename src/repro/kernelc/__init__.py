"""Mini OpenCL-C compiler frontend.

Implements the subset of OpenCL C 1.2 needed by the Parboil-style kernels in
:mod:`repro.workloads.parboil` and by the accelOS runtime library:

* scalar types (``bool``/``int``/``uint``/``long``/``ulong``/``float``/``size_t``),
* pointers qualified by OpenCL address spaces (``global``/``local``/``constant``/
  ``private``), local array declarations in kernel scope,
* full statement set (``if``/``for``/``while``/``do``/``break``/``continue``/
  ``return``), compound assignment, ternary, short-circuit logic,
* work-item builtins, ``barrier``, atomics and a math builtin library,
* a tiny preprocessor handling object-like ``#define`` plus ``-D`` build options.

The pipeline is ``source -> preprocess -> lex -> parse -> sema`` producing a
typed AST which :mod:`repro.ir.lowering` turns into IR.
"""

from repro.kernelc.lexer import tokenize
from repro.kernelc.parser import parse
from repro.kernelc.preprocessor import preprocess
from repro.kernelc.sema import analyze

__all__ = ["tokenize", "parse", "preprocess", "analyze", "frontend"]


def frontend(source, options=None):
    """Run the full frontend: preprocess, lex, parse and type-check.

    Parameters
    ----------
    source:
        OpenCL-C subset source text.
    options:
        Optional build-options string, e.g. ``"-D N=128 -D USE_FAST"``
        (mirrors ``clBuildProgram`` options).

    Returns
    -------
    repro.kernelc.ast_nodes.Program
        The type-annotated translation unit.
    """
    text = preprocess(source, options)
    tokens = tokenize(text)
    program = parse(tokens)
    analyze(program)
    return program
