"""Semantic analysis: name resolution, type checking, OpenCL-specific rules.

Annotates every expression node with ``.type``, resolves identifiers to their
declarations and calls to their callees, and enforces the OpenCL constraints
the accelOS transformation cares about — most importantly that ``local``
variables may only be declared at kernel-function scope (paper §6.2, "Local
Data Hoisting" exists precisely because of this rule).
"""

from __future__ import annotations

from repro.errors import SemanticError
from repro.kernelc import ast_nodes as ast
from repro.kernelc import builtins as B
from repro.kernelc import types as T


class Scope:
    """Lexical scope mapping names to Param/VarDecl nodes."""

    def __init__(self, parent=None):
        self.parent = parent
        self.symbols = {}

    def define(self, name, decl, line=None):
        if name in self.symbols:
            raise SemanticError("redefinition of {!r}".format(name), line)
        self.symbols[name] = decl

    def lookup(self, name):
        scope = self
        while scope is not None:
            if name in scope.symbols:
                return scope.symbols[name]
            scope = scope.parent
        return None


class _Analyzer:
    def __init__(self, program):
        self.program = program
        self.functions = {}
        self.current = None
        self.loop_depth = 0

    def error(self, message, node=None):
        line = getattr(node, "line", None)
        raise SemanticError(message, line)

    # -- entry --------------------------------------------------------------

    def run(self):
        for func in self.program.functions:
            if func.name in self.functions:
                self.error("redefinition of function {!r}".format(func.name), func)
            if B.is_builtin(func.name):
                self.error("{!r} shadows a builtin".format(func.name), func)
            self.functions[func.name] = func
        for func in self.program.functions:
            self.check_function(func)
        return self.program

    def check_function(self, func):
        self.current = func
        if func.is_kernel and not func.return_type.is_void():
            self.error("kernel functions must return void", func)
        scope = Scope()
        for param in func.params:
            if func.is_kernel and param.type.is_pointer() \
                    and param.type.address_space == T.PRIVATE:
                self.error(
                    "kernel pointer arguments must be global, local or constant",
                    param)
            scope.define(param.name, param, param.line)
        self.check_compound(func.body, Scope(scope))
        self.current = None

    # -- statements -----------------------------------------------------------

    def check_statement(self, stmt, scope):
        if isinstance(stmt, ast.Compound):
            self.check_compound(stmt, Scope(scope))
        elif isinstance(stmt, ast.DeclStmt):
            self.check_decl(stmt, scope)
        elif isinstance(stmt, ast.If):
            self.check_condition(stmt.cond, scope)
            self.check_statement(stmt.then, scope)
            if stmt.otherwise is not None:
                self.check_statement(stmt.otherwise, scope)
        elif isinstance(stmt, ast.For):
            inner = Scope(scope)
            if stmt.init is not None:
                self.check_statement(stmt.init, inner)
            if stmt.cond is not None:
                self.check_condition(stmt.cond, inner)
            if stmt.step is not None:
                self.check_expr(stmt.step, inner)
            self.loop_depth += 1
            self.check_statement(stmt.body, inner)
            self.loop_depth -= 1
        elif isinstance(stmt, ast.While):
            self.check_condition(stmt.cond, scope)
            self.loop_depth += 1
            self.check_statement(stmt.body, scope)
            self.loop_depth -= 1
        elif isinstance(stmt, ast.DoWhile):
            self.loop_depth += 1
            self.check_statement(stmt.body, scope)
            self.loop_depth -= 1
            self.check_condition(stmt.cond, scope)
        elif isinstance(stmt, ast.Return):
            ret = self.current.return_type
            if stmt.value is None:
                if not ret.is_void():
                    self.error("non-void function must return a value", stmt)
            else:
                if ret.is_void():
                    self.error("void function cannot return a value", stmt)
                value_ty = self.check_expr(stmt.value, scope)
                if not T.can_implicitly_convert(value_ty, ret):
                    self.error("cannot convert return value {} to {}".format(
                        value_ty, ret), stmt)
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            if self.loop_depth == 0:
                self.error("break/continue outside a loop", stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self.check_expr(stmt.expr, scope)
        else:
            self.error("unknown statement {!r}".format(stmt), stmt)

    def check_compound(self, block, scope):
        for stmt in block.statements:
            self.check_statement(stmt, scope)

    def check_decl(self, stmt, scope):
        for decl in stmt.decls:
            ty = decl.type
            if ty.is_array() and ty.address_space == T.LOCAL \
                    and not self.current.is_kernel:
                self.error(
                    "local arrays may only be declared in kernel functions "
                    "(OpenCL 1.2 s6.5.2)", decl)
            if ty.is_void():
                self.error("cannot declare variable of type void", decl)
            if decl.init is not None:
                init_ty = self.check_expr(decl.init, scope)
                target = ty.element if ty.is_array() else ty
                if not T.can_implicitly_convert(init_ty, target):
                    self.error("cannot initialise {} {!r} with {}".format(
                        ty, decl.name, init_ty), decl)
                if ty.is_array():
                    self.error("array initialisers are not supported", decl)
            scope.define(decl.name, decl, decl.line)

    def check_condition(self, expr, scope):
        ty = self.check_expr(expr, scope)
        if not (ty.is_scalar() or ty.is_pointer()):
            self.error("condition must be scalar", expr)

    # -- expressions ----------------------------------------------------------

    def check_expr(self, expr, scope):
        ty = self._expr_type(expr, scope)
        expr.type = ty
        return ty

    def _expr_type(self, expr, scope):
        if isinstance(expr, ast.IntLit):
            return T.LONG if expr.value > 2**31 - 1 else T.INT
        if isinstance(expr, ast.FloatLit):
            return T.FLOAT
        if isinstance(expr, ast.BoolLit):
            return T.BOOL
        if isinstance(expr, ast.Ident):
            decl = scope.lookup(expr.name)
            if decl is None:
                self.error("use of undeclared identifier {!r}".format(expr.name), expr)
            expr.decl = decl
            return decl.type
        if isinstance(expr, ast.Binary):
            return self._binary_type(expr, scope)
        if isinstance(expr, ast.Unary):
            return self._unary_type(expr, scope)
        if isinstance(expr, ast.PostIncDec):
            ty = self.check_expr(expr.operand, scope)
            self._require_lvalue(expr.operand)
            if not (ty.is_integer() or ty.is_float() or ty.is_pointer()):
                self.error("cannot increment {}".format(ty), expr)
            return ty
        if isinstance(expr, ast.Assign):
            return self._assign_type(expr, scope)
        if isinstance(expr, ast.Ternary):
            self.check_condition(expr.cond, scope)
            then_ty = self.check_expr(expr.then, scope)
            else_ty = self.check_expr(expr.otherwise, scope)
            if then_ty.is_pointer() and else_ty.is_pointer():
                return then_ty
            if then_ty.is_scalar() and else_ty.is_scalar():
                return T.common_type(then_ty, else_ty)
            self.error("incompatible ternary arms {} / {}".format(then_ty, else_ty), expr)
        if isinstance(expr, ast.Call):
            return self._call_type(expr, scope)
        if isinstance(expr, ast.Index):
            base_ty = self.check_expr(expr.base, scope)
            index_ty = self.check_expr(expr.index, scope)
            if not index_ty.is_integer():
                self.error("array index must be an integer", expr)
            if base_ty.is_pointer():
                return base_ty.pointee
            if base_ty.is_array():
                return base_ty.element
            self.error("cannot index non-pointer type {}".format(base_ty), expr)
        if isinstance(expr, ast.Cast):
            self.check_expr(expr.operand, scope)
            return expr.target_type
        self.error("unknown expression {!r}".format(expr), expr)

    def _binary_type(self, expr, scope):
        lhs = self.check_expr(expr.lhs, scope)
        rhs = self.check_expr(expr.rhs, scope)
        op = expr.op
        if op == ",":
            return rhs
        if op in ("&&", "||"):
            return T.BOOL
        if op in ("==", "!=", "<", ">", "<=", ">="):
            if lhs.is_pointer() and rhs.is_pointer():
                return T.BOOL
            if lhs.is_scalar() and rhs.is_scalar():
                return T.BOOL
            self.error("cannot compare {} with {}".format(lhs, rhs), expr)
        if op in ("+", "-"):
            # pointer arithmetic
            if lhs.is_pointer() and rhs.is_integer():
                return lhs
            if op == "+" and lhs.is_integer() and rhs.is_pointer():
                return rhs
            if op == "-" and lhs.is_pointer() and rhs.is_pointer():
                return T.LONG
        if op in ("%", "&", "|", "^", "<<", ">>"):
            if not (lhs.is_integer() and rhs.is_integer()):
                self.error("operator {!r} requires integers".format(op), expr)
            return T.common_type(lhs, rhs)
        if lhs.is_scalar() and rhs.is_scalar():
            return T.common_type(lhs, rhs)
        self.error("invalid operands to {!r}: {} and {}".format(op, lhs, rhs), expr)

    def _unary_type(self, expr, scope):
        ty = self.check_expr(expr.operand, scope)
        op = expr.op
        if op == "-":
            if not ty.is_scalar():
                self.error("cannot negate {}".format(ty), expr)
            return ty if not ty.is_bool() else T.INT
        if op == "!":
            return T.BOOL
        if op == "~":
            if not ty.is_integer():
                self.error("~ requires an integer", expr)
            return ty
        if op == "*":
            if not ty.is_pointer():
                self.error("cannot dereference {}".format(ty), expr)
            return ty.pointee
        if op == "&":
            self._require_lvalue(expr.operand)
            inner = expr.operand
            if isinstance(inner, ast.Index):
                base_ty = inner.base.type
                space = base_ty.address_space
            elif isinstance(inner, ast.Ident) and inner.type.is_array():
                space = inner.type.address_space
            else:
                space = T.PRIVATE
            return T.PointerType(ty, space)
        if op in ("++", "--"):
            self._require_lvalue(expr.operand)
            return ty
        self.error("unknown unary operator {!r}".format(op), expr)

    def _assign_type(self, expr, scope):
        target_ty = self.check_expr(expr.target, scope)
        self._require_lvalue(expr.target)
        value_ty = self.check_expr(expr.value, scope)
        if expr.op != "=":
            base_op = expr.op[:-1]
            if base_op in ("%", "&", "|", "^", "<<", ">>") and not (
                    target_ty.is_integer() and value_ty.is_integer()):
                self.error("compound operator {!r} requires integers".format(expr.op),
                           expr)
        if target_ty.is_pointer() and value_ty.is_integer() and expr.op in ("+=", "-="):
            return target_ty
        if not T.can_implicitly_convert(value_ty, target_ty):
            self.error("cannot assign {} to {}".format(value_ty, target_ty), expr)
        return target_ty

    def _require_lvalue(self, expr):
        if isinstance(expr, ast.Ident):
            if expr.type is not None and expr.type.is_array():
                self.error("arrays are not assignable", expr)
            return
        if isinstance(expr, ast.Index):
            return
        if isinstance(expr, ast.Unary) and expr.op == "*":
            return
        self.error("expression is not assignable", expr)

    def _call_type(self, expr, scope):
        arg_types = [self.check_expr(arg, scope) for arg in expr.args]
        if B.is_builtin(expr.name):
            builtin = B.lookup(expr.name)
            if len(arg_types) != builtin.arg_count:
                self.error("{} expects {} arguments, got {}".format(
                    expr.name, builtin.arg_count, len(arg_types)), expr)
            if builtin.category == "atomic":
                ptr = arg_types[0]
                if not ptr.is_pointer() or not ptr.pointee.is_integer():
                    self.error("{} requires a pointer to an integer".format(
                        expr.name), expr)
                if ptr.address_space not in (T.GLOBAL, T.LOCAL):
                    self.error("atomics require global or local pointers", expr)
            if builtin.category == "workitem" and builtin.arg_count == 1:
                if not arg_types[0].is_integer():
                    self.error("{} dimension must be an integer".format(expr.name),
                               expr)
            return builtin.result_type(arg_types)
        callee = self.functions.get(expr.name)
        if callee is None:
            self.error("call to undeclared function {!r}".format(expr.name), expr)
        if callee.is_kernel:
            self.error("kernel functions cannot be called from device code", expr)
        if len(arg_types) != len(callee.params):
            self.error("{} expects {} arguments, got {}".format(
                expr.name, len(callee.params), len(arg_types)), expr)
        for arg_ty, param in zip(arg_types, callee.params):
            if not T.can_implicitly_convert(arg_ty, param.type):
                self.error("cannot pass {} as {} parameter {!r}".format(
                    arg_ty, param.type, param.name), expr)
        expr.callee = callee
        return callee.return_type


def analyze(program):
    """Type-check ``program`` in place and return it."""
    return _Analyzer(program).run()
