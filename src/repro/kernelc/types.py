"""Type system for the mini OpenCL-C frontend.

Types are immutable value objects compared structurally.  Address spaces
follow OpenCL: ``global``, ``local``, ``constant`` and ``private`` (the
default for automatic variables).
"""

from __future__ import annotations


GLOBAL = "global"
LOCAL = "local"
CONSTANT = "constant"
PRIVATE = "private"

ADDRESS_SPACES = (GLOBAL, LOCAL, CONSTANT, PRIVATE)


class Type:
    """Base class for all frontend types."""

    def is_scalar(self):
        return isinstance(self, ScalarType) and self.kind != "void"

    def is_integer(self):
        return isinstance(self, ScalarType) and self.kind in INTEGER_KINDS

    def is_float(self):
        return isinstance(self, ScalarType) and self.kind == "float"

    def is_bool(self):
        return isinstance(self, ScalarType) and self.kind == "bool"

    def is_void(self):
        return isinstance(self, ScalarType) and self.kind == "void"

    def is_pointer(self):
        return isinstance(self, PointerType)

    def is_array(self):
        return isinstance(self, ArrayType)


INTEGER_KINDS = ("bool", "int", "uint", "long", "ulong")

# Bit widths and signedness per scalar kind.
SCALAR_INFO = {
    "void": (0, False),
    "bool": (1, False),
    "int": (32, True),
    "uint": (32, False),
    "long": (64, True),
    "ulong": (64, False),
    "float": (32, True),
}


class ScalarType(Type):
    """A scalar type: ``void``, ``bool``, integers or ``float``."""

    __slots__ = ("kind",)
    _cache = {}

    def __new__(cls, kind):
        if kind not in SCALAR_INFO:
            raise ValueError("unknown scalar kind: {!r}".format(kind))
        cached = cls._cache.get(kind)
        if cached is None:
            cached = super().__new__(cls)
            cached.kind = kind
            cls._cache[kind] = cached
        return cached

    @property
    def bits(self):
        return SCALAR_INFO[self.kind][0]

    @property
    def signed(self):
        return SCALAR_INFO[self.kind][1]

    def __repr__(self):
        return self.kind

    def __eq__(self, other):
        return isinstance(other, ScalarType) and other.kind == self.kind

    def __hash__(self):
        return hash(("scalar", self.kind))


class PointerType(Type):
    """Pointer to ``pointee`` in a given address space."""

    __slots__ = ("pointee", "address_space", "is_const")

    def __init__(self, pointee, address_space=PRIVATE, is_const=False):
        if address_space not in ADDRESS_SPACES:
            raise ValueError("bad address space: {!r}".format(address_space))
        self.pointee = pointee
        self.address_space = address_space
        self.is_const = is_const

    def __repr__(self):
        const = "const " if self.is_const else ""
        return "{} {}{}*".format(self.address_space, const, self.pointee)

    def __eq__(self, other):
        return (
            isinstance(other, PointerType)
            and other.pointee == self.pointee
            and other.address_space == self.address_space
        )

    def __hash__(self):
        return hash(("ptr", self.pointee, self.address_space))


class ArrayType(Type):
    """Fixed-size array (used for ``local`` arrays declared in kernels)."""

    __slots__ = ("element", "size", "address_space")

    def __init__(self, element, size, address_space=PRIVATE):
        self.element = element
        self.size = size
        self.address_space = address_space

    def __repr__(self):
        return "{} {}[{}]".format(self.address_space, self.element, self.size)

    def __eq__(self, other):
        return (
            isinstance(other, ArrayType)
            and other.element == self.element
            and other.size == self.size
            and other.address_space == self.address_space
        )

    def __hash__(self):
        return hash(("arr", self.element, self.size, self.address_space))


VOID = ScalarType("void")
BOOL = ScalarType("bool")
INT = ScalarType("int")
UINT = ScalarType("uint")
LONG = ScalarType("long")
ULONG = ScalarType("ulong")
FLOAT = ScalarType("float")

# ``size_t`` maps to the 64-bit unsigned integer type, as on real devices.
SIZE_T = ULONG

TYPE_KEYWORDS = {
    "void": VOID,
    "bool": BOOL,
    "int": INT,
    "uint": UINT,
    "unsigned": UINT,
    "long": LONG,
    "ulong": ULONG,
    "float": FLOAT,
    "size_t": SIZE_T,
    "char": INT,  # tolerated alias; we do not model sub-word storage
}


def integer_rank(ty):
    """Conversion rank used for usual arithmetic conversions."""
    order = {"bool": 0, "int": 1, "uint": 2, "long": 3, "ulong": 4}
    return order[ty.kind]


def common_type(a, b):
    """The usual arithmetic conversion result of scalar types ``a``/``b``."""
    if a.is_float() or b.is_float():
        return FLOAT
    return a if integer_rank(a) >= integer_rank(b) else b


def can_implicitly_convert(src, dst):
    """True when ``src`` silently converts to ``dst`` (C-style laxness)."""
    if src == dst:
        return True
    if src.is_scalar() and dst.is_scalar():
        return True
    if src.is_pointer() and dst.is_pointer():
        # Allow pointee-compatible pointers in the same address space, plus
        # conversions to void-like untyped use; OpenCL C is forgiving here.
        return src.address_space == dst.address_space
    if src.is_array() and dst.is_pointer():
        return src.element == dst.pointee and src.address_space == dst.address_space
    return False
