"""Recursive-descent parser for the mini OpenCL-C frontend."""

from __future__ import annotations

from repro.errors import ParseError
from repro.kernelc import ast_nodes as ast
from repro.kernelc import types as T

ADDRESS_SPACE_KEYWORDS = {
    "global": T.GLOBAL, "__global": T.GLOBAL,
    "local": T.LOCAL, "__local": T.LOCAL,
    "constant": T.CONSTANT, "__constant": T.CONSTANT,
    "private": T.PRIVATE, "__private": T.PRIVATE,
}

ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}


class _Parser:
    def __init__(self, tokens):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers ----------------------------------------------------

    def peek(self, offset=0):
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self):
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def error(self, message, tok=None):
        tok = tok or self.peek()
        raise ParseError(message + " (got {!r})".format(tok.value), tok.line, tok.column)

    def expect_op(self, op):
        tok = self.peek()
        if not tok.is_op(op):
            self.error("expected {!r}".format(op))
        return self.advance()

    def accept_op(self, op):
        if self.peek().is_op(op):
            self.advance()
            return True
        return False

    def expect_ident(self):
        tok = self.peek()
        if tok.kind != "ident":
            self.error("expected identifier")
        return self.advance()

    # -- types ------------------------------------------------------------

    def at_type_start(self, offset=0):
        tok = self.peek(offset)
        return tok.kind == "keyword" and (
            tok.value in T.TYPE_KEYWORDS
            or tok.value in ADDRESS_SPACE_KEYWORDS
            or tok.value in ("const", "volatile", "restrict")
        )

    def parse_qualifiers(self):
        """Consume address space / const / volatile qualifiers in any order."""
        space = None
        is_const = False
        while True:
            tok = self.peek()
            if tok.kind != "keyword":
                break
            if tok.value in ADDRESS_SPACE_KEYWORDS:
                space = ADDRESS_SPACE_KEYWORDS[tok.value]
                self.advance()
            elif tok.value == "const":
                is_const = True
                self.advance()
            elif tok.value in ("volatile", "restrict"):
                self.advance()
            else:
                break
        return space, is_const

    def parse_base_type(self):
        tok = self.peek()
        if tok.kind == "keyword" and tok.value in T.TYPE_KEYWORDS:
            self.advance()
            base = T.TYPE_KEYWORDS[tok.value]
            # 'unsigned int' / 'unsigned long'
            if tok.value == "unsigned" and self.peek().is_keyword("int", "long"):
                follow = self.advance().value
                base = T.UINT if follow == "int" else T.ULONG
            return base
        self.error("expected type name")

    def parse_full_type(self):
        """Parse ``[qualifiers] base [*]...`` returning (type, address_space)."""
        space, is_const = self.parse_qualifiers()
        base = self.parse_base_type()
        # const may also follow the base type (``global const float *``)
        space2, is_const2 = self.parse_qualifiers()
        space = space2 or space
        is_const = is_const or is_const2
        ty = base
        while self.peek().is_op("*"):
            self.advance()
            ty = T.PointerType(ty, space or T.PRIVATE, is_const)
            # qualifiers may trail the '*' (``float * const restrict``)
            self.parse_qualifiers()
        return ty, space

    # -- top level ----------------------------------------------------------

    def parse_program(self):
        functions = []
        while self.peek().kind != "eof":
            functions.append(self.parse_function())
        return ast.Program(functions)

    def parse_function(self):
        tok = self.peek()
        is_kernel = False
        if tok.is_keyword("kernel", "__kernel"):
            is_kernel = True
            self.advance()
        ret_type, _ = self.parse_full_type()
        name_tok = self.expect_ident()
        self.expect_op("(")
        params = []
        if not self.peek().is_op(")"):
            while True:
                params.append(self.parse_param())
                if not self.accept_op(","):
                    break
        self.expect_op(")")
        body = self.parse_compound()
        return ast.FunctionDef(name_tok.value, ret_type, params, body, is_kernel,
                               line=name_tok.line)

    def parse_param(self):
        ty, _space = self.parse_full_type()
        name_tok = self.expect_ident()
        return ast.Param(name_tok.value, ty, line=name_tok.line)

    # -- statements ---------------------------------------------------------

    def parse_compound(self):
        open_tok = self.expect_op("{")
        statements = []
        while not self.peek().is_op("}"):
            if self.peek().kind == "eof":
                self.error("unterminated block", open_tok)
            statements.append(self.parse_statement())
        self.expect_op("}")
        return ast.Compound(statements, line=open_tok.line)

    def parse_statement(self):
        tok = self.peek()
        if tok.is_op("{"):
            return self.parse_compound()
        if tok.is_op(";"):
            self.advance()
            return ast.Compound([], line=tok.line)
        if tok.is_keyword("if"):
            return self.parse_if()
        if tok.is_keyword("for"):
            return self.parse_for()
        if tok.is_keyword("while"):
            return self.parse_while()
        if tok.is_keyword("do"):
            return self.parse_do()
        if tok.is_keyword("return"):
            self.advance()
            value = None
            if not self.peek().is_op(";"):
                value = self.parse_expression()
            self.expect_op(";")
            return ast.Return(value, line=tok.line)
        if tok.is_keyword("break"):
            self.advance()
            self.expect_op(";")
            return ast.Break(line=tok.line)
        if tok.is_keyword("continue"):
            self.advance()
            self.expect_op(";")
            return ast.Continue(line=tok.line)
        if self.at_type_start():
            stmt = self.parse_declaration()
            self.expect_op(";")
            return stmt
        expr = self.parse_expression()
        self.expect_op(";")
        return ast.ExprStmt(expr, line=tok.line)

    def parse_declaration(self):
        """Parse ``type declarator (',' declarator)*`` without the ';'."""
        line = self.peek().line
        space, is_const = self.parse_qualifiers()
        base = self.parse_base_type()
        space2, is_const2 = self.parse_qualifiers()
        space = space or space2
        is_const = is_const or is_const2
        decls = []
        while True:
            ty = base
            while self.accept_op("*"):
                ty = T.PointerType(ty, space or T.PRIVATE, is_const)
            name_tok = self.expect_ident()
            if self.accept_op("["):
                size_expr = self.parse_expression()
                self.expect_op("]")
                if not isinstance(size_expr, ast.IntLit):
                    self.error("array sizes must be integer constants", name_tok)
                ty = T.ArrayType(ty, size_expr.value, space or T.PRIVATE)
            init = None
            if self.accept_op("="):
                init = self.parse_assignment()
            decls.append(ast.VarDecl(name_tok.value, ty, init, line=name_tok.line))
            if not self.accept_op(","):
                break
        return ast.DeclStmt(decls, line=line)

    def parse_if(self):
        tok = self.advance()
        self.expect_op("(")
        cond = self.parse_expression()
        self.expect_op(")")
        then = self.parse_statement()
        otherwise = None
        if self.peek().is_keyword("else"):
            self.advance()
            otherwise = self.parse_statement()
        return ast.If(cond, then, otherwise, line=tok.line)

    def parse_for(self):
        tok = self.advance()
        self.expect_op("(")
        init = None
        if not self.peek().is_op(";"):
            if self.at_type_start():
                init = self.parse_declaration()
            else:
                init = ast.ExprStmt(self.parse_expression(), line=tok.line)
        self.expect_op(";")
        cond = None
        if not self.peek().is_op(";"):
            cond = self.parse_expression()
        self.expect_op(";")
        step = None
        if not self.peek().is_op(")"):
            step = self.parse_expression()
        self.expect_op(")")
        body = self.parse_statement()
        return ast.For(init, cond, step, body, line=tok.line)

    def parse_while(self):
        tok = self.advance()
        self.expect_op("(")
        cond = self.parse_expression()
        self.expect_op(")")
        body = self.parse_statement()
        return ast.While(cond, body, line=tok.line)

    def parse_do(self):
        tok = self.advance()
        body = self.parse_statement()
        if not self.peek().is_keyword("while"):
            self.error("expected 'while' after do-body")
        self.advance()
        self.expect_op("(")
        cond = self.parse_expression()
        self.expect_op(")")
        self.expect_op(";")
        return ast.DoWhile(body, cond, line=tok.line)

    # -- expressions ----------------------------------------------------------
    # Standard C precedence ladder.

    def parse_expression(self):
        expr = self.parse_assignment()
        while self.peek().is_op(","):
            # Comma expressions appear in for-steps: evaluate both, keep right.
            self.advance()
            rhs = self.parse_assignment()
            expr = ast.Binary(",", expr, rhs, line=expr.line)
        return expr

    def parse_assignment(self):
        lhs = self.parse_ternary()
        tok = self.peek()
        if tok.kind == "op" and tok.value in ASSIGN_OPS:
            self.advance()
            value = self.parse_assignment()
            return ast.Assign(tok.value, lhs, value, line=tok.line)
        return lhs

    def parse_ternary(self):
        cond = self.parse_binary(0)
        if self.peek().is_op("?"):
            tok = self.advance()
            then = self.parse_assignment()
            self.expect_op(":")
            otherwise = self.parse_assignment()
            return ast.Ternary(cond, then, otherwise, line=tok.line)
        return cond

    _PRECEDENCE = [
        ("||",),
        ("&&",),
        ("|",),
        ("^",),
        ("&",),
        ("==", "!="),
        ("<", ">", "<=", ">="),
        ("<<", ">>"),
        ("+", "-"),
        ("*", "/", "%"),
    ]

    def parse_binary(self, level):
        if level >= len(self._PRECEDENCE):
            return self.parse_unary()
        ops = self._PRECEDENCE[level]
        expr = self.parse_binary(level + 1)
        while self.peek().is_op(*ops):
            tok = self.advance()
            rhs = self.parse_binary(level + 1)
            expr = ast.Binary(tok.value, expr, rhs, line=tok.line)
        return expr

    def parse_unary(self):
        tok = self.peek()
        if tok.is_op("-", "+", "!", "~", "*", "&", "++", "--"):
            self.advance()
            operand = self.parse_unary()
            if tok.value == "+":
                return operand
            return ast.Unary(tok.value, operand, line=tok.line)
        if tok.is_op("(") and self.at_type_start(1):
            # cast expression: '(' type ')' unary
            self.advance()
            ty, _space = self.parse_full_type()
            self.expect_op(")")
            operand = self.parse_unary()
            return ast.Cast(ty, operand, line=tok.line)
        return self.parse_postfix()

    def parse_postfix(self):
        expr = self.parse_primary()
        while True:
            tok = self.peek()
            if tok.is_op("["):
                self.advance()
                index = self.parse_expression()
                self.expect_op("]")
                expr = ast.Index(expr, index, line=tok.line)
            elif tok.is_op("(") and isinstance(expr, ast.Ident):
                self.advance()
                args = []
                if not self.peek().is_op(")"):
                    while True:
                        args.append(self.parse_assignment())
                        if not self.accept_op(","):
                            break
                self.expect_op(")")
                expr = ast.Call(expr.name, args, line=tok.line)
            elif tok.is_op("++", "--"):
                self.advance()
                expr = ast.PostIncDec(tok.value, expr, line=tok.line)
            else:
                return expr

    def parse_primary(self):
        tok = self.peek()
        if tok.kind == "int":
            self.advance()
            return ast.IntLit(tok.value, line=tok.line)
        if tok.kind == "float":
            self.advance()
            return ast.FloatLit(tok.value, line=tok.line)
        if tok.is_keyword("true", "false"):
            self.advance()
            return ast.BoolLit(tok.value == "true", line=tok.line)
        if tok.kind == "ident":
            self.advance()
            return ast.Ident(tok.value, line=tok.line)
        if tok.is_op("("):
            self.advance()
            expr = self.parse_expression()
            self.expect_op(")")
            return expr
        self.error("expected expression")


def parse(tokens):
    """Parse a token list (from :func:`repro.kernelc.lexer.tokenize`)."""
    return _Parser(tokens).parse_program()
