"""AST node definitions for the mini OpenCL-C frontend.

Nodes carry their source line for diagnostics.  Expression nodes gain a
``.type`` attribute during semantic analysis (:mod:`repro.kernelc.sema`).
"""

from __future__ import annotations


class Node:
    """Base class for all AST nodes."""

    __slots__ = ("line",)

    def __init__(self, line=None):
        self.line = line


# --------------------------------------------------------------------------
# Top level
# --------------------------------------------------------------------------

class Program(Node):
    """A translation unit: an ordered list of function definitions."""

    __slots__ = ("functions",)

    def __init__(self, functions, line=None):
        super().__init__(line)
        self.functions = functions

    def kernel_functions(self):
        return [f for f in self.functions if f.is_kernel]

    def function(self, name):
        for f in self.functions:
            if f.name == name:
                return f
        raise KeyError(name)


class Param(Node):
    """A function parameter with its fully-qualified type."""

    __slots__ = ("name", "type")

    def __init__(self, name, type_, line=None):
        super().__init__(line)
        self.name = name
        self.type = type_


class FunctionDef(Node):
    """A function definition; ``is_kernel`` marks ``kernel void`` entries."""

    __slots__ = ("name", "return_type", "params", "body", "is_kernel")

    def __init__(self, name, return_type, params, body, is_kernel, line=None):
        super().__init__(line)
        self.name = name
        self.return_type = return_type
        self.params = params
        self.body = body
        self.is_kernel = is_kernel


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------

class Compound(Node):
    __slots__ = ("statements",)

    def __init__(self, statements, line=None):
        super().__init__(line)
        self.statements = statements


class DeclStmt(Node):
    """One or more variable declarations sharing a base type."""

    __slots__ = ("decls",)

    def __init__(self, decls, line=None):
        super().__init__(line)
        self.decls = decls


class VarDecl(Node):
    """A single declared variable.

    ``type`` is the complete type (scalar, pointer or array, including the
    address space for arrays declared ``local``).  ``init`` may be None.
    """

    __slots__ = ("name", "type", "init")

    def __init__(self, name, type_, init, line=None):
        super().__init__(line)
        self.name = name
        self.type = type_
        self.init = init


class If(Node):
    __slots__ = ("cond", "then", "otherwise")

    def __init__(self, cond, then, otherwise, line=None):
        super().__init__(line)
        self.cond = cond
        self.then = then
        self.otherwise = otherwise


class For(Node):
    __slots__ = ("init", "cond", "step", "body")

    def __init__(self, init, cond, step, body, line=None):
        super().__init__(line)
        self.init = init
        self.cond = cond
        self.step = step
        self.body = body


class While(Node):
    __slots__ = ("cond", "body")

    def __init__(self, cond, body, line=None):
        super().__init__(line)
        self.cond = cond
        self.body = body


class DoWhile(Node):
    __slots__ = ("body", "cond")

    def __init__(self, body, cond, line=None):
        super().__init__(line)
        self.body = body
        self.cond = cond


class Return(Node):
    __slots__ = ("value",)

    def __init__(self, value, line=None):
        super().__init__(line)
        self.value = value


class Break(Node):
    __slots__ = ()


class Continue(Node):
    __slots__ = ()


class ExprStmt(Node):
    __slots__ = ("expr",)

    def __init__(self, expr, line=None):
        super().__init__(line)
        self.expr = expr


# --------------------------------------------------------------------------
# Expressions (all carry ``.type`` after sema)
# --------------------------------------------------------------------------

class Expr(Node):
    __slots__ = ("type",)

    def __init__(self, line=None):
        super().__init__(line)
        self.type = None


class IntLit(Expr):
    __slots__ = ("value",)

    def __init__(self, value, line=None):
        super().__init__(line)
        self.value = value


class FloatLit(Expr):
    __slots__ = ("value",)

    def __init__(self, value, line=None):
        super().__init__(line)
        self.value = value


class BoolLit(Expr):
    __slots__ = ("value",)

    def __init__(self, value, line=None):
        super().__init__(line)
        self.value = value


class Ident(Expr):
    __slots__ = ("name", "decl")

    def __init__(self, name, line=None):
        super().__init__(line)
        self.name = name
        self.decl = None  # resolved by sema to Param or VarDecl


class Binary(Expr):
    """Arithmetic/relational/logical binary operation (no assignment)."""

    __slots__ = ("op", "lhs", "rhs")

    def __init__(self, op, lhs, rhs, line=None):
        super().__init__(line)
        self.op = op
        self.lhs = lhs
        self.rhs = rhs


class Unary(Expr):
    """Prefix unary: ``- ! ~ * & ++ --`` (``*``/``&`` are deref/address-of)."""

    __slots__ = ("op", "operand")

    def __init__(self, op, operand, line=None):
        super().__init__(line)
        self.op = op
        self.operand = operand


class PostIncDec(Expr):
    __slots__ = ("op", "operand")

    def __init__(self, op, operand, line=None):
        super().__init__(line)
        self.op = op  # '++' or '--'
        self.operand = operand


class Assign(Expr):
    """Assignment, possibly compound (``op`` is '=' or '+=' etc.)."""

    __slots__ = ("op", "target", "value")

    def __init__(self, op, target, value, line=None):
        super().__init__(line)
        self.op = op
        self.target = target
        self.value = value


class Ternary(Expr):
    __slots__ = ("cond", "then", "otherwise")

    def __init__(self, cond, then, otherwise, line=None):
        super().__init__(line)
        self.cond = cond
        self.then = then
        self.otherwise = otherwise


class Call(Expr):
    __slots__ = ("name", "args", "callee")

    def __init__(self, name, args, line=None):
        super().__init__(line)
        self.name = name
        self.args = args
        self.callee = None  # FunctionDef for user calls, None for builtins


class Index(Expr):
    __slots__ = ("base", "index")

    def __init__(self, base, index, line=None):
        super().__init__(line)
        self.base = base
        self.index = index


class Cast(Expr):
    __slots__ = ("target_type", "operand")

    def __init__(self, target_type, operand, line=None):
        super().__init__(line)
        self.target_type = target_type
        self.operand = operand
