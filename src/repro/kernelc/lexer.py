"""Tokenizer for the mini OpenCL-C frontend."""

from __future__ import annotations

from repro.errors import LexError

KEYWORDS = {
    "kernel", "__kernel",
    "void", "bool", "int", "uint", "unsigned", "long", "ulong", "float",
    "size_t", "char",
    "const", "volatile", "restrict",
    "global", "__global", "local", "__local",
    "constant", "__constant", "private", "__private",
    "if", "else", "for", "while", "do", "break", "continue", "return",
    "true", "false",
}

# Multi-character operators, longest first so maximal munch works.
OPERATORS = [
    "<<=", ">>=",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
    "?", ":", ";", ",", "(", ")", "[", "]", "{", "}", ".",
]


class Token:
    """A lexical token with source position (1-based line/column)."""

    __slots__ = ("kind", "value", "line", "column")

    def __init__(self, kind, value, line, column):
        self.kind = kind          # 'ident' | 'keyword' | 'int' | 'float' | 'op' | 'eof'
        self.value = value
        self.line = line
        self.column = column

    def __repr__(self):
        return "Token({}, {!r}, {}:{})".format(self.kind, self.value, self.line, self.column)

    def is_op(self, *ops):
        return self.kind == "op" and self.value in ops

    def is_keyword(self, *kws):
        return self.kind == "keyword" and self.value in kws


def _is_ident_start(ch):
    return ch.isalpha() or ch == "_"


def _is_ident_char(ch):
    return ch.isalnum() or ch == "_"


def tokenize(source):
    """Tokenize preprocessed source text into a list of :class:`Token`.

    The final element is always an ``eof`` token, which simplifies the parser's
    lookahead logic.
    """
    tokens = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def error(message):
        raise LexError(message, line, col)

    while i < n:
        ch = source[i]

        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue

        # Comments should already be stripped by the preprocessor, but accept
        # raw source being tokenized directly (e.g. in tests).
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                error("unterminated block comment")
            skipped = source[i:end + 2]
            line += skipped.count("\n")
            if "\n" in skipped:
                col = len(skipped) - skipped.rfind("\n")
            else:
                col += len(skipped)
            i = end + 2
            continue

        start_line, start_col = line, col

        if _is_ident_start(ch):
            j = i
            while j < n and _is_ident_char(source[j]):
                j += 1
            word = source[i:j]
            kind = "keyword" if word in KEYWORDS else "ident"
            tokens.append(Token(kind, word, start_line, start_col))
            col += j - i
            i = j
            continue

        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            j = i
            is_float = False
            if source.startswith("0x", i) or source.startswith("0X", i):
                j = i + 2
                while j < n and (source[j].isdigit() or source[j].lower() in "abcdef"):
                    j += 1
                value = int(source[i:j], 16)
            else:
                while j < n and source[j].isdigit():
                    j += 1
                if j < n and source[j] == ".":
                    is_float = True
                    j += 1
                    while j < n and source[j].isdigit():
                        j += 1
                if j < n and source[j] in "eE":
                    k = j + 1
                    if k < n and source[k] in "+-":
                        k += 1
                    if k < n and source[k].isdigit():
                        is_float = True
                        j = k
                        while j < n and source[j].isdigit():
                            j += 1
                value = float(source[i:j]) if is_float else int(source[i:j])
            # Suffixes: f/F marks float, u/U/l/L integer width markers.
            while j < n and source[j] in "fFuUlL":
                if source[j] in "fF":
                    is_float = True
                    value = float(value)
                j += 1
            tokens.append(Token("float" if is_float else "int", value, start_line, start_col))
            col += j - i
            i = j
            continue

        for op in OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, start_line, start_col))
                i += len(op)
                col += len(op)
                break
        else:
            error("unexpected character {!r}".format(ch))

    tokens.append(Token("eof", None, line, col))
    return tokens
