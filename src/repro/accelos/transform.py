"""The accelOS JIT kernel transformation (paper §6.2).

For every kernel in a module we perform the paper's five steps:

1. convert the kernel function into a regular computation function,
2. extend its interface with the runtime data structures
   (``global long* rt``, ``local long* sd``, ``long hdlr``),
3. replace work-item builtins with runtime-library equivalents
   (``get_global_id`` → ``rt_global_id`` …); regular functions that use
   work-item builtins (transitively) get the same treatment,
4. create a scheduling kernel with the original kernel's name and interface
   plus a trailing ``rt`` pointer argument,
5. generate the scheduling body: master work-item initialises the
   environment, then a dequeue loop atomically pulls chunks of virtual
   groups from the Virtual NDRange and calls the computation function for
   each handler.

Local-data hoisting: ``local`` arrays declared in the original kernel are
hoisted into the scheduling kernel and passed to the computation function as
extra ``local`` pointer parameters (OpenCL forbids local declarations in
non-kernel functions, §6.2 "Local Data Hoisting").

One deliberate deviation from the paper's fig. 8b pseudo-code: we emit a
barrier at the *top* of the dequeue loop (two barriers per iteration, not
one).  With a single barrier the master may overwrite ``sd`` while laggard
work items still read the previous chunk's bounds — a data race the
pseudo-code elides.  Our functional interpreter exposes exactly this race,
so the generated code closes it.
"""

from __future__ import annotations

from repro.errors import IRError
from repro.ir import instructions as I
from repro.ir.builder import IRBuilder
from repro.ir.clone import clone_function
from repro.ir.function import Function
from repro.ir.passes import (
    ConstantFoldPass, DeadCodeEliminationPass, InlinePass, PassManager,
    SimplifyCFGPass, count_instructions)
from repro.ir.values import Constant
from repro.kernelc import types as T
from repro.accelos import rtlib
from repro.accelos.adaptive import SchedulingPolicy, chunk_size_for

_GLOBAL_LONG_PTR = T.PointerType(T.LONG, T.GLOBAL)
_LOCAL_LONG_PTR = T.PointerType(T.LONG, T.LOCAL)

_CTX_PARAM_TYPES = (_GLOBAL_LONG_PTR, _LOCAL_LONG_PTR, T.LONG)
_CTX_PARAM_NAMES = ("__rt", "__sd", "__hdlr")


class TransformedKernel:
    """Description of one transformed kernel, consumed by the scheduler."""

    __slots__ = ("name", "impl_name", "original_param_count",
                 "rt_arg_index", "instruction_count", "chunk", "policy")

    def __init__(self, name, impl_name, original_param_count,
                 instruction_count, chunk, policy):
        self.name = name
        self.impl_name = impl_name
        self.original_param_count = original_param_count
        self.rt_arg_index = original_param_count
        self.instruction_count = instruction_count
        self.chunk = chunk
        self.policy = policy

    def __repr__(self):
        return ("<TransformedKernel {} (impl={}, insns={}, chunk={})>"
                .format(self.name, self.impl_name, self.instruction_count,
                        self.chunk))


class AccelOSTransform:
    """Module-level driver for the kernel transformation."""

    def __init__(self, policy=SchedulingPolicy.ADAPTIVE, inline=True):
        self.policy = policy
        self.inline = inline

    # -- public -----------------------------------------------------------

    def run(self, module):
        """Transform ``module``; returns ``(new_module, {name: info})``.

        The input module is not mutated.  In the output module, every kernel
        has been replaced by its scheduling kernel under the *original* name
        (transparency: the application launches the same kernel name).
        """
        out = module.clone()
        out.link(rtlib.build_rtlib_module(), allow_duplicates=False)

        needs_ctx = self._functions_needing_context(out)
        extended = {}
        for func in list(out.plain_functions()):
            if func.name in needs_ctx and func.name not in rtlib.RTLIB_FUNCTIONS:
                extended[func.name] = self._extend_plain_function(out, func)

        infos = {}
        for kernel in list(out.kernels()):
            infos[kernel.name] = self._transform_kernel(out, kernel, extended)

        # Original versions of extended plain functions are now unreachable.
        for name in extended:
            del out.functions[name]

        if self.inline:
            # GPU toolchains inline everything by default; this is also what
            # erases the transformation's register overhead (paper §6.5).
            PassManager().add(InlinePass()).run(out)
            pm = (PassManager().add(ConstantFoldPass())
                  .add(SimplifyCFGPass()).add(DeadCodeEliminationPass()))
            pm.run(out)
        return out, infos

    # -- analysis -----------------------------------------------------------

    def _functions_needing_context(self, module):
        """Plain functions that (transitively) use virtualised builtins."""
        direct = set()
        callers = {}
        for func in module.plain_functions():
            if func.name in rtlib.RTLIB_FUNCTIONS:
                continue
            for insn in func.instructions():
                if isinstance(insn, I.Call):
                    if insn.is_intrinsic():
                        if insn.callee in rtlib.REPLACEMENTS:
                            direct.add(func.name)
                    else:
                        callers.setdefault(insn.callee.name, set()).add(func.name)
        needs = set(direct)
        frontier = list(direct)
        while frontier:
            name = frontier.pop()
            for caller in callers.get(name, ()):
                if caller not in needs:
                    needs.add(caller)
                    frontier.append(caller)
        return needs

    # -- plain function extension (step 3 for callees) ------------------------

    def _extend_plain_function(self, module, func):
        clone, _ = clone_function(
            func, new_name="{}__rt".format(func.name),
            extra_param_types=_CTX_PARAM_TYPES,
            extra_param_names=_CTX_PARAM_NAMES)
        rt_arg, sd_arg, hdlr_arg = clone.arguments[-3:]
        self._rewrite_builtins(module, clone, rt_arg, sd_arg, hdlr_arg)
        module.add_function(clone)
        return clone

    # -- kernel transformation ---------------------------------------------------

    def _transform_kernel(self, module, kernel, extended):
        impl, _ = clone_function(
            kernel, new_name="{}__impl".format(kernel.name),
            extra_param_types=_CTX_PARAM_TYPES,
            extra_param_names=_CTX_PARAM_NAMES)
        impl.is_kernel = False
        rt_arg, sd_arg, hdlr_arg = impl.arguments[-3:]

        self._rewrite_builtins(module, impl, rt_arg, sd_arg, hdlr_arg)
        hoisted = self._hoist_local_data(impl)
        module.add_function(impl)

        instruction_count = count_instructions(impl)
        chunk = chunk_size_for(instruction_count, self.policy)

        original_param_count = len(kernel.arguments)
        sched = self._build_scheduling_kernel(
            module, kernel, impl, hoisted)

        # Replace the original kernel under its own name (transparency).
        del module.functions[kernel.name]
        module.add_function(sched)

        # The trailing rt argument is runtime-owned: applications keep
        # setting the original argument list (transparency).
        sched.metadata["hidden_params"] = 1
        sched.metadata["accelos"] = {
            "impl": impl.name,
            "original_params": original_param_count,
            "chunk": chunk,
            "policy": self.policy,
            "instruction_count": instruction_count,
        }
        return TransformedKernel(kernel.name, impl.name, original_param_count,
                                 instruction_count, chunk, self.policy)

    def _rewrite_builtins(self, module, func, rt_arg, sd_arg, hdlr_arg):
        """Step 3: swap work-item builtins for runtime-library calls."""
        for block in func.blocks:
            for index, insn in enumerate(block.instructions):
                if not isinstance(insn, I.Call):
                    continue
                if insn.is_intrinsic():
                    target = rtlib.REPLACEMENTS.get(insn.callee)
                    if target is None:
                        continue
                    callee = module.get(target)
                    if insn.callee in ("get_global_id", "get_group_id"):
                        args = [rt_arg, sd_arg, hdlr_arg, insn.operands[0]]
                    elif insn.callee in ("get_num_groups", "get_global_size"):
                        args = [rt_arg, insn.operands[0]]
                    elif insn.callee == "get_work_dim":
                        args = [rt_arg]
                    else:
                        raise IRError("unhandled replacement {}".format(
                            insn.callee))
                    replacement = I.Call(callee, args, callee.return_type)
                    replacement.name = insn.name
                    replacement.parent = block
                    block.instructions[index] = replacement
                    self._replace_uses(func, insn, replacement)
                else:
                    # Redirect calls to context-needing functions to their
                    # extended clones, threading rt/sd/hdlr through.
                    extended_name = "{}__rt".format(insn.callee.name)
                    if extended_name in module:
                        insn.callee = module.get(extended_name)
                        insn.operands = list(insn.operands) + [
                            rt_arg, sd_arg, hdlr_arg]

    @staticmethod
    def _replace_uses(func, old, new):
        for insn in func.instructions():
            if insn is not new:
                insn.replace_operand(old, new)

    def _hoist_local_data(self, impl):
        """Step: hoist ``local`` allocas out of the computation function.

        Returns ``[(allocated_type, count, name)]`` for the scheduling kernel
        to materialise; each becomes a trailing ``local`` pointer parameter
        of the computation function.
        """
        from repro.ir.values import Argument

        hoisted = []
        for block in impl.blocks:
            kept = []
            for insn in block.instructions:
                if isinstance(insn, I.Alloca) and insn.address_space == T.LOCAL:
                    param = Argument(
                        T.PointerType(insn.allocated_type, T.LOCAL),
                        "__lh_{}".format(insn.name or len(hoisted)))
                    impl.arguments.append(param)
                    hoisted.append((insn.allocated_type, insn.count, param.name))
                    self._replace_uses(impl, insn, param)
                else:
                    kept.append(insn)
            block.instructions = kept
        return hoisted

    def _build_scheduling_kernel(self, module, kernel, impl, hoisted):
        """Steps 4+5: the ``dyn_sched`` kernel under the original name."""
        param_types = [a.type for a in kernel.arguments] + [_GLOBAL_LONG_PTR]
        param_names = [a.name for a in kernel.arguments] + ["__rt"]
        sched = Function(kernel.name, T.VOID, param_types, param_names,
                         is_kernel=True)
        rt_arg = sched.arguments[-1]

        entry = sched.add_block("entry")
        builder = IRBuilder(sched, entry)

        sd = builder.alloca(T.LONG, count=rtlib.SD_WORDS,
                            address_space=T.LOCAL, name="sd")
        local_ptrs = []
        for allocated_type, count, name in hoisted:
            local_ptrs.append(builder.alloca(
                allocated_type, count=count, address_space=T.LOCAL, name=name))

        is_master = module.get("rt_is_master_work_item")
        env_init = module.get("rt_env_init")
        sched_wgroup = module.get("rt_sched_wgroup")

        init_block = sched.add_block("init")
        loop_head = sched.add_block("loop.head")
        do_sched = sched.add_block("loop.sched")
        after_sched = sched.add_block("loop.check")
        chunk_setup = sched.add_block("chunk.setup")
        inner_cond = sched.add_block("inner.cond")
        inner_body = sched.add_block("inner.body")
        exit_block = sched.add_block("exit")

        ind_slot = builder.alloca(T.LONG, name="ind")
        end_slot = builder.alloca(T.LONG, name="end")

        master0 = builder.call(is_master, [], name="master")
        builder.condbr(builder.cmp("ne", master0, Constant(T.LONG, 0)),
                       init_block, loop_head)

        builder.position_at_end(init_block)
        builder.call(env_init, [rt_arg, sd])
        builder.br(loop_head)

        # loop head: barrier (protects sd against the next dequeue), then
        # the master pulls the next chunk.
        builder.position_at_end(loop_head)
        builder.barrier()
        master1 = builder.call(is_master, [], name="master")
        builder.condbr(builder.cmp("ne", master1, Constant(T.LONG, 0)),
                       do_sched, after_sched)

        builder.position_at_end(do_sched)
        builder.call(sched_wgroup, [rt_arg, sd])
        builder.br(after_sched)

        builder.position_at_end(after_sched)
        builder.barrier()
        status_ptr = builder.ptradd(sd, Constant(T.LONG, rtlib.SD_STATUS))
        status = builder.load(status_ptr, "status")
        builder.condbr(
            builder.cmp("eq", status, Constant(T.LONG, rtlib.STATUS_TERMINATE)),
            exit_block, chunk_setup)

        builder.position_at_end(chunk_setup)
        base_ptr = builder.ptradd(sd, Constant(T.LONG, rtlib.SD_BASE))
        end_ptr = builder.ptradd(sd, Constant(T.LONG, rtlib.SD_END))
        builder.store(ind_slot, builder.load(base_ptr, "base"))
        builder.store(end_slot, builder.load(end_ptr, "end"))
        builder.br(inner_cond)

        builder.position_at_end(inner_cond)
        ind = builder.load(ind_slot, "ind")
        end = builder.load(end_slot, "end")
        builder.condbr(builder.cmp("lt", ind, end), inner_body, loop_head)

        builder.position_at_end(inner_body)
        call_args = list(sched.arguments[:-1]) + [rt_arg, sd]
        ind_value = builder.load(ind_slot, "hdlr")
        call_args.append(ind_value)
        call_args.extend(local_ptrs)
        builder.call(impl, call_args)
        builder.store(ind_slot, builder.binop("add", ind_value,
                                              Constant(T.LONG, 1)))
        builder.br(inner_cond)

        builder.position_at_end(exit_block)
        builder.ret()
        return sched
