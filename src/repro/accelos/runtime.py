"""The accelOS background process (paper §4, level 1).

Owns the real OpenCL context, the JIT compiler and the Kernel Scheduler, and
serves any number of applications through ProxyCL sessions.  Kernel
execution requests are collected into an *arrival batch* (concurrent
requests from distinct applications) and scheduled together with the §3
sharing algorithm when the batch drains.

**Role:** the functional-plane entry point — applications obtain a session
(:meth:`AccelOSRuntime.session`) and speak ordinary OpenCL to it.
**Inputs:** one :class:`~repro.cl.DeviceSpec`, a §6.4 scheduling policy
and the §3 ``saturate`` switch.  **Invariants:** one runtime manages
exactly one accelerator (N devices are composed by
:class:`repro.accelos.fleet.FleetRuntime`); every program built through a
session passes through the accelOS JIT; a drained batch's allocations are
computed across the whole batch, so concurrent requests always fit the
device together; ``launch_history`` records every executed plan in
submission order.
"""

from __future__ import annotations

from repro.accelos.monitor import ApplicationMonitor, Request
from repro.accelos.memory_manager import MemoryManager
from repro.accelos.proxycl import ProxyCLContext
from repro.accelos.scheduler import KernelScheduler
from repro.accelos.adaptive import SchedulingPolicy
from repro.accelos.transform import AccelOSTransform
from repro.cl.context import Context


class AccelOSRuntime:
    """One accelOS instance managing one accelerator."""

    def __init__(self, device, policy=SchedulingPolicy.ADAPTIVE,
                 saturate=True, inline=True):
        self.context = Context(device)
        self.transform = AccelOSTransform(policy=policy, inline=inline)
        self.scheduler = KernelScheduler(self.context, saturate=saturate)
        self.memory = MemoryManager(self.context)
        self.monitor = ApplicationMonitor(self._on_program, self._on_exec)
        self.pending = []        # [(kernel, nd_range, queue)]
        self.launch_history = []  # LaunchPlans of everything executed
        self.transform_info = {}  # kernel name -> TransformedKernel

    # -- application sessions ------------------------------------------------

    def session(self, app_id):
        """Create a ProxyCL context for an application."""
        return ProxyCLContext(self, app_id)

    # -- monitor handlers ------------------------------------------------------

    def _on_program(self, request):
        """(a) new clProgram: JIT transforms the kernel code."""
        source = request.payload
        program = self.context.create_program(source)
        program.build_hook = self._jit_build
        return program

    def _jit_build(self, module):
        transformed, infos = self.transform.run(module)
        self.transform_info.update(infos)
        return transformed

    def _on_exec(self, request):
        """(b) new kernel execution: joins the current arrival batch."""
        kernel, nd_range, queue = request.payload
        self.pending.append((kernel, nd_range, queue))
        return None

    # -- batch execution -----------------------------------------------------------

    def drain(self, share_ratio=None):
        """Schedule and execute the current arrival batch.

        Returns the batch's :class:`LaunchPlan` list (one per request) in
        submission order; the plans carry everything the timing simulator
        needs to co-schedule the batch.
        """
        if not self.pending:
            return []
        batch = self.pending
        self.pending = []
        plans = self.scheduler.plan_batch(
            [(kernel, nd_range) for kernel, nd_range, _ in batch],
            share_ratio=share_ratio)
        for plan, (_, _, queue) in zip(plans, batch):
            self.scheduler.execute_plan(plan, queue)
        self.launch_history.extend(plans)
        return plans
