"""accelOS: the paper's primary contribution.

A host runtime plus JIT compiler enabling software work-group scheduling and
fair resource sharing on accelerators:

* :mod:`repro.accelos.rtlib` — the GPU scheduling runtime library, written in
  the mini OpenCL-C and statically linked into every transformed kernel.
* :mod:`repro.accelos.transform` — the §6.2 five-step kernel rewrite.
* :mod:`repro.accelos.adaptive` — the §6.4 chunk-size policy.
* :mod:`repro.accelos.sharing` — the §3 resource sharing algorithm.
* :mod:`repro.accelos.vndrange` — Virtual NDRanges in device memory.
* :mod:`repro.accelos.scheduler` / :mod:`repro.accelos.monitor` /
  :mod:`repro.accelos.memory_manager` / :mod:`repro.accelos.proxycl` /
  :mod:`repro.accelos.runtime` — the §4/§5 host runtime.
"""

from repro.accelos.adaptive import chunk_size_for, SchedulingPolicy
from repro.accelos.sharing import KernelRequirements, compute_allocations
from repro.accelos.transform import AccelOSTransform, TransformedKernel
from repro.accelos.vndrange import VirtualNDRange
from repro.accelos.runtime import AccelOSRuntime
from repro.accelos.fleet import FleetRuntime
from repro.accelos.placement import (
    AffinityPlacement, LeastLoadedPlacement, PlacementDecision,
    PlacementPolicy, RoundRobinPlacement, default_policies, place_arrivals)

__all__ = [
    "chunk_size_for", "SchedulingPolicy",
    "KernelRequirements", "compute_allocations",
    "AccelOSTransform", "TransformedKernel",
    "VirtualNDRange", "AccelOSRuntime", "FleetRuntime",
    "PlacementPolicy", "PlacementDecision", "RoundRobinPlacement",
    "LeastLoadedPlacement", "AffinityPlacement", "default_policies",
    "place_arrivals",
]
