"""Host-runtime accelerator memory management (paper §5).

"The host runtime keeps track of the memory allocations of applications on
the accelerator memory...  In case that the accelerator memory is not
sufficient for serving all the applications concurrently, one or more
applications may be paused."

The manager tracks per-application allocations and, when an allocation
cannot be served, pauses the requesting application: the request is queued
and retried (FIFO) whenever memory is released.
"""

from __future__ import annotations

from collections import OrderedDict, deque

from repro.errors import DeviceOutOfMemory


class MemoryManager:
    def __init__(self, context):
        self.context = context
        self.per_app = OrderedDict()   # app_id -> [Buffer]
        # (app_id, elem_type, count, tag, provenance, future)
        self.paused = deque()

    # -- queries ------------------------------------------------------------

    def app_usage(self, app_id):
        return sum(b.size_bytes for b in self.per_app.get(app_id, []))

    def usage_by_provenance(self):
        """Resident bytes per attribution tenant label, sorted.

        Buffers allocated without a provenance bill to the
        :data:`~repro.attribution.UNTENANTED` bucket, so the totals sum
        to the full resident footprint (the ledger's conservation
        property at the allocator layer).
        """
        from repro.attribution import tenant_label
        usage = {}
        for buffers in self.per_app.values():
            for buffer in buffers:
                provenance = getattr(buffer.region, "provenance", None)
                label = tenant_label(
                    provenance.tenant if provenance is not None else None)
                usage[label] = usage.get(label, 0) + buffer.size_bytes
        return {label: usage[label] for label in sorted(usage)}

    def paused_apps(self):
        return [entry[0] for entry in self.paused]

    def is_paused(self, app_id):
        return any(entry[0] == app_id for entry in self.paused)

    # -- allocation ----------------------------------------------------------

    def allocate(self, app_id, elem_type, count, tag="", provenance=None):
        """Allocate a buffer for ``app_id``, billed to ``provenance``.

        Returns the buffer, or ``None`` when the application had to be
        paused (its request will be served once memory frees up; poll with
        :meth:`claim`).  The provenance survives the pause: a retried
        allocation is billed to the original requester, not whoever
        released the memory that unblocked it.
        """
        try:
            buffer = self.context.create_buffer(elem_type, count, tag,
                                                provenance=provenance)
        except DeviceOutOfMemory:
            future = _PendingAllocation()
            self.paused.append((app_id, elem_type, count, tag, provenance,
                                future))
            return None
        self.per_app.setdefault(app_id, []).append(buffer)
        return buffer

    def release(self, app_id, buffer):
        """Release a buffer and retry paused applications."""
        buffers = self.per_app.get(app_id, [])
        if buffer in buffers:
            buffers.remove(buffer)
        buffer.release()
        self._retry_paused()

    def release_all(self, app_id):
        for buffer in list(self.per_app.get(app_id, [])):
            self.release(app_id, buffer)
        self.per_app.pop(app_id, None)

    def claim(self, app_id):
        """Buffers granted to ``app_id`` after it was paused (may be empty)."""
        granted = []
        for buffer in self.per_app.get(app_id, []):
            if getattr(buffer, "_granted_after_pause", False):
                buffer._granted_after_pause = False
                granted.append(buffer)
        return granted

    def _retry_paused(self):
        made_progress = True
        while made_progress and self.paused:
            made_progress = False
            app_id, elem_type, count, tag, provenance, future = self.paused[0]
            try:
                buffer = self.context.create_buffer(elem_type, count, tag,
                                                    provenance=provenance)
            except DeviceOutOfMemory:
                return
            self.paused.popleft()
            buffer._granted_after_pause = True
            future.buffer = buffer
            self.per_app.setdefault(app_id, []).append(buffer)
            made_progress = True


class _PendingAllocation:
    """Placeholder resolved when a paused allocation is finally served."""

    def __init__(self):
        self.buffer = None
