"""Adaptive scheduling policy (paper §6.4).

"Scheduling of small kernels would expose significant overhead.  To
compensate for that we support scheduling of multiple virtual groups at a
time.  If the number of kernel instructions in LLVM IR is less than 10, a
scheduling operation assigns 8 virtual groups to the work group at a time.
Respectively, 6 groups for less than 20 instructions, 4 groups if less than
30, 2 groups if less than 40.  Otherwise, the scheduling is done by 1 group
at a time."
"""

from __future__ import annotations

# (instruction-count upper bound, chunk) — searched in order.
CHUNK_TABLE = (
    (10, 8),
    (20, 6),
    (30, 4),
    (40, 2),
)
DEFAULT_CHUNK = 1


class SchedulingPolicy:
    """Which dequeue-chunk policy a transformed kernel uses.

    * ``naive`` — always 1 virtual group per dequeue (§8.5's baseline).
    * ``adaptive`` — the §6.4 instruction-count-keyed table (the default).
    """

    NAIVE = "naive"
    ADAPTIVE = "adaptive"


def chunk_size_for(instruction_count, policy=SchedulingPolicy.ADAPTIVE):
    """Virtual groups assigned per scheduling operation."""
    if policy == SchedulingPolicy.NAIVE:
        return 1
    if policy != SchedulingPolicy.ADAPTIVE:
        raise ValueError("unknown scheduling policy {!r}".format(policy))
    for bound, chunk in CHUNK_TABLE:
        if instruction_count < bound:
            return chunk
    return DEFAULT_CHUNK


def effective_chunk(chunk, total_groups, physical_groups):
    """Per-execution chunk after the launch-time cap.

    The Kernel Scheduler knows the Virtual NDRange size and the physical
    allocation when it writes ``rt[2]``, so it caps the §6.4 chunk at the
    number of virtual groups per physical work group — otherwise a small
    execution (few virtual groups) would be serialised onto a handful of
    work groups by an 8-wide dequeue.
    """
    if physical_groups <= 0:
        raise ValueError("physical group count must be positive")
    per_slot = max(1, total_groups // physical_groups)
    return max(1, min(chunk, per_slot))
