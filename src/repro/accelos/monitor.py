"""The Application Monitor (paper §5, fig. 6).

The only accelOS component that talks to applications (via ProxyCL).  It
watches each application's OpenCL requests and dispatches them through the
fig. 6 finite state machine:

* (a) new ``clProgram``  -> the JIT compiler transforms the kernel code and
  the original operation proceeds with the transformed version;
* (b) new kernel execution -> the Kernel Scheduler alters the ND-range and
  schedules it;
* (c) anything else -> passes through untouched.
"""

from __future__ import annotations


class MonitorState:
    IDLE = "idle"
    JIT = "jit-compiler"
    SCHEDULER = "kernel-scheduler"
    PASSTHROUGH = "passthrough"


class Request:
    """One intercepted OpenCL request."""

    PROGRAM = "new-program"
    KERNEL_EXEC = "new-kernel-exec"
    OTHER = "other"

    __slots__ = ("kind", "payload", "app_id")

    def __init__(self, kind, payload=None, app_id=None):
        self.kind = kind
        self.payload = payload
        self.app_id = app_id

    def __repr__(self):
        return "<Request {} from {}>".format(self.kind, self.app_id)


class ApplicationMonitor:
    """Fig. 6 FSM: routes requests to the JIT, the scheduler, or through."""

    def __init__(self, jit_handler, exec_handler):
        self.jit_handler = jit_handler
        self.exec_handler = exec_handler
        self.state = MonitorState.IDLE
        self.transitions = []  # (state_from, request_kind, state_to) log
        # app_id -> {request kind -> count}; the monitor sees every
        # request, so these are the per-application work totals the
        # attribution ledger's accounts are cross-checked against
        self.counters = {}

    def handle(self, request):
        """Dispatch one request; returns the handler's result."""
        per_app = self.counters.setdefault(request.app_id, {})
        per_app[request.kind] = per_app.get(request.kind, 0) + 1
        if request.kind == Request.PROGRAM:
            return self._dispatch(MonitorState.JIT, request, self.jit_handler)
        if request.kind == Request.KERNEL_EXEC:
            return self._dispatch(MonitorState.SCHEDULER, request,
                                  self.exec_handler)
        return self._dispatch(MonitorState.PASSTHROUGH, request, None)

    def work_totals(self):
        """Per-application request counts, deterministically ordered.

        ``{app_id: {kind: count}}`` with both levels sorted (app ids by
        ``str``, kinds lexicographically) — the accessor every consumer
        must use instead of iterating :attr:`counters` raw.
        """
        return {
            app_id: {kind: self.counters[app_id][kind]
                     for kind in sorted(self.counters[app_id])}
            for app_id in sorted(self.counters, key=str)
        }

    def kernel_execs(self, app_id):
        """Kernel-execution requests seen from ``app_id`` so far."""
        return self.counters.get(app_id, {}).get(Request.KERNEL_EXEC, 0)

    def _dispatch(self, state, request, handler):
        self.transitions.append((self.state, request.kind, state))
        self.state = state
        try:
            if handler is None:
                return None  # (c): application continues instantly
            return handler(request)
        finally:
            self.transitions.append((self.state, "done", MonitorState.IDLE))
            self.state = MonitorState.IDLE
