"""Virtual NDRanges (paper §2.4, §5).

For every kernel execution request the Kernel Scheduler constructs a Virtual
NDRange describing the *original* work groups and copies it to accelerator
memory; the transformed kernel's physical work groups then dequeue virtual
groups from it at run time.

The device-side layout is the flat ``long`` descriptor documented in
:mod:`repro.accelos.rtlib`.
"""

from __future__ import annotations

import numpy as np

from repro.accelos import rtlib
from repro.kernelc import types as T


class VirtualNDRange:
    """Host-side handle for one kernel execution's virtual range."""

    def __init__(self, nd_range, chunk):
        self.nd_range = nd_range
        self.chunk = int(chunk)
        self.total_groups = nd_range.num_groups
        self.buffer = None  # device buffer, allocated by ``upload``

    def descriptor(self):
        """The rt descriptor words (see rtlib layout)."""
        words = np.zeros(rtlib.RT_WORDS, dtype=np.int64)
        words[rtlib.RT_COUNTER] = 0
        words[rtlib.RT_TOTAL] = self.total_groups
        words[rtlib.RT_CHUNK] = self.chunk
        words[rtlib.RT_WORK_DIM] = self.nd_range.work_dim
        groups = self.nd_range.groups_per_dim
        for d in range(3):
            words[rtlib.RT_GROUPS0 + d] = groups[d]
        return words

    def upload(self, context):
        """Allocate + copy the descriptor into accelerator memory."""
        self.buffer = context.create_buffer(T.LONG, rtlib.RT_WORDS,
                                            tag="vndrange")
        self.buffer.write(self.descriptor())
        return self.buffer

    def release(self):
        if self.buffer is not None:
            self.buffer.release()
            self.buffer = None

    def scheduling_operations(self):
        """How many dequeue operations this execution will perform in total."""
        return -(-self.total_groups // self.chunk)  # ceil division

    def __repr__(self):
        return "<VirtualNDRange {} vgroups, chunk {}>".format(
            self.total_groups, self.chunk)
