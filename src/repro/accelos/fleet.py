"""FleetRuntime: the accelOS session surface over a device fleet.

The paper's :class:`~repro.accelos.runtime.AccelOSRuntime` is "one accelOS
instance managing one accelerator" (§4).  ``FleetRuntime`` is the facade
that extends that contract to N accelerators: applications still call
``session(app_id)`` and get a ProxyCL context, but the fleet decides —
via a :mod:`placement <repro.accelos.placement>` policy — *which* device's
accelOS instance serves the application.  Everything below the session
boundary is unchanged: each device keeps its own JIT, Kernel Scheduler,
memory manager and §3 allocator, so per-device fairness guarantees are
exactly the single-device ones.

Functional-plane placement happens at **session creation**: an
application's buffers are allocated by the chosen device's memory manager
and cannot move afterwards, so a session is sticky — returning
applications are routed by the session map, and the placement policy is
only consulted for first-time applications (this structural stickiness is
precisely the locality the evaluation plane's affinity policy charges a
migration penalty for breaking).  Load, for placement purposes, is the
number of sessions resident on a device plus its currently pending kernel
requests.
"""

from __future__ import annotations

from repro.accelos.placement import LeastLoadedPlacement
from repro.accelos.runtime import AccelOSRuntime
from repro.accelos.adaptive import SchedulingPolicy
from repro.errors import SchedulingError, SimulationError
from repro.sim.fleet import DeviceFleet


class _SessionRequest:
    """Adapter giving a session-creation request the arrival interface the
    placement policies consume (name/tenant/device)."""

    __slots__ = ("name", "tenant", "device", "time")

    def __init__(self, app_id, device=None):
        self.name = app_id
        self.tenant = app_id
        self.device = device
        self.time = 0.0


class FleetRuntime:
    """accelOS over N devices: one session surface, per-device instances.

    ``devices`` is a list of :class:`~repro.cl.DeviceSpec` or
    ``(id, DeviceSpec)`` pairs (or a :class:`~repro.sim.fleet.DeviceFleet`);
    ``placement`` defaults to least-loaded and is consulted only for an
    application's *first* session — returning applications land back on
    the device holding their buffers structurally, via the sticky session
    map, not via the policy.  (Consequently an
    :class:`~repro.accelos.placement.AffinityPlacement` passed here never
    sees a populated home map and degenerates to least-loaded; migration
    trade-offs exist only in the evaluation plane.)
    """

    def __init__(self, devices, policy=SchedulingPolicy.ADAPTIVE,
                 saturate=True, inline=True, placement=None):
        try:
            fleet = devices if isinstance(devices, DeviceFleet) \
                else DeviceFleet(devices)
        except SimulationError as error:
            raise SchedulingError(str(error))
        self.fleet = fleet
        self.ids = fleet.ids
        self._index_by_id = fleet.id_to_index()
        self.runtimes = [
            AccelOSRuntime(member.device, policy=policy, saturate=saturate,
                           inline=inline)
            for member in fleet
        ]
        self.placement = placement if placement is not None \
            else LeastLoadedPlacement()
        self.placement.reset()
        self._session_count = [0] * len(self.runtimes)
        self._session_device = {}   # app_id -> fleet index

    # -- application sessions ---------------------------------------------

    def session(self, app_id, device=None):
        """A ProxyCL context for ``app_id`` on a placement-chosen device.

        A known ``app_id`` returns to its existing device (its buffers
        live there); ``device`` pins a new session to a device id.
        """
        if app_id in self._session_device:
            index = self._session_device[app_id]
            if device is not None and self.ids[index] != device:
                raise SchedulingError(
                    "application {} already lives on {}".format(
                        app_id, self.ids[index]))
        elif device is not None:
            index = self._index_of(device)
        else:
            loads = [float(count + len(runtime.pending))
                     for count, runtime in zip(self._session_count,
                                               self.runtimes)]
            index = self.placement.choose(_SessionRequest(app_id), loads,
                                          [0.0] * len(self.runtimes))
        if app_id not in self._session_device:
            self._session_device[app_id] = index
            self._session_count[index] += 1
        return self.runtimes[index].session(app_id)

    def device_of(self, app_id):
        """The fleet device id serving ``app_id`` (after placement)."""
        return self.ids[self._session_device[app_id]]

    def runtime_for(self, device_id):
        """The per-device :class:`AccelOSRuntime` behind one fleet id."""
        return self.runtimes[self._index_of(device_id)]

    def _index_of(self, device_id):
        try:
            return self._index_by_id[device_id]
        except KeyError:
            raise SchedulingError(
                "no device {!r} in fleet {}".format(device_id, self.ids))

    # -- batch execution ---------------------------------------------------

    def drain(self, share_ratio=None):
        """Drain every device's arrival batch.

        Returns ``{device_id: [LaunchPlan]}`` — each device schedules its
        own batch with its own §3 allocator, exactly as a standalone
        runtime would.
        """
        return {device_id: runtime.drain(share_ratio=share_ratio)
                for device_id, runtime in zip(self.ids, self.runtimes)}

    @property
    def launch_history(self):
        """All executed plans, flattened in fleet order."""
        history = []
        for runtime in self.runtimes:
            history.extend(runtime.launch_history)
        return history

    def __repr__(self):
        return "<FleetRuntime {} devices, {} sessions>".format(
            len(self.runtimes), len(self._session_device))
