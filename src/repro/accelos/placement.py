"""Cross-device placement policies for a heterogeneous device fleet.

One accelOS instance arbitrates one accelerator (§3–§5); a deployment
serving heavy traffic runs a *fleet* of them.  Placement is the layer
above the per-device sharing algorithm: it decides **which device** serves
a request, after which that device's own §3 allocator decides **how much**
of the device the request gets.  The split keeps the paper's per-device
fairness guarantees intact — placement never bypasses an allocator, it
only routes work to one.

Two protocols live here, one per evaluation plane:

* :class:`PlacementPolicy` — the **offline** protocol:
  :func:`place_arrivals` walks the whole stream against a single-server
  backlog *estimate* before any device simulates.  Fast, simple, and
  blind to what actually happens on the devices.
* :class:`OnlinePlacementPolicy` — the **closed-loop** protocol driven
  per-arrival by :class:`repro.sim.fleet.FleetSimulator`: ``observe``
  arrivals, ``choose`` against live fleet state
  (:class:`~repro.sim.fleet.FleetStatus`), and optionally ``rebalance``
  still-queued requests between devices at completion/idle events.
  :class:`OfflinePolicyAdapter` runs any offline policy inside the loop
  — in *estimate* mode it reproduces :func:`place_arrivals`' decisions
  bit-identically; in *live* mode the same ``choose`` logic sees real
  simulator backlog instead.

Offline policies, all deterministic (no RNG anywhere):

* :class:`RoundRobinPlacement` — cycle through the devices in order;
  ignores load and heterogeneity.  The baseline every fleet scheduler is
  measured against.
* :class:`LeastLoadedPlacement` — send the request where its estimated
  completion is earliest: outstanding weighted work (the device's backlog
  of estimated service seconds, a speed-normalised load measure) plus the
  request's own estimated service time on that device.  On an idle fleet
  this degenerates to fastest-device-first.
* :class:`AffinityPlacement` — least-loaded, but aware that a tenant's
  buffers live on the device that last served it: placing a tenant
  elsewhere charges a migration penalty (the buffer transfer), modelled as
  a delay between the request's arrival and its availability on the new
  device.  Trades load balance against data locality.

Online policies (closed-loop only): :class:`BurstAwareOnlinePlacement`
(queue-aware least-work with short-horizon burst detection) and
:class:`WorkStealingRebalance` (wraps any online policy with an idle
work-stealing re-balancer).

Requests pinned to a device (``arrival.device`` set by a device-tagged
trace) always go to that device; policies are only consulted for unpinned
requests, and the round-robin cursor does not advance on pinned ones.
Pinned placements still run :meth:`PlacementPolicy.migration_penalty`:
a pinned request whose tenant's buffers live elsewhere pays the transfer
(the pin forces the buffers to move) and re-homes the tenant — so a
pinned request can change which device a *later* unpinned request of the
same tenant is charged for leaving.  This is intended (locked by
regression tests): the home map tracks where the buffers physically are,
and a hard pin moves them like any other placement.

The policies operate on plain per-device load estimates, so the same
implementations drive both planes: the evaluation plane's
:class:`repro.sim.fleet.DeviceFleet` (seconds of estimated backlog) and
the functional plane's :class:`repro.accelos.fleet.FleetRuntime` (pending
request counts).  One asymmetry to know about: ``FleetRuntime`` consults
the policy only for an application's *first* session — locality is then
structural (buffers cannot move), so in the functional plane
:class:`AffinityPlacement` has no home to bias by and behaves exactly
like :class:`LeastLoadedPlacement`.  Migration trade-offs only exist in
the evaluation plane, where per-request placement is re-decided.
"""

from __future__ import annotations

from repro.errors import SchedulingError

# Default buffer-migration penalty charged by the affinity policy, in
# seconds: moving a tenant's working set (tens of MB) across a ~12 GB/s
# host link before the kernel can launch on the new device.
DEFAULT_MIGRATION_PENALTY = 2e-3


class PlacementDecision:
    """Where one request goes: fleet device index plus migration penalty."""

    __slots__ = ("arrival", "index", "penalty", "pinned")

    def __init__(self, arrival, index, penalty=0.0, pinned=False):
        self.arrival = arrival
        self.index = index
        self.penalty = float(penalty)
        self.pinned = pinned

    def __repr__(self):
        return "<PlacementDecision {} -> device {}{}>".format(
            self.arrival.name, self.index,
            " (+{:.1f}ms migration)".format(self.penalty * 1e3)
            if self.penalty else "")


class PlacementPolicy:
    """Chooses a device index for each request.

    Subclasses implement :meth:`choose`; they may keep state (round-robin
    cursor, tenant homes) which :meth:`reset` clears so one policy object
    can place several independent streams reproducibly.
    """

    name = "abstract"
    # cost-blind policies (round-robin) set this False so streams are
    # placed without running the service-time estimator per device
    uses_costs = True

    def reset(self):
        """Forget all stream-local state (called before each stream)."""

    def choose(self, arrival, loads, costs):
        """Pick a device index for ``arrival``.

        ``loads[i]`` is device *i*'s outstanding estimated work (seconds of
        backlog in the simulation plane; pending request count in the
        runtime plane).  ``costs[i]`` is the request's own estimated
        service time on device *i* (zeros when no estimator is available).
        """
        raise NotImplementedError

    def migration_penalty(self, arrival, index):
        """Seconds of data-movement delay for serving ``arrival`` on
        ``index``; stateful policies update their locality maps here."""
        return 0.0


class RoundRobinPlacement(PlacementPolicy):
    """Cycle through devices in fleet order, blind to load and speed."""

    name = "round-robin"
    uses_costs = False

    def __init__(self):
        self._next = 0

    def reset(self):
        self._next = 0

    def choose(self, arrival, loads, costs):
        index = self._next % len(loads)
        self._next += 1
        return index


class LeastLoadedPlacement(PlacementPolicy):
    """Earliest-estimated-completion: min over devices of backlog + own
    service time.  Ties break toward the lower device index, keeping
    placement deterministic."""

    name = "least-loaded"

    def choose(self, arrival, loads, costs):
        finish = [load + cost for load, cost in zip(loads, costs)]
        return min(range(len(finish)), key=lambda i: (finish[i], i))


class AffinityPlacement(PlacementPolicy):
    """Least-loaded placement that charges for moving a tenant's buffers.

    A tenant's *home* is the device that last served it (set on first
    placement).  Serving a tenant away from home adds ``penalty`` seconds
    of buffer migration to the estimated completion — so the policy only
    migrates when the home device's backlog exceeds the transfer cost —
    and the migration re-homes the tenant.  Untenanted requests
    (``arrival.tenant is None``) key on the kernel name, a coarse proxy
    for "the same application keeps launching the same kernel".
    """

    name = "affinity"

    def __init__(self, penalty=DEFAULT_MIGRATION_PENALTY):
        if penalty < 0:
            raise SchedulingError("migration penalty must be non-negative")
        self.penalty = float(penalty)
        self._home = {}

    def reset(self):
        self._home = {}

    def _key(self, arrival):
        return arrival.tenant if arrival.tenant is not None else arrival.name

    def choose(self, arrival, loads, costs):
        home = self._home.get(self._key(arrival))
        finish = [
            load + cost + (0.0 if home in (None, i) else self.penalty)
            for i, (load, cost) in enumerate(zip(loads, costs))
        ]
        return min(range(len(finish)), key=lambda i: (finish[i], i))

    def migration_penalty(self, arrival, index):
        key = self._key(arrival)
        home = self._home.get(key)
        self._home[key] = index
        return 0.0 if home in (None, index) else self.penalty


# -- the closed-loop (online) protocol ----------------------------------------

class OnlinePlacementPolicy:
    """Chooses devices inside the closed-loop fleet co-simulation.

    Driven per-arrival by :class:`repro.sim.fleet.FleetSimulator`:

    * :meth:`observe_arrival` — every arrival (pinned ones included)
      passes through here first, so rate trackers see all traffic;
    * :meth:`choose` — pick a device for an unpinned arrival against the
      live :class:`~repro.sim.fleet.FleetStatus` (actual outstanding
      work, queue depths, active counts — not a pre-pass estimate);
    * :meth:`rebalance` — called after completions and idle transitions;
      may return :class:`~repro.sim.fleet.MigrationOrder`s migrating
      still-queued requests between devices (each charged its order's
      migration penalty).

    Like offline policies, online policies may keep state which
    :meth:`reset` clears, so one object can drive several independent
    streams reproducibly.  Determinism contract: no RNG; decisions are
    pure functions of the observed event history.
    """

    name = "abstract-online"
    uses_costs = True
    # policies that ignore the live snapshot (the estimate-mode adapter)
    # set this False so the loop can skip building it per arrival
    uses_status = True

    @property
    def wants_rebalance(self):
        """True when the policy overrides :meth:`rebalance` — the loop
        only snapshots fleet state at completion/idle events for
        policies that will actually read it."""
        return type(self).rebalance is not OnlinePlacementPolicy.rebalance

    def reset(self):
        """Forget all stream-local state (called before each stream)."""

    def observe_arrival(self, arrival):
        """Every arrival flows through here before placement."""

    def choose(self, arrival, status, costs):
        """Pick a device index for ``arrival``.

        ``status`` is the live :class:`~repro.sim.fleet.FleetStatus`;
        ``costs[i]`` the request's own estimated service time on device
        *i* (zeros when ``uses_costs`` is False).
        """
        raise NotImplementedError

    def migration_penalty(self, arrival, index):
        """Seconds of data-movement delay for serving ``arrival`` on
        ``index``; stateful policies update their locality maps here."""
        return 0.0

    def placed(self, arrival, index, penalty, cost):
        """Notification that ``arrival`` was routed (pinned ones too)."""

    def rebalance(self, status):
        """Migration orders at a completion/idle event (default: none)."""
        return ()


class OfflinePolicyAdapter(OnlinePlacementPolicy):
    """Runs a legacy offline :class:`PlacementPolicy` inside the loop.

    ``mode="estimate"`` replays :func:`place_arrivals`' single-server
    backlog estimate — same loads, same ``choose`` calls, same penalty
    bookkeeping — so the closed loop reproduces the offline plane's
    placement decisions **bit-identically** (regression-tested).
    ``mode="live"`` feeds the same legacy ``choose`` the fleet's real
    outstanding work instead: the cheapest way to make an existing
    policy load-aware in the closed loop.
    """

    def __init__(self, policy, mode="estimate"):
        if mode not in ("estimate", "live"):
            raise SchedulingError(
                "offline adapter mode must be 'estimate' or 'live', "
                "got {!r}".format(mode))
        self.policy = policy
        self.mode = mode
        self.name = policy.name
        self.uses_costs = policy.uses_costs
        # estimate mode never reads the live snapshot (loads come from
        # the replayed busy-until bookkeeping), so the loop may skip it
        self.uses_status = mode == "live"
        self._busy_until = {}

    def reset(self):
        self.policy.reset()
        self._busy_until = {}

    def choose(self, arrival, status, costs):
        if self.mode == "estimate":
            loads = [max(0.0, self._busy_until.get(j, 0.0) - arrival.time)
                     for j in range(len(costs))]
        else:
            loads = [d.backlog_seconds for d in status.devices]
        return self.policy.choose(arrival, loads, costs)

    def migration_penalty(self, arrival, index):
        return self.policy.migration_penalty(arrival, index)

    def placed(self, arrival, index, penalty, cost):
        if self.mode != "estimate":
            return
        start = max(self._busy_until.get(index, 0.0),
                    arrival.time + penalty)
        self._busy_until[index] = start + cost


class BurstAwareOnlinePlacement(OnlinePlacementPolicy):
    """Queue-aware least-work placement with short-horizon burst detection.

    Steady state: earliest-estimated-completion against **live** backlog
    (the device's actual outstanding estimated work, which under accelOS
    space sharing drains very differently from the offline single-server
    estimate) — min over devices of ``backlog + own service time``.

    Burst mode: the policy tracks the arrival rate over the last
    ``horizon`` arrivals; when it exceeds ``surge`` times the stream's
    long-run average, a burst is in progress.  Bursts are when placement
    decides fleet-wide fairness (ROADMAP, PR 4 observation): overflowing
    a surge onto a slow device gives those requests multiples of the
    fast-device service time — pure slowdown spread — while queueing on
    a fast device costs every burst request a little.  So during a burst
    the *extra* service time a slower device would add is weighted by
    ``slow_penalty``, biasing the overflow toward queueing on fast
    devices unless the slow device is genuinely idle enough to win by a
    margin.
    """

    name = "burst-aware"

    def __init__(self, horizon=8, surge=2.0, slow_penalty=4.0):
        if horizon < 2:
            raise SchedulingError("burst horizon needs >= 2 arrivals")
        if surge <= 1.0:
            raise SchedulingError("surge threshold must exceed 1.0")
        if slow_penalty < 0:
            raise SchedulingError("slow_penalty must be non-negative")
        self.horizon = int(horizon)
        self.surge = float(surge)
        self.slow_penalty = float(slow_penalty)
        self._recent = []
        self._first_time = None
        self._count = 0

    def reset(self):
        self._recent = []
        self._first_time = None
        self._count = 0

    def observe_arrival(self, arrival):
        if self._first_time is None:
            self._first_time = arrival.time
        self._count += 1
        self._recent.append(arrival.time)
        if len(self._recent) > self.horizon:
            self._recent.pop(0)

    def burst_factor(self, now):
        """Short-horizon arrival rate over the stream's long-run rate
        (1.0 until enough history has accumulated)."""
        if (self._count <= self.horizon
                or now <= self._first_time
                or len(self._recent) < 2):
            return 1.0
        span = now - self._recent[0]
        if span <= 0:
            return self.surge + 1.0   # several arrivals at one instant
        short_rate = (len(self._recent) - 1) / span
        long_rate = (self._count - 1) / (now - self._first_time)
        if long_rate <= 0:
            return 1.0
        return short_rate / long_rate

    def bursting(self, now):
        return self.burst_factor(now) > self.surge

    def choose(self, arrival, status, costs):
        loads = [d.backlog_seconds for d in status.devices]
        finish = [load + cost for load, cost in zip(loads, costs)]
        if self.bursting(arrival.time):
            best_cost = min(costs)
            finish = [f + (cost - best_cost) * self.slow_penalty
                      for f, cost in zip(finish, costs)]
        return min(range(len(finish)), key=lambda i: (finish[i], i))


class WorkStealingRebalance(OnlinePlacementPolicy):
    """Wraps an online policy with an idle work-stealing re-balancer.

    Placement decisions are delegated to ``inner`` (default: a
    :class:`BurstAwareOnlinePlacement`).  At every completion/idle event
    a device whose own queue is empty may steal the *youngest* queued
    (not-yet-started) request of a more backlogged device — youngest
    first because it has waited least, so redirecting it forfeits the
    least queueing progress.  A steal happens only when it pays even
    after the buffer transfer: projected completion on the thief
    (``backlog + penalty + service there``) must beat the source
    device's current backlog by ``margin`` times the transfer penalty.
    Stolen requests are charged ``penalty`` exactly like an affinity
    migration.
    """

    def __init__(self, inner=None, penalty=DEFAULT_MIGRATION_PENALTY,
                 margin=1.0, name="work-stealing"):
        if penalty < 0:
            raise SchedulingError("migration penalty must be non-negative")
        if margin < 0:
            raise SchedulingError("steal margin must be non-negative")
        self.inner = inner if inner is not None \
            else BurstAwareOnlinePlacement()
        self.penalty = float(penalty)
        self.margin = float(margin)
        self.name = name

    @property
    def uses_costs(self):
        return self.inner.uses_costs

    @property
    def uses_status(self):
        return self.inner.uses_status

    def reset(self):
        self.inner.reset()

    def observe_arrival(self, arrival):
        self.inner.observe_arrival(arrival)

    def choose(self, arrival, status, costs):
        return self.inner.choose(arrival, status, costs)

    def migration_penalty(self, arrival, index):
        return self.inner.migration_penalty(arrival, index)

    def placed(self, arrival, index, penalty, cost):
        self.inner.placed(arrival, index, penalty, cost)

    def rebalance(self, status):
        from repro.sim.fleet import MigrationOrder
        thieves = sorted(status.devices,
                         key=lambda d: (d.backlog_seconds, d.index))
        for thief in thieves:
            if thief.queue_depth:
                continue   # a device with its own queue never steals
            for source in sorted(status.devices,
                                 key=lambda d: (-d.backlog_seconds,
                                                d.index)):
                if source.index == thief.index or not source.queued:
                    continue
                prey = source.queued[-1]
                cost = status.estimate(prey.name, thief.index)
                projected = (thief.backlog_seconds + self.penalty + cost
                             + self.margin * self.penalty)
                if projected < source.backlog_seconds:
                    # one order per hook call: the next completion/idle
                    # event re-evaluates against fresh state
                    return (MigrationOrder(prey.key, source.index,
                                           thief.index, self.penalty),)
        return ()


def default_policies():
    """Compatibility alias for :func:`repro.api.placements.default_policies`.

    The registry above this module is the single source of policy-name
    truth; prefer importing from :mod:`repro.api.placements`.  Imported
    lazily — this layer must not depend on the api layer at import time.
    """
    from repro.api.placements import default_policies as registry_policies
    return registry_policies()


def place_arrivals(policy, arrivals, devices, estimator, ids=None):
    """Place one arrival stream across a fleet (the simulation plane).

    Walks the stream in arrival order maintaining a per-device backlog
    estimate — each device modelled as a single server working through the
    estimated isolated service times of the requests routed to it — and
    asks ``policy`` to choose a device for every unpinned request.
    ``estimator(name, device)`` supplies the service estimate (typically
    :func:`repro.harness.experiment.isolated_time`).  ``ids`` maps device
    ids of pinned requests to fleet indices.

    Conservation invariant: returns exactly one
    :class:`PlacementDecision` per arrival, in the input stream's order.
    The backlog is an *estimate* used only for routing; real timing comes
    from each device's simulator afterwards.
    """
    if isinstance(policy, OnlinePlacementPolicy):
        raise SchedulingError(
            "policy {!r} is closed-loop-only (online); the offline "
            "pre-pass cannot drive it — run it through the fleet "
            "harness or repro.sim.fleet.FleetSimulator".format(policy.name))
    if not arrivals:
        raise SchedulingError("cannot place an empty arrival stream")
    if not devices:
        raise SchedulingError("cannot place onto an empty fleet")
    id_to_index = dict(ids) if ids is not None else {}
    policy.reset()
    busy_until = [0.0] * len(devices)
    order = sorted(range(len(arrivals)),
                   key=lambda i: (arrivals[i].time, i))
    placed = [None] * len(arrivals)
    # The estimator is a pure function of (kernel, device) but typically
    # simulates an isolated run on a miss: memoise it across the stream
    # so a long stream over a large fleet pays one estimate per distinct
    # (kernel, device), not one per request per device.
    estimates = {}

    def estimate(name, device_index):
        key = (name, device_index)
        value = estimates.get(key)
        if value is None:
            value = estimator(name, devices[device_index])
            estimates[key] = value
        return value

    for i in order:
        arrival = arrivals[i]
        costs = None
        if arrival.device is not None:
            if arrival.device not in id_to_index:
                raise SchedulingError(
                    "arrival pinned to unknown device {!r}".format(
                        arrival.device))
            index = id_to_index[arrival.device]
            pinned = True
        else:
            loads = [max(0.0, busy - arrival.time) for busy in busy_until]
            # pinned requests and cost-blind policies never read the cost
            # vector, so only estimate per device when the policy will
            costs = ([estimate(arrival.name, j)
                      for j in range(len(devices))]
                     if policy.uses_costs else None)
            index = policy.choose(arrival, loads,
                                  costs if costs is not None
                                  else [0.0] * len(devices))
            if not 0 <= index < len(devices):
                raise SchedulingError(
                    "policy {} chose device {} of {}".format(
                        policy.name, index, len(devices)))
            pinned = False
        penalty = policy.migration_penalty(arrival, index)
        start = max(busy_until[index], arrival.time + penalty)
        # reuse the chosen device's cost from the vector we just built
        # instead of estimating the same (kernel, device) pair again
        service = (costs[index] if costs is not None
                   else estimate(arrival.name, index))
        busy_until[index] = start + service
        placed[i] = PlacementDecision(arrival, index, penalty, pinned)
    return placed
