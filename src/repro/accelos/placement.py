"""Cross-device placement policies for a heterogeneous device fleet.

One accelOS instance arbitrates one accelerator (§3–§5); a deployment
serving heavy traffic runs a *fleet* of them.  Placement is the layer
above the per-device sharing algorithm: it decides **which device** serves
a request, after which that device's own §3 allocator decides **how much**
of the device the request gets.  The split keeps the paper's per-device
fairness guarantees intact — placement never bypasses an allocator, it
only routes work to one.

Three policies, all deterministic (no RNG anywhere):

* :class:`RoundRobinPlacement` — cycle through the devices in order;
  ignores load and heterogeneity.  The baseline every fleet scheduler is
  measured against.
* :class:`LeastLoadedPlacement` — send the request where its estimated
  completion is earliest: outstanding weighted work (the device's backlog
  of estimated service seconds, a speed-normalised load measure) plus the
  request's own estimated service time on that device.  On an idle fleet
  this degenerates to fastest-device-first.
* :class:`AffinityPlacement` — least-loaded, but aware that a tenant's
  buffers live on the device that last served it: placing a tenant
  elsewhere charges a migration penalty (the buffer transfer), modelled as
  a delay between the request's arrival and its availability on the new
  device.  Trades load balance against data locality.

Requests pinned to a device (``arrival.device`` set by a device-tagged
trace) always go to that device; policies are only consulted for unpinned
requests, and the round-robin cursor does not advance on pinned ones.

The policies operate on plain per-device load estimates, so the same
implementations drive both planes: the evaluation plane's
:class:`repro.sim.fleet.DeviceFleet` (seconds of estimated backlog) and
the functional plane's :class:`repro.accelos.fleet.FleetRuntime` (pending
request counts).  One asymmetry to know about: ``FleetRuntime`` consults
the policy only for an application's *first* session — locality is then
structural (buffers cannot move), so in the functional plane
:class:`AffinityPlacement` has no home to bias by and behaves exactly
like :class:`LeastLoadedPlacement`.  Migration trade-offs only exist in
the evaluation plane, where per-request placement is re-decided.
"""

from __future__ import annotations

from repro.errors import SchedulingError

# Default buffer-migration penalty charged by the affinity policy, in
# seconds: moving a tenant's working set (tens of MB) across a ~12 GB/s
# host link before the kernel can launch on the new device.
DEFAULT_MIGRATION_PENALTY = 2e-3


class PlacementDecision:
    """Where one request goes: fleet device index plus migration penalty."""

    __slots__ = ("arrival", "index", "penalty", "pinned")

    def __init__(self, arrival, index, penalty=0.0, pinned=False):
        self.arrival = arrival
        self.index = index
        self.penalty = float(penalty)
        self.pinned = pinned

    def __repr__(self):
        return "<PlacementDecision {} -> device {}{}>".format(
            self.arrival.name, self.index,
            " (+{:.1f}ms migration)".format(self.penalty * 1e3)
            if self.penalty else "")


class PlacementPolicy:
    """Chooses a device index for each request.

    Subclasses implement :meth:`choose`; they may keep state (round-robin
    cursor, tenant homes) which :meth:`reset` clears so one policy object
    can place several independent streams reproducibly.
    """

    name = "abstract"
    # cost-blind policies (round-robin) set this False so streams are
    # placed without running the service-time estimator per device
    uses_costs = True

    def reset(self):
        """Forget all stream-local state (called before each stream)."""

    def choose(self, arrival, loads, costs):
        """Pick a device index for ``arrival``.

        ``loads[i]`` is device *i*'s outstanding estimated work (seconds of
        backlog in the simulation plane; pending request count in the
        runtime plane).  ``costs[i]`` is the request's own estimated
        service time on device *i* (zeros when no estimator is available).
        """
        raise NotImplementedError

    def migration_penalty(self, arrival, index):
        """Seconds of data-movement delay for serving ``arrival`` on
        ``index``; stateful policies update their locality maps here."""
        return 0.0


class RoundRobinPlacement(PlacementPolicy):
    """Cycle through devices in fleet order, blind to load and speed."""

    name = "round-robin"
    uses_costs = False

    def __init__(self):
        self._next = 0

    def reset(self):
        self._next = 0

    def choose(self, arrival, loads, costs):
        index = self._next % len(loads)
        self._next += 1
        return index


class LeastLoadedPlacement(PlacementPolicy):
    """Earliest-estimated-completion: min over devices of backlog + own
    service time.  Ties break toward the lower device index, keeping
    placement deterministic."""

    name = "least-loaded"

    def choose(self, arrival, loads, costs):
        finish = [load + cost for load, cost in zip(loads, costs)]
        return min(range(len(finish)), key=lambda i: (finish[i], i))


class AffinityPlacement(PlacementPolicy):
    """Least-loaded placement that charges for moving a tenant's buffers.

    A tenant's *home* is the device that last served it (set on first
    placement).  Serving a tenant away from home adds ``penalty`` seconds
    of buffer migration to the estimated completion — so the policy only
    migrates when the home device's backlog exceeds the transfer cost —
    and the migration re-homes the tenant.  Untenanted requests
    (``arrival.tenant is None``) key on the kernel name, a coarse proxy
    for "the same application keeps launching the same kernel".
    """

    name = "affinity"

    def __init__(self, penalty=DEFAULT_MIGRATION_PENALTY):
        if penalty < 0:
            raise SchedulingError("migration penalty must be non-negative")
        self.penalty = float(penalty)
        self._home = {}

    def reset(self):
        self._home = {}

    def _key(self, arrival):
        return arrival.tenant if arrival.tenant is not None else arrival.name

    def choose(self, arrival, loads, costs):
        home = self._home.get(self._key(arrival))
        finish = [
            load + cost + (0.0 if home in (None, i) else self.penalty)
            for i, (load, cost) in enumerate(zip(loads, costs))
        ]
        return min(range(len(finish)), key=lambda i: (finish[i], i))

    def migration_penalty(self, arrival, index):
        key = self._key(arrival)
        home = self._home.get(key)
        self._home[key] = index
        return 0.0 if home in (None, index) else self.penalty


def default_policies():
    """Compatibility alias for :func:`repro.api.placements.default_policies`.

    The registry above this module is the single source of policy-name
    truth; prefer importing from :mod:`repro.api.placements`.  Imported
    lazily — this layer must not depend on the api layer at import time.
    """
    from repro.api.placements import default_policies as registry_policies
    return registry_policies()


def place_arrivals(policy, arrivals, devices, estimator, ids=None):
    """Place one arrival stream across a fleet (the simulation plane).

    Walks the stream in arrival order maintaining a per-device backlog
    estimate — each device modelled as a single server working through the
    estimated isolated service times of the requests routed to it — and
    asks ``policy`` to choose a device for every unpinned request.
    ``estimator(name, device)`` supplies the service estimate (typically
    :func:`repro.harness.experiment.isolated_time`).  ``ids`` maps device
    ids of pinned requests to fleet indices.

    Conservation invariant: returns exactly one
    :class:`PlacementDecision` per arrival, in the input stream's order.
    The backlog is an *estimate* used only for routing; real timing comes
    from each device's simulator afterwards.
    """
    if not arrivals:
        raise SchedulingError("cannot place an empty arrival stream")
    if not devices:
        raise SchedulingError("cannot place onto an empty fleet")
    id_to_index = dict(ids) if ids is not None else {}
    policy.reset()
    busy_until = [0.0] * len(devices)
    order = sorted(range(len(arrivals)),
                   key=lambda i: (arrivals[i].time, i))
    placed = [None] * len(arrivals)
    for i in order:
        arrival = arrivals[i]
        if arrival.device is not None:
            if arrival.device not in id_to_index:
                raise SchedulingError(
                    "arrival pinned to unknown device {!r}".format(
                        arrival.device))
            index = id_to_index[arrival.device]
            pinned = True
        else:
            loads = [max(0.0, busy - arrival.time) for busy in busy_until]
            # pinned requests and cost-blind policies never read the cost
            # vector, so only estimate per device when the policy will
            costs = ([estimator(arrival.name, device) for device in devices]
                     if policy.uses_costs else [0.0] * len(devices))
            index = policy.choose(arrival, loads, costs)
            if not 0 <= index < len(devices):
                raise SchedulingError(
                    "policy {} chose device {} of {}".format(
                        policy.name, index, len(devices)))
            pinned = False
        penalty = policy.migration_penalty(arrival, index)
        start = max(busy_until[index], arrival.time + penalty)
        busy_until[index] = start + estimator(arrival.name, devices[index])
        placed[i] = PlacementDecision(arrival, index, penalty, pinned)
    return placed
