"""ProxyCL: the application interface (paper §4, level 2).

ProxyCL "replaces standard OpenCL" for the application: it exposes the same
context/program/queue surface as :mod:`repro.cl` but forwards every request
through the accelOS Application Monitor.  The application never knows it is
not talking to the vendor runtime — the transparency property the paper
leans on.  (The paper implements the hand-off with interprocess shared
memory; in-process forwarding preserves the same interface contract.)
"""

from __future__ import annotations

from repro.accelos.monitor import Request
from repro.errors import CLError


class ProxyCLContext:
    """Drop-in replacement for :class:`repro.cl.Context` for one app."""

    def __init__(self, runtime, app_id):
        self.runtime = runtime
        self.app_id = app_id
        self.device = runtime.context.device

    def create_buffer(self, elem_type, count, tag="", provenance=None):
        request = Request(Request.OTHER,
                          ("create_buffer", elem_type, count, tag),
                          self.app_id)
        self.runtime.monitor.handle(request)
        buffer = self.runtime.memory.allocate(self.app_id, elem_type, count,
                                              tag, provenance=provenance)
        if buffer is None:
            raise CLError(
                "application {} paused: device memory exhausted".format(
                    self.app_id))
        return buffer

    def create_program(self, source):
        request = Request(Request.PROGRAM, source, self.app_id)
        return self.runtime.monitor.handle(request)

    def create_queue(self):
        return ProxyCLQueue(self.runtime, self.app_id)


class ProxyCLQueue:
    """Queue facade: kernel launches go through the Kernel Scheduler."""

    def __init__(self, runtime, app_id):
        self.runtime = runtime
        self.app_id = app_id
        self._real_queue = runtime.context.create_queue()

    def enqueue_write_buffer(self, buffer, host_array):
        self.runtime.monitor.handle(
            Request(Request.OTHER, ("write", buffer), self.app_id))
        return self._real_queue.enqueue_write_buffer(buffer, host_array)

    def enqueue_read_buffer(self, buffer, dtype=None):
        self.runtime.monitor.handle(
            Request(Request.OTHER, ("read", buffer), self.app_id))
        return self._real_queue.enqueue_read_buffer(buffer, dtype)

    def enqueue_nd_range(self, kernel, nd_range):
        """Submit a kernel execution request to accelOS.

        The request joins the runtime's current arrival batch; execution
        happens when the batch drains (mirroring requests from multiple
        applications arriving concurrently at the background process).
        """
        request = Request(Request.KERNEL_EXEC,
                          (kernel, nd_range, self._real_queue), self.app_id)
        return self.runtime.monitor.handle(request)

    def finish(self):
        self.runtime.drain()
        return self._real_queue.finish()
