"""Accelerator resource sharing control (paper §3).

Given ``K`` concurrently active kernel executions, choose the number of
physical work groups per kernel so that all fit on the device at once with
approximately equal shares of three resources:

* hardware threads:   ``x_i = T / (K * w_i)``
* local memory:       ``y_i = L / (K * m_i)``
* registers:          ``z_i = R / (K * r_i)``

The allocation is ``min(x_i, y_i, z_i)``, clamped to at least one work group
and to the kernel's original group count.  Because these are Diophantine
(integer) constraints the result may be conservative, so a greedy heuristic
then hands out additional work groups one at a time — always to the kernel
with the smallest current thread share — until no kernel can grow without
violating a constraint (paper: "we apply a simple greedy heuristic to
incrementally increase the number of work-groups iteratively across the
kernel executions until resource saturation").
"""

from __future__ import annotations

from repro.errors import SchedulingError


class KernelRequirements:
    """Per-work-group resource demands of one kernel execution request."""

    __slots__ = ("name", "wg_threads", "local_mem_bytes", "registers_per_thread",
                 "total_groups")

    def __init__(self, name, wg_threads, local_mem_bytes, registers_per_thread,
                 total_groups):
        if wg_threads <= 0:
            raise SchedulingError("work-group size must be positive")
        if total_groups <= 0:
            raise SchedulingError("kernel must have at least one work group")
        self.name = name
        self.wg_threads = int(wg_threads)
        self.local_mem_bytes = int(local_mem_bytes)
        self.registers_per_thread = int(registers_per_thread)
        self.total_groups = int(total_groups)

    @property
    def registers_per_group(self):
        return self.registers_per_thread * self.wg_threads

    def __repr__(self):
        return ("KernelRequirements({}, w={}, m={}B, r={}/thr, n={})"
                .format(self.name, self.wg_threads, self.local_mem_bytes,
                        self.registers_per_thread, self.total_groups))


class Allocation:
    """The sharing decision for one kernel execution."""

    __slots__ = ("requirements", "groups")

    def __init__(self, requirements, groups):
        self.requirements = requirements
        self.groups = int(groups)

    @property
    def threads(self):
        return self.groups * self.requirements.wg_threads

    @property
    def local_mem(self):
        return self.groups * self.requirements.local_mem_bytes

    @property
    def registers(self):
        return self.groups * self.requirements.registers_per_group

    def __repr__(self):
        return "Allocation({} -> {} groups)".format(
            self.requirements.name, self.groups)


def _fits(allocations, device, extra=None):
    """Would the allocation set (plus ``extra`` as (req, +groups)) fit?"""
    threads = sum(a.threads for a in allocations)
    lmem = sum(a.local_mem for a in allocations)
    regs = sum(a.registers for a in allocations)
    if extra is not None:
        req, delta = extra
        threads += delta * req.wg_threads
        lmem += delta * req.local_mem_bytes
        regs += delta * req.registers_per_group
    return (threads <= device.max_threads
            and lmem <= device.total_local_mem
            and regs <= device.total_registers)


def compute_allocations(requirements, device, saturate=True, share_ratio=None):
    """Run the §3 algorithm; returns a list of :class:`Allocation`.

    ``share_ratio`` optionally weights kernels (§2.2: "This can easily be
    achieved by changing the sharing ratio"); ``None`` means equal sharing,
    otherwise it is a list of positive weights, one per kernel.
    """
    if not requirements:
        return []
    k = len(requirements)
    if share_ratio is None:
        weights = [1.0] * k
    else:
        if len(share_ratio) != k or any(w <= 0 for w in share_ratio):
            raise SchedulingError("share_ratio must list a positive weight "
                                  "per kernel")
        weights = [w * k / sum(share_ratio) for w in share_ratio]

    allocations = []
    for req, weight in zip(requirements, weights):
        share = weight / k
        x = int(device.max_threads * share // req.wg_threads)
        if req.local_mem_bytes > 0:
            y = int(device.total_local_mem * share // req.local_mem_bytes)
        else:
            y = req.total_groups
        if req.registers_per_group > 0:
            z = int(device.total_registers * share // req.registers_per_group)
        else:
            z = req.total_groups
        groups = min(x, y, z, req.total_groups)
        allocations.append(Allocation(req, max(1, groups)))

    # The clamp to >= 1 group can oversubscribe pathological mixes; shrink
    # the largest allocations until everything fits (never below 1).
    guard = 0
    while not _fits(allocations, device):
        candidates = [a for a in allocations if a.groups > 1]
        if not candidates:
            # K kernels of 1 group each genuinely exceed the device: the
            # scheduler should not have activated this many concurrently.
            raise SchedulingError(
                "cannot fit {} concurrent kernels on {}".format(
                    k, device.name))
        largest = max(candidates, key=lambda a: a.threads)
        largest.groups -= 1
        guard += 1
        if guard > 10_000_000:
            raise SchedulingError("allocation shrink loop did not converge")

    if saturate:
        _greedy_saturation(allocations, device, weights)
    return allocations


def _greedy_saturation(allocations, device, weights=None):
    """Hand out remaining resources one work group at a time.

    Each round picks the kernel with the smallest current *weight-normalised*
    thread share (``threads / weight``) that can still grow (has ungranted
    original groups and fits), keeping the shares as close to the requested
    ratio as the integer granularity allows.  Growing by raw thread footprint
    would erode any §2.2 ``share_ratio`` weighting the base allocation just
    established.
    """
    if weights is None:
        weights = [1.0] * len(allocations)
    weight_of = {id(a): w for a, w in zip(allocations, weights)}
    while True:
        growable = [
            a for a in allocations
            if a.groups < a.requirements.total_groups
            and _fits(allocations, device, extra=(a.requirements, 1))
        ]
        if not growable:
            return
        # id() below only keys the identity weight map built above; the
        # *order* comes from the weight-normalised ratio, ties from the
        # deterministic requirements.name
        smallest = min(growable,  # lint: ignore[D104] -- identity-map key
                       key=lambda a: (a.threads / weight_of[id(a)],
                                      a.requirements.name))
        smallest.groups += 1


def thread_imbalance(allocations):
    """max |x_i*w_i - x_j*w_j| across kernel pairs — the §3 objective.

    Exposed for tests and the saturation ablation; lower is better.
    """
    shares = [a.threads for a in allocations]
    if len(shares) < 2:
        return 0
    return max(shares) - min(shares)
