"""Accelerator resource sharing control (paper §3).

Given ``K`` concurrently active kernel executions, choose the number of
physical work groups per kernel so that all fit on the device at once with
approximately equal shares of three resources:

* hardware threads:   ``x_i = T / (K * w_i)``
* local memory:       ``y_i = L / (K * m_i)``
* registers:          ``z_i = R / (K * r_i)``

The allocation is ``min(x_i, y_i, z_i)``, clamped to at least one work group
and to the kernel's original group count.  Because these are Diophantine
(integer) constraints the result may be conservative, so a greedy heuristic
then hands out additional work groups one at a time — always to the kernel
with the smallest current thread share — until no kernel can grow without
violating a constraint (paper: "we apply a simple greedy heuristic to
incrementally increase the number of work-groups iteratively across the
kernel executions until resource saturation").
"""

from __future__ import annotations

from repro.errors import SchedulingError


class KernelRequirements:
    """Per-work-group resource demands of one kernel execution request."""

    __slots__ = ("name", "wg_threads", "local_mem_bytes", "registers_per_thread",
                 "total_groups")

    def __init__(self, name, wg_threads, local_mem_bytes, registers_per_thread,
                 total_groups):
        if wg_threads <= 0:
            raise SchedulingError("work-group size must be positive")
        if total_groups <= 0:
            raise SchedulingError("kernel must have at least one work group")
        self.name = name
        self.wg_threads = int(wg_threads)
        self.local_mem_bytes = int(local_mem_bytes)
        self.registers_per_thread = int(registers_per_thread)
        self.total_groups = int(total_groups)

    @property
    def registers_per_group(self):
        return self.registers_per_thread * self.wg_threads

    def __repr__(self):
        return ("KernelRequirements({}, w={}, m={}B, r={}/thr, n={})"
                .format(self.name, self.wg_threads, self.local_mem_bytes,
                        self.registers_per_thread, self.total_groups))


class Allocation:
    """The sharing decision for one kernel execution."""

    __slots__ = ("requirements", "groups")

    def __init__(self, requirements, groups):
        self.requirements = requirements
        self.groups = int(groups)

    @property
    def threads(self):
        return self.groups * self.requirements.wg_threads

    @property
    def local_mem(self):
        return self.groups * self.requirements.local_mem_bytes

    @property
    def registers(self):
        return self.groups * self.requirements.registers_per_group

    def __repr__(self):
        return "Allocation({} -> {} groups)".format(
            self.requirements.name, self.groups)


def _fits(allocations, device, extra=None):
    """Would the allocation set (plus ``extra`` as (req, +groups)) fit?"""
    threads = sum(a.threads for a in allocations)
    lmem = sum(a.local_mem for a in allocations)
    regs = sum(a.registers for a in allocations)
    if extra is not None:
        req, delta = extra
        threads += delta * req.wg_threads
        lmem += delta * req.local_mem_bytes
        regs += delta * req.registers_per_group
    return (threads <= device.max_threads
            and lmem <= device.total_local_mem
            and regs <= device.total_registers)


def compute_allocations(requirements, device, saturate=True, share_ratio=None):
    """Run the §3 algorithm; returns a list of :class:`Allocation`.

    ``share_ratio`` optionally weights kernels (§2.2: "This can easily be
    achieved by changing the sharing ratio"); ``None`` means equal sharing,
    otherwise it is a list of positive weights, one per kernel.
    """
    if not requirements:
        return []
    k = len(requirements)
    if share_ratio is None:
        weights = [1.0] * k
    else:
        if len(share_ratio) != k or any(w <= 0 for w in share_ratio):
            raise SchedulingError("share_ratio must list a positive weight "
                                  "per kernel")
        weights = [w * k / sum(share_ratio) for w in share_ratio]

    allocations = []
    for req, weight in zip(requirements, weights):
        share = weight / k
        x = int(device.max_threads * share // req.wg_threads)
        if req.local_mem_bytes > 0:
            y = int(device.total_local_mem * share // req.local_mem_bytes)
        else:
            y = req.total_groups
        if req.registers_per_group > 0:
            z = int(device.total_registers * share // req.registers_per_group)
        else:
            z = req.total_groups
        groups = min(x, y, z, req.total_groups)
        allocations.append(Allocation(req, max(1, groups)))

    # The clamp to >= 1 group can oversubscribe pathological mixes; shrink
    # the largest allocations until everything fits (never below 1).
    guard = 0
    while not _fits(allocations, device):
        candidates = [a for a in allocations if a.groups > 1]
        if not candidates:
            # K kernels of 1 group each genuinely exceed the device: the
            # scheduler should not have activated this many concurrently.
            raise SchedulingError(
                "cannot fit {} concurrent kernels on {}".format(
                    k, device.name))
        largest = max(candidates, key=lambda a: a.threads)
        largest.groups -= 1
        guard += 1
        if guard > 10_000_000:
            raise SchedulingError("allocation shrink loop did not converge")

    if saturate:
        _greedy_saturation(allocations, device, weights)
    return allocations


def _greedy_saturation(allocations, device, weights=None):
    """Hand out remaining resources one work group at a time.

    Each round picks the kernel with the smallest current *weight-normalised*
    thread share (``threads / weight``) that can still grow (has ungranted
    original groups and fits), keeping the shares as close to the requested
    ratio as the integer granularity allows.  Growing by raw thread footprint
    would erode any §2.2 ``share_ratio`` weighting the base allocation just
    established.
    """
    if weights is None:
        weights = [1.0] * len(allocations)
    weight_of = {id(a): w for a, w in zip(allocations, weights)}
    while True:
        growable = [
            a for a in allocations
            if a.groups < a.requirements.total_groups
            and _fits(allocations, device, extra=(a.requirements, 1))
        ]
        if not growable:
            return
        # id() below only keys the identity weight map built above; the
        # *order* comes from the weight-normalised ratio, ties from the
        # deterministic requirements.name
        smallest = min(growable,  # lint: ignore[D104] -- identity-map key
                       key=lambda a: (a.threads / weight_of[id(a)],
                                      a.requirements.name))
        smallest.groups += 1


def _compute_allocations_incremental(requirements, device, saturate):
    """Equal-weight :func:`compute_allocations` with incremental totals.

    The §3 algorithm re-sums every allocation's footprint for each shrink
    candidate and each greedy-growth candidate (``_fits`` is O(K), making
    saturation O(K^2) per granted group).  This implementation keeps
    running thread/local-mem/register totals and checks candidates in
    O(1), while reproducing the reference selection rules *exactly*: the
    same base-share arithmetic, the same first-max shrink victim (strict
    ``>`` keeps the earliest), and the same ``(threads, name)`` greedy
    minimum — all-integer comparisons that equal the reference's
    ``threads / 1.0`` float keys exactly.  It exists for the hot
    open-system re-plan path (:class:`AllocationMemo` misses); the
    reference path and every ``share_ratio`` caller still run
    :func:`compute_allocations`.  Equality is pinned per-call by
    tests/test_engine_fastpath.py across random mixes.
    """
    if not requirements:
        return []
    k = len(requirements)
    max_threads = device.max_threads
    total_lmem = device.total_local_mem
    total_regs = device.total_registers

    allocations = []
    threads = lmem = regs = 0
    for req in requirements:
        share = 1.0 / k
        x = int(max_threads * share // req.wg_threads)
        if req.local_mem_bytes > 0:
            y = int(total_lmem * share // req.local_mem_bytes)
        else:
            y = req.total_groups
        rpg = req.registers_per_group
        if rpg > 0:
            z = int(total_regs * share // rpg)
        else:
            z = req.total_groups
        groups = max(1, min(x, y, z, req.total_groups))
        allocations.append(Allocation(req, groups))
        threads += groups * req.wg_threads
        lmem += groups * req.local_mem_bytes
        regs += groups * rpg

    guard = 0
    while not (threads <= max_threads and lmem <= total_lmem
               and regs <= total_regs):
        largest = None
        largest_threads = -1
        for a in allocations:
            if a.groups > 1:
                t = a.groups * a.requirements.wg_threads
                if t > largest_threads:
                    largest = a
                    largest_threads = t
        if largest is None:
            raise SchedulingError(
                "cannot fit {} concurrent kernels on {}".format(
                    k, device.name))
        req = largest.requirements
        largest.groups -= 1
        threads -= req.wg_threads
        lmem -= req.local_mem_bytes
        regs -= req.registers_per_group
        guard += 1
        if guard > 10_000_000:
            raise SchedulingError("allocation shrink loop did not converge")

    if saturate:
        while True:
            smallest = None
            smallest_key = None
            for a in allocations:
                req = a.requirements
                if a.groups >= req.total_groups:
                    continue
                if (threads + req.wg_threads > max_threads
                        or lmem + req.local_mem_bytes > total_lmem
                        or regs + req.registers_per_group > total_regs):
                    continue
                key = (a.groups * req.wg_threads, req.name)
                if smallest is None or key < smallest_key:
                    smallest = a
                    smallest_key = key
            if smallest is None:
                break
            req = smallest.requirements
            smallest.groups += 1
            threads += req.wg_threads
            lmem += req.local_mem_bytes
            regs += req.registers_per_group
    return allocations


def requirement_key(req):
    """The canonical hashable identity of one :class:`KernelRequirements`.

    Two requirements with equal keys are interchangeable inputs to the §3
    algorithm: :func:`compute_allocations` reads exactly these five fields
    and nothing else.
    """
    return (req.name, req.wg_threads, req.local_mem_bytes,
            req.registers_per_thread, req.total_groups)


class AllocationMemo:
    """Order-insensitive memo for equal-weight :func:`compute_allocations`.

    The open-system loop re-runs the §3 policy on *every* arrival and
    completion, but a stream drawn from a small kernel corpus cycles
    through a small set of active multisets — so the re-plan is usually a
    repeat.  The memo keys on the canonical (sorted) multiset of
    requirement keys: a lookup stable-sorts the requirements, computes (or
    recalls) the allocation for the sorted set, and maps the group counts
    back to the caller's order.

    Replay safety rests on the algorithm being *permutation-equivariant*
    for equal weights: the base shares are per-kernel, the shrink loop's
    ``max`` and the greedy loop's ``min`` break ties through
    ``requirements.name``, and requirements sharing a full key are
    symmetric under a stable sort.  That is only guaranteed for equal
    sharing — a ``share_ratio`` attaches position-dependent weights whose
    ties resolve by list order — so the memo deliberately has no
    ``share_ratio`` parameter; weighted plans must call
    :func:`compute_allocations` directly.  See docs/PERFORMANCE.md.

    One further precondition: selection ties must only occur between
    requirements sharing a *full* key.  The greedy tiebreak is
    ``(threads, name)``, so two requirements with one name but e.g.
    different ``total_groups`` can tie while not being interchangeable —
    under a permutation the tied group counts would attach to the other
    one.  Engine inputs satisfy this by construction (a kernel name maps
    to exactly one corpus profile, so equal names mean equal keys);
    arbitrary hand-built mixes that reuse a name across different
    footprints should call :func:`compute_allocations` directly.
    """

    __slots__ = ("device", "saturate", "hits", "misses", "_groups_by_set")

    def __init__(self, device, saturate=True):
        self.device = device
        self.saturate = saturate
        self.hits = 0
        self.misses = 0
        # canonical multiset of requirement keys -> tuple of group counts,
        # aligned with the sorted order.  Entries live for the memo's
        # lifetime: requirement keys are value-identities, so there is
        # nothing to invalidate.
        self._groups_by_set = {}

    def groups_for(self, requirements):
        """Group targets for ``requirements``, in the caller's order."""
        keys = [requirement_key(req) for req in requirements]
        return self.groups_for_keyed(
            keys, lambda: list(requirements))

    def groups_for_keyed(self, keys, build_requirements):
        """Like :meth:`groups_for`, but ``build_requirements`` (returning
        the :class:`KernelRequirements` list aligned with ``keys``) is only
        called on a miss — callers holding cheaper key sources (simulator
        specs) skip constructing requirement objects on the hot path."""
        order = sorted(range(len(keys)), key=keys.__getitem__)
        cache_key = tuple(keys[i] for i in order)
        groups = self._groups_by_set.get(cache_key)
        if groups is None:
            self.misses += 1
            requirements = build_requirements()
            allocations = _compute_allocations_incremental(
                [requirements[i] for i in order], self.device,
                self.saturate)
            groups = tuple(a.groups for a in allocations)
            self._groups_by_set[cache_key] = groups
        else:
            self.hits += 1
        out = [0] * len(keys)
        for pos, orig in enumerate(order):
            out[orig] = groups[pos]
        return out


def thread_imbalance(allocations):
    """max |x_i*w_i - x_j*w_j| across kernel pairs — the §3 objective.

    Exposed for tests and the saturation ablation; lower is better.
    """
    shares = [a.threads for a in allocations]
    if len(shares) < 2:
        return 0
    return max(shares) - min(shares)
