"""The GPU scheduling runtime library (paper §6.3).

Written in the mini OpenCL-C and *statically linked* into every transformed
kernel module, exactly as the paper links kernels against its scheduling
library.  The functional interpreter therefore executes the real linked
artifact rather than a Python shortcut.

Data structures (flat ``long`` arrays instead of C structs, which the mini-C
does not need):

``rt`` — the Virtual NDRange descriptor, one per kernel execution, in
*global* (accelerator) memory::

    rt[0]  next virtual group counter (atomically advanced by dequeues)
    rt[1]  total number of virtual groups
    rt[2]  dequeue chunk size (set per §6.4 adaptive policy)
    rt[3]  original work dimension
    rt[4]  original number of groups, dim 0
    rt[5]  original number of groups, dim 1
    rt[6]  original number of groups, dim 2

``sd`` — per-work-group scheduling state in *local* memory::

    sd[0]  status (0 = RUN, 1 = RUN_TERMINATE)
    sd[1]  first virtual group of the current chunk
    sd[2]  one past the last virtual group of the current chunk

The virtual group handler ``hdlr`` is the linearised original group id;
``rt_group_id`` decodes it against the original grid dimensions.
"""

from __future__ import annotations

from repro.ir import compile_source

RT_WORDS = 8          # length of the rt descriptor in longs
SD_WORDS = 4          # length of the sd block in longs (one spare)

RT_COUNTER = 0
RT_TOTAL = 1
RT_CHUNK = 2
RT_WORK_DIM = 3
RT_GROUPS0 = 4

SD_STATUS = 0
SD_BASE = 1
SD_END = 2

STATUS_RUN = 0
STATUS_TERMINATE = 1

RTLIB_SOURCE = """
long rt_is_master_work_item()
{
    if (get_local_id(0) == 0 && get_local_id(1) == 0 && get_local_id(2) == 0)
        return 1;
    return 0;
}

void rt_env_init(global long* rt, local long* sd)
{
    sd[0] = 0;
    sd[1] = 0;
    sd[2] = 0;
}

void rt_sched_wgroup(global long* rt, local long* sd)
{
    long chunk = rt[2];
    long total = rt[1];
    long base = atomic_add(&rt[0], chunk);
    if (base >= total) {
        sd[0] = 1;
    } else {
        long end = base + chunk;
        sd[1] = base;
        sd[2] = end > total ? total : end;
    }
}

size_t rt_group_id(global long* rt, local long* sd, long hdlr, uint d)
{
    long gx = rt[4];
    long gy = rt[5];
    if (d == 0)
        return (size_t)(hdlr % gx);
    if (d == 1)
        return (size_t)((hdlr / gx) % gy);
    return (size_t)(hdlr / (gx * gy));
}

size_t rt_global_id(global long* rt, local long* sd, long hdlr, uint d)
{
    return rt_group_id(rt, sd, hdlr, d) * get_local_size(d) + get_local_id(d);
}

size_t rt_num_groups(global long* rt, uint d)
{
    return (size_t)rt[4 + d];
}

size_t rt_global_size(global long* rt, uint d)
{
    return (size_t)rt[4 + d] * get_local_size(d);
}

uint rt_work_dim(global long* rt)
{
    return (uint)rt[3];
}
"""

# Names the transformation maps work-item builtins to.  get_local_id and
# get_local_size stay hardware builtins: the work-group size is unchanged by
# the transformation (paper §5, Kernel Scheduler "does not modify the work
# group size or the dimensions").
REPLACEMENTS = {
    "get_global_id": "rt_global_id",     # needs (rt, sd, hdlr, d)
    "get_group_id": "rt_group_id",       # needs (rt, sd, hdlr, d)
    "get_num_groups": "rt_num_groups",   # needs (rt, d)
    "get_global_size": "rt_global_size",  # needs (rt, d)
    "get_work_dim": "rt_work_dim",       # needs (rt)
}

RTLIB_FUNCTIONS = (
    "rt_is_master_work_item", "rt_env_init", "rt_sched_wgroup",
    "rt_group_id", "rt_global_id", "rt_num_groups", "rt_global_size",
    "rt_work_dim",
)


def build_rtlib_module():
    """Compile a fresh rtlib module (one per transformed kernel module)."""
    return compile_source(RTLIB_SOURCE, name="accelos_rtlib", optimize=True)
