"""The Kernel Scheduler (paper §5).

Centrally manages kernel execution requests: for every request it

1. derives the kernel's per-work-group resource demands (work-group size
   from the launch geometry, local memory and registers from the JIT's
   resource analysis),
2. runs the §3 sharing algorithm across the concurrently active requests,
3. constructs a Virtual NDRange and copies it to accelerator memory,
4. alters the *global size* of the physical launch to match the reduced
   group count — never the work-group size or dimensionality,
5. launches the transformed kernel.

The scheduler produces a :class:`LaunchPlan` per request, which is both
executed functionally (correctness plane) and handed to the timing simulator
(evaluation plane).

**Inputs:** ``(kernel, nd_range)`` request batches whose kernels were
transformed by the accelOS JIT (untransformed kernels are rejected).
**Invariants:** at most one ResourceAnalysis pass per (kernel, bound local
sizes) — repeat submissions of the same kernel hit a per-scheduler memo,
and requirements are computed once and reused by the plan; the launch's
work-group size and
dimensionality are never altered, only the group count; the VNDRange
buffer lives until the launch's event completes (released via
``on_complete``, never at enqueue time); physical group counts come
exclusively from the §3 sharing algorithm over the concurrent batch.
"""

from __future__ import annotations

from repro.accelos.sharing import KernelRequirements, compute_allocations
from repro.accelos.vndrange import VirtualNDRange
from repro.cl.kernel import NDRange
from repro.errors import SchedulingError
from repro.ir.passes import ResourceAnalysis


class LaunchPlan:
    """Everything needed to execute one scheduled kernel request."""

    __slots__ = ("kernel", "nd_range", "physical_groups", "physical_range",
                 "vndrange", "requirements", "chunk", "instruction_count")

    def __init__(self, kernel, nd_range, physical_groups, physical_range,
                 vndrange, requirements, chunk, instruction_count):
        self.kernel = kernel
        self.nd_range = nd_range              # original (virtual) range
        self.physical_groups = physical_groups
        self.physical_range = physical_range  # reduced physical range
        self.vndrange = vndrange
        self.requirements = requirements
        self.chunk = chunk
        self.instruction_count = instruction_count

    def __repr__(self):
        return ("<LaunchPlan {}: {} virtual -> {} physical groups, chunk {}>"
                .format(self.kernel.name, self.nd_range.num_groups,
                        self.physical_groups, self.chunk))


class KernelScheduler:
    """Schedules batches of concurrent kernel execution requests."""

    def __init__(self, context, saturate=True):
        self.context = context
        self.device = context.device
        self.saturate = saturate
        # (id(kernel), sorted local-arg sizes) -> (kernel, usage): repeat
        # submissions of one corpus kernel skip the ResourceAnalysis IR
        # pass.  The kernel reference pins the id; the local sizes are in
        # the key because set_arg can rebind local buffers between
        # requests, which changes the analysis input.
        self._usage_cache = {}

    # -- requirements ------------------------------------------------------

    def requirements_for(self, kernel, nd_range):
        """Per-work-group demands of one request (inputs to §3)."""
        meta = kernel.function.metadata.get("accelos")
        if meta is None:
            raise SchedulingError(
                "kernel {} was not transformed by the accelOS JIT"
                .format(kernel.name))
        local_sizes = kernel.local_arg_sizes()
        key = (id(kernel), tuple(sorted(local_sizes.items())))
        entry = self._usage_cache.get(key)
        if entry is None or entry[0] is not kernel:
            usage = ResourceAnalysis(local_sizes).analyze(kernel.function)
            self._usage_cache[key] = (kernel, usage)
        else:
            usage = entry[1]
        return KernelRequirements(
            name=kernel.name,
            wg_threads=nd_range.work_group_size,
            local_mem_bytes=usage.local_memory_bytes,
            registers_per_thread=usage.registers,
            total_groups=nd_range.num_groups,
        )

    # -- scheduling --------------------------------------------------------

    def plan_batch(self, requests, share_ratio=None):
        """Plan a batch of concurrent requests: ``[(kernel, nd_range)]``.

        Returns one :class:`LaunchPlan` per request, with physical group
        counts chosen by the sharing algorithm.
        """
        if not requests:
            return []
        requirements = [self.requirements_for(k, r) for k, r in requests]
        allocations = compute_allocations(requirements, self.device,
                                          saturate=self.saturate,
                                          share_ratio=share_ratio)
        plans = []
        for (kernel, nd_range), requirement, allocation in zip(
                requests, requirements, allocations):
            plans.append(self._make_plan(kernel, nd_range, allocation.groups,
                                         requirement))
        return plans

    def _make_plan(self, kernel, nd_range, physical_groups, requirements):
        # ``requirements`` is the KernelRequirements already computed by
        # plan_batch — re-deriving it here would run a second
        # ResourceAnalysis IR pass per request.
        from repro.accelos.adaptive import effective_chunk
        meta = kernel.function.metadata["accelos"]
        chunk = effective_chunk(meta["chunk"], nd_range.num_groups,
                                physical_groups)
        vndrange = VirtualNDRange(nd_range, chunk)
        vndrange.upload(self.context)

        local = nd_range.local_size
        physical_range = NDRange(
            (physical_groups * local[0], local[1], local[2]), local)
        return LaunchPlan(
            kernel=kernel,
            nd_range=nd_range,
            physical_groups=physical_groups,
            physical_range=physical_range,
            vndrange=vndrange,
            requirements=requirements,
            chunk=chunk,
            instruction_count=meta["instruction_count"],
        )

    # -- execution (functional plane) ---------------------------------------

    def execute_plan(self, plan, queue):
        """Run the plan's kernel functionally; the vndrange buffer is
        released only once the launch's event completes — the device reads
        the descriptor for the kernel's whole lifetime, so freeing it at
        enqueue time would be a use-after-free on any asynchronous queue."""
        rt_index = plan.kernel.function.metadata["accelos"]["original_params"]
        plan.kernel.set_arg(rt_index, plan.vndrange.buffer)
        event = queue.enqueue_nd_range(plan.kernel, plan.physical_range)
        event.on_complete(plan.vndrange.release)
        return event
