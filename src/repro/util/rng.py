"""Deterministic random number helpers.

Every stochastic component in the reproduction (workload sampling, per-run
jitter, per-work-group cost draws) derives its generator from a seed via
these helpers so whole experiment campaigns are replayable bit-for-bit.
The determinism lints (``python -m tools.analysis``, code D101) reject
global-RNG calls everywhere else — this module is the one sanctioned
seeding point.
"""

from __future__ import annotations

import hashlib

import numpy as np


def stable_hash(*parts: object) -> int:
    """Return a 64-bit integer hash of ``parts`` stable across processes.

    ``hash()`` is salted per interpreter run, so experiment code uses this
    instead when deriving seeds from kernel names or workload descriptors.
    """
    text = "\x1f".join(str(p) for p in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def make_rng(*seed_parts: object) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` seeded from ``seed_parts``."""
    return np.random.default_rng(stable_hash(*seed_parts))
