"""Small shared utilities (deterministic RNG, rounding helpers)."""

from repro.util.rng import make_rng, stable_hash

__all__ = ["make_rng", "stable_hash"]
