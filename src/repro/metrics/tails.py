"""Tail-latency statistics for open-system request populations.

Mean-based metrics (ANTT, STP) hide exactly the requests a production
deployment is judged on: the slowest few percent.  This module adds exact
percentile reporting — p50/p95/p99 of per-request slowdown and queueing
delay, the max/mean ratio, and a per-tenant breakdown — computed over the
request records of one open-system run.

Percentile definition
---------------------

:func:`percentile` uses the *linear interpolation* convention (numpy's
default, type 7 in Hyndman & Fan): for ``n`` sorted values the ``q``-th
percentile sits at fractional rank ``(n - 1) * q / 100`` and interpolates
linearly between the neighbouring order statistics.  A single value is
every percentile of itself; ties collapse naturally (interpolating between
two equal values).  The implementation is pure Python over sorted floats,
so results are bit-reproducible across platforms and numpy versions.
"""

from __future__ import annotations

import math
from typing import (Any, Callable, Dict, Iterable, List, Optional,
                    Sequence, Tuple)


def _checked_sorted(values: Iterable[float]) -> List[float]:
    ordered = sorted(float(v) for v in values)
    if not ordered:
        raise ValueError("need at least one value")
    # NaN compares false against everything, so sorting leaves it wherever
    # it started — scan the whole population, not just the extremes
    if any(math.isnan(v) for v in ordered):
        raise ValueError("values must not contain NaN")
    return ordered


def _percentile_of_sorted(ordered: Sequence[float], q: float) -> float:
    if not 0.0 <= q <= 100.0:
        raise ValueError("percentile must be in [0, 100]")
    rank = (len(ordered) - 1) * q / 100.0
    lower = int(math.floor(rank))
    upper = int(math.ceil(rank))
    if lower == upper:
        return ordered[lower]
    fraction = rank - lower
    return ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction


def percentile(values: Iterable[float], q: float) -> float:
    """Exact ``q``-th percentile (0..100) by linear interpolation."""
    return _percentile_of_sorted(_checked_sorted(values), q)


class TailSummary:
    """Percentile summary of one non-empty value population."""

    __slots__ = ("count", "mean", "p50", "p95", "p99", "max")

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    def __init__(self, values: Iterable[float]) -> None:
        ordered = _checked_sorted(values)
        self.count = len(ordered)
        self.mean = sum(ordered) / len(ordered)
        self.p50 = _percentile_of_sorted(ordered, 50.0)
        self.p95 = _percentile_of_sorted(ordered, 95.0)
        self.p99 = _percentile_of_sorted(ordered, 99.0)
        self.max = ordered[-1]

    @property
    def max_over_mean(self) -> float:
        """How far the worst request sits above the average (>= 1 for
        positive populations) — the 'one user had a terrible day' ratio."""
        if self.mean == 0:
            return 1.0 if self.max == 0 else math.inf
        return self.max / self.mean

    def as_dict(self) -> Dict[str, float]:
        """Plain-float dict (stable key order) for JSON reports."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.max,
            "max_over_mean": self.max_over_mean,
        }

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, TailSummary)
                and self.as_dict() == other.as_dict())

    def __repr__(self) -> str:
        return ("<TailSummary n={} p50={:.3f} p95={:.3f} p99={:.3f} "
                "max={:.3f}>".format(self.count, self.p50, self.p95,
                                     self.p99, self.max))


def tail_summary(values: Iterable[float]) -> TailSummary:
    """:class:`TailSummary` over a value population."""
    return TailSummary(values)


def per_tenant_tails(
        records: Iterable[Any],
        value: Callable[[Any], float] = lambda r: r.slowdown,
) -> Dict[Optional[str], TailSummary]:
    """Per-tenant :class:`TailSummary` split of one record population.

    Untagged records (``tenant is None``) are grouped under ``None`` —
    single-tenant streams get exactly one entry.  ``value`` extracts the
    measured quantity (default: per-request slowdown).
    """
    by_tenant: Dict[Optional[str], List[float]] = {}
    for record in records:
        by_tenant.setdefault(record.tenant, []).append(value(record))
    return {tenant: TailSummary(values)
            for tenant, values in sorted(
                by_tenant.items(),
                key=lambda kv: (kv[0] is not None, str(kv[0])))}


def request_tails(
        records: Sequence[Any],
) -> Tuple[TailSummary, TailSummary, Dict[Optional[str], TailSummary]]:
    """Slowdown and queueing-delay tails of one record population.

    Returns ``(slowdown_tails, queueing_tails, tenant_slowdown_tails)`` —
    the triple :class:`repro.harness.open_system.OpenSystemResult` exposes.
    """
    slowdowns = [r.slowdown for r in records]
    queueing = [r.queueing_delay for r in records]
    return (TailSummary(slowdowns), TailSummary(queueing),
            per_tenant_tails(records))
