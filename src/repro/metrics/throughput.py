"""Throughput metrics (paper §7.4)."""

from __future__ import annotations

from typing import Sequence


def throughput_speedup(baseline_time: float, scheme_time: float) -> float:
    """``T_baseline / T_X`` where T is the time for *all* kernels to finish."""
    if scheme_time <= 0:
        raise ValueError("scheme time must be positive")
    return baseline_time / scheme_time


def stp(slowdowns: Sequence[float]) -> float:
    """System throughput (Eyerman & Eeckhout [10]): ``STP = sum(1/IS_i)``.

    Equals K for a perfectly-shared machine with no interference and 1 for
    full serialisation of identical jobs.
    """
    if not slowdowns:
        raise ValueError("need at least one slowdown")
    if any(s <= 0 for s in slowdowns):
        raise ValueError("slowdowns must be positive")
    return sum(1.0 / s for s in slowdowns)
