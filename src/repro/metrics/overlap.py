"""Kernel execution overlap (paper §7.4): ``O = T(c) / T(t)``."""

from __future__ import annotations

from typing import Sequence, Tuple

Interval = Tuple[float, float]


def execution_overlap(intervals: Sequence[Interval]) -> float:
    """Overlap of a set of ``(start, finish)`` kernel intervals.

    ``T(t)``: total time at least one kernel executes (union measure);
    ``T(c)``: time all kernels co-execute (intersection measure).
    """
    if not intervals:
        raise ValueError("need at least one interval")
    for start, finish in intervals:
        if finish < start:
            raise ValueError("interval ends before it starts")
    total = _union_measure(intervals)
    if total <= 0:
        return 0.0
    co_start = max(start for start, _ in intervals)
    co_finish = min(finish for _, finish in intervals)
    return max(0.0, co_finish - co_start) / total


def _union_measure(intervals: Sequence[Interval]) -> float:
    measure = 0.0
    cursor: float | None = None
    for start, end in sorted(intervals):
        if cursor is None or start > cursor:
            measure += end - start
            cursor = end
        elif end > cursor:
            measure += end - cursor
            cursor = end
    return measure
