"""Streaming metric sketches: bounded-memory ANTT/STP/tail estimation.

The exact metric path (:mod:`repro.metrics.tails`) retains every
per-request value so percentiles are computed over the full sorted
population — O(n) memory, impossible at the million-request scale the
ROADMAP targets.  This module provides the streaming twin: online
accumulators (:class:`OnlineStats`) for the moments that are exactly
computable one value at a time, and the P² algorithm (Jain & Chlamtac,
CACM 1985) for quantiles, which tracks five markers per quantile in O(1)
memory.  :class:`StreamingRecordSink` composes them into a drop-in
replacement for a retained record list, so
:class:`~repro.harness.open_system.OpenSystemResult` can be built from a
sketch (``metrics_mode="streaming"`` in the declarative API).

Accuracy contract
-----------------

* ``count``, ``mean``, ``max``, ``min``, sums (ANTT, STP, makespan) are
  *exact* up to float summation order — the sketch accumulates in
  completion order, the exact path in submission order, so the two agree
  to ~1e-12 relative, not bit-for-bit.
* Quantiles of populations up to ``P2_WARMUP`` (256) observations are
  **exact**: the sketch buffers the warm-up values (a fixed constant,
  so memory stays O(1)) and interpolates them with the same
  linear-interpolation convention as :func:`repro.metrics.tails`.
* Quantiles with n > ``P2_WARMUP`` are P² estimates, warm-started from
  the exact quantiles of the buffer.  The documented tolerance —
  enforced by ``tests/test_sketches.py`` — is a *rank window*: the
  estimate of quantile ``q`` lies within the exact value band of ranks
  ``q ± P2_RANK_TOLERANCE`` percentile points, extended outward to the
  nearest *distinct observed values* (P² interpolates between marker
  heights, so on heavily tied populations the estimate can land
  strictly between two tied groups — it never escapes the adjacent
  distinct values), widened by ``P2_RELATIVE_SLACK`` relative.
  Constant populations are exact (all five markers collapse to the
  constant).

Determinism
-----------

Sketch state is a pure function of the observation *sequence*: pure
Python floats, no randomness, no dict-order dependence.  Feeding the
same values in the same order reproduces the state bit-for-bit (see
``docs/DETERMINISM.md``); the harness feeds values in completion-harvest
order, which the simulator makes deterministic.

NaN handling matches ``tails._checked_sorted`` exactly: observing a NaN
raises ``ValueError("values must not contain NaN")``.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, Protocol

from repro.metrics.tails import _percentile_of_sorted

# documented quantile tolerance (see module docstring and
# tests/test_sketches.py): rank window in percentile points, plus a
# relative widening of the band
P2_RANK_TOLERANCE = 5.0
P2_RELATIVE_SLACK = 0.05

# observations buffered (and answered exactly) before the sketch
# switches to P² markers — a fixed constant, so memory stays O(1).
# Pure P² is poor below a few hundred observations: the interior
# markers start at the first five values and migrate toward the target
# rank one step per observation, so an extreme quantile (p99) of a
# small population is answered from wherever the median marker happens
# to sit.  Warm-starting from the exact quantiles of a 256-value buffer
# removes that regime entirely.
P2_WARMUP = 256


def _check_value(value: float) -> float:
    value = float(value)
    if math.isnan(value):
        # identical type and message to tails._checked_sorted, so the
        # streaming path rejects bad populations exactly like the exact
        # path
        raise ValueError("values must not contain NaN")
    return value


class OnlineStats:
    """Exact online count/sum/mean/min/max accumulator."""

    __slots__ = ("count", "total", "min", "max")

    count: int
    total: float
    min: float
    max: float

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = _check_value(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError("need at least one value")
        return self.total / self.count


class P2Quantile:
    """P² single-quantile estimator (Jain & Chlamtac 1985).

    Five markers track the running estimate of one quantile ``q``
    (0 < q < 100) in O(1) memory.  The first ``P2_WARMUP`` observations
    are buffered and answered as the *exact* linear-interpolation
    percentile (``tails`` convention); beyond that the buffer collapses
    into markers warm-started from its exact quantiles, so small
    populations are never approximated and the P² regime starts from an
    exact state.
    """

    __slots__ = ("q", "_p", "_heights", "_positions", "_desired",
                 "_increments", "count")

    q: float
    _p: float
    _heights: List[float]
    _positions: List[float]
    _desired: List[float]
    _increments: List[float]
    count: int

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 100.0:
            raise ValueError("P2 quantile must be in (0, 100)")
        self.q = float(q)
        self._p = self.q / 100.0
        self._heights = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * self._p, 1.0 + 4.0 * self._p,
                         3.0 + 2.0 * self._p, 5.0]
        self._increments = [0.0, self._p / 2.0, self._p,
                            (1.0 + self._p) / 2.0, 1.0]
        self.count = 0

    def observe(self, value: float) -> None:
        value = _check_value(value)
        self.count += 1
        if self.count <= P2_WARMUP:
            self._heights.append(value)
            return
        if self.count == P2_WARMUP + 1:
            self._init_markers()
        h = self._heights
        # locate the cell and clamp the extreme markers
        if value < h[0]:
            h[0] = value
            cell = 0
        elif value >= h[4]:
            h[4] = value
            cell = 3
        else:
            cell = 0
            while value >= h[cell + 1]:
                cell += 1
        for i in range(cell + 1, 5):
            self._positions[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]
        # adjust the three interior markers towards their desired ranks
        for i in range(1, 4):
            delta = self._desired[i] - self._positions[i]
            below = self._positions[i] - self._positions[i - 1]
            above = self._positions[i + 1] - self._positions[i]
            if (delta >= 1.0 and above > 1.0) or (delta <= -1.0
                                                  and below > 1.0):
                step = 1.0 if delta >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    h[i] = self._linear(i, step)
                self._positions[i] += step
        return

    def _init_markers(self) -> None:
        """Collapse the warm-up buffer into five P² markers placed at
        the positions the classic algorithm would have reached after
        ``P2_WARMUP`` observations, with heights read off the *exact*
        quantiles of the buffer — so the estimate is exact at the
        switchover and P² only accumulates drift beyond it."""
        ordered = sorted(self._heights)
        n, p = float(P2_WARMUP), self._p
        self._desired = [1.0,
                         1.0 + 2.0 * p + (n - 5.0) * p / 2.0,
                         1.0 + 4.0 * p + (n - 5.0) * p,
                         3.0 + 2.0 * p + (n - 5.0) * (1.0 + p) / 2.0,
                         n]
        positions = [1.0]
        for i in (1, 2, 3):
            rank = min(max(round(self._desired[i]), positions[-1] + 1),
                       n - (4 - i))
            positions.append(float(rank))
        positions.append(n)
        self._positions = positions
        self._heights = [
            _percentile_of_sorted(ordered,
                                  (pos - 1.0) / (n - 1.0) * 100.0)
            for pos in positions
        ]

    def _parabolic(self, i: int, step: float) -> float:
        h, n = self._heights, self._positions
        return h[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step) * (h[i + 1] - h[i])
            / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (h[i] - h[i - 1])
            / (n[i] - n[i - 1]))

    def _linear(self, i: int, step: float) -> float:
        h, n = self._heights, self._positions
        j = i + int(step)
        return h[i] + step * (h[j] - h[i]) / (n[j] - n[i])

    def value(self) -> float:
        """The current quantile estimate (exact for
        count <= ``P2_WARMUP``)."""
        if self.count == 0:
            raise ValueError("need at least one value")
        if self.count <= P2_WARMUP:
            # the stored values ARE the population: answer exactly
            return _percentile_of_sorted(sorted(self._heights), self.q)
        return self._heights[2]

    def state(self) -> Dict[str, Any]:
        """Plain-data sketch state — equal states are bit-equal
        (determinism tests compare these)."""
        return {
            "q": self.q,
            "count": self.count,
            "heights": list(self._heights),
            "positions": list(self._positions),
            "desired": list(self._desired),
        }


class SketchTailSummary:
    """Sketch-built twin of :class:`repro.metrics.tails.TailSummary`.

    Same attribute surface (``count/mean/p50/p95/p99/max``, the
    ``max_over_mean`` property and ``as_dict``), so everything downstream
    of a result object — the METRICS registry extractors included — works
    unchanged; the percentile fields are P² estimates rather than exact
    order statistics.
    """

    __slots__ = ("count", "mean", "p50", "p95", "p99", "max")

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    def __init__(self, count: int, mean: float, p50: float, p95: float,
                 p99: float, max_value: float) -> None:
        self.count = count
        self.mean = mean
        self.p50 = p50
        self.p95 = p95
        self.p99 = p99
        self.max = max_value

    @property
    def max_over_mean(self) -> float:
        if self.mean == 0:
            return 1.0 if self.max == 0 else math.inf
        return self.max / self.mean

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.max,
            "max_over_mean": self.max_over_mean,
        }

    def __repr__(self) -> str:
        return ("<SketchTailSummary n={} p50={:.3f} p95={:.3f} "
                "p99={:.3f} max={:.3f}>".format(
                    self.count, self.p50, self.p95, self.p99, self.max))


class TailSketch:
    """Streaming :func:`repro.metrics.tails.tail_summary`: online
    count/mean/max plus P² p50/p95/p99 over one value population."""

    __slots__ = ("stats", "_quantiles")

    stats: OnlineStats
    _quantiles: Dict[float, P2Quantile]

    def __init__(self) -> None:
        self.stats = OnlineStats()
        self._quantiles = {q: P2Quantile(q) for q in (50.0, 95.0, 99.0)}

    def observe(self, value: float) -> None:
        value = _check_value(value)
        self.stats.observe(value)
        for sketch in self._quantiles.values():
            sketch.observe(value)

    @property
    def count(self) -> int:
        return self.stats.count

    def summary(self) -> SketchTailSummary:
        if self.stats.count == 0:
            raise ValueError("need at least one value")
        return SketchTailSummary(
            count=self.stats.count,
            mean=self.stats.mean,
            p50=self._quantiles[50.0].value(),
            p95=self._quantiles[95.0].value(),
            p99=self._quantiles[99.0].value(),
            max_value=self.stats.max,
        )


class RecordSink(Protocol):
    """Anything an open-system run can push completed request records
    into, one at a time, in completion order."""

    def observe(self, record: Any) -> None:
        """Absorb one completed :class:`~repro.api.schemes.RequestRecord`."""


class ExactRecordSink:
    """The retained-list sink: feeds the existing exact metric path."""

    __slots__ = ("records",)

    records: List[Any]

    def __init__(self) -> None:
        self.records = []

    def observe(self, record: Any) -> None:
        self.records.append(record)


class StreamingRecordSink:
    """Bounded-memory sink: every headline metric of an open-system
    result, accumulated online.

    Tracks the slowdown and queueing-delay tail sketches (overall and
    per tenant), the turnaround mean, the STP sum (sum of inverse
    slowdowns), and the makespan (max finish) — O(#tenants) memory
    regardless of request count.
    """

    __slots__ = ("slowdown", "queueing", "turnaround", "finish",
                 "tenant_slowdown", "inverse_slowdown_sum", "attribution")

    slowdown: TailSketch
    queueing: TailSketch
    turnaround: OnlineStats
    finish: OnlineStats
    tenant_slowdown: Dict[Optional[str], TailSketch]
    inverse_slowdown_sum: float
    attribution: Optional[Callable[[Any], None]]

    def __init__(self) -> None:
        self.slowdown = TailSketch()
        self.queueing = TailSketch()
        self.turnaround = OnlineStats()
        self.finish = OnlineStats()
        self.tenant_slowdown = {}
        self.inverse_slowdown_sum = 0.0
        self.attribution = None

    def attach_attribution(self, hook: Callable[[Any], None]) -> None:
        """Forward every observed record to an attribution ledger
        (:meth:`repro.attribution.AttributionLedger.observe_record`) —
        the ledger rides the streaming pass, no record retention."""
        self.attribution = hook

    @property
    def count(self) -> int:
        return self.slowdown.count

    def observe(self, record: Any) -> None:
        if self.attribution is not None:
            self.attribution(record)
        slowdown = _check_value(record.slowdown)
        if slowdown <= 0:
            # same contract as metrics.fairness/throughput: STP and
            # unfairness are undefined for non-positive slowdowns
            raise ValueError("slowdowns must be positive")
        self.slowdown.observe(slowdown)
        self.queueing.observe(record.queueing_delay)
        self.turnaround.observe(record.turnaround)
        self.finish.observe(record.finish)
        self.inverse_slowdown_sum += 1.0 / slowdown
        tenant = record.tenant
        sketch = self.tenant_slowdown.get(tenant)
        if sketch is None:
            sketch = self.tenant_slowdown[tenant] = TailSketch()
        sketch.observe(slowdown)

    def tenant_summaries(self) -> Dict[Optional[str], SketchTailSummary]:
        """Per-tenant slowdown summaries, in the exact path's key order
        (untenanted first, then by str)."""
        return {tenant: self.tenant_slowdown[tenant].summary()
                for tenant in sorted(
                    self.tenant_slowdown,
                    key=lambda t: (t is not None, str(t)))}


SinkFactory = Callable[[], StreamingRecordSink]

__all__ = [
    "P2_RANK_TOLERANCE", "P2_RELATIVE_SLACK", "ExactRecordSink",
    "OnlineStats", "P2Quantile", "RecordSink", "SketchTailSummary",
    "StreamingRecordSink", "TailSketch",
]
