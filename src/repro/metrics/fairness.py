"""Fairness metrics for accelerator sharing (paper §7.4, after [9]).

A heterogeneous system is fair if concurrent kernel executions are slowed
down equally relative to running in isolation.
"""

from __future__ import annotations

import math
from typing import List, Sequence


def safe_share(part: float, whole: float) -> float:
    """``part / whole`` as a share, 0.0 whenever the denominator is
    degenerate (zero, negative, NaN or infinite).

    Attribution decompositions routinely hit empty denominators — a
    single-request run has zero total ahead-of-me work, a zero-work
    tenant has zero byte·seconds — and a share of *nothing* is zero,
    not a ``ZeroDivisionError`` or a NaN that poisons every downstream
    aggregate.
    """
    if whole <= 0.0 or math.isnan(whole) or math.isinf(whole):
        return 0.0
    return part / whole


def individual_slowdowns(shared_times: Sequence[float],
                         isolated_times: Sequence[float]) -> List[float]:
    """``IS_i = T(s)_i / T(a)_i`` per kernel execution.

    ``shared_times`` are turnaround times in the shared run; ``isolated``
    the same kernels run alone on the standard stack.
    """
    if len(shared_times) != len(isolated_times):
        raise ValueError("time lists must have the same length")
    slowdowns: List[float] = []
    for shared, isolated in zip(shared_times, isolated_times):
        if isolated <= 0:
            raise ValueError("isolated time must be positive")
        slowdowns.append(shared / isolated)
    return slowdowns


def system_unfairness(slowdowns: Sequence[float]) -> float:
    """``U = max(IS) / min(IS)``; 1.0 is perfectly fair, larger is worse."""
    if not slowdowns:
        raise ValueError("need at least one slowdown")
    low = min(slowdowns)
    if low <= 0:
        raise ValueError("slowdowns must be positive")
    return max(slowdowns) / low


def fairness_improvement(baseline_unfairness: float,
                         scheme_unfairness: float) -> float:
    """``U_baseline / U_X`` — >1 means the scheme is fairer than baseline."""
    if scheme_unfairness <= 0:
        raise ValueError("unfairness must be positive")
    return baseline_unfairness / scheme_unfairness
