"""Average normalised turnaround time (paper §7.4/§8.4, after [31][10])."""

from __future__ import annotations

from typing import Sequence


def antt(slowdowns: Sequence[float]) -> float:
    """``ANTT = (1/K) * sum(IS_i)`` — lower is better, 1.0 is ideal."""
    if not slowdowns:
        raise ValueError("need at least one slowdown")
    return sum(slowdowns) / len(slowdowns)


def worst_antt(antt_values: Sequence[float]) -> float:
    """Worst ANTT across a set of workloads (the paper's W. ANTT column)."""
    if not antt_values:
        raise ValueError("need at least one ANTT value")
    return max(antt_values)
