"""Evaluation metrics (paper §7.4).

Fairness: individual slowdown, system unfairness [9], fairness improvement.
Throughput: system throughput speedup, STP [10].
Turnaround: ANTT and worst-case ANTT [31].
Sharing: kernel execution overlap.
Tails: exact percentile summaries of slowdown/queueing populations.
Sketches: bounded-memory streaming twins (P2 quantiles, online stats).
"""

from repro.metrics.fairness import (
    individual_slowdowns, system_unfairness, fairness_improvement,
    safe_share)
from repro.metrics.throughput import throughput_speedup, stp
from repro.metrics.antt import antt, worst_antt
from repro.metrics.overlap import execution_overlap
from repro.metrics.tails import (
    TailSummary, per_tenant_tails, percentile, request_tails, tail_summary)
from repro.metrics.sketches import (
    P2_RANK_TOLERANCE, P2_RELATIVE_SLACK, ExactRecordSink, OnlineStats,
    P2Quantile, RecordSink, SketchTailSummary, StreamingRecordSink,
    TailSketch)

__all__ = [
    "individual_slowdowns", "system_unfairness", "fairness_improvement",
    "safe_share",
    "throughput_speedup", "stp", "antt", "worst_antt", "execution_overlap",
    "TailSummary", "percentile", "tail_summary", "per_tenant_tails",
    "request_tails",
    "P2_RANK_TOLERANCE", "P2_RELATIVE_SLACK",
    "ExactRecordSink", "OnlineStats", "P2Quantile", "RecordSink",
    "SketchTailSummary", "StreamingRecordSink", "TailSketch",
]
