"""Functional device execution: interprets IR kernels over an ND-range.

This is the correctness plane of the reproduction.  On real hardware the
accelOS transformation is trusted to preserve kernel semantics; here we can
*check* it: the interpreter executes both the original kernel and the
transformed ``dyn_sched`` kernel and the test suite asserts bit-identical
buffer contents.

Barrier semantics are real: each work item runs as a Python generator that
yields at ``barrier()``, and the work-group executor advances every item to
the barrier before any item proceeds — the exact contract the transformed
scheduling loop relies on (master work-item dequeues, then barrier).
"""

from repro.interp.memory import MemoryRegion, Pointer, LocalArg
from repro.interp.executor import KernelLauncher, LaunchStats

__all__ = ["MemoryRegion", "Pointer", "LocalArg", "KernelLauncher", "LaunchStats"]
