"""Work-item / work-group interpreter over the IR.

Execution model
---------------
* A *work item* is a Python generator produced by :meth:`_run_function`;
  it yields the sentinel :data:`BARRIER` whenever it executes a barrier.
* A *work group* runs its items in lockstep phases: all items advance to
  the next barrier (or to completion), then the executor releases them past
  it.  Divergent barriers (some items finish while others wait) raise —
  that is undefined behaviour in OpenCL and a bug we want loud.
* Work groups are executed sequentially (functional mode cares about
  values, not timing; timing lives in :mod:`repro.sim`).

Private allocas are instantiated per work item, ``local`` allocas once per
work group (OpenCL shared arrays), which is exactly the distinction the
accelOS local-data-hoisting step manipulates.
"""

from __future__ import annotations

import itertools

from repro.errors import InterpError
from repro.ir import arith
from repro.ir import instructions as I
from repro.ir.values import Argument, Constant, Undef
from repro.interp.memory import LocalArg, MemoryRegion, Pointer, scalar_size
from repro.kernelc import builtins as B
from repro.kernelc import types as T

BARRIER = object()


class LaunchStats:
    """Dynamic execution statistics for one kernel launch.

    ``instructions_per_group`` feeds timing calibration: the timing simulator
    can consume real dynamic instruction counts for small launches.
    ``provenance`` optionally names the tenant/session/request the launch
    is billed to (:class:`repro.attribution.Provenance`), so executed
    work-groups and atomic/step counts are attributable per tenant.
    """

    def __init__(self, provenance=None):
        self.instructions = 0
        self.instructions_per_group = {}
        self.barriers = 0
        self.atomic_ops = 0
        self.provenance = provenance

    def record_group(self, group_id, executed):
        self.instructions_per_group[group_id] = executed
        self.instructions += executed

    def groups(self):
        """Recorded ``(group_id, executed)`` pairs in sorted group order.

        Group ids are (x, y, z) tuples; launch iteration order is an
        implementation detail of the executor, so any consumer that
        iterates recorded groups (the attribution ledger, calibration)
        must use this deterministic order, not raw dict order.
        """
        return sorted(self.instructions_per_group.items())


class _WorkItemFrame:
    """Per-work-item execution state for one function activation."""

    __slots__ = ("function", "values",)

    def __init__(self, function):
        self.function = function
        self.values = {}


class _GroupContext:
    """Shared state of one executing work group."""

    __slots__ = ("group_id", "local_regions", "executed")

    def __init__(self, group_id):
        self.group_id = group_id
        self.local_regions = {}
        self.executed = 0


class _ItemContext:
    """Identity of one work item within the launch."""

    __slots__ = ("global_id", "local_id", "group")

    def __init__(self, global_id, local_id, group):
        self.global_id = global_id
        self.local_id = local_id
        self.group = group


class KernelLauncher:
    """Executes kernels from a module over an ND-range."""

    def __init__(self, module, max_steps=200_000_000):
        self.module = module
        self.max_steps = max_steps

    # -- public API ------------------------------------------------------------

    def launch(self, kernel_name, args, global_size, local_size,
               provenance=None):
        """Run ``kernel_name`` over the ND-range; returns :class:`LaunchStats`.

        ``args`` follow OpenCL ``clSetKernelArg`` conventions: scalar Python
        values, :class:`Pointer` for buffers, or :class:`LocalArg` for
        local-memory sizes.  ``provenance`` tags the returned stats with
        the launching request's attribution identity.
        """
        kernel = self.module.get(kernel_name)
        if not kernel.is_kernel:
            raise InterpError("{} is not a kernel".format(kernel_name))
        global_size = _normalize(global_size)
        local_size = _normalize(local_size)
        work_dim = max(len_nonone(global_size), 1)
        for d in range(3):
            if global_size[d] % local_size[d]:
                raise InterpError(
                    "global size {} not divisible by local size {}".format(
                        global_size, local_size))
        num_groups = tuple(global_size[d] // local_size[d] for d in range(3))

        if len(args) != len(kernel.arguments):
            raise InterpError("kernel {} expects {} arguments, got {}".format(
                kernel_name, len(kernel.arguments), len(args)))

        stats = LaunchStats(provenance=provenance)
        self._launch_geometry = (global_size, local_size, num_groups, work_dim)
        # itertools.product iterates the last axis fastest; build the product
        # as (z, y, x) and reverse each tuple so x varies fastest.
        for group_id in itertools.product(*(range(num_groups[2 - d])
                                            for d in range(3))):
            gid = tuple(reversed(group_id))
            self._run_group(kernel, args, gid, stats)
        return stats

    # -- group execution ---------------------------------------------------------

    def _run_group(self, kernel, args, group_id, stats):
        global_size, local_size, num_groups, work_dim = self._launch_geometry
        group = _GroupContext(group_id)

        # Materialise local regions: one per local alloca and per LocalArg.
        bound_args = []
        for formal, actual in zip(kernel.arguments, args):
            if isinstance(actual, LocalArg):
                region = MemoryRegion(actual.size_bytes, T.LOCAL,
                                      "localarg:{}".format(formal.name))
                bound_args.append(Pointer(region, formal.type.pointee, 0))
            else:
                bound_args.append(actual)

        items = []
        for local_id in itertools.product(*(range(local_size[2 - d])
                                            for d in range(3))):
            lid = tuple(reversed(local_id))
            item = _ItemContext(
                tuple(group_id[d] * local_size[d] + lid[d] for d in range(3)),
                lid, group)
            frame = _WorkItemFrame(kernel)
            for formal, actual in zip(kernel.arguments, bound_args):
                frame.values[formal] = actual
            generator = self._run_function(kernel, frame, item, stats)
            items.append(generator)

        # Lockstep phase execution.
        finished = [False] * len(items)
        while not all(finished):
            at_barrier = 0
            finished_this_phase = 0
            for index, generator in enumerate(items):
                if finished[index]:
                    continue
                try:
                    signal = next(generator)
                except StopIteration:
                    finished[index] = True
                    finished_this_phase += 1
                    continue
                if signal is BARRIER:
                    at_barrier += 1
                else:
                    raise InterpError("unexpected yield from work item")
            # Every live item must make the same choice each phase: either
            # all reach the barrier or all run to completion.  Anything else
            # is barrier divergence — undefined behaviour in OpenCL, and a
            # hang on real hardware, so we fail loudly.
            if at_barrier and finished_this_phase:
                raise InterpError(
                    "divergent barrier in kernel {}: {} items at a barrier "
                    "while {} finished".format(kernel.name, at_barrier,
                                               finished_this_phase))
        stats.record_group(group_id, group.executed)

    # -- function interpretation -------------------------------------------------

    def _run_function(self, function, frame, item, stats):
        """Generator interpreting ``function``; yields BARRIER at barriers.

        The generator's return value (via StopIteration) is the function's
        return value.
        """
        values = frame.values
        group = item.group

        block = function.entry
        steps = 0
        while True:
            next_block = None
            for insn in block.instructions:
                steps += 1
                group.executed += 1
                if steps > self.max_steps:
                    raise InterpError(
                        "work item exceeded {} steps (infinite loop?)".format(
                            self.max_steps))
                op = insn.opcode

                if op == "alloca":
                    values[insn] = self._do_alloca(insn, function, item)
                elif op == "load":
                    values[insn] = values_of(insn.pointer, values).load()
                elif op == "store":
                    pointer = values_of(insn.pointer, values)
                    pointer.store(values_of(insn.value, values))
                elif op == "ptradd":
                    base = values_of(insn.base, values)
                    index = values_of(insn.index, values)
                    values[insn] = base.add(index)
                elif op == "binop":
                    values[insn] = arith.eval_binop(
                        insn.op,
                        values_of(insn.lhs, values),
                        values_of(insn.rhs, values),
                        insn.type)
                elif op == "cmp":
                    values[insn] = arith.eval_cmp(
                        insn.op,
                        values_of(insn.lhs, values),
                        values_of(insn.rhs, values))
                elif op == "cast":
                    values[insn] = self._do_cast(insn, values)
                elif op == "select":
                    cond = values_of(insn.operands[0], values)
                    chosen = insn.operands[1] if cond else insn.operands[2]
                    values[insn] = values_of(chosen, values)
                elif op == "call":
                    result = yield from self._do_call(insn, values, item, stats)
                    if not insn.type.is_void():
                        values[insn] = result
                elif op == "atomicrmw":
                    values[insn] = self._do_atomic(insn, values, stats)
                elif op == "barrier":
                    stats.barriers += 1
                    yield BARRIER
                elif op == "br":
                    next_block = insn.target
                elif op == "condbr":
                    cond = values_of(insn.cond, values)
                    next_block = insn.then_block if cond else insn.else_block
                elif op == "ret":
                    return values_of(insn.value, values) if insn.value is not None \
                        else None
                else:
                    raise InterpError("cannot interpret {}".format(op))
            if next_block is None:
                raise InterpError("block fell through without terminator")
            block = next_block

    # -- instruction helpers -----------------------------------------------------

    def _do_alloca(self, insn, function, item):
        if insn.address_space == T.LOCAL:
            # Work-group shared: one region per (group, alloca).
            region = item.group.local_regions.get(insn)
            if region is None:
                if insn.allocated_type.is_pointer():
                    region = MemoryRegion(0, T.LOCAL, insn.name, kind="object",
                                          object_slots=insn.count)
                else:
                    region = MemoryRegion(
                        insn.count * scalar_size(insn.allocated_type),
                        T.LOCAL, insn.name)
                item.group.local_regions[insn] = region
            return Pointer(region, insn.allocated_type, 0)
        if insn.allocated_type.is_pointer():
            region = MemoryRegion(0, T.PRIVATE, insn.name, kind="object",
                                  object_slots=insn.count)
        else:
            region = MemoryRegion(insn.count * scalar_size(insn.allocated_type),
                                  T.PRIVATE, insn.name)
        return Pointer(region, insn.allocated_type, 0)

    def _do_cast(self, insn, values):
        value = values_of(insn.value, values)
        to_type = insn.type
        if isinstance(value, Pointer):
            if to_type.is_pointer():
                return value.retype(to_type.pointee)
            raise InterpError("pointer-to-scalar casts are not supported")
        if to_type.is_pointer():
            raise InterpError("scalar-to-pointer casts are not supported")
        return arith.eval_cast(value, to_type)

    def _do_call(self, insn, values, item, stats):
        args = [values_of(op, values) for op in insn.operands]
        if insn.is_intrinsic():
            return self._do_intrinsic(insn.callee, args, item)
        callee = insn.callee
        frame = _WorkItemFrame(callee)
        for formal, actual in zip(callee.arguments, args):
            frame.values[formal] = actual
        result = yield from self._run_function(callee, frame, item, stats)
        return result

    def _do_intrinsic(self, name, args, item):
        global_size, local_size, num_groups, work_dim = self._launch_geometry
        if name == "get_work_dim":
            return work_dim
        if name in B.WORKITEM_BUILTINS:
            d = int(args[0]) if args else 0
            if not 0 <= d < 3:
                return 0 if name != "get_global_size" else 1
            return {
                "get_global_id": lambda: item.global_id[d],
                "get_local_id": lambda: item.local_id[d],
                "get_group_id": lambda: item.group.group_id[d],
                "get_global_size": lambda: global_size[d],
                "get_local_size": lambda: local_size[d],
                "get_num_groups": lambda: num_groups[d],
                "get_global_offset": lambda: 0,
            }[name]()
        if name in B.MATH_BUILTINS:
            return B.evaluate_math(name, args)
        raise InterpError("unknown intrinsic {!r}".format(name))

    def _do_atomic(self, insn, values, stats):
        stats.atomic_ops += 1
        pointer = values_of(insn.pointer, values)
        old = pointer.load()
        op = insn.op
        ty = insn.type
        if op == "add":
            new = arith.eval_binop("add", old, values_of(insn.operands[1], values), ty)
        elif op == "sub":
            new = arith.eval_binop("sub", old, values_of(insn.operands[1], values), ty)
        elif op == "min":
            new = min(old, values_of(insn.operands[1], values))
        elif op == "max":
            new = max(old, values_of(insn.operands[1], values))
        elif op == "xchg":
            new = values_of(insn.operands[1], values)
        elif op == "inc":
            new = arith.eval_binop("add", old, 1, ty)
        elif op == "dec":
            new = arith.eval_binop("sub", old, 1, ty)
        elif op == "cmpxchg":
            comparand = values_of(insn.operands[1], values)
            new_value = values_of(insn.operands[2], values)
            new = new_value if old == comparand else old
        else:
            raise InterpError("unknown atomic {}".format(op))
        pointer.store(new)
        return old


def values_of(operand, values):
    """Resolve an IR operand to its runtime value."""
    if isinstance(operand, Constant):
        return operand.value
    if isinstance(operand, Undef):
        return 0
    value = values.get(operand)
    if value is None and operand not in values:
        raise InterpError("operand {!r} has no value (verifier should have "
                          "caught this)".format(operand))
    return value


def _normalize(size):
    if isinstance(size, int):
        size = (size,)
    size = tuple(int(s) for s in size)
    return size + (1,) * (3 - len(size))


def len_nonone(size):
    """Dimensionality of a normalised size tuple."""
    dims = 3
    while dims > 1 and size[dims - 1] == 1:
        dims -= 1
    return dims
