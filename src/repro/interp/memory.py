"""Simulated device memory: typed regions and fat pointers.

A :class:`MemoryRegion` owns raw bytes (numpy ``uint8``) and hands out typed
views, so reinterpreting casts (``(global int*)float_buffer``) behave like
they do on hardware.  Pointer-typed private slots (a register holding a
pointer) use object storage instead, since fat pointers are Python objects.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MemoryFault
from repro.kernelc import types as T

_DTYPES = {
    "bool": np.uint8,
    "int": np.int32,
    "uint": np.uint32,
    "long": np.int64,
    "ulong": np.uint64,
    "float": np.float32,
}


def dtype_for(ty):
    """numpy dtype used to store scalar type ``ty``."""
    return np.dtype(_DTYPES[ty.kind])


def scalar_size(ty):
    if ty.is_pointer():
        return 8
    return dtype_for(ty).itemsize


class MemoryRegion:
    """A contiguous allocation in some address space.

    ``kind`` is ``raw`` (scalar data, reinterpretable) or ``object`` (slots
    holding Python values such as fat pointers).  ``provenance`` optionally
    names the tenant/session/request the allocation is billed to
    (:class:`repro.attribution.Provenance`); it rides through
    reinterpreting casts and typed views untouched, since those alias the
    same bytes.
    """

    __slots__ = ("name", "space", "kind", "data", "_views", "size_bytes",
                 "provenance")

    def __init__(self, size_bytes, space, name="", kind="raw", object_slots=0,
                 provenance=None):
        self.name = name
        self.space = space
        self.kind = kind
        self.provenance = provenance
        if kind == "raw":
            self.data = np.zeros(int(size_bytes), dtype=np.uint8)
            self.size_bytes = int(size_bytes)
        else:
            self.data = [None] * object_slots
            self.size_bytes = object_slots * 8
        self._views = {}

    def view(self, ty):
        """Typed numpy view of the raw bytes for scalar type ``ty``."""
        if self.kind != "raw":
            raise MemoryFault("typed view of an object region {!r}".format(self.name))
        key = ty.kind
        out = self._views.get(key)
        if out is None:
            dt = dtype_for(ty)
            usable = (self.size_bytes // dt.itemsize) * dt.itemsize
            out = self.data[:usable].view(dt)
            self._views[key] = out
        return out

    def fill_from(self, array):
        """Copy a numpy array's bytes into the region (host -> device)."""
        raw = np.ascontiguousarray(array).view(np.uint8).reshape(-1)
        if raw.size > self.size_bytes:
            raise MemoryFault("host array larger than region {!r}".format(self.name))
        self.data[:raw.size] = raw

    def to_array(self, dtype, count=None):
        """Read the region back as a typed numpy array (device -> host)."""
        dt = np.dtype(dtype)
        view = self.data.view(dt)
        return np.array(view if count is None else view[:count])


class Pointer:
    """Fat pointer: region + element type + element offset."""

    __slots__ = ("region", "elem_type", "offset")

    def __init__(self, region, elem_type, offset=0):
        self.region = region
        self.elem_type = elem_type
        self.offset = int(offset)

    def add(self, delta):
        return Pointer(self.region, self.elem_type, self.offset + int(delta))

    def retype(self, elem_type):
        """Reinterpret cast: same byte address, new element type."""
        if elem_type == self.elem_type:
            return self
        if self.region.kind == "object":
            return Pointer(self.region, elem_type, self.offset)
        old_size = scalar_size(self.elem_type)
        new_size = scalar_size(elem_type)
        byte_offset = self.offset * old_size
        if byte_offset % new_size:
            raise MemoryFault("misaligned pointer reinterpretation")
        return Pointer(self.region, elem_type, byte_offset // new_size)

    # -- access ---------------------------------------------------------------

    def _check(self, index):
        if self.region.kind == "object":
            if not (0 <= index < len(self.region.data)):
                raise MemoryFault(
                    "object slot {} out of range in {!r}".format(
                        index, self.region.name))
            return
        size = scalar_size(self.elem_type)
        if not (0 <= index * size and (index + 1) * size <= self.region.size_bytes):
            raise MemoryFault(
                "access at element {} ({}B) outside region {!r} of {}B".format(
                    index, size, self.region.name, self.region.size_bytes))

    def load(self):
        self._check(self.offset)
        if self.region.kind == "object":
            value = self.region.data[self.offset]
            if value is None:
                raise MemoryFault("load of uninitialised pointer slot")
            return value
        raw = self.region.view(self.elem_type)[self.offset]
        if self.elem_type.is_float():
            return float(raw)
        if self.elem_type.is_bool():
            return bool(raw)
        return int(raw)

    def store(self, value):
        self._check(self.offset)
        if self.region.kind == "object":
            self.region.data[self.offset] = value
            return
        self.region.view(self.elem_type)[self.offset] = value

    def __eq__(self, other):
        return (isinstance(other, Pointer) and other.region is self.region
                and other.offset == self.offset
                and other.elem_type == self.elem_type)

    def __hash__(self):
        return hash((id(self.region), self.offset, self.elem_type))

    def __repr__(self):
        return "Pointer({}[{}] {})".format(
            self.region.name or "anon", self.offset, self.elem_type)


class LocalArg:
    """Placeholder for a kernel ``local`` pointer argument.

    The host passes only a *size* for local arguments (``clSetKernelArg``
    with a NULL pointer); the executor materialises a fresh region per
    work-group.
    """

    __slots__ = ("size_bytes",)

    def __init__(self, size_bytes):
        self.size_bytes = int(size_bytes)

    def __repr__(self):
        return "LocalArg({}B)".format(self.size_bytes)


def alloc_buffer(ty, count, space=T.GLOBAL, name="", provenance=None):
    """Allocate a region of ``count`` elements of scalar type ``ty``,
    optionally billed to ``provenance``."""
    region = MemoryRegion(count * scalar_size(ty), space, name,
                          provenance=provenance)
    return Pointer(region, ty, 0)
