"""Functional datasets for the 25 corpus kernels.

Each builder returns a :class:`KernelInstance`: argument descriptors plus a
small launch geometry, sized for the functional interpreter.  The
equivalence test suite runs every kernel twice — original and
accelOS-transformed — on fresh copies of these datasets and asserts
bit-identical output buffers.

Argument descriptors:

* ``("in", array)``   — read-only buffer initialised from the array
* ``("out", array)``  — writable buffer (initial contents from the array)
* ``("scalar", v)``   — scalar argument
"""

from __future__ import annotations

import numpy as np

from repro.util import make_rng

I32 = np.int32
F32 = np.float32


class KernelInstance:
    """A ready-to-run functional configuration of one kernel."""

    __slots__ = ("benchmark", "kernel", "args", "global_size", "local_size")

    def __init__(self, benchmark, kernel, args, global_size, local_size):
        self.benchmark = benchmark
        self.kernel = kernel
        self.args = args
        self.global_size = global_size
        self.local_size = local_size

    def fresh_args(self):
        """Deep copies of the argument arrays (one run's worth)."""
        out = []
        for kind, value in self.args:
            if kind == "scalar":
                out.append((kind, value))
            else:
                out.append((kind, np.array(value, copy=True)))
        return out

    def __repr__(self):
        return "<KernelInstance {}:{} g={} l={}>".format(
            self.benchmark, self.kernel, self.global_size, self.local_size)


def _bfs(rng):
    n = 256
    degrees = rng.integers(0, 8, n)
    row_offsets = np.zeros(n + 1, dtype=I32)
    row_offsets[1:] = np.cumsum(degrees)
    columns = rng.integers(0, n, int(row_offsets[-1])).astype(I32)
    levels = np.full(n, -1, dtype=I32)
    levels[rng.integers(0, n, 8)] = 0
    changed = np.zeros(1, dtype=I32)
    return KernelInstance("bfs", "bfs_kernel", [
        ("in", row_offsets), ("in", columns), ("out", levels),
        ("out", changed), ("scalar", 0), ("scalar", n),
    ], (n,), (64,))


def _cutcp(rng):
    grid_dim = 8
    n_atoms = 24
    atoms = (rng.random(4 * n_atoms) * grid_dim).astype(F32)
    lattice = np.zeros(grid_dim ** 3, dtype=F32)
    return KernelInstance("cutcp", "lattice6overlap", [
        ("in", atoms), ("out", lattice),
        ("scalar", n_atoms), ("scalar", grid_dim), ("scalar", 9.0),
    ], (512,), (128,))


def _histo_prescan(rng):
    n = 1500
    data = rng.integers(-1000, 1000, n).astype(I32)
    minmax = np.array([2**31 - 1, -(2**31 - 1)], dtype=I32)
    return KernelInstance("histo", "histo_prescan", [
        ("in", data), ("out", minmax), ("scalar", n),
    ], (512,), (128,))


def _histo_intermediates(rng):
    n = 900
    data = rng.integers(-500, 500, n).astype(I32)
    coords = np.zeros(1024, dtype=I32)
    return KernelInstance("histo", "histo_intermediates", [
        ("in", data), ("out", coords), ("scalar", n), ("scalar", 64),
    ], (1024,), (256,))


def _histo_main(rng):
    n = 1200
    coords = rng.integers(0, 64, n).astype(I32)
    histo = np.zeros(64, dtype=I32)
    return KernelInstance("histo", "histo_main", [
        ("in", coords), ("out", histo), ("scalar", n),
    ], (512,), (128,))


def _histo_final(rng):
    bins = 64
    histo = rng.integers(0, 600, bins).astype(I32)
    out = np.zeros(bins, dtype=I32)
    return KernelInstance("histo", "histo_final", [
        ("in", histo), ("out", out), ("scalar", bins),
    ], (128,), (32,))


def _lbm(rng):
    n = 1024
    src = rng.random(n, dtype=F32)
    dst = np.zeros(n, dtype=F32)
    return KernelInstance("lbm", "lbm_stream_collide", [
        ("in", src), ("out", dst),
        ("scalar", 32), ("scalar", n), ("scalar", 1.85),
    ], (n,), (128,))


def _binning(rng):
    n = 512
    samples = rng.random(n, dtype=F32)
    bin_of = np.zeros(n, dtype=I32)
    bin_counts = np.zeros(32, dtype=I32)
    return KernelInstance("mri-gridding", "binning", [
        ("in", samples), ("out", bin_of), ("out", bin_counts),
        ("scalar", n), ("scalar", 32),
    ], (n,), (64,))


def _reorder(rng):
    n = 512
    samples = rng.random(n, dtype=F32)
    dest = rng.permutation(n).astype(I32)
    reordered = np.zeros(n, dtype=F32)
    return KernelInstance("mri-gridding", "reorder", [
        ("in", samples), ("in", dest), ("out", reordered), ("scalar", n),
    ], (n,), (64,))


def _gridding(rng):
    n_cells = 256
    per_cell = rng.integers(0, 6, n_cells)
    cell_start = np.zeros(n_cells + 1, dtype=I32)
    cell_start[1:] = np.cumsum(per_cell)
    n_samples = int(cell_start[-1])
    samples = (rng.random(max(n_samples, 1)) * n_cells).astype(F32)
    grid = np.zeros(n_cells, dtype=F32)
    return KernelInstance("mri-gridding", "gridding_gpu", [
        ("in", samples), ("in", cell_start), ("out", grid),
        ("scalar", n_cells), ("scalar", 4.0),
    ], (n_cells,), (64,))


def _split_sort(rng):
    n = 512
    keys = rng.integers(0, 1 << 16, n).astype(I32)
    keys_out = np.zeros(n, dtype=I32)
    block_counts = np.zeros(n // 256, dtype=I32)
    return KernelInstance("mri-gridding", "split_sort", [
        ("in", keys), ("out", keys_out), ("out", block_counts),
        ("scalar", 3), ("scalar", n),
    ], (n,), (256,))


def _split_rearrange(rng):
    n = 512
    keys = rng.integers(0, 10_000, n).astype(I32)
    offsets = rng.integers(0, 64, n // 64).astype(I32)
    keys_out = np.zeros(n, dtype=I32)
    return KernelInstance("mri-gridding", "split_rearrange", [
        ("in", keys), ("in", offsets), ("out", keys_out), ("scalar", n),
    ], (n,), (64,))


def _scan_l1(rng):
    n = 1024
    data = rng.random(n, dtype=F32)
    output = np.zeros(n, dtype=F32)
    block_sums = np.zeros(n // 256, dtype=F32)
    return KernelInstance("mri-gridding", "scan_l1", [
        ("in", data), ("out", output), ("out", block_sums), ("scalar", n),
    ], (n,), (256,))


def _scan_inter1(rng):
    n_blocks = 16
    sums = rng.random(n_blocks, dtype=F32)
    return KernelInstance("mri-gridding", "scan_inter1", [
        ("out", sums), ("scalar", n_blocks),
    ], (256,), (256,))


def _uniform_add(rng):
    n = 1024
    data = rng.random(n, dtype=F32)
    offsets = rng.random(n // 256, dtype=F32)
    return KernelInstance("mri-gridding", "uniform_add", [
        ("out", data), ("in", offsets), ("scalar", n),
    ], (n,), (256,))


def _phi_mag(rng):
    n = 512
    phi_r = rng.random(n, dtype=F32)
    phi_i = rng.random(n, dtype=F32)
    mag = np.zeros(n, dtype=F32)
    return KernelInstance("mri-q", "compute_phi_mag", [
        ("in", phi_r), ("in", phi_i), ("out", mag), ("scalar", n),
    ], (n,), (64,))


def _compute_q(rng):
    n_k = 24
    n_x = 256
    kx = rng.random(n_k, dtype=F32)
    ky = rng.random(n_k, dtype=F32)
    mag = rng.random(n_k, dtype=F32)
    x = rng.random(n_x, dtype=F32)
    q_r = np.zeros(n_x, dtype=F32)
    q_i = np.zeros(n_x, dtype=F32)
    return KernelInstance("mri-q", "compute_q", [
        ("in", kx), ("in", ky), ("in", mag), ("in", x),
        ("out", q_r), ("out", q_i), ("scalar", n_k), ("scalar", n_x),
    ], (n_x,), (64,))


def _sad(kernel, n_blocks, width, rng):
    cur = rng.integers(0, 256, width + 32).astype(I32)
    ref = rng.integers(0, 256, width + 32).astype(I32)
    out = np.zeros(n_blocks, dtype=I32)
    return KernelInstance("sad", kernel, [
        ("in", cur), ("in", ref), ("out", out),
        ("scalar", width), ("scalar", n_blocks),
    ], (256,), (64,))


def _sad_8(rng):
    return _sad("mb_sad_calc_8", 240, 512, rng)


def _sad_16(rng):
    return _sad("mb_sad_calc_16", 200, 1024, rng)


def _sad_larger(kernel, factor, rng):
    n_out = 128
    sad_in = rng.integers(0, 4000, factor * n_out).astype(I32)
    out = np.zeros(n_out, dtype=I32)
    return KernelInstance("sad", kernel, [
        ("in", sad_in), ("out", out), ("scalar", n_out),
    ], (256,), (64,))


def _sad_larger_8(rng):
    return _sad_larger("larger_sad_calc_8", 2, rng)


def _sad_larger_16(rng):
    return _sad_larger("larger_sad_calc_16", 4, rng)


def _sgemm(rng):
    n, k = 32, 64
    a = rng.random(n * k, dtype=F32)
    b = rng.random(n * k, dtype=F32)
    c = rng.random(n * n, dtype=F32)
    return KernelInstance("sgemm", "mysgemm_nt", [
        ("in", a), ("in", b), ("out", c),
        ("scalar", n), ("scalar", k), ("scalar", 1.5), ("scalar", 0.5),
    ], (n, n), (16, 8))


def _spmv(rng):
    n_rows = 256
    per_row = rng.integers(0, 10, n_rows)
    row_ptr = np.zeros(n_rows + 1, dtype=I32)
    row_ptr[1:] = np.cumsum(per_row)
    nnz = int(row_ptr[-1])
    values = rng.random(max(nnz, 1), dtype=F32)
    columns = rng.integers(0, n_rows, max(nnz, 1)).astype(I32)
    x = rng.random(n_rows, dtype=F32)
    y = np.zeros(n_rows, dtype=F32)
    return KernelInstance("spmv", "spmv_jds", [
        ("in", values), ("in", columns), ("in", row_ptr), ("in", x),
        ("out", y), ("scalar", n_rows),
    ], (n_rows,), (64,))


def _stencil(rng):
    nx, ny = 64, 32
    a0 = rng.random(nx * ny, dtype=F32)
    a_next = np.zeros(nx * ny, dtype=F32)
    return KernelInstance("stencil", "stencil_block2d", [
        ("in", a0), ("out", a_next),
        ("scalar", nx), ("scalar", ny), ("scalar", 0.5), ("scalar", 0.125),
    ], (nx, ny), (16, 16))


def _tpacf(rng):
    n_points = 256
    angles = rng.random(n_points, dtype=F32)
    hist = np.zeros(32, dtype=I32)
    return KernelInstance("tpacf", "gen_hists", [
        ("in", angles), ("out", hist), ("scalar", n_points), ("scalar", 32),
    ], (n_points,), (64,))


BUILDERS = {
    "bfs": _bfs,
    "cutcp": _cutcp,
    "histo_final": _histo_final,
    "histo_intermediates": _histo_intermediates,
    "histo_main": _histo_main,
    "histo_prescan": _histo_prescan,
    "lbm": _lbm,
    "mri-gridding_binning": _binning,
    "mri-gridding_gridding": _gridding,
    "mri-gridding_reorder": _reorder,
    "mri-gridding_scan_L1": _scan_l1,
    "mri-gridding_scan_inter1": _scan_inter1,
    "mri-gridding_splitRearrange": _split_rearrange,
    "mri-gridding_splitSort": _split_sort,
    "mri-gridding_uniformAdd": _uniform_add,
    "mri-q_ComputePhiMag": _phi_mag,
    "mri-q_ComputeQ": _compute_q,
    "sad_calc_16": _sad_16,
    "sad_calc_8": _sad_8,
    "sad_larger_calc_16": _sad_larger_16,
    "sad_larger_calc_8": _sad_larger_8,
    "sgemm": _sgemm,
    "spmv": _spmv,
    "stencil": _stencil,
    "tpacf": _tpacf,
}


def build_instance(profile_name, seed=0):
    """Build the functional dataset for one corpus kernel."""
    rng = make_rng("dataset", profile_name, seed)
    return BUILDERS[profile_name](rng)
