"""The 25-kernel Parboil-like corpus: sources + timing profiles.

Each :class:`KernelProfile` couples

* a real mini OpenCL-C kernel (compiled, analysable, functionally
  executable — see :mod:`repro.workloads.sources`), and
* a timing profile for the simulator: launch geometry, per-work-group cost
  distribution and memory-bandwidth demand.

The cost/bandwidth numbers are synthetic but calibrated to reproduce the
qualitative mix the paper's evaluation rests on (§7.2 points at [31] for the
characterisation): isolated runtimes spanning ~40x, roughly a third of the
suite memory-bandwidth-bound (lbm, spmv, stencil, the scatter/gather
mri-gridding steps), several kernels too small to fill the device (scans,
sad reductions, ComputePhiMag), a few long compute-bound kernels (tpacf,
ComputeQ, cutcp, sgemm), and a handful with strongly imbalanced work groups
(bfs, spmv, sad, gridding, splitSort — the irregular-loop kernels).

Per-work-group costs are drawn deterministically per kernel from a lognormal
with the profile's coefficient of variation, so every experiment is
replayable.
"""

from __future__ import annotations

import numpy as np

from repro.ir import compile_source
from repro.ir.passes import ResourceAnalysis
from repro.sim.spec import KernelExecSpec
from repro.util import make_rng
from repro.workloads.sources import SOURCES


class KernelProfile:
    """Static description of one corpus kernel."""

    __slots__ = ("name", "benchmark", "kernel", "wg_size", "local_size",
                 "n_wgs", "wg_cost_us", "cost_cv", "mem_gbs_per_wg",
                 "sat_occupancy")

    def __init__(self, name, benchmark, kernel, local_size, n_wgs,
                 wg_cost_us, cost_cv, mem_gbs_per_wg, sat_occupancy):
        self.name = name
        self.benchmark = benchmark
        self.kernel = kernel
        self.local_size = local_size
        self.wg_size = int(np.prod(local_size))
        self.n_wgs = n_wgs
        self.wg_cost_us = wg_cost_us
        self.cost_cv = cost_cv
        self.mem_gbs_per_wg = mem_gbs_per_wg
        # Fraction of maximum per-CU occupancy at which the kernel's CU
        # throughput saturates: low for high-ILP compute kernels, high for
        # latency-bound streaming kernels (see repro.sim.gpu).
        self.sat_occupancy = sat_occupancy

    @property
    def source(self):
        return SOURCES[self.benchmark]

    def wg_costs(self):
        """Deterministic per-virtual-group costs (seconds, reference CU)."""
        rng = make_rng("wg-costs", self.name)
        mean = self.wg_cost_us * 1e-6
        if self.cost_cv <= 0:
            return np.full(self.n_wgs, mean)
        sigma = np.sqrt(np.log1p(self.cost_cv ** 2))
        draws = rng.lognormal(mean=-0.5 * sigma ** 2, sigma=sigma,
                              size=self.n_wgs)
        # Clip the lognormal tails: real work-group imbalance is bounded
        # (a work group is a fixed tile of the problem), and an unclipped
        # 10x outlier would dominate the whole kernel's makespan.
        draws = np.clip(draws, 0.3, 3.0)
        return mean * draws

    def exec_spec(self, registers_per_thread=None, local_mem_per_wg=None,
                  detail_scale=1):
        """Build the simulator spec (hardware mode, to be re-moded later).

        Resource demands default to the compiled kernel's static analysis;
        pass overrides to study hypotheticals.  ``detail_scale`` refines the
        virtual-group granularity (``s`` times more groups, each ``1/s`` the
        cost -- total work unchanged): sweeps use the coarse default for
        tractability, single-kernel studies the finer granularity of real
        Parboil grids, where the 6.4 chunking effects are measurable.
        """
        if registers_per_thread is None or local_mem_per_wg is None:
            usage = kernel_resource_usage(self)
            if registers_per_thread is None:
                registers_per_thread = usage.registers
            if local_mem_per_wg is None:
                local_mem_per_wg = usage.local_memory_bytes
        costs = self.wg_costs()
        if detail_scale > 1:
            costs = np.repeat(costs, detail_scale) / detail_scale
        return KernelExecSpec(
            name=self.name,
            wg_threads=self.wg_size,
            wg_costs=costs,
            mem_rate_per_wg=self.mem_gbs_per_wg * 1e9,
            registers_per_thread=registers_per_thread,
            local_mem_per_wg=local_mem_per_wg,
            sat_occupancy=self.sat_occupancy,
        )

    def __repr__(self):
        return "<KernelProfile {} ({} WGs x {} thr)>".format(
            self.name, self.n_wgs, self.wg_size)


def _p(name, benchmark, kernel, local_size, n_wgs, cost, cv, mem, sat):
    return KernelProfile(name, benchmark, kernel, local_size, n_wgs,
                         cost, cv, mem, sat)


# One profile per Parboil OpenCL kernel (25 in total, paper §7.2).
# Columns: local size, #WGs, full-occupancy WG cost (us, reference CU),
# cost CV (imbalance), bandwidth demand per WG (GB/s), saturation occupancy.
_PROFILES = [
    _p("bfs", "bfs", "bfs_kernel", (512,), 256, 130.0, 0.50, 2.0, 0.50),
    _p("cutcp", "cutcp", "lattice6overlap",
       (128,), 1024, 1300.0, 0.08, 0.3, 0.25),
    _p("histo_final", "histo", "histo_final",
       (512,), 64, 180.0, 0.10, 1.8, 0.45),
    _p("histo_intermediates", "histo", "histo_intermediates",
       (512,), 128, 110.0, 0.10, 1.8, 0.45),
    _p("histo_main", "histo", "histo_main",
       (512,), 96, 380.0, 0.30, 2.2, 0.45),
    _p("histo_prescan", "histo", "histo_prescan",
       (128,), 64, 700.0, 0.10, 2.0, 0.50),
    _p("lbm", "lbm", "lbm_stream_collide",
       (128,), 2048, 400.0, 0.10, 1.4, 0.60),
    _p("mri-gridding_binning", "mri-gridding", "binning",
       (256,), 256, 250.0, 0.20, 1.5, 0.45),
    _p("mri-gridding_gridding", "mri-gridding", "gridding_gpu",
       (256,), 768, 380.0, 0.60, 1.0, 0.30),
    _p("mri-gridding_reorder", "mri-gridding", "reorder",
       (256,), 256, 120.0, 0.15, 2.2, 0.60),
    _p("mri-gridding_scan_L1", "mri-gridding", "scan_l1",
       (256,), 64, 210.0, 0.10, 1.8, 0.50),
    _p("mri-gridding_scan_inter1", "mri-gridding", "scan_inter1",
       (256,), 8, 280.0, 0.05, 1.0, 0.50),
    _p("mri-gridding_splitRearrange", "mri-gridding", "split_rearrange",
       (256,), 192, 110.0, 0.10, 2.2, 0.60),
    _p("mri-gridding_splitSort", "mri-gridding", "split_sort",
       (256,), 384, 380.0, 0.45, 2.0, 0.40),
    _p("mri-gridding_uniformAdd", "mri-gridding", "uniform_add",
       (256,), 96, 110.0, 0.05, 2.2, 0.55),
    _p("mri-q_ComputePhiMag", "mri-q", "compute_phi_mag",
       (256,), 24, 260.0, 0.05, 1.0, 0.50),
    _p("mri-q_ComputeQ", "mri-q", "compute_q",
       (256,), 512, 1700.0, 0.05, 0.2, 0.25),
    _p("sad_calc_16", "sad", "mb_sad_calc_16",
       (128,), 96, 500.0, 0.70, 1.2, 0.45),
    _p("sad_calc_8", "sad", "mb_sad_calc_8",
       (128,), 384, 300.0, 0.70, 1.4, 0.45),
    _p("sad_larger_calc_16", "sad", "larger_sad_calc_16",
       (128,), 32, 240.0, 0.20, 1.5, 0.45),
    _p("sad_larger_calc_8", "sad", "larger_sad_calc_8",
       (128,), 64, 300.0, 0.20, 1.5, 0.45),
    _p("sgemm", "sgemm", "mysgemm_nt", (16, 8), 512, 900.0, 0.05, 0.5, 0.25),
    _p("spmv", "spmv", "spmv_jds", (256,), 512, 200.0, 0.45, 2.2, 0.60),
    _p("stencil", "stencil", "stencil_block2d",
       (16, 16), 1024, 160.0, 0.08, 2.6, 0.60),
    _p("tpacf", "tpacf", "gen_hists", (256,), 384, 2400.0, 0.15, 0.3, 0.20),
]

_BY_NAME = {p.name: p for p in _PROFILES}
PROFILE_NAMES = tuple(sorted(_BY_NAME))

assert len(_PROFILES) == 25, "the Parboil OpenCL suite has 25 kernels"

_module_cache = {}
_usage_cache = {}


def all_profiles():
    """All 25 profiles, alphabetically by name (the paper's ordering)."""
    return [_BY_NAME[name] for name in PROFILE_NAMES]


def profile_by_name(name):
    return _BY_NAME[name]


def compiled_module(benchmark):
    """Compile (and cache) a benchmark's kernel module."""
    module = _module_cache.get(benchmark)
    if module is None:
        module = compile_source(SOURCES[benchmark], name=benchmark)
        _module_cache[benchmark] = module
    return module


def kernel_resource_usage(profile):
    """Static resource usage of the profile's kernel (cached)."""
    usage = _usage_cache.get(profile.name)
    if usage is None:
        module = compiled_module(profile.benchmark)
        usage = ResourceAnalysis().analyze(module.get(profile.kernel))
        _usage_cache[profile.name] = usage
    return usage
