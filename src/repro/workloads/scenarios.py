"""Scenario traffic engine: realistic arrival patterns for the open system.

The paper evaluates fairness under fixed co-run mixes; a production
deployment instead sees *traffic* — bursty, diurnal, heavy-tailed,
multi-tenant.  This module defines composable, seeded traffic models that
all compile down to the :class:`~repro.workloads.arrivals.ArrivalRequest`
stream format, so everything downstream (``GPUSimulator.run_open``,
:class:`~repro.harness.open_system.OpenSystemExperiment`,
:class:`~repro.harness.open_system.FleetOpenSystemExperiment`) consumes
them unchanged.

Traffic models
--------------

* :class:`PoissonScenario` — memoryless steady load (the PR 1 generator
  behind a scenario interface); the control every other model is compared
  against.
* :class:`MMPPScenario` — Markov-modulated Poisson: an ON/OFF state chain
  with exponential sojourns; the ON state fires ``burst`` times faster than
  the OFF state.  The time-average rate equals the requested rate, so
  scenarios are load-comparable.
* :class:`DiurnalScenario` — sinusoid-modulated Poisson via thinning
  (Lewis & Shedler): ``lambda(t) = rate * (1 + amplitude*sin(2*pi*t/T))``.
  The period is expressed in *expected arrivals per cycle* so one scenario
  description works at any absolute rate.
* :class:`MultiTenantScenario` — a weighted mix of per-tenant
  sub-scenarios (any of the above — scenarios compose), each substream
  tagged with its tenant (and optionally pinned to a device); merged by
  arrival time.

Service-demand shaping is orthogonal to the arrival-time process: every
scenario accepts a ``weights`` vector over its kernel name pool, and
:func:`heavy_tailed_weights` builds one whose *service demand* distribution
follows a truncated Pareto or lognormal over the corpus's ~40x reference
demand span (mostly light kernels, occasionally a monster — the classic
production profile).

Seeding contract
----------------

``iter_arrivals(rate, count, seed)`` is a pure function of
``(scenario parameters, rate, count, seed)`` via :func:`repro.util.make_rng`
— the same call replays bit-for-bit, different seeds give independent
streams, and no scenario shares RNG state with another (multi-tenant
substreams derive per-tenant child seeds).  Scenario *construction* never
draws randomness.  ``generate(...)`` is exactly
``list(iter_arrivals(...))``, so the eager and lazy paths cannot diverge.

Laziness contract
-----------------

:meth:`TrafficScenario.iter_arrivals` yields arrivals one at a time in
nondecreasing arrival-time order and holds O(1) state per simple scenario
(O(#tenants) for the multi-tenant merge) — million-request streams never
materialise.  See ``docs/SCALING.md``.

Registry
--------

:data:`SCENARIOS` maps scenario names to zero-argument factories;
:func:`from_name` resolves a name and generates its stream at an offered
load (``rho = rate * E[S_isolated]``, the PR 1 load convention).
"""

from __future__ import annotations

import heapq
import math

from repro.errors import SimulationError
from repro.util import make_rng
from repro.workloads.arrivals import ArrivalRequest
from repro.workloads.parboil import PROFILE_NAMES, profile_by_name


def reference_demand(name):
    """Device-independent service demand of one corpus kernel (seconds of
    reference-CU work: mean WG cost times group count)."""
    profile = profile_by_name(name)
    return profile.n_wgs * profile.wg_cost_us * 1e-6


def heavy_tailed_weights(names=None, dist="pareto", shape=1.1):
    """Name-selection weights making the *service demand* heavy-tailed.

    Ranks the pool by :func:`reference_demand` and assigns each kernel the
    probability mass its demand bin carries under a truncated Pareto
    (``dist="pareto"``, tail exponent ``shape``) or lognormal
    (``dist="lognormal"``, ``sigma = shape``) over the pool's demand span.
    Bin edges are geometric midpoints between consecutive distinct demands,
    so ties share one bin and the weighting is a pure function of the pool.

    Returns ``(names, weights)`` with names in demand order and weights
    summing to 1.
    """
    pool = list(names) if names is not None else list(PROFILE_NAMES)
    if not pool:
        raise SimulationError("empty kernel name pool")
    if shape <= 0:
        raise SimulationError("tail shape must be positive")
    ranked = sorted(pool, key=lambda n: (reference_demand(n), n))
    demands = [reference_demand(n) for n in ranked]
    low, high = demands[0], demands[-1]
    if low <= 0:
        raise SimulationError("reference demands must be positive")
    if high == low:
        return ranked, [1.0 / len(ranked)] * len(ranked)

    def cdf(x):
        x = min(max(x, low), high)
        if dist == "pareto":
            # Pareto(alpha) truncated to [low, high]
            a = 1.0 - (low / x) ** shape
            total = 1.0 - (low / high) ** shape
            return a / total
        if dist == "lognormal":
            # lognormal(mu, sigma) truncated to [low, high]; mu centres the
            # distribution on the pool's geometric mean
            mu = 0.5 * (math.log(low) + math.log(high))
            z = (math.log(x) - mu) / shape
            phi = 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))
            z_lo = (math.log(low) - mu) / shape
            z_hi = (math.log(high) - mu) / shape
            lo = 0.5 * (1.0 + math.erf(z_lo / math.sqrt(2.0)))
            hi = 0.5 * (1.0 + math.erf(z_hi / math.sqrt(2.0)))
            return (phi - lo) / (hi - lo)
        raise SimulationError("unknown demand distribution {!r}".format(dist))

    # bin per *distinct* demand so tied kernels split one bin's mass
    distinct = sorted(set(demands))
    multiplicity = {d: demands.count(d) for d in distinct}
    edges = [low]
    for a, b in zip(distinct, distinct[1:]):
        edges.append(math.sqrt(a * b))
    edges.append(high)
    bin_mass = {
        d: max(0.0, cdf(edges[i + 1]) - cdf(edges[i]))
        for i, d in enumerate(distinct)
    }
    weights = [bin_mass[d] / multiplicity[d] for d in demands]
    total = sum(weights)
    if total <= 0:
        raise SimulationError("degenerate demand weighting")
    return ranked, [w / total for w in weights]


class TrafficScenario:
    """Base class: a named, parameterised arrival-stream model.

    Subclasses implement :meth:`generate`; all randomness must flow through
    :meth:`_rng` so the seeding contract holds.  ``names``/``weights``
    configure the kernel mix (uniform over the corpus by default).
    """

    kind = "abstract"

    def __init__(self, names=None, weights=None, description=""):
        self.names = list(names) if names is not None else list(PROFILE_NAMES)
        if not self.names:
            raise SimulationError("empty kernel name pool")
        if weights is not None:
            weights = [float(w) for w in weights]
            if len(weights) != len(self.names):
                raise SimulationError(
                    "need one weight per kernel name ({} != {})".format(
                        len(weights), len(self.names)))
            if any(w < 0 for w in weights) or sum(weights) <= 0:
                raise SimulationError("weights must be non-negative with a "
                                      "positive sum")
            total = sum(weights)
            weights = [w / total for w in weights]
        self.weights = weights
        self.description = description

    # -- seeding -----------------------------------------------------------

    def _seed_parts(self):
        """Scenario parameters that distinguish RNG streams (override and
        extend in subclasses)."""
        parts = [self.kind, *self.names]
        if self.weights is not None:
            parts += ["w"] + ["{:.12g}".format(w) for w in self.weights]
        return parts

    def _rng(self, rate, count, seed):
        return make_rng("scenario", rate, count, seed, *self._seed_parts())

    # -- building blocks ---------------------------------------------------

    def _pick_name(self, rng):
        if self.weights is None:
            return self.names[int(rng.integers(len(self.names)))]
        u = float(rng.random())
        acc = 0.0
        for name, weight in zip(self.names, self.weights):
            acc += weight
            if u < acc:
                return name
        return self.names[-1]

    def _check(self, rate, count):
        if rate <= 0:
            raise SimulationError("arrival rate must be positive")
        if count <= 0:
            raise SimulationError("need at least one arrival")

    # -- interface ---------------------------------------------------------

    def restrict_names(self, names):
        """Restrict the kernel pool while keeping the traffic shape.

        A demand weighting is *conditioned* on the surviving pool — kept
        names retain their relative weights, renormalised — so a
        heavy-tailed scenario stays heavy-tailed over the subset rather
        than silently degrading to uniform.  Restricting a weighted
        scenario to a name outside its pool is an error (there is no
        weight to condition on).  Composite scenarios override to reach
        their sub-scenarios.
        """
        names = list(names)
        if not names:
            raise SimulationError("empty kernel name pool")
        if self.weights is None:
            # same contract as the weighted branch: a *restriction* draws
            # from the current pool — anything else would silently expand
            # the scenario's traffic
            unknown = [n for n in names if n not in self.names]
            if unknown:
                raise SimulationError(
                    "cannot restrict scenario to unknown kernel "
                    "{!r}".format(unknown[0]))
            self.names = names
            return
        # the base mix_weights() aggregates duplicate names (ties from
        # heavy_tailed_weights); split a name's conditional mass evenly
        # across its occurrences in the restricted pool.  Pinned to the
        # base implementation: composites override mix_weights() to
        # combine children, but this branch conditions the scenario's OWN
        # pool weighting.
        weight_of = TrafficScenario.mix_weights(self)
        try:
            kept = [weight_of[n] / names.count(n) for n in names]
        except KeyError as exc:
            raise SimulationError(
                "cannot restrict weighted scenario to unknown kernel "
                "{!r}".format(exc.args[0]))
        total = sum(kept)
        if total <= 0:
            raise SimulationError(
                "restricted pool carries zero weight in this scenario")
        self.names = names
        self.weights = [w / total for w in kept]

    def iter_arrivals(self, rate, count, seed=0):
        """Lazily yield ``count`` arrivals at time-average ``rate``
        (requests/second), in nondecreasing time order, without
        materialising the stream."""
        raise NotImplementedError

    def generate(self, rate, count, seed=0):
        """``count`` arrivals at time-average ``rate`` (requests/second).

        Exactly ``list(iter_arrivals(rate, count, seed))`` — the eager
        form exists for callers that index or re-iterate the stream.
        """
        return list(self.iter_arrivals(rate, count, seed=seed))

    def mix_weights(self):
        """``{kernel name: selection probability}`` of this scenario's
        effective request mix.  Composite scenarios override to combine
        their sub-scenarios' mixes, so load calibration sees the traffic
        actually generated."""
        weights = self.weights or [1.0 / len(self.names)] * len(self.names)
        mix = {}
        for name, weight in zip(self.names, weights):
            mix[name] = mix.get(name, 0.0) + weight
        return mix

    def mean_demand(self):
        """Expected reference service demand per request (seconds of
        reference-CU work) under this scenario's kernel mix."""
        return sum(w * reference_demand(n)
                   for n, w in self.mix_weights().items())

    def __repr__(self):
        return "<{} ({})>".format(type(self).__name__, self.kind)


class PoissonScenario(TrafficScenario):
    """Memoryless steady traffic: exponential inter-arrivals."""

    kind = "poisson"

    def iter_arrivals(self, rate, count, seed=0):
        self._check(rate, count)
        rng = self._rng(rate, count, seed)
        now = 0.0
        for _ in range(count):
            now += float(rng.exponential(1.0 / rate))
            yield ArrivalRequest(self._pick_name(rng), now)


class MMPPScenario(TrafficScenario):
    """Markov-modulated Poisson: ON/OFF bursts with exponential sojourns.

    ``burst`` is the ON/OFF rate ratio, ``on_fraction`` the long-run
    fraction of time spent ON, and ``burst_length`` the expected number of
    arrivals per ON sojourn (fixing the burst time scale relative to the
    traffic, not the wall clock).  The chain starts in its stationary
    state distribution and the stationary time-average rate equals the
    requested ``rate``; note that for *short* streams any clustered
    process delivers its nominal rate only approximately (the span to the
    N-th arrival of a bursty stream is upward-biased for small N), so
    cross-scenario load comparisons are tightest at longer stream lengths.
    """

    kind = "mmpp"

    def __init__(self, burst=8.0, on_fraction=0.25, burst_length=8.0,
                 **kwargs):
        super().__init__(**kwargs)
        if burst <= 1.0:
            raise SimulationError("burst factor must exceed 1")
        if not 0.0 < on_fraction < 1.0:
            raise SimulationError("on_fraction must be in (0, 1)")
        if burst_length <= 0:
            raise SimulationError("burst_length must be positive")
        self.burst = float(burst)
        self.on_fraction = float(on_fraction)
        self.burst_length = float(burst_length)

    def _seed_parts(self):
        return super()._seed_parts() + [self.burst, self.on_fraction,
                                        self.burst_length]

    def iter_arrivals(self, rate, count, seed=0):
        self._check(rate, count)
        rng = self._rng(rate, count, seed)
        # base (OFF) rate chosen so p_on*on + (1-p_on)*off == rate
        off_rate = rate / (1.0 + self.on_fraction * (self.burst - 1.0))
        on_rate = off_rate * self.burst
        mean_on = self.burst_length / on_rate
        mean_off = mean_on * (1.0 - self.on_fraction) / self.on_fraction
        # stationary start: a deterministic OFF start would prepend ~one
        # OFF sojourn and make short streams under-deliver the rate
        on = bool(float(rng.random()) < self.on_fraction)
        now = 0.0
        sojourn_end = float(rng.exponential(mean_on if on else mean_off))
        emitted = 0
        while emitted < count:
            state_rate = on_rate if on else off_rate
            candidate = now + float(rng.exponential(1.0 / state_rate))
            if candidate > sojourn_end:
                # memorylessness: jump to the switch point and redraw there
                now = sojourn_end
                on = not on
                sojourn_end = now + float(
                    rng.exponential(mean_on if on else mean_off))
                continue
            now = candidate
            emitted += 1
            yield ArrivalRequest(self._pick_name(rng), now)


class DiurnalScenario(TrafficScenario):
    """Sinusoid-rate Poisson traffic (day/night swings) via thinning.

    ``lambda(t) = rate * (1 + amplitude * sin(2*pi*t/period))`` with the
    period expressed as ``cycle_arrivals`` expected arrivals per cycle
    (``period = cycle_arrivals / rate``), so the same scenario shape holds
    at any load.  Thinning draws candidates at the peak rate and accepts
    with probability ``lambda(t)/lambda_peak`` — exact for any bounded
    rate function, and deterministic given the seed.
    """

    kind = "diurnal"

    def __init__(self, amplitude=0.8, cycle_arrivals=32.0, phase=0.0,
                 **kwargs):
        super().__init__(**kwargs)
        if not 0.0 < amplitude <= 1.0:
            raise SimulationError("amplitude must be in (0, 1]")
        if cycle_arrivals <= 0:
            raise SimulationError("cycle_arrivals must be positive")
        self.amplitude = float(amplitude)
        self.cycle_arrivals = float(cycle_arrivals)
        self.phase = float(phase)

    def _seed_parts(self):
        return super()._seed_parts() + [self.amplitude, self.cycle_arrivals,
                                        self.phase]

    def iter_arrivals(self, rate, count, seed=0):
        self._check(rate, count)
        rng = self._rng(rate, count, seed)
        period = self.cycle_arrivals / rate
        peak = rate * (1.0 + self.amplitude)
        now = 0.0
        emitted = 0
        while emitted < count:
            now += float(rng.exponential(1.0 / peak))
            lam = rate * (1.0 + self.amplitude * math.sin(
                2.0 * math.pi * now / period + self.phase))
            if float(rng.random()) * peak < lam:
                emitted += 1
                yield ArrivalRequest(self._pick_name(rng), now)


class MultiTenantScenario(TrafficScenario):
    """A weighted mix of per-tenant substreams, merged by arrival time.

    ``tenants`` maps tenant ids to either a weight (``float`` — substream
    gets that share of the total rate and count, served by ``default``'s
    model) or a ``(weight, scenario)`` pair for per-tenant traffic shapes —
    scenarios compose.  ``devices`` optionally pins tenants to fleet device
    ids (``{tenant: device_id}``), producing device-tagged streams for the
    placement layer.  Counts are apportioned by largest remainder so they
    always sum to the requested total.  Each substream derives its own
    child seed, so tenants draw from independent RNG streams — but rates
    and counts are properties of the *whole mix*: adding or reweighting a
    tenant changes every substream's rate share and count apportionment,
    and with them the actual arrival draws.
    """

    kind = "multi-tenant"

    def __init__(self, tenants, default=None, devices=None, **kwargs):
        super().__init__(**kwargs)
        if not tenants:
            raise SimulationError("need at least one tenant")
        self.tenants = {}
        for tenant, entry in tenants.items():
            if isinstance(entry, tuple):
                weight, child = entry
            else:
                weight, child = entry, None
            if weight <= 0:
                raise SimulationError("tenant weights must be positive")
            self.tenants[tenant] = (float(weight), child)
        self.default = default if default is not None \
            else PoissonScenario(names=self.names, weights=self.weights)
        self.devices = dict(devices) if devices else {}

    # No _seed_parts override: the composite never draws from its own RNG.
    # Tenant identity enters each child seed below, and every other mix
    # parameter (rate share via sub_rate, the child's kind and pool)
    # enters the child's own _rng seed parts.

    def restrict_names(self, names):
        super().restrict_names(names)
        self.default.restrict_names(names)
        for weight, child in self.tenants.values():
            if child is not None:
                child.restrict_names(names)

    def mix_weights(self):
        total = sum(w for w, _ in self.tenants.values())
        mix = {}
        for tenant in sorted(self.tenants, key=str):
            weight, child = self.tenants[tenant]
            child = child if child is not None else self.default
            share = weight / total
            for name, w in child.mix_weights().items():
                mix[name] = mix.get(name, 0.0) + share * w
        return mix

    def _apportion(self, count):
        """Split ``count`` across tenants by weight (largest remainder)."""
        # sort by str so comparison-incompatible tenant id types cannot
        # crash the deterministic ordering
        order = sorted(self.tenants, key=str)
        total_weight = sum(w for w, _ in self.tenants.values())
        shares = [(t, count * self.tenants[t][0] / total_weight)
                  for t in order]
        counts = {t: int(share) for t, share in shares}
        leftover = count - sum(counts.values())
        by_remainder = sorted(shares, key=lambda p: (-(p[1] - int(p[1])),
                                                     str(p[0])))
        for t, _ in by_remainder[:leftover]:
            counts[t] += 1
        return counts

    def _tenant_stream(self, tenant, rate, n, seed):
        """One tenant's tagged substream, lazily."""
        weight, child = self.tenants[tenant]
        child = child if child is not None else self.default
        total_weight = sum(w for w, _ in self.tenants.values())
        sub_rate = rate * weight / total_weight
        sub_seed = int(make_rng("tenant-seed", tenant, seed)
                       .integers(2**32))
        device = self.devices.get(tenant)
        for a in child.iter_arrivals(sub_rate, n, seed=sub_seed):
            yield ArrivalRequest(a.name, a.time, tenant=tenant,
                                 device=device)

    def iter_arrivals(self, rate, count, seed=0):
        self._check(rate, count)
        counts = self._apportion(count)
        # k-way lazy merge over the per-tenant substreams.  Each substream
        # is nondecreasing in time and constant in tenant, so merging on
        # (time, str(tenant), name) reproduces the historical
        # concatenate-then-stable-sort order exactly (substreams are fed
        # in sorted-tenant order, which the stable sort preserved on
        # ties); the goldens lock this.  Memory is O(#tenants), not
        # O(count).
        streams = [self._tenant_stream(tenant, rate, counts[tenant], seed)
                   for tenant in sorted(self.tenants, key=str)
                   if counts[tenant] > 0]
        return heapq.merge(
            *streams, key=lambda a: (a.time, str(a.tenant), a.name))


# -- registry -----------------------------------------------------------------

def _steady():
    return PoissonScenario(
        description="memoryless Poisson steady load, uniform kernel mix "
                    "(the PR 1 control)")


def _bursty():
    return MMPPScenario(
        burst=8.0, on_fraction=0.25, burst_length=8.0,
        description="Markov-modulated ON/OFF bursts: 8x rate surges a "
                    "quarter of the time")


def _diurnal():
    return DiurnalScenario(
        amplitude=0.8, cycle_arrivals=32.0,
        description="sinusoid day/night rate swing (+/-80%), ~32 requests "
                    "per cycle")


def _heavy_tailed():
    names, weights = heavy_tailed_weights(dist="pareto", shape=1.1)
    return PoissonScenario(
        names=names, weights=weights,
        description="Poisson arrivals, service demand Pareto(1.1)-weighted "
                    "over the corpus demand span")


def _heavy_lognormal():
    names, weights = heavy_tailed_weights(dist="lognormal", shape=1.2)
    return PoissonScenario(
        names=names, weights=weights,
        description="Poisson arrivals, lognormal(sigma=1.2) service-demand "
                    "mix")


def _multi_tenant():
    return MultiTenantScenario(
        tenants={
            "batch": (3.0, MMPPScenario(burst=6.0, on_fraction=0.3,
                                        burst_length=6.0)),
            "interactive": 2.0,
            "background": 1.0,
        },
        description="three tenants at 3:2:1 rate shares; the heavy tenant "
                    "is bursty, the others steady")


SCENARIOS = {
    "steady": _steady,
    "bursty": _bursty,
    "diurnal": _diurnal,
    "heavy-tailed": _heavy_tailed,
    "heavy-lognormal": _heavy_lognormal,
    "multi-tenant": _multi_tenant,
}


def scenario(name):
    """A fresh instance of one registered scenario."""
    try:
        factory = SCENARIOS[name]
    except KeyError:
        raise SimulationError("unknown scenario {!r} (have: {})".format(
            name, ", ".join(sorted(SCENARIOS))))
    return factory()


def calibrated_model(name, load=1.0, device=None, names=None):
    """Resolve a registered scenario and its load-calibrated rate.

    Returns ``(model, rate)`` — the shared first half of
    :func:`from_name` / :func:`iter_from_name`.
    """
    model = scenario(name)
    if names is not None:
        # restrict the kernel pool (sub-scenarios included) but keep the
        # scenario's traffic shape
        model.restrict_names(names)
    if device is None:
        from repro.cl import nvidia_k20m
        device = nvidia_k20m()
    # lazy import: harness depends on workloads, not the other way around
    from repro.harness.open_system import arrival_rate_for_load
    mix = model.mix_weights()
    rate = arrival_rate_for_load(load, device, names=list(mix),
                                 weights=list(mix.values()))
    return model, rate


def from_name(name, seed=0, load=1.0, count=64, device=None, names=None):
    """Generate a registered scenario's stream at an offered load.

    ``load`` is the PR 1 convention ``rho = rate * E[S_isolated]``, with
    the mean service time taken under the scenario's *effective* kernel
    mix (:meth:`TrafficScenario.mix_weights` — sub-scenarios included) on
    ``device`` (default: the reference NVIDIA K20m); ``rho = 1`` saturates
    a serially-draining device.  Returns the :class:`ArrivalRequest`
    stream as a list; :func:`iter_from_name` is the lazy equivalent.
    """
    model, rate = calibrated_model(name, load=load, device=device,
                                   names=names)
    return model.generate(rate, count, seed=seed)


def iter_from_name(name, seed=0, load=1.0, count=64, device=None,
                   names=None):
    """Lazy :func:`from_name`: the identical stream as a generator.

    ``list(iter_from_name(...)) == from_name(...)`` bit for bit — same
    calibration, same seeds, no materialisation.
    """
    model, rate = calibrated_model(name, load=load, device=device,
                                   names=names)
    return model.iter_arrivals(rate, count, seed=seed)
