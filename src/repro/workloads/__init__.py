"""Workloads: the Parboil-like kernel corpus and workload generators.

The paper evaluates on all 25 OpenCL kernels of the Parboil suite.  Parboil
itself is not redistributable here, so :mod:`repro.workloads.parboil`
provides 25 kernels written in the mini OpenCL-C — one per Parboil kernel,
with the same computational character (atomics, barriers, local staging,
irregular loops, 2-D ranges) — plus per-kernel timing profiles calibrated to
give the qualitative mix the evaluation depends on: short vs long, compute-
vs memory-bound, balanced vs imbalanced work groups.
"""

from repro.workloads.parboil import (
    KernelProfile, all_profiles, profile_by_name, PROFILE_NAMES)
from repro.workloads.generator import (
    pairwise_workloads, random_workloads, alphabetic_pairs)
from repro.workloads.arrivals import (
    ArrivalRequest, poisson_arrivals, periodic_arrivals, trace_arrivals)
from repro.workloads.scenarios import (
    SCENARIOS, DiurnalScenario, MMPPScenario, MultiTenantScenario,
    PoissonScenario, TrafficScenario, calibrated_model, from_name,
    heavy_tailed_weights, iter_from_name, reference_demand, scenario)

__all__ = [
    "KernelProfile", "all_profiles", "profile_by_name", "PROFILE_NAMES",
    "pairwise_workloads", "random_workloads", "alphabetic_pairs",
    "ArrivalRequest", "poisson_arrivals", "periodic_arrivals",
    "trace_arrivals",
    "SCENARIOS", "TrafficScenario", "PoissonScenario", "MMPPScenario",
    "DiurnalScenario", "MultiTenantScenario", "heavy_tailed_weights",
    "reference_demand", "scenario", "from_name", "iter_from_name",
    "calibrated_model",
]
