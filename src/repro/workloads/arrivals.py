"""Arrival processes for open-system experiments.

The paper's accelOS is an OS-like daemon serving kernel execution requests
from many applications *over time*; the closed batches of
:mod:`repro.harness.experiment` only cover the everything-at-t=0 corner.
This module generates **arrival streams** over the Parboil corpus — each
request is a kernel name plus the time it enters the system — for the
open-system simulation path (:meth:`repro.sim.GPUSimulator.run_open`,
:class:`repro.harness.open_system.OpenSystemExperiment`).

All generators are seeded through :func:`repro.util.make_rng`, so a stream
is a pure function of its parameters: the same seed replays bit-for-bit.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.util import make_rng
from repro.workloads.parboil import PROFILE_NAMES


class ArrivalRequest:
    """One kernel execution request entering the system at ``time``."""

    __slots__ = ("name", "time")

    def __init__(self, name, time):
        if time < 0:
            raise SimulationError("arrival time must be non-negative")
        self.name = name
        self.time = float(time)

    def __repr__(self):
        return "<ArrivalRequest {} @ {:.6f}s>".format(self.name, self.time)

    def __eq__(self, other):
        return (isinstance(other, ArrivalRequest)
                and self.name == other.name and self.time == other.time)


def poisson_arrivals(rate, count, seed=0, names=None):
    """A seeded Poisson arrival process over the corpus.

    Inter-arrival times are exponential with mean ``1/rate`` (``rate`` in
    requests/second); kernel names are drawn uniformly from ``names``
    (default: the whole 25-kernel corpus).  Deterministic in
    ``(rate, count, seed, names)``.
    """
    if rate <= 0:
        raise SimulationError("arrival rate must be positive")
    if count <= 0:
        raise SimulationError("need at least one arrival")
    pool = list(names) if names is not None else list(PROFILE_NAMES)
    if not pool:
        raise SimulationError("empty kernel name pool")
    rng = make_rng("poisson-arrivals", rate, count, seed, *pool)
    now = 0.0
    stream = []
    for _ in range(count):
        now += float(rng.exponential(1.0 / rate))
        stream.append(ArrivalRequest(pool[int(rng.integers(len(pool)))], now))
    return stream


def periodic_arrivals(interval, count, names=None, start=0.0):
    """Deterministic constant-interval arrivals, names cycled round-robin.

    Useful for tests and worst-case steady-load studies (no burstiness).
    """
    if interval <= 0:
        raise SimulationError("arrival interval must be positive")
    if count <= 0:
        raise SimulationError("need at least one arrival")
    pool = list(names) if names is not None else list(PROFILE_NAMES)
    if not pool:
        raise SimulationError("empty kernel name pool")
    return [ArrivalRequest(pool[i % len(pool)], start + i * interval)
            for i in range(count)]


def trace_arrivals(entries):
    """An arrival stream from explicit ``(name, time)`` pairs.

    The trace-driven path: replay arrival logs from a real deployment (or a
    hand-written scenario).  Entries are sorted by time.
    """
    stream = sorted((ArrivalRequest(name, time) for name, time in entries),
                    key=lambda a: a.time)
    if not stream:
        raise SimulationError("empty arrival trace")
    return stream
