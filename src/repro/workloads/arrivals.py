"""Arrival processes for open-system experiments.

The paper's accelOS is an OS-like daemon serving kernel execution requests
from many applications *over time*; the closed batches of
:mod:`repro.harness.experiment` only cover the everything-at-t=0 corner.
This module generates **arrival streams** over the Parboil corpus — each
request is a kernel name plus the time it enters the system — for the
open-system simulation path (:meth:`repro.sim.GPUSimulator.run_open`,
:class:`repro.harness.open_system.OpenSystemExperiment`).

Requests optionally carry two placement tags consumed by the multi-device
fleet layer (:mod:`repro.sim.fleet`, :mod:`repro.accelos.placement`):

* ``tenant`` — the application the request belongs to.  The affinity
  placement policy keeps a tenant's requests on the device holding its
  buffers, charging a migration penalty when it moves.
* ``device`` — a hard pin: a device id the request *must* run on
  (device-tagged traces replayed from a real deployment).

All generators are seeded through :func:`repro.util.make_rng`, so a stream
is a pure function of its parameters: the same seed replays bit-for-bit.
Streams generated without tenant assignment are unchanged from the
single-device subsystem (no extra RNG draws are made).
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.util import make_rng
from repro.workloads.parboil import PROFILE_NAMES


class ArrivalRequest:
    """One kernel execution request entering the system at ``time``.

    ``tenant`` (optional) names the application the request belongs to;
    ``device`` (optional) pins the request to a fleet device id.
    """

    __slots__ = ("name", "time", "tenant", "device")

    def __init__(self, name, time, tenant=None, device=None):
        if time < 0:
            raise SimulationError("arrival time must be non-negative")
        self.name = name
        self.time = float(time)
        self.tenant = tenant
        self.device = device

    def __repr__(self):
        tags = ""
        if self.tenant is not None:
            tags += " tenant={}".format(self.tenant)
        if self.device is not None:
            tags += " device={}".format(self.device)
        return "<ArrivalRequest {} @ {:.6f}s{}>".format(
            self.name, self.time, tags)

    def __eq__(self, other):
        return (isinstance(other, ArrivalRequest)
                and self.name == other.name and self.time == other.time
                and self.tenant == other.tenant
                and self.device == other.device)


def poisson_arrivals(rate, count, seed=0, names=None, tenants=None):
    """A seeded Poisson arrival process over the corpus.

    Inter-arrival times are exponential with mean ``1/rate`` (``rate`` in
    requests/second); kernel names are drawn uniformly from ``names``
    (default: the whole 25-kernel corpus).  When ``tenants`` is given (a
    count or a sequence of tenant ids), each request is additionally
    tagged with a uniformly drawn tenant — the multi-application stream
    the fleet's affinity placement consumes.  Deterministic in
    ``(rate, count, seed, names, tenants)``; without ``tenants`` the
    stream is bit-identical to the untagged generator.
    """
    if rate <= 0:
        raise SimulationError("arrival rate must be positive")
    if count <= 0:
        raise SimulationError("need at least one arrival")
    pool = list(names) if names is not None else list(PROFILE_NAMES)
    if not pool:
        raise SimulationError("empty kernel name pool")
    tenant_pool = _tenant_pool(tenants)
    rng = make_rng("poisson-arrivals", rate, count, seed, *pool)
    now = 0.0
    stream = []
    for _ in range(count):
        now += float(rng.exponential(1.0 / rate))
        name = pool[int(rng.integers(len(pool)))]
        tenant = (tenant_pool[int(rng.integers(len(tenant_pool)))]
                  if tenant_pool else None)
        stream.append(ArrivalRequest(name, now, tenant=tenant))
    return stream


def _tenant_pool(tenants):
    if tenants is None:
        return None
    if isinstance(tenants, int):
        if tenants <= 0:
            raise SimulationError("tenant count must be positive")
        return ["app{}".format(i) for i in range(tenants)]
    pool = list(tenants)
    if not pool:
        raise SimulationError("empty tenant pool")
    return pool


def periodic_arrivals(interval, count, names=None, start=0.0, tenants=None):
    """Deterministic constant-interval arrivals, names cycled round-robin.

    Useful for tests and worst-case steady-load studies (no burstiness).
    ``tenants`` (count or sequence) are likewise cycled round-robin.
    """
    if interval <= 0:
        raise SimulationError("arrival interval must be positive")
    if count <= 0:
        raise SimulationError("need at least one arrival")
    pool = list(names) if names is not None else list(PROFILE_NAMES)
    if not pool:
        raise SimulationError("empty kernel name pool")
    tenant_pool = _tenant_pool(tenants)
    return [ArrivalRequest(
                pool[i % len(pool)], start + i * interval,
                tenant=(tenant_pool[i % len(tenant_pool)]
                        if tenant_pool else None))
            for i in range(count)]


def trace_arrivals(entries):
    """An arrival stream from explicit trace entries.

    The trace-driven path: replay arrival logs from a real deployment (or
    a hand-written scenario).  Each entry is ``(name, time)``,
    ``(name, time, tenant)`` or ``(name, time, tenant, device)`` — the
    four-element form pins the request to a fleet device id (device-tagged
    traces).  Entries are sorted by time.
    """
    stream = sorted((ArrivalRequest(*entry) for entry in entries),
                    key=lambda a: a.time)
    if not stream:
        raise SimulationError("empty arrival trace")
    return stream
