"""Workload generation (paper §7.2).

* all 25 x 25 = 625 pairwise combinations,
* randomly sampled 4-kernel and 8-kernel combinations (the paper samples
  16384 and 32768 respectively; sample sizes here are parameters so the
  default benchmark run stays laptop-sized while ``REPRO_SWEEP_SCALE``
  restores paper-scale sweeps),
* the 13 alphabetic pairs of fig. 11.
"""

from __future__ import annotations

import itertools

from repro.util import make_rng
from repro.workloads.parboil import PROFILE_NAMES, profile_by_name


def pairwise_workloads():
    """All ordered kernel pairs: 25 x 25 = 625 workloads (paper §7.2)."""
    return [(a, b) for a, b in itertools.product(PROFILE_NAMES, repeat=2)]


def random_workloads(size, count, seed=2016):
    """``count`` random ``size``-kernel workloads (with replacement across
    workloads, without replacement within one workload when possible)."""
    rng = make_rng("workloads", size, count, seed)
    names = list(PROFILE_NAMES)
    workloads = []
    for _ in range(count):
        if size <= len(names):
            picks = rng.choice(len(names), size=size, replace=False)
        else:
            picks = rng.choice(len(names), size=size, replace=True)
        workloads.append(tuple(names[i] for i in picks))
    return workloads


def alphabetic_pairs():
    """The 13 pairs of fig. 11: each benchmark with its alphabetic neighbor
    (the 25th kernel wraps around to the first)."""
    names = list(PROFILE_NAMES)
    pairs = [(names[i], names[i + 1]) for i in range(0, len(names) - 1, 2)]
    pairs.append((names[-1], names[0]))
    return pairs


def profiles_for(workload):
    """Resolve a tuple of kernel names to their profiles."""
    return [profile_by_name(name) for name in workload]
