"""Mini OpenCL-C sources for the 25 Parboil-like kernels.

One source string per Parboil benchmark; each contains the benchmark's
kernels.  The kernels are simplified but computationally honest versions of
their Parboil namesakes — same algorithmic skeleton, same use of atomics,
barriers, local staging, helper functions and launch dimensionality.
"""

BFS_SOURCE = """
kernel void bfs_kernel(global const int* row_offsets,
                       global const int* columns,
                       global int* levels,
                       global int* changed,
                       int level, int n_nodes)
{
    int gid = (int)get_global_id(0);
    if (gid >= n_nodes)
        return;
    if (levels[gid] != level)
        return;
    int start = row_offsets[gid];
    int end = row_offsets[gid + 1];
    for (int e = start; e < end; ++e) {
        int v = columns[e];
        if (levels[v] == -1) {
            levels[v] = level + 1;   /* same value from any writer */
            changed[0] = 1;
        }
    }
}
"""

CUTCP_SOURCE = """
float cutcp_dist2(float dx, float dy, float dz)
{
    return dx * dx + dy * dy + dz * dz;
}

kernel void lattice6overlap(global const float* atoms,
                            global float* lattice,
                            int n_atoms, int grid_dim, float cutoff2)
{
    int gid = (int)get_global_id(0);
    int total = grid_dim * grid_dim * grid_dim;
    if (gid >= total)
        return;
    int gx = gid % grid_dim;
    int gy = (gid / grid_dim) % grid_dim;
    int gz = gid / (grid_dim * grid_dim);
    float energy = 0.0f;
    for (int a = 0; a < n_atoms; ++a) {
        float dx = atoms[4 * a] - (float)gx;
        float dy = atoms[4 * a + 1] - (float)gy;
        float dz = atoms[4 * a + 2] - (float)gz;
        float d2 = cutcp_dist2(dx, dy, dz);
        if (d2 < cutoff2)
            energy += atoms[4 * a + 3] * (1.0f - d2 / cutoff2)
                      / sqrt(d2 + 0.5f);
    }
    lattice[gid] = energy;
}
"""

HISTO_SOURCE = """
kernel void histo_prescan(global const int* input,
                          global int* minmax, int n)
{
    local int lmin[128];
    local int lmax[128];
    int lid = (int)get_local_id(0);
    int gid = (int)get_global_id(0);
    int stride = (int)get_global_size(0);
    int vmin = 2147483647;
    int vmax = -2147483647;
    for (int i = gid; i < n; i += stride) {
        int v = input[i];
        vmin = min(vmin, v);
        vmax = max(vmax, v);
    }
    lmin[lid] = vmin;
    lmax[lid] = vmax;
    barrier(CLK_LOCAL_MEM_FENCE);
    for (int s = 64; s > 0; s >>= 1) {
        if (lid < s) {
            lmin[lid] = min(lmin[lid], lmin[lid + s]);
            lmax[lid] = max(lmax[lid], lmax[lid + s]);
        }
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    if (lid == 0) {
        atomic_min(&minmax[0], lmin[0]);
        atomic_max(&minmax[1], lmax[0]);
    }
}

kernel void histo_intermediates(global const int* input,
                                global int* coords, int n, int n_bins)
{
    int gid = (int)get_global_id(0);
    if (gid >= n)
        return;
    int v = input[gid];
    if (v < 0)
        v = -v;
    coords[gid] = v % n_bins;
}

kernel void histo_main(global const int* coords,
                       global int* histo, int n)
{
    int gid = (int)get_global_id(0);
    int stride = (int)get_global_size(0);
    for (int i = gid; i < n; i += stride)
        atomic_add(&histo[coords[i]], 1);
}

kernel void histo_final(global const int* histo,
                        global int* out, int n_bins)
{
    int gid = (int)get_global_id(0);
    if (gid >= n_bins)
        return;
    out[gid] = min(histo[gid], 255);
}
"""

LBM_SOURCE = """
kernel void lbm_stream_collide(global const float* src,
                               global float* dst,
                               int width, int n_cells, float omega)
{
    int gid = (int)get_global_id(0);
    if (gid >= n_cells)
        return;
    int left = gid >= 1 ? gid - 1 : gid;
    int right = gid + 1 < n_cells ? gid + 1 : gid;
    int up = gid >= width ? gid - width : gid;
    int down = gid + width < n_cells ? gid + width : gid;
    float c = src[gid];
    float rho = c + src[left] + src[right] + src[up] + src[down];
    float eq = rho * 0.2f;
    dst[gid] = c + omega * (eq - c);
}
"""

MRI_GRIDDING_SOURCE = """
kernel void binning(global const float* samples,
                    global int* bin_of, global int* bin_counts,
                    int n_samples, int n_bins)
{
    int gid = (int)get_global_id(0);
    if (gid >= n_samples)
        return;
    float x = samples[gid];
    int bin = (int)(x * (float)n_bins);
    bin = clamp(bin, 0, n_bins - 1);
    bin_of[gid] = bin;
    atomic_add(&bin_counts[bin], 1);
}

kernel void reorder(global const float* samples,
                    global const int* dest_index,
                    global float* reordered, int n_samples)
{
    int gid = (int)get_global_id(0);
    if (gid >= n_samples)
        return;
    reordered[dest_index[gid]] = samples[gid];
}

kernel void gridding_gpu(global const float* samples,
                         global const int* cell_start,
                         global float* grid, int n_cells, float radius2)
{
    int gid = (int)get_global_id(0);
    if (gid >= n_cells)
        return;
    int start = cell_start[gid];
    int end = cell_start[gid + 1];
    float center = (float)gid + 0.5f;
    float acc = 0.0f;
    for (int s = start; s < end; ++s) {
        float d = samples[s] - center;
        float d2 = d * d;
        if (d2 < radius2)
            acc += (1.0f - d2 / radius2);
    }
    grid[gid] = acc;
}

kernel void split_sort(global const int* keys_in,
                       global int* keys_out,
                       global int* block_counts, int bit, int n)
{
    local int flags[256];
    local int scanned[256];
    int lid = (int)get_local_id(0);
    int gid = (int)get_global_id(0);
    int group = (int)get_group_id(0);
    int wg = (int)get_local_size(0);
    int key = gid < n ? keys_in[gid] : 2147483647;
    int flag = (key >> bit) & 1;
    flags[lid] = flag;
    barrier(CLK_LOCAL_MEM_FENCE);
    /* inclusive scan of flags (naive log-step scan) */
    scanned[lid] = flags[lid];
    barrier(CLK_LOCAL_MEM_FENCE);
    for (int offset = 1; offset < wg; offset <<= 1) {
        int add = 0;
        if (lid >= offset)
            add = scanned[lid - offset];
        barrier(CLK_LOCAL_MEM_FENCE);
        scanned[lid] += add;
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    int ones_before = scanned[lid] - flag;
    int total_ones = scanned[wg - 1];
    int zeros_before = lid - ones_before;
    int total_zeros = wg - total_ones;
    int pos = flag ? total_zeros + ones_before : zeros_before;
    if (gid < n)
        keys_out[group * wg + pos] = key;
    if (lid == 0)
        block_counts[group] = total_ones;
}

kernel void split_rearrange(global const int* keys_in,
                            global const int* offsets,
                            global int* keys_out, int n)
{
    /* within-group rotation by a per-group offset: a collision-free
       scatter, so results are schedule-independent */
    int gid = (int)get_global_id(0);
    if (gid >= n)
        return;
    int group = (int)get_group_id(0);
    int wg = (int)get_local_size(0);
    int lid = (int)get_local_id(0);
    int rotated = (lid + offsets[group]) % wg;
    keys_out[group * wg + rotated] = keys_in[gid];
}

kernel void scan_l1(global const float* input,
                    global float* output,
                    global float* block_sums, int n)
{
    local float temp[256];
    int lid = (int)get_local_id(0);
    int gid = (int)get_global_id(0);
    int wg = (int)get_local_size(0);
    temp[lid] = gid < n ? input[gid] : 0.0f;
    barrier(CLK_LOCAL_MEM_FENCE);
    for (int offset = 1; offset < wg; offset <<= 1) {
        float add = 0.0f;
        if (lid >= offset)
            add = temp[lid - offset];
        barrier(CLK_LOCAL_MEM_FENCE);
        temp[lid] += add;
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    if (gid < n)
        output[gid] = temp[lid];
    if (lid == wg - 1)
        block_sums[(int)get_group_id(0)] = temp[lid];
}

kernel void scan_inter1(global float* block_sums, int n_blocks)
{
    /* single work-group exclusive scan over block sums */
    int lid = (int)get_local_id(0);
    if (lid != 0)
        return;
    float running = 0.0f;
    for (int i = 0; i < n_blocks; ++i) {
        float v = block_sums[i];
        block_sums[i] = running;
        running += v;
    }
}

kernel void uniform_add(global float* data,
                        global const float* block_offsets, int n)
{
    int gid = (int)get_global_id(0);
    if (gid >= n)
        return;
    data[gid] += block_offsets[(int)get_group_id(0)];
}
"""

MRI_Q_SOURCE = """
kernel void compute_phi_mag(global const float* phi_r,
                            global const float* phi_i,
                            global float* phi_mag, int n)
{
    int gid = (int)get_global_id(0);
    if (gid >= n)
        return;
    float r = phi_r[gid];
    float i = phi_i[gid];
    phi_mag[gid] = r * r + i * i;
}

kernel void compute_q(global const float* kx,
                      global const float* ky,
                      global const float* phi_mag,
                      global const float* x,
                      global float* q_r, global float* q_i,
                      int n_k, int n_x)
{
    int gid = (int)get_global_id(0);
    if (gid >= n_x)
        return;
    float xv = x[gid];
    float acc_r = 0.0f;
    float acc_i = 0.0f;
    for (int k = 0; k < n_k; ++k) {
        float exp_arg = 6.2831853f * (kx[k] * xv + ky[k] * xv * 0.5f);
        float mag = phi_mag[k];
        acc_r += mag * cos(exp_arg);
        acc_i += mag * sin(exp_arg);
    }
    q_r[gid] = acc_r;
    q_i[gid] = acc_i;
}
"""

SAD_SOURCE = """
int sad_abs_diff(int a, int b)
{
    int d = a - b;
    return d < 0 ? -d : d;
}

kernel void mb_sad_calc_8(global const int* cur,
                          global const int* ref,
                          global int* sad_out, int width, int n_blocks)
{
    int gid = (int)get_global_id(0);
    if (gid >= n_blocks)
        return;
    int base = (gid * 8) % (width > 8 ? width - 8 : 1);
    int acc = 0;
    for (int p = 0; p < 64; ++p)
        acc += sad_abs_diff(cur[base + (p % 8)], ref[base + p % 16]);
    sad_out[gid] = acc;
}

kernel void mb_sad_calc_16(global const int* cur,
                           global const int* ref,
                           global int* sad_out, int width, int n_blocks)
{
    int gid = (int)get_global_id(0);
    if (gid >= n_blocks)
        return;
    int base = (gid * 16) % (width > 16 ? width - 16 : 1);
    int acc = 0;
    for (int p = 0; p < 256; ++p)
        acc += sad_abs_diff(cur[base + (p % 16)], ref[base + p % 32]);
    sad_out[gid] = acc;
}

kernel void larger_sad_calc_8(global const int* sad_in,
                              global int* sad_out, int n_out)
{
    int gid = (int)get_global_id(0);
    if (gid >= n_out)
        return;
    sad_out[gid] = sad_in[2 * gid] + sad_in[2 * gid + 1];
}

kernel void larger_sad_calc_16(global const int* sad_in,
                               global int* sad_out, int n_out)
{
    int gid = (int)get_global_id(0);
    if (gid >= n_out)
        return;
    sad_out[gid] = sad_in[4 * gid] + sad_in[4 * gid + 1]
                 + sad_in[4 * gid + 2] + sad_in[4 * gid + 3];
}
"""

SGEMM_SOURCE = """
kernel void mysgemm_nt(global const float* a,
                       global const float* b,
                       global float* c,
                       int n, int k, float alpha, float beta)
{
    local float b_tile[128];
    int col = (int)get_global_id(0);
    int row = (int)get_global_id(1);
    int lx = (int)get_local_id(0);
    int ly = (int)get_local_id(1);
    int lw = (int)get_local_size(0);
    int lid = ly * lw + lx;
    float acc = 0.0f;
    for (int t = 0; t < k; t += 128) {
        int idx = t + lid;
        b_tile[lid] = idx < k ? b[col * k + idx] : 0.0f;
        barrier(CLK_LOCAL_MEM_FENCE);
        int limit = min(128, k - t);
        for (int p = 0; p < limit; ++p)
            acc += a[row * k + t + p] * b_tile[p];
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    c[row * n + col] = alpha * acc + beta * c[row * n + col];
}
"""

SPMV_SOURCE = """
kernel void spmv_jds(global const float* values,
                     global const int* columns,
                     global const int* row_ptr,
                     global const float* x,
                     global float* y, int n_rows)
{
    int row = (int)get_global_id(0);
    if (row >= n_rows)
        return;
    float acc = 0.0f;
    int start = row_ptr[row];
    int end = row_ptr[row + 1];
    for (int j = start; j < end; ++j)
        acc += values[j] * x[columns[j]];
    y[row] = acc;
}
"""

STENCIL_SOURCE = """
kernel void stencil_block2d(global const float* a0,
                            global float* a_next,
                            int nx, int ny, float c0, float c1)
{
    int ix = (int)get_global_id(0);
    int iy = (int)get_global_id(1);
    if (ix <= 0 || iy <= 0 || ix >= nx - 1 || iy >= ny - 1)
        return;
    int idx = iy * nx + ix;
    a_next[idx] = c1 * (a0[idx - 1] + a0[idx + 1]
                        + a0[idx - nx] + a0[idx + nx])
                + c0 * a0[idx];
}
"""

TPACF_SOURCE = """
kernel void gen_hists(global const float* angles,
                      global int* hist,
                      int n_points, int n_bins)
{
    local int lhist[32];
    int lid = (int)get_local_id(0);
    int gid = (int)get_global_id(0);
    int wg = (int)get_local_size(0);
    for (int b = lid; b < n_bins; b += wg)
        lhist[b] = 0;
    barrier(CLK_LOCAL_MEM_FENCE);
    if (gid < n_points) {
        float ai = angles[gid];
        for (int j = 0; j < n_points; ++j) {
            float d = ai - angles[j];
            if (d < 0.0f)
                d = -d;
            int bin = (int)(d * (float)n_bins);
            if (bin >= n_bins)
                bin = n_bins - 1;
            atomic_add(&lhist[bin], 1);
        }
    }
    barrier(CLK_LOCAL_MEM_FENCE);
    for (int b = lid; b < n_bins; b += wg)
        atomic_add(&hist[b], lhist[b]);
}
"""

SOURCES = {
    "bfs": BFS_SOURCE,
    "cutcp": CUTCP_SOURCE,
    "histo": HISTO_SOURCE,
    "lbm": LBM_SOURCE,
    "mri-gridding": MRI_GRIDDING_SOURCE,
    "mri-q": MRI_Q_SOURCE,
    "sad": SAD_SOURCE,
    "sgemm": SGEMM_SOURCE,
    "spmv": SPMV_SOURCE,
    "stencil": STENCIL_SOURCE,
    "tpacf": TPACF_SOURCE,
}
