"""ASCII table rendering for benchmark output (paper-style rows)."""

from __future__ import annotations

# Column headers for one TailSummary rendered via tail_cells(); benches
# append them to their scheme/scenario columns so every tail report reads
# the same way.
TAIL_HEADERS = ("p50", "p95", "p99", "max/mean")


def tail_cells(summary):
    """The :data:`TAIL_HEADERS` cells of one
    :class:`repro.metrics.tails.TailSummary`."""
    return [summary.p50, summary.p95, summary.p99, summary.max_over_mean]


def format_table(headers, rows, title=None):
    """Render a simple aligned table."""
    text_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells):
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    for row in text_rows:
        out.append(line(row))
    return "\n".join(out)


def _cell(value):
    if isinstance(value, float):
        if abs(value) >= 100:
            return "{:.1f}".format(value)
        return "{:.2f}".format(value)
    return str(value)


def attribution_table(report, title=None):
    """The fairness audit of one
    :class:`repro.attribution.AttributionReport` as an aligned table.

    One row per victim tenant, one ``<-aggressor`` column per tenant:
    each cell is the p99 (in milliseconds, over the victim's requests)
    of the queueing delay that aggressor induced on that victim — the
    diagonal is self-induced.  The trailing columns add the tenant's
    occupancy share (fraction of total byte·seconds) and the total
    migration cost charged to it, so "who hogged memory" and "whose
    bursts made others wait" read off one table.
    """
    headers = (["victim"]
               + ["<-{} p99 ms".format(t) for t in report.tenants]
               + ["occupancy", "migration s"])
    rows = []
    for victim in report.tenants:
        rows.append(
            [victim]
            + [report.induced_p99[victim][aggressor] * 1e3
               for aggressor in report.tenants]
            + [report.occupancy_share[victim],
               report.migration_costs[victim]])
    if title is None:
        title = ("Fairness audit: tenant->tenant induced p99 delay "
                 "({} requests, {} devices)".format(report.requests,
                                                    len(report.devices)))
    return format_table(headers, rows, title=title)
