"""Sweep campaigns: many workloads x schemes, aggregated (figs. 9-14).

Sweep sizes default to laptop scale; set ``REPRO_SWEEP_SCALE`` to grow the
random 4-/8-kernel samples toward the paper's 16384/32768 (scale 1 = 384
each, scale N multiplies).
"""

from __future__ import annotations

import os

import numpy as np

from repro.api.schemes import closed_scheme_names, reference_scheme
from repro.harness.experiment import DEFAULT_REPETITIONS, run_workload
from repro.metrics import fairness_improvement, throughput_speedup, worst_antt
from repro.workloads import pairwise_workloads, random_workloads


def sweep_scale():
    return max(1, int(os.environ.get("REPRO_SWEEP_SCALE", "1")))


def default_workload_sets(pair_limit=None):
    """The three request-size campaigns of §7.2."""
    scale = sweep_scale()
    pairs = pairwise_workloads()
    if pair_limit is not None:
        pairs = pairs[:pair_limit]
    return {
        2: pairs,
        4: random_workloads(4, 384 * scale),
        8: random_workloads(8, 384 * scale),
    }


def run_sweep(workloads, device, schemes=None,
              repetitions=DEFAULT_REPETITIONS):
    """Run every workload under every scheme.

    Returns ``{scheme: [WorkloadResult]}`` with matching workload order.
    ``schemes=None`` means every registered *closed-capable* scheme,
    resolved at call time — user registrations included, but an
    open-system-only scheme cannot break a closed sweep.
    """
    if schemes is None:
        schemes = closed_scheme_names()
    results = {scheme: [] for scheme in schemes}
    for workload in workloads:
        for scheme in schemes:
            results[scheme].append(
                run_workload(workload, scheme, device,
                             repetitions=repetitions))
    return results


class SweepSummary:
    """Aggregates a sweep into the numbers the paper's figures report."""

    def __init__(self, results):
        self.results = results
        reference = reference_scheme().name
        base = results[reference]
        self.count = len(base)

        self.avg_unfairness = {
            scheme: float(np.mean([r.unfairness for r in rows]))
            for scheme, rows in results.items()
        }
        self.fairness_improvements = {}
        self.throughput_speedups = {}
        for scheme, rows in results.items():
            if scheme == reference:
                continue
            self.fairness_improvements[scheme] = [
                fairness_improvement(b.unfairness, r.unfairness)
                for b, r in zip(base, rows)
            ]
            self.throughput_speedups[scheme] = [
                throughput_speedup(b.makespan, r.makespan)
                for b, r in zip(base, rows)
            ]
        self.avg_overlap = {
            scheme: float(np.mean([r.overlap for r in rows]))
            for scheme, rows in results.items()
        }
        self.avg_stp = {
            scheme: float(np.mean([r.stp for r in rows]))
            for scheme, rows in results.items()
        }
        self.avg_antt = {
            scheme: float(np.mean([r.antt for r in rows]))
            for scheme, rows in results.items()
        }
        self.worst_antt = {
            scheme: worst_antt([r.antt for r in rows])
            for scheme, rows in results.items()
        }

    def avg_fairness_improvement(self, scheme):
        return float(np.mean(self.fairness_improvements[scheme]))

    def avg_throughput_speedup(self, scheme):
        return float(np.mean(self.throughput_speedups[scheme]))

    def negative_fairness_fraction(self, scheme):
        values = self.fairness_improvements[scheme]
        return sum(1 for v in values if v < 1.0) / len(values)

    def slowdown_fraction(self, scheme):
        values = self.throughput_speedups[scheme]
        return sum(1 for v in values if v < 1.0) / len(values)


def summarize(results):
    return SweepSummary(results)
