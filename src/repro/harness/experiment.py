"""Run one workload under one scheme on one device (closed batches).

Schemes are first-class registry objects (:mod:`repro.api.schemes`) —
``baseline`` / ``ek`` / ``accelos`` pre-registered, user schemes welcome
— and this harness dispatches every run through
:func:`repro.api.schemes.scheme_from_name`, so the registry is the
single source of truth for what a scheme name means.

The accelOS path uses the *real* pipeline outputs: the dequeue chunk comes
from the JIT transformation of the actual kernel (instruction-count keyed,
§6.4) and resource demands from the compiled kernel's static analysis.

Each workload is executed ``repetitions`` times with small per-run cost
jitter and the mean execution times are reported, mirroring the paper's
20-repetition averaging (§7.2).
"""

from __future__ import annotations

import numpy as np

from repro.accelos.adaptive import SchedulingPolicy
from repro.api.kernels import (SINGLE_KERNEL_DETAIL, base_spec,
                               chunk_for_profile, isolated_time,
                               transform_chunks)
from repro.api.schemes import (BUILTIN_SCHEMES, require_closed,
                               scheme_from_name)
from repro.metrics import (antt, individual_slowdowns, stp,
                           system_unfairness)
from repro.metrics.overlap import execution_overlap
from repro.util import make_rng

# The built-in scheme trio, in the paper's report order — always exactly
# these three, whatever else gets registered.  Harness entry points that
# default to "every scheme" (run_all, run_sweep) resolve the live
# registry at call time instead, so user registrations are included.
SCHEMES = BUILTIN_SCHEMES

DEFAULT_REPETITIONS = 3
JITTER_SIGMA = 0.01

# Historical alias: the helper now lives in repro.api.kernels.
_base_spec = base_spec


def _accelos_specs(names, device, policy, saturate=True):
    """Closed-batch accelOS specs (kept for ablation benchmarks; the
    logic lives on the registered scheme object)."""
    return scheme_from_name("accelos").batch_specs(
        names, device, policy=policy, saturate=saturate)


class WorkloadResult:
    """Metrics of one workload under one scheme."""

    def __init__(self, workload, scheme, device_name, turnarounds,
                 intervals, isolated_times):
        self.workload = tuple(workload)
        self.scheme = scheme
        self.device_name = device_name
        self.turnarounds = turnarounds
        self.intervals = intervals
        self.isolated_times = isolated_times
        self.slowdowns = individual_slowdowns(turnarounds, isolated_times)
        self.unfairness = system_unfairness(self.slowdowns)
        self.makespan = max(turnarounds)
        self.antt = antt(self.slowdowns)
        self.stp = stp(self.slowdowns)
        self.overlap = execution_overlap(intervals)

    def __repr__(self):
        return ("<WorkloadResult {} {}: U={:.2f} T={:.4f}>"
                .format(self.scheme, "+".join(self.workload),
                        self.unfairness, self.makespan))


def run_workload(names, scheme, device, repetitions=DEFAULT_REPETITIONS,
                 policy=SchedulingPolicy.ADAPTIVE, saturate=True, seed=0):
    """Run a workload ``repetitions`` times; metrics on mean times."""
    names = list(names)
    # fail fast with the capability error before simulating anything
    scheme_obj = require_closed(scheme_from_name(scheme))
    iso = [isolated_time(n, device) for n in names]
    sums = np.zeros(len(names))
    interval_sums = np.zeros((len(names), 2))
    rng = make_rng("jitter", scheme_obj.name, device.name, seed, *names)
    for _ in range(repetitions):
        jitter = np.exp(rng.normal(0.0, JITTER_SIGMA, size=len(names)))
        turnarounds, intervals = scheme_obj.run_closed(
            names, device, jitter=jitter, policy=policy, saturate=saturate)
        sums += np.asarray(turnarounds)
        interval_sums += np.asarray(intervals)
    mean_turnarounds = (sums / repetitions).tolist()
    mean_intervals = [tuple(row) for row in interval_sums / repetitions]
    return WorkloadResult(names, scheme_obj.name, device.name,
                          mean_turnarounds, mean_intervals, iso)


def run_single_kernel(name, device, policy=SchedulingPolicy.ADAPTIVE,
                      scheme="accelos"):
    """Single-kernel execution time under a scheme (fig. 15 and §8.5).

    Returns ``(time, isolated_baseline_time)``.  Both sides run at the fine
    virtual-group granularity of real Parboil grids.  Schemes without a
    single-kernel mode (e.g. ``ek``) raise.
    """
    return scheme_from_name(scheme).run_single(name, device, policy=policy)
