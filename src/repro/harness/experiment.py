"""Run one workload under one scheme on one device.

Schemes (paper §7.3):

* ``baseline`` — standard OpenCL: unmodified kernels, firmware scheduler.
* ``ek``       — Elastic Kernels: static merging, serialised merged groups.
* ``accelos``  — the paper's system: §3 sharing + transformed kernels.

The accelOS path uses the *real* pipeline outputs: the dequeue chunk comes
from the JIT transformation of the actual kernel (instruction-count keyed,
§6.4) and resource demands from the compiled kernel's static analysis.

Each workload is executed ``repetitions`` times with small per-run cost
jitter and the mean execution times are reported, mirroring the paper's
20-repetition averaging (§7.2).
"""

from __future__ import annotations

import numpy as np

from repro.accelos.adaptive import (SchedulingPolicy, chunk_size_for,
                                    effective_chunk)
from repro.accelos.sharing import KernelRequirements, compute_allocations
from repro.accelos.transform import AccelOSTransform
from repro.baselines.elastic_kernels import ElasticKernelsScheduler
from repro.errors import SimulationError
from repro.metrics import (antt, individual_slowdowns, stp,
                           system_unfairness)
from repro.metrics.overlap import execution_overlap
from repro.sim import ExecutionMode, GPUSimulator
from repro.util import make_rng
from repro.workloads.parboil import (compiled_module, profile_by_name)

SCHEMES = ("baseline", "ek", "accelos")

DEFAULT_REPETITIONS = 3
JITTER_SIGMA = 0.01

_spec_cache = {}
_iso_cache = {}
_chunk_cache = {}


def _base_spec(name):
    spec = _spec_cache.get(name)
    if spec is None:
        spec = profile_by_name(name).exec_spec()
        _spec_cache[name] = spec
    return spec


def transform_chunks(benchmark, policy=SchedulingPolicy.ADAPTIVE):
    """Run the real JIT over a benchmark module; returns {kernel: chunk}."""
    key = (benchmark, policy)
    chunks = _chunk_cache.get(key)
    if chunks is None:
        module = compiled_module(benchmark)
        _, infos = AccelOSTransform(policy=policy).run(module)
        chunks = {name: info.chunk for name, info in infos.items()}
        _chunk_cache[key] = chunks
    return chunks


def chunk_for_profile(profile, policy=SchedulingPolicy.ADAPTIVE):
    """The §6.4 dequeue chunk of one corpus kernel under ``policy``."""
    if policy == SchedulingPolicy.NAIVE:
        return 1
    return transform_chunks(profile.benchmark, policy)[profile.kernel]


def isolated_time(name, device):
    """Isolated standard-OpenCL execution time — the IS denominator."""
    key = (name, device.name)
    value = _iso_cache.get(key)
    if value is None:
        sim = GPUSimulator(device)
        trace = sim.run([_base_spec(name)])
        value = trace.makespan
        _iso_cache[key] = value
    return value


class WorkloadResult:
    """Metrics of one workload under one scheme."""

    def __init__(self, workload, scheme, device_name, turnarounds,
                 intervals, isolated_times):
        self.workload = tuple(workload)
        self.scheme = scheme
        self.device_name = device_name
        self.turnarounds = turnarounds
        self.intervals = intervals
        self.isolated_times = isolated_times
        self.slowdowns = individual_slowdowns(turnarounds, isolated_times)
        self.unfairness = system_unfairness(self.slowdowns)
        self.makespan = max(turnarounds)
        self.antt = antt(self.slowdowns)
        self.stp = stp(self.slowdowns)
        self.overlap = execution_overlap(intervals)

    def __repr__(self):
        return ("<WorkloadResult {} {}: U={:.2f} T={:.4f}>"
                .format(self.scheme, "+".join(self.workload),
                        self.unfairness, self.makespan))


def _accelos_specs(names, device, policy, saturate=True):
    specs = [_base_spec(n) for n in names]
    requirements = [
        KernelRequirements(
            name=s.name, wg_threads=s.wg_threads,
            local_mem_bytes=s.local_mem_per_wg,
            registers_per_thread=s.registers_per_thread,
            total_groups=s.total_groups)
        for s in specs
    ]
    allocations = compute_allocations(requirements, device, saturate=saturate)
    out = []
    for name, spec, allocation in zip(names, specs, allocations):
        chunk = effective_chunk(
            chunk_for_profile(profile_by_name(name), policy),
            spec.total_groups, allocation.groups)
        out.append(spec.with_mode(ExecutionMode.ACCELOS,
                                  physical_groups=allocation.groups,
                                  chunk=chunk))
    return out


def _run_once(names, scheme, device, jitter, policy, saturate):
    """One repetition; returns (turnarounds, intervals)."""
    sim = GPUSimulator(device)
    if scheme == "baseline":
        specs = [_base_spec(n) for n in names]
        trace = sim.run(specs, cost_jitter=jitter)
        return trace.turnarounds, [(iv.start, iv.finish)
                                   for iv in trace.intervals]
    if scheme == "accelos":
        specs = _accelos_specs(names, device, policy, saturate)
        trace = sim.run(specs, cost_jitter=jitter)
        return trace.turnarounds, [(iv.start, iv.finish)
                                   for iv in trace.intervals]
    if scheme == "ek":
        base = [_base_spec(n) for n in names]
        scheduler = ElasticKernelsScheduler(device)
        groups = scheduler.pack(base)
        offset = 0.0
        turnarounds = [None] * len(names)
        intervals = [None] * len(names)
        cursor = 0
        for group in groups:
            specs = scheduler.to_sim_specs(group)
            group_jitter = jitter[cursor:cursor + len(specs)] \
                if jitter is not None else None
            trace = sim.run(specs, cost_jitter=group_jitter)
            for local_index, iv in enumerate(trace.intervals):
                index = cursor + local_index
                turnarounds[index] = offset + iv.finish
                intervals[index] = (offset + iv.start, offset + iv.finish)
            offset += trace.makespan
            cursor += len(specs)
            sim = GPUSimulator(device)  # fresh state per merged launch
        return turnarounds, intervals
    raise SimulationError("unknown scheme {!r}".format(scheme))


def run_workload(names, scheme, device, repetitions=DEFAULT_REPETITIONS,
                 policy=SchedulingPolicy.ADAPTIVE, saturate=True, seed=0):
    """Run a workload ``repetitions`` times; metrics on mean times."""
    names = list(names)
    iso = [isolated_time(n, device) for n in names]
    sums = np.zeros(len(names))
    interval_sums = np.zeros((len(names), 2))
    rng = make_rng("jitter", scheme, device.name, seed, *names)
    for _ in range(repetitions):
        jitter = np.exp(rng.normal(0.0, JITTER_SIGMA, size=len(names)))
        turnarounds, intervals = _run_once(names, scheme, device, jitter,
                                           policy, saturate)
        sums += np.asarray(turnarounds)
        interval_sums += np.asarray(intervals)
    mean_turnarounds = (sums / repetitions).tolist()
    mean_intervals = [tuple(row) for row in interval_sums / repetitions]
    return WorkloadResult(names, scheme, device.name, mean_turnarounds,
                          mean_intervals, iso)


# Virtual-group granularity for single-kernel studies: real Parboil grids
# have far more work groups than the device holds resident; the coarse
# profile granularity (scale 1) keeps sweeps tractable but under-resolves
# the §6.4 chunking trade-off (see docs/PAPER_MAPPING.md, deviations).
SINGLE_KERNEL_DETAIL = 1

_detail_cache = {}


def _detailed_spec(name):
    spec = _detail_cache.get(name)
    if spec is None:
        spec = profile_by_name(name).exec_spec(
            detail_scale=SINGLE_KERNEL_DETAIL)
        _detail_cache[name] = spec
    return spec


def run_single_kernel(name, device, policy=SchedulingPolicy.ADAPTIVE,
                      scheme="accelos"):
    """Single-kernel execution time under a scheme (fig. 15 and §8.5).

    Returns ``(time, isolated_baseline_time)``.  Both sides run at the fine
    virtual-group granularity of real Parboil grids.
    """
    spec = _detailed_spec(name)
    iso = GPUSimulator(device).run([spec]).makespan
    if scheme == "baseline":
        return iso, iso
    if scheme != "accelos":
        raise SimulationError(
            "unknown single-kernel scheme {!r}".format(scheme))
    requirements = [KernelRequirements(
        name=spec.name, wg_threads=spec.wg_threads,
        local_mem_bytes=spec.local_mem_per_wg,
        registers_per_thread=spec.registers_per_thread,
        total_groups=spec.total_groups)]
    allocation = compute_allocations(requirements, device)[0]
    chunk = effective_chunk(
        chunk_for_profile(profile_by_name(name), policy),
        spec.total_groups, allocation.groups)
    accel = spec.with_mode(ExecutionMode.ACCELOS,
                           physical_groups=allocation.groups, chunk=chunk)
    trace = GPUSimulator(device).run([accel])
    return trace.makespan, iso
