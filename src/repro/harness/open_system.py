"""Open-system experiments: continuous arrivals under pluggable schemes.

The closed-batch harness (:mod:`repro.harness.experiment`) submits every
kernel at t=0 and measures one drain; a real accelOS deployment instead
serves a *stream* of requests.  This module evaluates that steady-state
regime with the paper's STP/ANTT methodology (Eyerman & Eeckhout [10])
extended with per-request queueing delay.

Scheme execution itself lives on the registered scheme objects
(:mod:`repro.api.schemes`): ``baseline`` (firmware FIFO/exclusive queue),
``ek`` (Elastic Kernels' serialised merged launches) and ``accelos``
(the §3 sharing algorithm re-run on every arrival and completion) are
pre-registered, and any user-registered scheme runs through these
experiments unchanged — the harness only zips records into metrics.

Per-request metrics measure turnaround from *arrival* (queueing included),
normalised by the kernel's isolated execution time — the open-system
analogue of the paper's individual slowdown.

**Inputs:** an arrival stream (:class:`repro.workloads.arrivals.ArrivalRequest`
lists, usually from the seeded generators) plus a device — or, for
:class:`FleetOpenSystemExperiment`, a :class:`repro.sim.fleet.DeviceFleet`
and a placement policy.  **Invariants:** records are returned in the
stream's submission order, one per arrival (conservation); every
experiment is a pure function of its inputs (same stream → bit-identical
metrics); the accelOS scheme re-runs the §3 allocator on every arrival
and completion of the device serving the request.

Fleet runs place each request on exactly one device
(:func:`repro.accelos.placement.place_arrivals`), simulate every device
independently, and report both per-device results and fleet-wide
aggregates.  Fleet slowdowns are normalised by the *best* isolated time
across the fleet, so being routed to a slow device legitimately counts as
slowdown — the user-perceived metric for a heterogeneous deployment.
"""

from __future__ import annotations

import numpy as np

from repro.accelos.adaptive import SchedulingPolicy
from repro.accelos.placement import (OfflinePolicyAdapter,
                                     OnlinePlacementPolicy, PlacementDecision,
                                     place_arrivals)
# re-exported under their historical home: these primitives now live in
# repro.api.kernels so schemes below the harness can share them
from repro.api.kernels import (arrival_rate_for_load,  # noqa: F401
                               fleet_arrival_rate_for_load, isolated_time,
                               mean_isolated_service, requirements_from_spec,
                               sharing_allocator)
from repro.api.placements import placement_from_name, rebalancer_from_name
from repro.api.schemes import (RequestRecord, open_scheme_names,
                               scheme_from_name)
from repro.errors import SimulationError
from repro.metrics import (StreamingRecordSink, antt, individual_slowdowns,
                           request_tails, stp, system_unfairness)
from repro.sim.fleet import DeviceFleet, FleetSimulator
from repro.workloads.arrivals import ArrivalRequest


class OpenSystemResult:
    """Stream-level metrics of one scheme over one arrival stream.

    Built either from a retained record list (the exact path — every
    metric computed over the full population) or from a
    :class:`~repro.metrics.sketches.StreamingRecordSink`
    (:meth:`from_sink` — bounded-memory online accumulators, percentile
    fields are P² estimates, ``records``/``slowdowns`` are ``None``).
    Both forms expose the identical metric surface, so the METRICS
    registry and every report work unchanged.
    """

    def __init__(self, scheme, device_name, records):
        if not records:
            raise SimulationError("no request records")
        self.scheme = scheme
        self.device_name = device_name
        self.records = records
        self.count = len(records)
        turnarounds = [r.turnaround for r in records]
        isolated = [r.isolated for r in records]
        self.slowdowns = individual_slowdowns(turnarounds, isolated)
        self.unfairness = system_unfairness(self.slowdowns)
        self.antt = antt(self.slowdowns)
        self.stp = stp(self.slowdowns)
        self.mean_turnaround = float(np.mean(turnarounds))
        self.mean_queueing_delay = float(
            np.mean([r.queueing_delay for r in records]))
        self.makespan = max(r.finish for r in records)
        (self.slowdown_tails, self.queueing_tails,
         self.tenant_slowdown_tails) = request_tails(records)

    @classmethod
    def from_sink(cls, scheme, device_name, sink):
        """Build the streaming twin from a non-empty record sink."""
        if sink.count == 0:
            raise SimulationError("no request records")
        stats = sink.slowdown.stats
        if stats.min <= 0:
            # mirrors metrics.fairness.system_unfairness
            raise SimulationError("slowdowns must be positive")
        self = object.__new__(cls)
        self.scheme = scheme
        self.device_name = device_name
        self.records = None             # not retained: bounded memory
        self.count = sink.count
        self.slowdowns = None
        self.unfairness = stats.max / stats.min
        self.antt = stats.mean
        self.stp = sink.inverse_slowdown_sum
        self.mean_turnaround = sink.turnaround.mean
        self.mean_queueing_delay = sink.queueing.stats.mean
        self.makespan = sink.finish.max
        self.slowdown_tails = sink.slowdown.summary()
        self.queueing_tails = sink.queueing.summary()
        self.tenant_slowdown_tails = sink.tenant_summaries()
        return self

    @property
    def p99_slowdown(self):
        """The headline tail metric: 99th-percentile request slowdown."""
        return self.slowdown_tails.p99

    @property
    def request_throughput(self):
        """Completed requests per second of simulated time."""
        return self.count / self.makespan

    def __repr__(self):
        return ("<OpenSystemResult {} {} reqs: U={:.2f} ANTT={:.2f}>"
                .format(self.scheme, self.count, self.unfairness,
                        self.antt))


class OpenSystemExperiment:
    """Runs one arrival stream under registered scheduling schemes."""

    def __init__(self, device, policy=SchedulingPolicy.ADAPTIVE,
                 saturate=True):
        self.device = device
        self.policy = policy
        self.saturate = saturate

    # -- public ------------------------------------------------------------

    def run(self, arrivals, scheme, ledger=None):
        """Simulate ``arrivals`` (a list of :class:`ArrivalRequest`) under
        ``scheme`` (a registered name or scheme object); returns an
        :class:`OpenSystemResult` with records in submission order.

        With a ``ledger`` (:class:`repro.attribution.AttributionLedger`)
        the run is driven through the harvesting session loop — identical
        timings, but completions surface as events the ledger can
        consume — and the result gains an ``attribution`` report.
        """
        scheme_obj = scheme_from_name(scheme)
        if ledger is not None:
            records = self._attributed_records(arrivals, scheme_obj,
                                               ledger)
            result = OpenSystemResult(scheme_obj.name, self.device.name,
                                      records)
            result.attribution = ledger.report()
            return result
        records = self.scheme_records(arrivals, scheme_obj)
        return OpenSystemResult(scheme_obj.name, self.device.name, records)

    def _attributed_records(self, arrivals, scheme_obj, ledger):
        """Exact-path records via the harvesting session loop, with every
        submit/finish mirrored into ``ledger`` in event order (the eager
        ``open_records`` path computes identical timings but never
        surfaces per-completion events)."""
        if not arrivals:
            raise SimulationError("empty arrival stream")
        if not scheme_obj.supports_open_session:
            raise SimulationError(
                "scheme {!r} has no open_session, so its runs cannot be "
                "attributed".format(scheme_obj.name))
        session = scheme_obj.open_session(self.device, policy=self.policy,
                                          saturate=self.saturate)
        records = [None] * len(arrivals)
        pending = {}
        order = sorted(range(len(arrivals)),
                       key=lambda i: (arrivals[i].time, i))
        for i in order:
            arrival = arrivals[i]
            while True:
                next_time = session.peek()
                if next_time is None or next_time >= arrival.time:
                    break
                session.step()
            self._drain_attributed(session, pending, records, ledger)
            session.submit(i, arrival, arrival.time)
            ledger.submit(i, arrival.name, arrival.tenant, 0, arrival.time,
                          isolated_time(arrival.name, self.device))
            pending[i] = arrival
        while session.peek() is not None:
            session.step()
        self._drain_attributed(session, pending, records, ledger)
        if pending:
            raise SimulationError(
                "{} requests never finished on {} (conservation "
                "violated)".format(len(pending), self.device.name))
        return records

    def _drain_attributed(self, session, pending, records, ledger):
        for key, start, finish in session.harvest():
            arrival = pending.pop(key)
            ledger.finish(key, start, finish)
            record = RequestRecord(
                arrival.name, arrival.time, start, finish,
                isolated_time(arrival.name, self.device),
                tenant=arrival.tenant)
            ledger.observe_record(record)
            records[key] = record

    def scheme_records(self, arrivals, scheme):
        """Per-request records of one scheme over one stream (the building
        block :class:`FleetOpenSystemExperiment` combines per device).
        Unknown scheme names raise listing the registered schemes."""
        if not arrivals:
            raise SimulationError("empty arrival stream")
        return scheme_from_name(scheme).open_records(
            arrivals, self.device, policy=self.policy,
            saturate=self.saturate)

    def run_stream(self, arrivals, scheme, sink_factory=None, ledger=None):
        """Streaming :meth:`run`: consume a *lazy* time-ordered arrival
        iterator incrementally, accumulate metrics in a record sink and
        never retain the stream — bounded memory at any request count.

        The scheme must support ``open_session`` (with ``harvest()``).
        Returns an :class:`OpenSystemResult` built
        :meth:`~OpenSystemResult.from_sink` (``records is None``).  With
        a ``ledger`` the sink forwards every completed record to it, the
        submit/finish events feed its accounts, and the result gains an
        ``attribution`` report — still bounded memory (the ledger is
        O(#tenants·#devices)).
        """
        scheme_obj = scheme_from_name(scheme)
        if not scheme_obj.supports_open_session:
            raise SimulationError(
                "scheme {!r} has no open_session, so it cannot consume "
                "a stream incrementally; use run() with a list".format(
                    scheme_obj.name))
        session = scheme_obj.open_session(self.device, policy=self.policy,
                                          saturate=self.saturate)
        sink = (sink_factory or StreamingRecordSink)()
        if ledger is not None and hasattr(sink, "attach_attribution"):
            sink.attach_attribution(ledger.observe_record)
        pending = {}                    # key -> arrival, outstanding only
        position = 0
        last_time = None
        for arrival in arrivals:
            if last_time is not None and arrival.time < last_time - 1e-12:
                raise SimulationError(
                    "streaming arrivals must be time-ordered: {:.6f} "
                    "after {:.6f}".format(arrival.time, last_time))
            last_time = arrival.time
            # advance strictly before the arrival (the arrival-first tie
            # rule of run_open), then absorb whatever finished
            while True:
                next_time = session.peek()
                if next_time is None or next_time >= arrival.time:
                    break
                session.step()
            self._harvest_into(session, pending, sink, ledger)
            session.submit(position, arrival, arrival.time)
            if ledger is not None:
                ledger.submit(position, arrival.name, arrival.tenant, 0,
                              arrival.time,
                              isolated_time(arrival.name, self.device))
            pending[position] = arrival
            position += 1
        if position == 0:
            raise SimulationError("empty arrival stream")
        while session.peek() is not None:
            session.step()
        self._harvest_into(session, pending, sink, ledger)
        if pending:
            raise SimulationError(
                "{} requests never finished on {} (conservation "
                "violated)".format(len(pending), self.device.name))
        # observability only: how many engine events the stream cost
        # (read by benchmarks/bench_engine.py for events/sec)
        self.events_processed = getattr(session, "events_processed", 0)
        result = OpenSystemResult.from_sink(scheme_obj.name,
                                            self.device.name, sink)
        if ledger is not None:
            result.attribution = ledger.report()
        return result

    def _harvest_into(self, session, pending, sink, ledger=None):
        for key, start, finish in session.harvest():
            arrival = pending.pop(key)
            if ledger is not None:
                ledger.finish(key, start, finish)
            sink.observe(RequestRecord(
                arrival.name, arrival.time, start, finish,
                isolated_time(arrival.name, self.device),
                tenant=arrival.tenant))

    def run_all(self, arrivals, schemes=None):
        """All schemes over one stream: ``{scheme: OpenSystemResult}``.
        ``schemes=None`` means every registered *open-capable* scheme,
        resolved at call time — user registrations included."""
        if schemes is None:
            schemes = open_scheme_names()
        return {scheme_from_name(s).name: self.run(arrivals, s)
                for s in schemes}


# -- multi-device fleets ------------------------------------------------------

class FleetOpenSystemResult:
    """One scheme + placement policy over one stream on one fleet.

    ``overall`` aggregates every request fleet-wide; ``per_device`` maps
    device ids (only those that served at least one request) to their own
    :class:`OpenSystemResult`.  All slowdowns are normalised by the best
    isolated time across the fleet, so the heterogeneity cost of a
    placement decision is visible in ANTT/unfairness.
    """

    def __init__(self, scheme, placement_name, fleet, records_by_device,
                 all_records, decisions, rebalances=0):
        self.scheme = scheme
        self.placement = placement_name
        self.fleet_ids = list(fleet.ids)
        self.overall = OpenSystemResult(
            scheme, "fleet({})".format("+".join(fleet.ids)), all_records)
        self.per_device = {
            device_id: OpenSystemResult(scheme, device_id, records)
            for device_id, records in records_by_device.items() if records
        }
        self.decisions = decisions
        self.migrations = sum(1 for d in decisions if d.penalty > 0)
        # closed-loop only: how many requests the re-balance hook moved
        # between devices after their initial placement
        self.rebalances = rebalances
        self.device_share = {
            device_id: len(records_by_device.get(device_id, ())) /
            float(len(all_records))
            for device_id in fleet.ids
        }

    @classmethod
    def from_sinks(cls, scheme, placement_name, fleet, overall_sink,
                   device_sinks, migrations=0, rebalances=0):
        """Build the streaming twin from per-device record sinks.

        ``decisions`` is ``None`` (per-arrival decisions are not retained
        in streaming mode); ``migrations``/``rebalances`` arrive as
        counts accumulated by the streaming loop.
        """
        self = object.__new__(cls)
        self.scheme = scheme
        self.placement = placement_name
        self.fleet_ids = list(fleet.ids)
        self.overall = OpenSystemResult.from_sink(
            scheme, "fleet({})".format("+".join(fleet.ids)), overall_sink)
        self.per_device = {
            device_id: OpenSystemResult.from_sink(scheme, device_id, sink)
            for device_id, sink in device_sinks.items() if sink.count
        }
        self.decisions = None
        self.migrations = migrations
        self.rebalances = rebalances
        total = float(self.overall.count)
        self.device_share = {
            device_id: (device_sinks[device_id].count / total
                        if device_id in device_sinks else 0.0)
            for device_id in fleet.ids
        }
        return self

    def __getattr__(self, attr):
        # convenience passthrough: fleet.antt == fleet.overall.antt
        if attr in ("antt", "stp", "unfairness", "mean_turnaround",
                    "mean_queueing_delay", "records", "slowdowns",
                    "makespan", "request_throughput", "slowdown_tails",
                    "queueing_tails", "tenant_slowdown_tails",
                    "p99_slowdown", "count"):
            return getattr(self.overall, attr)
        raise AttributeError(attr)

    def __repr__(self):
        return ("<FleetOpenSystemResult {}/{} {} reqs on {} devices: "
                "U={:.2f} ANTT={:.2f}>".format(
                    self.scheme, self.placement, self.overall.count,
                    len(self.per_device), self.overall.unfairness,
                    self.overall.antt))


class FleetOpenSystemExperiment:
    """Open-system arrival streams against a heterogeneous device fleet.

    The fleet runs as a **closed-loop co-simulation**
    (:class:`repro.sim.fleet.FleetSimulator`): every device's scheme
    session shares one event timeline and the placement policy is
    consulted at each arrival.  Three placement modes (``mode=``):

    * ``"auto"`` (default) — an offline policy runs in the loop in
      *estimate* mode, reproducing the historical offline pre-pass's
      decisions bit-identically; an online policy gets live fleet state
      and the re-balance hook.
    * ``"offline"`` — force the legacy pre-pass
      (:func:`~repro.accelos.placement.place_arrivals` + independent
      per-device simulation); online policies are rejected.  Also the
      fallback for registered schemes that implement ``open_records``
      but no ``open_session``.
    * ``"online"`` — force live-state placement: online policies run
      natively, offline policies are adapted with live loads.

    ``rebalance`` names a registered re-balancer
    (:func:`repro.api.placements.rebalancer_names`) wrapped around the
    policy; it requires live-state placement (an online policy, or
    ``mode="online"``).

    Pinned requests are honoured in every mode and never re-balanced;
    migration penalties delay a request's availability on its new
    device.  Deterministic end to end: placement has no RNG and device
    simulation is event-driven.
    """

    def __init__(self, fleet, policy=SchedulingPolicy.ADAPTIVE,
                 saturate=True):
        if not isinstance(fleet, DeviceFleet):
            fleet = DeviceFleet(fleet)
        self.fleet = fleet
        self.policy = policy
        self.saturate = saturate
        self.experiments = [
            OpenSystemExperiment(member.device, policy=policy,
                                 saturate=saturate)
            for member in fleet
        ]

    # -- placement ---------------------------------------------------------

    def reference_isolated(self, name):
        """Best isolated time across the fleet: the slowdown denominator."""
        return min(isolated_time(name, member.device)
                   for member in self.fleet)

    def place(self, arrivals, placement):
        """Offline placement decisions for one stream (no simulation)."""
        return place_arrivals(
            placement_from_name(placement), arrivals, self.fleet.devices,
            estimator=isolated_time, ids=self.fleet.id_to_index())

    # -- simulation --------------------------------------------------------

    def run(self, arrivals, scheme, placement, mode="auto", rebalance=None,
            ledger=None):
        """One scheme over one stream under one placement policy.

        ``placement`` is a registered name or a policy instance (offline
        or online protocol); ``mode`` and ``rebalance`` are described on
        the class.  With a ``ledger``
        (:class:`repro.attribution.AttributionLedger`) the closed loop
        feeds it placement/migration/completion events and the result
        gains an ``attribution`` report; the offline pre-pass has no
        event timeline to attribute, so it rejects a ledger.
        """
        if not arrivals:
            raise SimulationError("empty arrival stream")
        if mode not in ("auto", "offline", "online"):
            raise SimulationError(
                "placement mode must be 'auto', 'offline' or 'online', "
                "got {!r}".format(mode))
        scheme_obj = scheme_from_name(scheme)
        policy = placement_from_name(placement)
        is_online = isinstance(policy, OnlinePlacementPolicy)
        if rebalance in ("none",):
            rebalance = None

        if mode == "offline" or (mode == "auto"
                                 and not is_online
                                 and not scheme_obj.supports_open_session):
            if ledger is not None:
                raise SimulationError(
                    "attribution needs the closed loop's event timeline; "
                    "offline placement cannot be attributed")
            if is_online:
                raise SimulationError(
                    "placement {!r} is closed-loop-only; drop "
                    "mode='offline' or pick an offline policy".format(
                        policy.name))
            if rebalance is not None:
                raise SimulationError(
                    "re-balancing needs the closed loop; drop "
                    "mode='offline' or the rebalance setting")
            return self._run_offline(arrivals, scheme_obj, policy)

        policy = self._loop_policy(scheme_obj, policy, is_online, mode,
                                   rebalance)
        return self._run_loop(arrivals, scheme_obj, policy, ledger=ledger)

    def _loop_policy(self, scheme_obj, policy, is_online, mode, rebalance):
        """Wrap/validate a placement policy for the closed loop (shared
        by the eager and streaming paths)."""
        if mode == "online" and not is_online:
            # legacy choose logic fed live simulator state
            policy = OfflinePolicyAdapter(policy, mode="live")
        elif not is_online:
            # auto: replay the offline pre-pass decisions bit-identically
            policy = OfflinePolicyAdapter(policy, mode="estimate")
        if rebalance is not None:
            if not (is_online or mode == "online"):
                raise SimulationError(
                    "re-balancing needs live-state placement: use an "
                    "online policy or mode='online'")
            policy = rebalancer_from_name(rebalance)(policy)
        if not scheme_obj.supports_open_session:
            raise SimulationError(
                "scheme {!r} has no open_session, so it cannot serve "
                "online placement; use an offline policy (or implement "
                "open_session)".format(scheme_obj.name))
        return policy

    def run_stream(self, arrivals, scheme, placement, mode="auto",
                   rebalance=None, sink_factory=None, ledger=None):
        """Streaming :meth:`run`: consume a lazy time-ordered arrival
        iterator through the closed loop in bounded memory.

        Always the closed-loop path (``mode="offline"`` is rejected —
        the pre-pass needs the whole stream up front); completed
        requests drain into per-device record sinks as they finish.
        Returns a :class:`FleetOpenSystemResult` built
        :meth:`~FleetOpenSystemResult.from_sinks` (``records`` and
        ``decisions`` are ``None``).  With a ``ledger`` the loop feeds
        it placement/migration/completion events, the *overall* sink
        forwards completed records (per-device sinks do not — one
        observation per record), and the result gains an
        ``attribution`` report.
        """
        if mode not in ("auto", "online"):
            raise SimulationError(
                "streaming fleet runs are closed-loop only: placement "
                "mode must be 'auto' or 'online', got {!r}".format(mode))
        scheme_obj = scheme_from_name(scheme)
        policy = placement_from_name(placement)
        is_online = isinstance(policy, OnlinePlacementPolicy)
        if rebalance in ("none",):
            rebalance = None
        policy = self._loop_policy(scheme_obj, policy, is_online, mode,
                                   rebalance)
        sessions = [
            scheme_obj.open_session(member.device, policy=self.policy,
                                    saturate=self.saturate)
            for member in self.fleet
        ]
        simulator = FleetSimulator(self.fleet, sessions, policy,
                                   estimator=isolated_time, ledger=ledger)
        factory = sink_factory or StreamingRecordSink
        overall = factory()
        if ledger is not None and hasattr(overall, "attach_attribution"):
            overall.attach_attribution(ledger.observe_record)
        device_sinks = {device_id: factory()
                        for device_id in self.fleet.ids}
        migrated = [0]

        def on_record(entry, start, finish):
            arrival = entry.arrival
            record = RequestRecord(
                arrival.name, arrival.time, start, finish,
                self.reference_isolated(arrival.name),
                tenant=arrival.tenant)
            overall.observe(record)
            device_sinks[self.fleet[entry.index].id].observe(record)
            if entry.penalty > 0:
                migrated[0] += 1

        simulator.run_stream(arrivals, on_record)
        # observability only: engine events summed over the fleet's
        # sessions (read by benchmarks/bench_engine.py for events/sec)
        self.events_processed = simulator.events_processed()
        result = FleetOpenSystemResult.from_sinks(
            scheme_obj.name, policy.name, self.fleet, overall,
            device_sinks, migrations=migrated[0],
            rebalances=len(simulator.migrations))
        if ledger is not None:
            result.attribution = ledger.report()
        return result

    def _run_loop(self, arrivals, scheme_obj, policy, ledger=None):
        """The closed-loop path: one merged timeline over all devices.

        With a ``ledger`` the loop runs through the harvesting streaming
        machinery over the same (sorted) stream — identical placements
        and timings, but completions surface as the per-event stream the
        ledger consumes — and the result is rebuilt in submission order
        with an ``attribution`` report attached.
        """
        sessions = [
            scheme_obj.open_session(member.device, policy=self.policy,
                                    saturate=self.saturate)
            for member in self.fleet
        ]
        simulator = FleetSimulator(self.fleet, sessions, policy,
                                   estimator=isolated_time, ledger=ledger)
        if ledger is None:
            placed = simulator.run(arrivals)
            timings = [session.results() for session in sessions]
            timing_of = [timings[placed[i].index][i]
                         for i in range(len(arrivals))]
        else:
            # same (time, index) order run() uses; stream positions map
            # back to original positions through it
            order = sorted(range(len(arrivals)),
                           key=lambda i: (arrivals[i].time, i))
            placed = [None] * len(arrivals)
            timing_of = [None] * len(arrivals)

            def on_harvest(entry, start, finish):
                original = order[entry.position]
                placed[original] = entry
                timing_of[original] = (start, finish)
                ledger.observe_record(RequestRecord(
                    entry.arrival.name, entry.arrival.time, start, finish,
                    self.reference_isolated(entry.arrival.name),
                    tenant=entry.arrival.tenant))

            simulator.run_stream((arrivals[i] for i in order), on_harvest)
        all_records = [None] * len(arrivals)
        records_by_device = {device_id: [] for device_id in self.fleet.ids}
        decisions = []
        for position, arrival in enumerate(arrivals):
            entry = placed[position]
            start, finish = timing_of[position]
            record = RequestRecord(
                arrival.name, arrival.time, start, finish,
                self.reference_isolated(arrival.name),
                tenant=arrival.tenant)
            all_records[position] = record
            records_by_device[self.fleet[entry.index].id].append(record)
            decisions.append(PlacementDecision(
                arrival, entry.index, entry.penalty, entry.pinned))
        result = FleetOpenSystemResult(
            scheme_obj.name, policy.name, self.fleet, records_by_device,
            all_records, decisions,
            rebalances=len(simulator.migrations))
        if ledger is not None:
            result.attribution = ledger.report()
        return result

    def _run_offline(self, arrivals, scheme_obj, policy):
        """The legacy pre-pass path: place the whole stream against the
        single-server backlog estimate, then simulate every device's
        sub-stream independently."""
        decisions = self.place(arrivals, policy)
        per_device_indices = {i: [] for i in range(len(self.fleet))}
        for position, decision in enumerate(decisions):
            per_device_indices[decision.index].append(position)

        all_records = [None] * len(arrivals)
        records_by_device = {}
        for index, positions in per_device_indices.items():
            device_id = self.fleet[index].id
            if not positions:
                records_by_device[device_id] = []
                continue
            # a migration penalty delays the request's availability on the
            # device (the buffers move first), so it shifts the effective
            # arrival; queueing delay is still charged from the original
            # arrival time below.
            sub_arrivals = [
                ArrivalRequest(arrivals[p].name,
                               arrivals[p].time + decisions[p].penalty,
                               tenant=arrivals[p].tenant)
                for p in positions
            ]
            sub_records = self.experiments[index].scheme_records(
                sub_arrivals, scheme_obj)
            device_records = []
            for position, record in zip(positions, sub_records):
                original = arrivals[position]
                rewritten = RequestRecord(
                    record.name, original.time, record.start, record.finish,
                    self.reference_isolated(record.name),
                    tenant=original.tenant)
                device_records.append(rewritten)
                all_records[position] = rewritten
            records_by_device[device_id] = device_records
        if any(record is None for record in all_records):
            raise SimulationError("fleet run lost a request record")
        return FleetOpenSystemResult(scheme_obj.name, policy.name,
                                     self.fleet, records_by_device,
                                     all_records, decisions)

    def run_all(self, arrivals, placement, schemes=None, mode="auto",
                rebalance=None):
        """All schemes over one stream: ``{scheme: FleetOpenSystemResult}``.
        ``schemes=None`` means every registered open-capable scheme, at
        call time."""
        if schemes is None:
            schemes = open_scheme_names()
        return {scheme_from_name(s).name:
                self.run(arrivals, s, placement, mode=mode,
                         rebalance=rebalance)
                for s in schemes}

    def run_policies(self, arrivals, scheme, policies, mode="auto",
                     rebalance=None):
        """One scheme under several placement policies:
        ``{policy_name: FleetOpenSystemResult}``."""
        results = {}
        for policy in policies:
            policy = placement_from_name(policy)
            results[policy.name] = self.run(arrivals, scheme, policy,
                                            mode=mode, rebalance=rebalance)
        return results
