"""Open-system experiments: continuous arrivals under the three schemes.

The closed-batch harness (:mod:`repro.harness.experiment`) submits every
kernel at t=0 and measures one drain; a real accelOS deployment instead
serves a *stream* of requests.  This module evaluates that steady-state
regime with the paper's STP/ANTT methodology (Eyerman & Eeckhout [10])
extended with per-request queueing delay:

* ``baseline`` — the standard stack: requests join the firmware scheduler's
  queue at arrival and dispatch in arrival order (FIFO drain-overlap or
  exclusive, per device).
* ``ek``       — Elastic Kernels: a merged launch is static, so newly
  arrived requests must wait for the current launch to drain before being
  merged; arrivals serialise into successive merged launches.
* ``accelos``  — the §3 sharing algorithm re-runs over the active request
  set on every arrival and completion; allocations grow and shrink at
  chunk boundaries (the re-allocation path generalising ``rebalance``).

Per-request metrics measure turnaround from *arrival* (queueing included),
normalised by the kernel's isolated execution time — the open-system
analogue of the paper's individual slowdown.

**Inputs:** an arrival stream (:class:`repro.workloads.arrivals.ArrivalRequest`
lists, usually from the seeded generators) plus a device — or, for
:class:`FleetOpenSystemExperiment`, a :class:`repro.sim.fleet.DeviceFleet`
and a placement policy.  **Invariants:** records are returned in the
stream's submission order, one per arrival (conservation); every
experiment is a pure function of its inputs (same stream → bit-identical
metrics); the accelOS scheme re-runs the §3 allocator on every arrival
and completion of the device serving the request.

Fleet runs place each request on exactly one device
(:func:`repro.accelos.placement.place_arrivals`), simulate every device
independently, and report both per-device results and fleet-wide
aggregates.  Fleet slowdowns are normalised by the *best* isolated time
across the fleet, so being routed to a slow device legitimately counts as
slowdown — the user-perceived metric for a heterogeneous deployment.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.accelos.adaptive import SchedulingPolicy, effective_chunk
from repro.accelos.placement import place_arrivals
from repro.accelos.sharing import KernelRequirements, compute_allocations
from repro.baselines.elastic_kernels import ElasticKernelsScheduler
from repro.errors import SimulationError
from repro.harness.experiment import (SCHEMES, _base_spec, chunk_for_profile,
                                      isolated_time)
from repro.metrics import (antt, individual_slowdowns, request_tails, stp,
                           system_unfairness)
from repro.sim import ExecutionMode, GPUSimulator
from repro.sim.fleet import DeviceFleet
from repro.workloads.arrivals import ArrivalRequest
from repro.workloads.parboil import PROFILE_NAMES, profile_by_name


def requirements_from_spec(spec):
    """The §3 inputs of one simulator spec (resource demands per WG)."""
    return KernelRequirements(
        name=spec.name, wg_threads=spec.wg_threads,
        local_mem_bytes=spec.local_mem_per_wg,
        registers_per_thread=spec.registers_per_thread,
        total_groups=spec.total_groups)


def sharing_allocator(device, saturate=True):
    """An allocator callback for :meth:`GPUSimulator.run_open`.

    Wraps the §3 sharing algorithm: given the specs of the currently-active
    kernels, returns their physical-group targets.
    """
    def allocate(specs):
        requirements = [requirements_from_spec(s) for s in specs]
        allocations = compute_allocations(requirements, device,
                                          saturate=saturate)
        return [a.groups for a in allocations]
    return allocate


def arrival_rate_for_load(load, device, names=None, weights=None):
    """The arrival rate (requests/s) producing offered load ``load``.

    Offered load is ``rho = lambda * E[S]`` with ``E[S]`` the mean isolated
    service time of the kernel mix; ``rho = 1`` saturates a server that
    runs requests back to back with no sharing.  ``weights`` optionally
    gives the mix's per-kernel selection probabilities (normalised here) —
    the scenario engine passes its effective mix so weighted traffic
    offers the load it claims; ``None`` means a uniform mix.
    """
    if load <= 0:
        raise SimulationError("offered load must be positive")
    pool = list(names) if names is not None else list(PROFILE_NAMES)
    if weights is None:
        mean_service = float(np.mean([isolated_time(n, device)
                                      for n in pool]))
    else:
        if len(weights) != len(pool):
            raise SimulationError(
                "need one weight per kernel name ({} != {})".format(
                    len(weights), len(pool)))
        total = float(sum(weights))
        if total <= 0 or any(w < 0 for w in weights):
            raise SimulationError("weights must be non-negative with a "
                                  "positive sum")
        mean_service = sum((w / total) * isolated_time(n, device)
                           for n, w in zip(pool, weights))
    return load / mean_service


class RequestRecord:
    """Timing of one request through the open system.

    ``tenant`` carries the arrival's tenant tag (``None`` for untagged
    streams) so tail metrics can report per-tenant breakdowns.
    """

    __slots__ = ("name", "arrival", "start", "finish", "isolated", "tenant")

    def __init__(self, name, arrival, start, finish, isolated, tenant=None):
        self.name = name
        self.arrival = arrival
        self.start = start
        self.finish = finish
        self.isolated = isolated
        self.tenant = tenant

    @property
    def turnaround(self):
        """Arrival-to-completion time (queueing + service)."""
        return self.finish - self.arrival

    @property
    def queueing_delay(self):
        """Arrival-to-first-dispatch time."""
        return self.start - self.arrival

    @property
    def slowdown(self):
        """Turnaround normalised by isolated execution time (IS_i)."""
        return self.turnaround / self.isolated

    def __repr__(self):
        return "<RequestRecord {} arr={:.4f} turn={:.4f}>".format(
            self.name, self.arrival, self.turnaround)


class OpenSystemResult:
    """Stream-level metrics of one scheme over one arrival stream."""

    def __init__(self, scheme, device_name, records):
        if not records:
            raise SimulationError("no request records")
        self.scheme = scheme
        self.device_name = device_name
        self.records = records
        turnarounds = [r.turnaround for r in records]
        isolated = [r.isolated for r in records]
        self.slowdowns = individual_slowdowns(turnarounds, isolated)
        self.unfairness = system_unfairness(self.slowdowns)
        self.antt = antt(self.slowdowns)
        self.stp = stp(self.slowdowns)
        self.mean_turnaround = float(np.mean(turnarounds))
        self.mean_queueing_delay = float(
            np.mean([r.queueing_delay for r in records]))
        self.makespan = max(r.finish for r in records)
        (self.slowdown_tails, self.queueing_tails,
         self.tenant_slowdown_tails) = request_tails(records)

    @property
    def p99_slowdown(self):
        """The headline tail metric: 99th-percentile request slowdown."""
        return self.slowdown_tails.p99

    @property
    def request_throughput(self):
        """Completed requests per second of simulated time."""
        return len(self.records) / self.makespan

    def __repr__(self):
        return ("<OpenSystemResult {} {} reqs: U={:.2f} ANTT={:.2f}>"
                .format(self.scheme, len(self.records), self.unfairness,
                        self.antt))


class OpenSystemExperiment:
    """Runs one arrival stream under the paper's three schemes."""

    def __init__(self, device, policy=SchedulingPolicy.ADAPTIVE,
                 saturate=True):
        self.device = device
        self.policy = policy
        self.saturate = saturate

    # -- public ------------------------------------------------------------

    def run(self, arrivals, scheme):
        """Simulate ``arrivals`` (a list of :class:`ArrivalRequest`) under
        ``scheme``; returns an :class:`OpenSystemResult` with records in
        submission order."""
        records = self.scheme_records(arrivals, scheme)
        return OpenSystemResult(scheme, self.device.name, records)

    def scheme_records(self, arrivals, scheme):
        """Per-request records of one scheme over one stream (the building
        block :class:`FleetOpenSystemExperiment` combines per device)."""
        if not arrivals:
            raise SimulationError("empty arrival stream")
        if scheme == "baseline":
            return self._hardware_records(arrivals)
        if scheme == "accelos":
            return self._accelos_records(arrivals)
        if scheme == "ek":
            return self._elastic_records(arrivals)
        raise SimulationError("unknown scheme {!r}".format(scheme))

    def run_all(self, arrivals, schemes=SCHEMES):
        """All schemes over one stream: ``{scheme: OpenSystemResult}``."""
        return {scheme: self.run(arrivals, scheme) for scheme in schemes}

    # -- scheme implementations --------------------------------------------

    def _records_from_trace(self, arrivals, trace):
        return [
            RequestRecord(a.name, a.time, iv.start, iv.finish,
                          isolated_time(a.name, self.device),
                          tenant=a.tenant)
            for a, iv in zip(arrivals, trace.intervals)
        ]

    def _hardware_records(self, arrivals):
        specs = [_base_spec(a.name).with_arrival(a.time) for a in arrivals]
        trace = GPUSimulator(self.device).run_open(specs)
        return self._records_from_trace(arrivals, trace)

    def _accelos_records(self, arrivals):
        specs = [self._accelos_spec(a) for a in arrivals]
        allocator = sharing_allocator(self.device, saturate=self.saturate)
        trace = GPUSimulator(self.device).run_open(specs,
                                                   allocator=allocator)
        return self._records_from_trace(arrivals, trace)

    def _accelos_spec(self, arrival):
        """One request's spec: the Kernel Scheduler fixes the §6.4 dequeue
        chunk at admission (from the solo allocation); the physical group
        count itself is re-decided by the allocator as the active set
        changes."""
        base = _base_spec(arrival.name)
        solo = compute_allocations([requirements_from_spec(base)],
                                   self.device,
                                   saturate=self.saturate)[0].groups
        chunk = effective_chunk(
            chunk_for_profile(profile_by_name(arrival.name), self.policy),
            base.total_groups, solo)
        return base.with_mode(ExecutionMode.ACCELOS, physical_groups=solo,
                              chunk=chunk).with_arrival(arrival.time)

    def _elastic_records(self, arrivals):
        """Serialised merged-launch replay.

        EK decides merges statically at launch: requests arriving while a
        merged launch runs cannot join it, so they queue until the device
        drains, then the queue head is packed into the next merged launch
        (arrival order, bounded by the merge width and static split floor).
        """
        scheduler = ElasticKernelsScheduler(self.device)
        order = sorted(range(len(arrivals)),
                       key=lambda i: (arrivals[i].time, i))
        records = [None] * len(arrivals)
        waiting = deque()
        now = 0.0
        next_arrival = 0
        while next_arrival < len(order) or waiting:
            if not waiting:
                now = max(now, arrivals[order[next_arrival]].time)
            while (next_arrival < len(order)
                   and arrivals[order[next_arrival]].time <= now + 1e-12):
                waiting.append(order[next_arrival])
                next_arrival += 1
            specs = [_base_spec(arrivals[i].name) for i in waiting]
            head = scheduler.pack(specs)[0]
            launched = [waiting.popleft() for _ in head.specs]
            trace = GPUSimulator(self.device).run(
                scheduler.to_sim_specs(head))
            for i, iv in zip(launched, trace.intervals):
                a = arrivals[i]
                records[i] = RequestRecord(
                    a.name, a.time, now + iv.start, now + iv.finish,
                    isolated_time(a.name, self.device), tenant=a.tenant)
            now += trace.makespan
        return records


# -- multi-device fleets ------------------------------------------------------

def fleet_arrival_rate_for_load(load, fleet, names=None, weights=None):
    """The arrival rate offering ``load`` to a whole fleet.

    The fleet's service capacity is the sum of the per-device rates
    ``1 / E[S_d]`` (each device as one server working through isolated
    service times of the kernel mix); ``load = 1`` saturates the fleet
    when placement is perfect.  ``weights`` has the same meaning as in
    :func:`arrival_rate_for_load` — pass a scenario's effective mix so
    weighted traffic offers the fleet the load it claims.
    """
    if load <= 0:
        raise SimulationError("offered load must be positive")
    capacity = sum(arrival_rate_for_load(1.0, member.device, names=names,
                                         weights=weights)
                   for member in fleet)
    return load * capacity


class FleetOpenSystemResult:
    """One scheme + placement policy over one stream on one fleet.

    ``overall`` aggregates every request fleet-wide; ``per_device`` maps
    device ids (only those that served at least one request) to their own
    :class:`OpenSystemResult`.  All slowdowns are normalised by the best
    isolated time across the fleet, so the heterogeneity cost of a
    placement decision is visible in ANTT/unfairness.
    """

    def __init__(self, scheme, placement_name, fleet, records_by_device,
                 all_records, decisions):
        self.scheme = scheme
        self.placement = placement_name
        self.fleet_ids = list(fleet.ids)
        self.overall = OpenSystemResult(
            scheme, "fleet({})".format("+".join(fleet.ids)), all_records)
        self.per_device = {
            device_id: OpenSystemResult(scheme, device_id, records)
            for device_id, records in records_by_device.items() if records
        }
        self.decisions = decisions
        self.migrations = sum(1 for d in decisions if d.penalty > 0)
        self.device_share = {
            device_id: len(records_by_device.get(device_id, ())) /
            float(len(all_records))
            for device_id in fleet.ids
        }

    def __getattr__(self, attr):
        # convenience passthrough: fleet.antt == fleet.overall.antt
        if attr in ("antt", "stp", "unfairness", "mean_turnaround",
                    "mean_queueing_delay", "records", "slowdowns",
                    "makespan", "request_throughput", "slowdown_tails",
                    "queueing_tails", "tenant_slowdown_tails",
                    "p99_slowdown"):
            return getattr(self.overall, attr)
        raise AttributeError(attr)

    def __repr__(self):
        return ("<FleetOpenSystemResult {}/{} {} reqs on {} devices: "
                "U={:.2f} ANTT={:.2f}>".format(
                    self.scheme, self.placement, len(self.overall.records),
                    len(self.per_device), self.overall.unfairness,
                    self.overall.antt))


class FleetOpenSystemExperiment:
    """Open-system arrival streams against a heterogeneous device fleet.

    Placement routes each request to one device (pinned requests are
    honoured, migration penalties delay a request's availability on its
    new device), every device then simulates its sub-stream exactly as a
    standalone :class:`OpenSystemExperiment` would — own simulator, own §3
    allocator — and the records are recombined.  Deterministic end to end:
    placement has no RNG and device simulation is event-driven.
    """

    def __init__(self, fleet, policy=SchedulingPolicy.ADAPTIVE,
                 saturate=True):
        if not isinstance(fleet, DeviceFleet):
            fleet = DeviceFleet(fleet)
        self.fleet = fleet
        self.experiments = [
            OpenSystemExperiment(member.device, policy=policy,
                                 saturate=saturate)
            for member in fleet
        ]

    # -- placement ---------------------------------------------------------

    def reference_isolated(self, name):
        """Best isolated time across the fleet: the slowdown denominator."""
        return min(isolated_time(name, member.device)
                   for member in self.fleet)

    def place(self, arrivals, placement):
        """Placement decisions for one stream (no simulation)."""
        return place_arrivals(
            placement, arrivals, self.fleet.devices,
            estimator=isolated_time, ids=self.fleet.id_to_index())

    # -- simulation --------------------------------------------------------

    def run(self, arrivals, scheme, placement):
        """One scheme over one stream under one placement policy."""
        if not arrivals:
            raise SimulationError("empty arrival stream")
        decisions = self.place(arrivals, placement)
        per_device_indices = {i: [] for i in range(len(self.fleet))}
        for position, decision in enumerate(decisions):
            per_device_indices[decision.index].append(position)

        all_records = [None] * len(arrivals)
        records_by_device = {}
        for index, positions in per_device_indices.items():
            device_id = self.fleet[index].id
            if not positions:
                records_by_device[device_id] = []
                continue
            # a migration penalty delays the request's availability on the
            # device (the buffers move first), so it shifts the effective
            # arrival; queueing delay is still charged from the original
            # arrival time below.
            sub_arrivals = [
                ArrivalRequest(arrivals[p].name,
                               arrivals[p].time + decisions[p].penalty,
                               tenant=arrivals[p].tenant)
                for p in positions
            ]
            sub_records = self.experiments[index].scheme_records(
                sub_arrivals, scheme)
            device_records = []
            for position, record in zip(positions, sub_records):
                original = arrivals[position]
                rewritten = RequestRecord(
                    record.name, original.time, record.start, record.finish,
                    self.reference_isolated(record.name),
                    tenant=original.tenant)
                device_records.append(rewritten)
                all_records[position] = rewritten
            records_by_device[device_id] = device_records
        if any(record is None for record in all_records):
            raise SimulationError("fleet run lost a request record")
        return FleetOpenSystemResult(scheme, placement.name, self.fleet,
                                     records_by_device, all_records,
                                     decisions)

    def run_all(self, arrivals, placement, schemes=SCHEMES):
        """All schemes over one stream: ``{scheme: FleetOpenSystemResult}``."""
        return {scheme: self.run(arrivals, scheme, placement)
                for scheme in schemes}

    def run_policies(self, arrivals, scheme, policies):
        """One scheme under several placement policies:
        ``{policy_name: FleetOpenSystemResult}``."""
        return {policy.name: self.run(arrivals, scheme, policy)
                for policy in policies}
