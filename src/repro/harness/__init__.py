"""Experiment harness: runs workloads under registered schemes and
aggregates the paper's metrics.

Scheme and placement dispatch go through the registries in
:mod:`repro.api`; the declarative front door over this harness is
:func:`repro.api.run` (see docs/API.md).
"""

from repro.harness.experiment import (
    SCHEMES, WorkloadResult, isolated_time, run_single_kernel, run_workload)
from repro.harness.sweep import SweepSummary, run_sweep, summarize
from repro.harness.report import (TAIL_HEADERS, attribution_table,
                                  format_table, tail_cells)
from repro.harness.open_system import (
    FleetOpenSystemExperiment, FleetOpenSystemResult,
    OpenSystemExperiment, OpenSystemResult, RequestRecord,
    arrival_rate_for_load, fleet_arrival_rate_for_load,
    mean_isolated_service, sharing_allocator)

__all__ = [
    "SCHEMES", "WorkloadResult", "isolated_time", "run_single_kernel",
    "run_workload", "SweepSummary", "run_sweep", "summarize", "format_table",
    "TAIL_HEADERS", "attribution_table", "tail_cells",
    "OpenSystemExperiment", "OpenSystemResult", "RequestRecord",
    "FleetOpenSystemExperiment", "FleetOpenSystemResult",
    "arrival_rate_for_load", "fleet_arrival_rate_for_load",
    "mean_isolated_service", "sharing_allocator",
]
