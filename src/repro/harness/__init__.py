"""Experiment harness: runs workloads under the three schemes and
aggregates the paper's metrics."""

from repro.harness.experiment import (
    SCHEMES, WorkloadResult, isolated_time, run_single_kernel, run_workload)
from repro.harness.sweep import SweepSummary, run_sweep, summarize
from repro.harness.report import format_table

__all__ = [
    "SCHEMES", "WorkloadResult", "isolated_time", "run_single_kernel",
    "run_workload", "SweepSummary", "run_sweep", "summarize", "format_table",
]
