"""CLI: run a JSON ``ExperimentSpec`` end to end.

    python -m repro.api.run spec.json [--out results.json] [--quiet]

Reads the spec, runs the grid (streaming one progress line per cell to
stderr), prints the metric table, and optionally writes the
deterministic result JSON — the document CI diffs against its checked-in
golden (same spec => bit-identical bytes).

Note: *importing* this module (rather than running it with ``-m``)
shadows the ``repro.api.run`` function attribute with this module
object — a Python submodule-import quirk.  To keep that harmless, the
module makes itself *callable*: ``repro.api.run(spec)`` delegates to
:func:`repro.api.driver.run` whether the name resolves to the function
or to this module.
"""

from __future__ import annotations

import argparse
import sys
import types
from pathlib import Path

if __package__ in (None, ""):  # direct invocation: make src/ importable
    sys.path.insert(0, str(Path(__file__).resolve().parents[2]))

from repro.api.driver import iter_runs
from repro.api.results import ResultSet
from repro.api.spec import ExperimentSpec


class _CallableCLIModule(types.ModuleType):
    """Importing ``repro.api.run`` rebinds the package's ``run``
    attribute from the driver function to this module; delegating calls
    keeps ``repro.api.run(spec)`` working either way."""

    def __call__(self, spec, **kwargs):
        from repro.api.driver import run as _run
        return _run(spec, **kwargs)


if __name__ != "__main__":
    sys.modules[__name__].__class__ = _CallableCLIModule


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.api.run",
        description="run a declarative experiment spec (see docs/API.md)")
    parser.add_argument("spec", metavar="SPEC.json",
                        help="path to the ExperimentSpec JSON document")
    parser.add_argument("--out", metavar="PATH",
                        help="write the result JSON here (deterministic: "
                             "same spec => bit-identical bytes)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the progress lines and metric table")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="process-pool size for grid cells (default 1 "
                             "= serial; results are bit-identical either "
                             "way)")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="content-addressed result cache: completed "
                             "cells are flushed here as they finish, and "
                             "re-runs (or interrupted sweeps) reuse them")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore --cache-dir (force every cell to "
                             "recompute)")
    args = parser.parse_args(argv)

    spec = ExperimentSpec.from_json(
        Path(args.spec).read_text(encoding="utf-8"))

    cells = []
    total = spec.cell_count()
    for cell, result in iter_runs(spec, workers=args.workers,
                                  cache_dir=args.cache_dir,
                                  cache=not args.no_cache):
        cells.append((cell, result))
        if not args.quiet:
            print("[{}/{}] {}".format(len(cells), total, cell.to_dict()),
                  file=sys.stderr)
    results = ResultSet(spec, cells)

    if not args.quiet:
        from repro.harness.report import format_table
        print(format_table(
            results.headers(), results.rows(),
            title="{} · {} requests/stream · schemes: {}".format(
                spec.scenario, spec.count, ", ".join(spec.schemes))))
    if args.out:
        Path(args.out).write_text(results.to_json(), encoding="utf-8")
        if not args.quiet:
            print("wrote {}".format(args.out))
    return 0


if __name__ == "__main__":
    sys.exit(main())
