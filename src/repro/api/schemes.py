"""First-class scheduling schemes behind one registry.

Historically every entry point re-implemented scheme dispatch with
string ``if/elif`` branches — the closed harness's ``_run_once``, the
open-system experiment's ``scheme_records``, the fleet path, every
benchmark.  Here a scheme is an *object* owning all of its execution
logic, and the registry is the single source of truth for which schemes
exist:

* :meth:`SchedulingScheme.open_records` — per-request
  :class:`RequestRecord` timing of one arrival stream (the open system);
* :meth:`SchedulingScheme.run_closed` — one closed-batch repetition
  (everything submitted at t=0, the paper's §7.2 methodology);
* :meth:`SchedulingScheme.run_single` — single-kernel studies (fig. 15),
  optional — schemes without a single-kernel mode raise.

The paper's three schemes are pre-registered in report order:

* ``baseline`` — standard stack, firmware FIFO/exclusive scheduler;
* ``ek``       — Elastic Kernels' static merged launches (§7.3);
* ``accelos``  — the §3 sharing algorithm with §6.4 chunking.

``register_scheme`` adds a user scheme; it then runs through every
harness (:class:`~repro.harness.open_system.OpenSystemExperiment`,
:class:`~repro.harness.open_system.FleetOpenSystemExperiment`,
:func:`~repro.harness.experiment.run_workload`), the declarative
``run(spec)`` driver and the golden-trace tooling unchanged.  See
docs/API.md for the 20-line extension recipe.
"""

from __future__ import annotations

import bisect
from collections import deque

from repro.accelos.adaptive import SchedulingPolicy, effective_chunk
from repro.accelos.sharing import compute_allocations
from repro.api.kernels import (base_spec, chunk_for_profile, detailed_spec,
                               isolated_time, requirements_from_spec,
                               sharing_allocator)
from repro.api.registry import Registry
from repro.baselines.elastic_kernels import ElasticKernelsScheduler
from repro.errors import SimulationError
from repro.sim import (ExecutionMode, GPUSimulator, QueuedRequest,
                       fast_path_enabled)
from repro.workloads.parboil import profile_by_name


class RequestRecord:
    """Timing of one request through the open system.

    ``tenant`` carries the arrival's tenant tag (``None`` for untagged
    streams) so tail metrics can report per-tenant breakdowns.
    """

    __slots__ = ("name", "arrival", "start", "finish", "isolated", "tenant")

    def __init__(self, name, arrival, start, finish, isolated, tenant=None):
        self.name = name
        self.arrival = arrival
        self.start = start
        self.finish = finish
        self.isolated = isolated
        self.tenant = tenant

    @property
    def turnaround(self):
        """Arrival-to-completion time (queueing + service)."""
        return self.finish - self.arrival

    @property
    def queueing_delay(self):
        """Arrival-to-first-dispatch time."""
        return self.start - self.arrival

    @property
    def slowdown(self):
        """Turnaround normalised by isolated execution time (IS_i)."""
        return self.turnaround / self.isolated

    def __repr__(self):
        return "<RequestRecord {} arr={:.4f} turn={:.4f}>".format(
            self.name, self.arrival, self.turnaround)


class GpuOpenSession:
    """One device's incremental open-system session (simulator-backed).

    The device-session protocol of
    :class:`repro.sim.fleet.FleetSimulator`, on top of the
    advance-to-next-event interface of
    :meth:`repro.sim.GPUSimulator.open_begin` — the closed-loop form of
    every scheme whose open system runs directly on the GPU simulator
    (baseline's firmware queue, accelOS's re-allocating sharing).
    ``build_spec(arrival, effective_time)`` turns one arrival into the
    scheme's :class:`~repro.sim.spec.KernelExecSpec`.
    """

    def __init__(self, device, mode, build_spec, allocator=None):
        self.device = device
        self._sim = GPUSimulator(device)
        self._sim.open_begin(mode, allocator=allocator)
        self._build = build_spec
        self._entries = {}            # key -> (arrival, run), insertion-
        self._finished_seen = 0       # ordered (= submission order)

    def submit(self, key, arrival, effective_time):
        spec = self._build(arrival, effective_time)
        # the run carries its key as the index, so a streaming harvest
        # can map finished runs back without a side table
        run = self._sim.open_submit(spec, index=key)
        self._entries[key] = (arrival, run)

    def peek(self):
        return self._sim.open_peek()

    def step(self):
        time = self._sim.open_step()
        finished = self._sim.finished_requests - self._finished_seen
        self._finished_seen = self._sim.finished_requests
        return time, finished

    @property
    def events_processed(self):
        """Simulator events processed so far (bench_engine's denominator)."""
        return self._sim.events_processed

    def queued(self):
        out = []
        for key, (arrival, run) in self._entries.items():
            if self._sim.open_withdrawable(run):
                out.append(QueuedRequest(key, arrival.name, arrival.tenant,
                                         run.spec.arrival_time))
        return out

    def withdraw(self, key):
        arrival, run = self._entries[key]
        self._sim.open_withdraw(run)
        del self._entries[key]
        return run.spec.arrival_time

    def harvest(self):
        """Completed requests since the last harvest, as ``(key, start,
        finish)`` tuples, dropped from the session and pruned from the
        simulator — the bounded-memory streaming contract."""
        out = []
        for run in self._sim.open_harvest():
            key = run.index
            del self._entries[key]
            out.append((key, run.start_time, run.finish_time))
        return out

    def backlog_seconds(self, now):
        total = 0.0
        for arrival, run in self._entries.values():
            if run.finish_time is not None or run.total <= 0:
                continue
            remaining = (run.total - run.completed) / run.total
            total += isolated_time(arrival.name, self.device) * remaining
        return total

    def active_count(self):
        return sum(1 for _, run in self._entries.values()
                   if run.finish_time is None
                   and not self._sim.open_withdrawable(run))

    def results(self):
        """``{key: (start, finish)}`` once the session has drained."""
        out = {}
        for key, (arrival, run) in self._entries.items():
            if run.finish_time is None:
                raise SimulationError(
                    "request {} never finished on {}".format(
                        arrival.name, self.device.name))
            out[key] = (run.start_time, run.finish_time)
        return out


class ElasticOpenSession:
    """Elastic Kernels' closed-loop session: serialised merged launches.

    The incremental form of
    :meth:`ElasticKernelsScheme.open_records`'s replay loop, exposing
    the same device-session protocol as :class:`GpuOpenSession`.  EK
    decides merges statically at launch, so the session alternates two
    event kinds: a *launch* (device idle, waiting queue non-empty —
    pack the queue head into a merged launch, simulate it as a closed
    batch) and the launch's *completion* (records become final, next
    launch may start).  Requests waiting for the device to drain are
    withdrawable — exactly the still-queued work a re-balancer may
    migrate.
    """

    def __init__(self, device):
        self.device = device
        self._scheduler = ElasticKernelsScheduler(device)
        self._waiting = []            # sorted (effective, seq, key, arrival)
        self._seq = 0
        self._now = 0.0
        self._busy_until = None
        self._inflight = 0
        self._inflight_keys = []
        self._harvestable = []
        self._results = {}

    def submit(self, key, arrival, effective_time):
        entry = (effective_time, self._seq, key, arrival)
        self._seq += 1
        bisect.insort(self._waiting, entry)

    def peek(self):
        if self._busy_until is not None:
            return self._busy_until
        if self._waiting:
            return max(self._now, self._waiting[0][0])
        return None

    def step(self):
        if self._busy_until is not None:
            time = self._busy_until
            self._now = max(self._now, time)
            self._busy_until = None
            finished, self._inflight = self._inflight, 0
            self._harvestable.extend(self._inflight_keys)
            self._inflight_keys = []
            return time, finished
        return self._launch(), 0

    def _launch(self):
        time = max(self._now, self._waiting[0][0])
        self._now = time
        eligible = [entry for entry in self._waiting
                    if entry[0] <= time + 1e-12]
        head = self._scheduler.pack(
            [base_spec(entry[3].name) for entry in eligible])[0]
        launched = eligible[:len(head.specs)]
        del self._waiting[:len(launched)]
        trace = GPUSimulator(self.device).run(
            self._scheduler.to_sim_specs(head))
        for entry, interval in zip(launched, trace.intervals):
            self._results[entry[2]] = (time + interval.start,
                                       time + interval.finish)
        self._busy_until = time + trace.makespan
        self._inflight = len(launched)
        self._inflight_keys = [entry[2] for entry in launched]
        return time

    def queued(self):
        return [QueuedRequest(key, arrival.name, arrival.tenant, effective)
                for effective, _seq, key, arrival in self._waiting]

    def withdraw(self, key):
        for position, entry in enumerate(self._waiting):
            if entry[2] == key:
                del self._waiting[position]
                return entry[0]
        raise SimulationError(
            "request {} is not queued on {}".format(key, self.device.name))

    def backlog_seconds(self, now):
        total = sum(isolated_time(arrival.name, self.device)
                    for _eff, _seq, _key, arrival in self._waiting)
        if self._busy_until is not None:
            total += max(0.0, self._busy_until - now)
        return total

    def active_count(self):
        return self._inflight

    def harvest(self):
        """Completed requests since the last harvest, as ``(key, start,
        finish)`` tuples, dropped from the session (bounded memory)."""
        out = [(key, *self._results.pop(key)) for key in self._harvestable]
        self._harvestable = []
        return out

    def results(self):
        """``{key: (start, finish)}`` once the session has drained."""
        if self._waiting or self._busy_until is not None:
            raise SimulationError("elastic session still has queued work")
        return dict(self._results)


class SchedulingScheme:
    """One way of sharing a device among concurrent kernel requests.

    Stateless by contract: methods are pure functions of their arguments
    (device, stream, policy knobs), so one registered instance can serve
    every experiment concurrently and deterministically.  ``name`` is the
    registry key and report label; ``is_reference`` marks the standard
    stack every other scheme's improvements are measured against.
    """

    name = None
    description = ""
    is_reference = False

    # -- open system --------------------------------------------------------

    def open_records(self, arrivals, device,
                     policy=SchedulingPolicy.ADAPTIVE, saturate=True):
        """Per-request :class:`RequestRecord` list for one arrival stream,
        in the stream's submission order (conservation: one per arrival)."""
        raise _missing_mode_error(self, "open-system", "open_records",
                                  open_scheme_names)

    def open_session(self, device, policy=SchedulingPolicy.ADAPTIVE,
                     saturate=True):
        """One device's incremental open-system session (the closed-loop
        fleet plane): an object speaking the device-session protocol of
        :class:`repro.sim.fleet.FleetSimulator`.  Optional — schemes
        without one fall back to the offline fleet path and cannot serve
        online placement policies."""
        raise SimulationError(
            "scheme {!r} has no closed-loop session mode; implement "
            "open_session to use online placement (session-capable: "
            "{})".format(self.name, ", ".join(
                s for s in SCHEMES
                if SCHEMES.from_name(s).supports_open_session)))

    # -- closed batches ------------------------------------------------------

    def run_closed(self, names, device, jitter=None,
                   policy=SchedulingPolicy.ADAPTIVE, saturate=True):
        """One everything-at-t=0 repetition.

        Returns ``(turnarounds, intervals)`` with one entry per workload
        member, in input order; ``jitter`` is the per-kernel cost factor
        array of this repetition (``None`` = no jitter).
        """
        raise _missing_mode_error(self, "closed-batch", "run_closed",
                                  closed_scheme_names)

    # -- capabilities --------------------------------------------------------

    @property
    def supports_open(self):
        """True when the scheme implements :meth:`open_records`."""
        return type(self).open_records is not SchedulingScheme.open_records

    @property
    def supports_closed(self):
        """True when the scheme implements :meth:`run_closed`."""
        return type(self).run_closed is not SchedulingScheme.run_closed

    @property
    def supports_single(self):
        """True when the scheme implements :meth:`run_single`."""
        return type(self).run_single is not SchedulingScheme.run_single

    @property
    def supports_open_session(self):
        """True when the scheme implements :meth:`open_session` (the
        closed-loop fleet plane)."""
        return type(self).open_session is not SchedulingScheme.open_session

    # -- single-kernel studies ----------------------------------------------

    def run_single(self, name, device, policy=SchedulingPolicy.ADAPTIVE):
        """Single-kernel execution time at fine granularity (fig. 15).

        Returns ``(time, isolated_baseline_time)``.  Optional: schemes
        with no single-kernel mode keep this default, which raises.
        """
        raise SimulationError(
            "scheme {!r} has no single-kernel mode (schemes with one: "
            "{})".format(self.name, ", ".join(
                s for s in SCHEMES
                if SCHEMES.from_name(s).supports_single)))

    # -- shared helpers ------------------------------------------------------

    @staticmethod
    def records_from_trace(arrivals, trace, device):
        """Zip one open-system trace back onto its arrival stream."""
        return [
            RequestRecord(a.name, a.time, iv.start, iv.finish,
                          isolated_time(a.name, device), tenant=a.tenant)
            for a, iv in zip(arrivals, trace.intervals)
        ]

    def __repr__(self):
        return "<{} {!r}>".format(type(self).__name__, self.name)


class BaselineScheme(SchedulingScheme):
    """The standard stack: unmodified kernels, firmware scheduler.

    Requests join the firmware scheduler's queue at arrival and dispatch
    in arrival order (FIFO drain-overlap or exclusive, per device).
    """

    name = "baseline"
    description = "standard OpenCL stack, firmware FIFO/exclusive scheduler"
    is_reference = True

    def open_records(self, arrivals, device,
                     policy=SchedulingPolicy.ADAPTIVE, saturate=True):
        specs = [base_spec(a.name).with_arrival(a.time) for a in arrivals]
        trace = GPUSimulator(device).run_open(specs)
        return self.records_from_trace(arrivals, trace, device)

    def open_session(self, device, policy=SchedulingPolicy.ADAPTIVE,
                     saturate=True):
        return GpuOpenSession(
            device, ExecutionMode.HARDWARE,
            lambda arrival, time: base_spec(arrival.name).with_arrival(time))

    def run_closed(self, names, device, jitter=None,
                   policy=SchedulingPolicy.ADAPTIVE, saturate=True):
        trace = GPUSimulator(device).run([base_spec(n) for n in names],
                                         cost_jitter=jitter)
        return trace.turnarounds, [(iv.start, iv.finish)
                                   for iv in trace.intervals]

    def run_single(self, name, device, policy=SchedulingPolicy.ADAPTIVE):
        iso = GPUSimulator(device).run([detailed_spec(name)]).makespan
        return iso, iso


class AccelOSScheme(SchedulingScheme):
    """The paper's system: §3 sharing + §6 transformed kernels.

    Open-system runs re-run the sharing algorithm over the active request
    set on every arrival and completion; allocations grow immediately and
    shrink lazily at chunk boundaries (the re-allocation path
    generalising ``rebalance``).
    """

    name = "accelos"
    description = "§3 fair sharing, §6.4 adaptive chunking (the paper)"

    # -- spec construction ---------------------------------------------------

    def admission_spec(self, arrival, device,
                       policy=SchedulingPolicy.ADAPTIVE, saturate=True):
        """One request's spec: the Kernel Scheduler fixes the §6.4 dequeue
        chunk at admission (from the solo allocation); the physical group
        count itself is re-decided by the allocator as the active set
        changes."""
        base = base_spec(arrival.name)
        solo = compute_allocations([requirements_from_spec(base)], device,
                                   saturate=saturate)[0].groups
        chunk = effective_chunk(
            chunk_for_profile(profile_by_name(arrival.name), policy),
            base.total_groups, solo)
        return base.with_mode(ExecutionMode.ACCELOS, physical_groups=solo,
                              chunk=chunk).with_arrival(arrival.time)

    def batch_specs(self, names, device, policy=SchedulingPolicy.ADAPTIVE,
                    saturate=True):
        """Closed-batch specs: one §3 allocation across the whole batch."""
        specs = [base_spec(n) for n in names]
        allocations = compute_allocations(
            [requirements_from_spec(s) for s in specs], device,
            saturate=saturate)
        out = []
        for name, spec, allocation in zip(names, specs, allocations):
            chunk = effective_chunk(
                chunk_for_profile(profile_by_name(name), policy),
                spec.total_groups, allocation.groups)
            out.append(spec.with_mode(ExecutionMode.ACCELOS,
                                      physical_groups=allocation.groups,
                                      chunk=chunk))
        return out

    # -- execution -----------------------------------------------------------

    def open_records(self, arrivals, device,
                     policy=SchedulingPolicy.ADAPTIVE, saturate=True):
        specs = [self.admission_spec(a, device, policy=policy,
                                     saturate=saturate) for a in arrivals]
        trace = GPUSimulator(device).run_open(
            specs, allocator=sharing_allocator(device, saturate=saturate))
        return self.records_from_trace(arrivals, trace, device)

    def open_session(self, device, policy=SchedulingPolicy.ADAPTIVE,
                     saturate=True):
        # admission_spec is a pure function of the kernel name for a
        # fixed (device, policy, saturate) — everything but the arrival
        # time.  The fast path memoises it per name so repeat requests
        # skip the solo allocation + chunk derivation; the reference
        # path rebuilds every spec, as the original code did.  Decided
        # at session construction, like every other fast/ref gate.
        spec_cache = {} if fast_path_enabled() else None

        def build(arrival, time):
            if spec_cache is None:
                return self.admission_spec(arrival, device, policy=policy,
                                           saturate=saturate) \
                           .with_arrival(time)
            spec = spec_cache.get(arrival.name)
            if spec is None:
                spec = self.admission_spec(arrival, device, policy=policy,
                                           saturate=saturate)
                spec_cache[arrival.name] = spec
            return spec.with_arrival(time)
        return GpuOpenSession(
            device, ExecutionMode.ACCELOS, build,
            allocator=sharing_allocator(device, saturate=saturate))

    def run_closed(self, names, device, jitter=None,
                   policy=SchedulingPolicy.ADAPTIVE, saturate=True):
        specs = self.batch_specs(names, device, policy=policy,
                                 saturate=saturate)
        trace = GPUSimulator(device).run(specs, cost_jitter=jitter)
        return trace.turnarounds, [(iv.start, iv.finish)
                                   for iv in trace.intervals]

    def run_single(self, name, device, policy=SchedulingPolicy.ADAPTIVE):
        spec = detailed_spec(name)
        iso = GPUSimulator(device).run([spec]).makespan
        allocation = compute_allocations([requirements_from_spec(spec)],
                                         device)[0]
        chunk = effective_chunk(
            chunk_for_profile(profile_by_name(name), policy),
            spec.total_groups, allocation.groups)
        accel = spec.with_mode(ExecutionMode.ACCELOS,
                               physical_groups=allocation.groups,
                               chunk=chunk)
        return GPUSimulator(device).run([accel]).makespan, iso


class ElasticKernelsScheme(SchedulingScheme):
    """Elastic Kernels (§7.3): static merging, serialised merged launches."""

    name = "ek"
    description = "Elastic Kernels: static merged launches, serialised"

    def open_records(self, arrivals, device,
                     policy=SchedulingPolicy.ADAPTIVE, saturate=True):
        """Serialised merged-launch replay.

        EK decides merges statically at launch: requests arriving while a
        merged launch runs cannot join it, so they queue until the device
        drains, then the queue head is packed into the next merged launch
        (arrival order, bounded by the merge width and static split
        floor).
        """
        scheduler = ElasticKernelsScheduler(device)
        order = sorted(range(len(arrivals)),
                       key=lambda i: (arrivals[i].time, i))
        records = [None] * len(arrivals)
        waiting = deque()
        now = 0.0
        next_arrival = 0
        while next_arrival < len(order) or waiting:
            if not waiting:
                now = max(now, arrivals[order[next_arrival]].time)
            while (next_arrival < len(order)
                   and arrivals[order[next_arrival]].time <= now + 1e-12):
                waiting.append(order[next_arrival])
                next_arrival += 1
            specs = [base_spec(arrivals[i].name) for i in waiting]
            head = scheduler.pack(specs)[0]
            launched = [waiting.popleft() for _ in head.specs]
            trace = GPUSimulator(device).run(
                scheduler.to_sim_specs(head))
            for i, iv in zip(launched, trace.intervals):
                a = arrivals[i]
                records[i] = RequestRecord(
                    a.name, a.time, now + iv.start, now + iv.finish,
                    isolated_time(a.name, device), tenant=a.tenant)
            now += trace.makespan
        return records

    def open_session(self, device, policy=SchedulingPolicy.ADAPTIVE,
                     saturate=True):
        return ElasticOpenSession(device)

    def run_closed(self, names, device, jitter=None,
                   policy=SchedulingPolicy.ADAPTIVE, saturate=True):
        scheduler = ElasticKernelsScheduler(device)
        groups = scheduler.pack([base_spec(n) for n in names])
        offset = 0.0
        turnarounds = [None] * len(names)
        intervals = [None] * len(names)
        cursor = 0
        for group in groups:
            specs = scheduler.to_sim_specs(group)
            group_jitter = jitter[cursor:cursor + len(specs)] \
                if jitter is not None else None
            # fresh simulator per merged launch: launches serialise
            trace = GPUSimulator(device).run(specs,
                                             cost_jitter=group_jitter)
            for local_index, iv in enumerate(trace.intervals):
                index = cursor + local_index
                turnarounds[index] = offset + iv.finish
                intervals[index] = (offset + iv.start, offset + iv.finish)
            offset += trace.makespan
            cursor += len(specs)
        return turnarounds, intervals


def _missing_mode_error(scheme, mode, method, capable_names):
    return SimulationError(
        "scheme {!r} has no {} mode; implement {}, or pass schemes= "
        "explicitly ({}-capable: {})".format(
            scheme.name, mode, method,
            mode.split("-")[0], ", ".join(capable_names())))


def require_closed(scheme):
    """Raise the actionable capability error unless ``scheme`` can run
    closed batches (harness fail-fast, before any simulation)."""
    if not scheme.supports_closed:
        raise _missing_mode_error(scheme, "closed-batch", "run_closed",
                                  closed_scheme_names)
    return scheme


# -- registry -----------------------------------------------------------------

SCHEMES = Registry("scheme")


def register_scheme(scheme, replace=False):
    """Register a :class:`SchedulingScheme` (instance or zero-arg class).

    Returns the registered instance, so it doubles as a class decorator.
    """
    if isinstance(scheme, type):
        scheme = scheme()
    if not isinstance(scheme, SchedulingScheme):
        raise SimulationError(
            "schemes must subclass SchedulingScheme, got {!r}".format(
                type(scheme).__name__))
    SCHEMES.register(scheme.name, scheme, replace=replace)
    return scheme


def unregister_scheme(name):
    """Remove a registered scheme (tests clean up their toys)."""
    SCHEMES.unregister(name)


def scheme_from_name(scheme):
    """Resolve a scheme name (or pass a scheme instance through).

    Unknown names raise listing every registered scheme, so harnesses and
    benchmarks can never drift from the registry.
    """
    if isinstance(scheme, SchedulingScheme):
        return scheme
    return SCHEMES.from_name(scheme)


def scheme_names():
    """All registered scheme names, in registration (= report) order."""
    return SCHEMES.names()


def open_scheme_names():
    """Registered schemes that can serve open-system arrival streams —
    the live default of :meth:`OpenSystemExperiment.run_all`."""
    return tuple(n for n in SCHEMES
                 if SCHEMES.from_name(n).supports_open)


def closed_scheme_names():
    """Registered schemes that can run closed batches — the live default
    of :func:`repro.harness.sweep.run_sweep` (an open-system-only user
    scheme must not break closed sweeps)."""
    return tuple(n for n in SCHEMES
                 if SCHEMES.from_name(n).supports_closed)


def reference_scheme():
    """The scheme improvements are measured against (the standard stack)."""
    for name in SCHEMES:
        entry = SCHEMES.from_name(name)
        if entry.is_reference:
            return entry
    raise SimulationError("no reference scheme registered")


register_scheme(BaselineScheme)
register_scheme(ElasticKernelsScheme)
register_scheme(AccelOSScheme)

# The paper's report order: reference first, then the comparison systems.
BUILTIN_SCHEMES = scheme_names()
assert BUILTIN_SCHEMES == ("baseline", "ek", "accelos")
