"""``run(spec)``: one driver for every experiment the spec grid names.

Routes single-device specs through
:class:`~repro.harness.open_system.OpenSystemExperiment` and fleet specs
through :class:`~repro.harness.open_system.FleetOpenSystemExperiment`
(one run per placement policy), generating each stream from the named
traffic scenario at the calibrated offered load.  :func:`iter_runs`
yields ``(cell, result)`` pairs as they finish — streaming progress for
long grids — and :func:`run` collects them into a
:class:`~repro.api.results.ResultSet`.

Grid order is deterministic: loads x seeds x repetitions x placements x
schemes, each axis in spec order.  Repetition 0 uses the spec seed
verbatim (historical streams reproduce bit-for-bit); repetition ``k > 0``
derives an independent child seed through :func:`repro.util.make_rng`.

The harness sits *above* the registries this package defines, so this
module imports it lazily — ``import repro.api`` never drags the harness
in, and the harness can import the registries at module top.
"""

from __future__ import annotations

from repro.api.kernels import (arrival_rate_for_load,
                               fleet_arrival_rate_for_load)
from repro.api.devices import build_device
from repro.api.placements import placement_from_name
from repro.api.results import ResultSet
from repro.api.spec import Cell, ExperimentSpec
from repro.errors import SimulationError
from repro.util import make_rng
from repro.workloads.scenarios import scenario as scenario_from_name


def stream_seed(seed, repetition):
    """The per-repetition stream seed: repetition 0 is the spec seed
    itself, later repetitions draw independent child seeds."""
    if repetition == 0:
        return seed
    return int(make_rng("spec-repetition", seed, repetition)
               .integers(2**32))


def _coerce(spec):
    if isinstance(spec, ExperimentSpec):
        return spec
    if isinstance(spec, dict):
        return ExperimentSpec.from_dict(spec)
    if isinstance(spec, str):
        return ExperimentSpec.from_json(spec)
    raise SimulationError(
        "run() takes an ExperimentSpec, a spec dict or spec JSON, got "
        "{!r}".format(type(spec).__name__))


def _stream_model(spec, load, device=None, fleet=None):
    """The spec's scenario model plus its calibrated arrival rate —
    the shared front half of :func:`build_stream` and
    :func:`build_stream_iter`."""
    spec = _coerce(spec)
    if (device is None) == (fleet is None):
        raise SimulationError(
            "build_stream needs exactly one calibration target: device= "
            "for single-device specs, fleet= for fleet specs")
    if (fleet is not None) != spec.is_fleet:
        raise SimulationError(
            "calibration target does not match the spec topology: this "
            "spec has {} device(s), so pass {}".format(
                len(spec.devices),
                "fleet=" if spec.is_fleet else "device="))
    model = scenario_from_name(spec.scenario)
    mix = model.mix_weights()
    if fleet is not None:
        rate = fleet_arrival_rate_for_load(load, fleet, names=list(mix),
                                           weights=list(mix.values()))
    else:
        rate = arrival_rate_for_load(load, device, names=list(mix),
                                     weights=list(mix.values()))
    return spec, model, rate


def build_stream(spec, load, seed, repetition, device=None, fleet=None):
    """One grid point's arrival stream (the spec's scenario at the
    calibrated offered load).  Public so benchmarks and tools can
    reproduce exactly the stream ``run(spec)`` would simulate — which
    is why the calibration target is checked: exactly one of ``device``
    (single-device spec) or ``fleet`` (fleet spec) must be given."""
    spec, model, rate = _stream_model(spec, load, device=device, fleet=fleet)
    return model.generate(rate, spec.count,
                          seed=stream_seed(seed, repetition))


def build_stream_iter(spec, load, seed, repetition, device=None, fleet=None):
    """Lazy :func:`build_stream`: the identical arrival sequence as a
    generator (``list(build_stream_iter(...)) == build_stream(...)``
    bit-for-bit) without materialising it — what streaming-mode
    ``run(spec)`` consumes.  Each call returns a fresh, single-use
    iterator."""
    spec, model, rate = _stream_model(spec, load, device=device, fleet=fleet)
    return model.iter_arrivals(rate, spec.count,
                               seed=stream_seed(seed, repetition))


def iter_runs(spec):
    """Yield ``(cell, result)`` pairs of ``spec``'s grid as they finish."""
    spec = _coerce(spec)
    # lazy: the harness imports this package's registries at module top
    from repro.harness.open_system import (FleetOpenSystemExperiment,
                                           OpenSystemExperiment)
    from repro.sim.fleet import DeviceFleet

    if spec.is_fleet:
        fleet = DeviceFleet([(entry.id, build_device(entry))
                             for entry in spec.devices])
        experiment = FleetOpenSystemExperiment(fleet, policy=spec.policy,
                                               saturate=spec.saturate)
        streaming = spec.metrics_mode == "streaming"
        for load in spec.loads:
            for seed in spec.seeds:
                for repetition in range(spec.repetitions):
                    if not streaming:
                        arrivals = build_stream(spec, load, seed, repetition,
                                                fleet=fleet)
                    for placement in spec.placements:
                        for scheme in spec.schemes:
                            if streaming:
                                # iterators are single-use: regenerate the
                                # (bit-identical) stream for every cell
                                result = experiment.run_stream(
                                    build_stream_iter(spec, load, seed,
                                                      repetition, fleet=fleet),
                                    scheme, placement_from_name(placement),
                                    mode=spec.placement_mode,
                                    rebalance=spec.rebalance)
                            else:
                                result = experiment.run(
                                    arrivals, scheme,
                                    placement_from_name(placement),
                                    mode=spec.placement_mode,
                                    rebalance=spec.rebalance)
                            yield (Cell(scheme=scheme, load=load, seed=seed,
                                        repetition=repetition,
                                        placement=placement), result)
        return

    device = build_device(spec.devices[0])
    experiment = OpenSystemExperiment(device, policy=spec.policy,
                                      saturate=spec.saturate)
    streaming = spec.metrics_mode == "streaming"
    for load in spec.loads:
        for seed in spec.seeds:
            for repetition in range(spec.repetitions):
                if not streaming:
                    arrivals = build_stream(spec, load, seed, repetition,
                                            device=device)
                for scheme in spec.schemes:
                    if streaming:
                        result = experiment.run_stream(
                            build_stream_iter(spec, load, seed, repetition,
                                              device=device), scheme)
                    else:
                        result = experiment.run(arrivals, scheme)
                    yield (Cell(scheme=scheme, load=load, seed=seed,
                                repetition=repetition), result)


def run(spec):
    """Run the whole grid; returns a :class:`ResultSet` in grid order."""
    spec = _coerce(spec)
    return ResultSet(spec, iter_runs(spec))
