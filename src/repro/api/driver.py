"""``run(spec)``: one driver for every experiment the spec grid names.

Routes single-device specs through
:class:`~repro.harness.open_system.OpenSystemExperiment` and fleet specs
through :class:`~repro.harness.open_system.FleetOpenSystemExperiment`
(one run per placement policy), generating each stream from the named
traffic scenario at the calibrated offered load.  :func:`iter_runs`
yields ``(cell, result)`` pairs — streaming progress for long grids —
and :func:`run` collects them into a
:class:`~repro.api.results.ResultSet`.

Grid order is deterministic: loads x seeds x repetitions x placements x
schemes, each axis in spec order.  Repetition 0 uses the spec seed
verbatim (historical streams reproduce bit-for-bit); repetition ``k > 0``
derives an independent child seed through :func:`repro.util.make_rng`.

Execution backends
------------------

Every grid cell is a pure function of ``(spec, cell)`` — the
:class:`_SpecRunner` refactor — so the same grid runs three ways with
bit-identical ``ResultSet.to_json`` output:

* **serial** (``workers=1``, the default): cells execute in grid order
  in this process;
* **parallel** (``workers=N``): cells execute on a process pool and the
  merge re-emits results *in grid order regardless of completion
  order*.  Streaming-mode cells regenerate their arrival iterators
  inside the worker (iterators are single-use and unpicklable).  If the
  platform cannot provide a process pool, execution silently falls back
  to serial — same results, no pool;
* **cached** (``cache_dir=``): completed cells are flushed to a
  content-addressed :class:`~repro.api.cache.ResultCache` *as they
  finish*, so an interrupted sweep resumes from its completed cells and
  a repeated run is near-free.

The harness sits *above* the registries this package defines, so this
module imports it lazily — ``import repro.api`` never drags the harness
in, and the harness can import the registries at module top.
"""

from __future__ import annotations

from repro.api.cache import ResultCache, cell_key
from repro.api.kernels import (arrival_rate_for_load,
                               fleet_arrival_rate_for_load, warm_caches)
from repro.api.devices import build_device
from repro.api.placements import placement_from_name
from repro.api.results import ResultSet
from repro.api.spec import Cell, ExperimentSpec
from repro.errors import SimulationError
from repro.util import make_rng
from repro.workloads.scenarios import scenario as scenario_from_name


def stream_seed(seed, repetition):
    """The per-repetition stream seed: repetition 0 is the spec seed
    itself, later repetitions draw independent child seeds.

    The draw is 32-bit, so a derived seed *can* equal another spec
    seed's repetition-0 value — two distinct grid cells replaying the
    same stream.  Anything that identifies a cell (the result cache
    above all) must therefore key on the raw ``(seed, repetition)``
    pair, never on this derived value.
    """
    if repetition == 0:
        return seed
    return int(make_rng("spec-repetition", seed, repetition)
               .integers(2**32))


def _coerce(spec):
    if isinstance(spec, ExperimentSpec):
        return spec
    if isinstance(spec, dict):
        return ExperimentSpec.from_dict(spec)
    if isinstance(spec, str):
        return ExperimentSpec.from_json(spec)
    raise SimulationError(
        "run() takes an ExperimentSpec, a spec dict or spec JSON, got "
        "{!r}".format(type(spec).__name__))


def _stream_model(spec, load, device=None, fleet=None,
                  caller="build_stream"):
    """The spec's scenario model plus its calibrated arrival rate —
    the shared front half of :func:`build_stream` and
    :func:`build_stream_iter` (``caller`` keeps the error text naming
    the function the user actually called)."""
    spec = _coerce(spec)
    if (device is None) == (fleet is None):
        raise SimulationError(
            "{} needs exactly one calibration target: device= "
            "for single-device specs, fleet= for fleet specs".format(
                caller))
    if (fleet is not None) != spec.is_fleet:
        raise SimulationError(
            "calibration target does not match the spec topology: this "
            "spec has {} device(s), so pass {}".format(
                len(spec.devices),
                "fleet=" if spec.is_fleet else "device="))
    model = scenario_from_name(spec.scenario)
    mix = model.mix_weights()
    if fleet is not None:
        rate = fleet_arrival_rate_for_load(load, fleet, names=list(mix),
                                           weights=list(mix.values()))
    else:
        rate = arrival_rate_for_load(load, device, names=list(mix),
                                     weights=list(mix.values()))
    return spec, model, rate


def build_stream(spec, load, seed, repetition, device=None, fleet=None):
    """One grid point's arrival stream (the spec's scenario at the
    calibrated offered load).  Public so benchmarks and tools can
    reproduce exactly the stream ``run(spec)`` would simulate — which
    is why the calibration target is checked: exactly one of ``device``
    (single-device spec) or ``fleet`` (fleet spec) must be given."""
    spec, model, rate = _stream_model(spec, load, device=device, fleet=fleet,
                                      caller="build_stream")
    return model.generate(rate, spec.count,
                          seed=stream_seed(seed, repetition))


def build_stream_iter(spec, load, seed, repetition, device=None, fleet=None):
    """Lazy :func:`build_stream`: the identical arrival sequence as a
    generator (``list(build_stream_iter(...)) == build_stream(...)``
    bit-for-bit) without materialising it — what streaming-mode
    ``run(spec)`` consumes.  Each call returns a fresh, single-use
    iterator."""
    spec, model, rate = _stream_model(spec, load, device=device, fleet=fleet,
                                      caller="build_stream_iter")
    return model.iter_arrivals(rate, spec.count,
                               seed=stream_seed(seed, repetition))


def _grid_cells(spec):
    """Every grid cell of ``spec``, in the deterministic grid order."""
    cells = []
    placements = spec.placements if spec.is_fleet else (None,)
    for load in spec.loads:
        for seed in spec.seeds:
            for repetition in range(spec.repetitions):
                for placement in placements:
                    for scheme in spec.schemes:
                        cells.append(Cell(scheme=scheme, load=load,
                                          seed=seed, repetition=repetition,
                                          placement=placement))
    return cells


class _SpecRunner:
    """Executes any one grid cell as a pure function of ``(spec, cell)``.

    The stateless-cell refactor behind both execution backends: the
    runner owns the built device/fleet and experiment (one per process),
    and every cell's arrival stream is (re)generated from the cell's
    ``(load, seed, repetition)``.  Exact-mode cells sharing a stream
    reuse one materialised copy (a one-slot memo — cells arrive in grid
    order, where same-stream cells are adjacent); streaming-mode cells
    always get a fresh iterator, because iterators are single-use and
    unpicklable, so they *must* be regenerated wherever the cell runs.
    """

    def __init__(self, spec):
        # lazy: the harness imports this package's registries at module top
        from repro.harness.open_system import (FleetOpenSystemExperiment,
                                               OpenSystemExperiment)
        from repro.sim.fleet import DeviceFleet
        self.spec = spec
        self.streaming = spec.metrics_mode == "streaming"
        if spec.is_fleet:
            self.device = None
            self.fleet = DeviceFleet([(entry.id, build_device(entry))
                                      for entry in spec.devices])
            self.experiment = FleetOpenSystemExperiment(
                self.fleet, policy=spec.policy, saturate=spec.saturate)
        else:
            self.device = build_device(spec.devices[0])
            self.fleet = None
            self.experiment = OpenSystemExperiment(
                self.device, policy=spec.policy, saturate=spec.saturate)
        self._stream_key = None
        self._stream = None

    def _arrivals(self, cell):
        key = (cell.load, cell.seed, cell.repetition)
        if self._stream_key != key:
            self._stream = build_stream(self.spec, cell.load, cell.seed,
                                        cell.repetition, device=self.device,
                                        fleet=self.fleet)
            self._stream_key = key
        return self._stream

    def _fresh_iter(self, cell):
        return build_stream_iter(self.spec, cell.load, cell.seed,
                                 cell.repetition, device=self.device,
                                 fleet=self.fleet)

    def _ledger(self):
        """A fresh attribution ledger per cell (attributed specs only):
        the ledger is stateful event-consuming accounting, so sharing one
        across cells would bleed tenants between grid points."""
        if not self.spec.attribution:
            return None
        from repro.attribution import AttributionLedger
        ids = self.fleet.ids if self.fleet is not None \
            else [self.device.name]
        return AttributionLedger(ids)

    def run_cell(self, cell):
        ledger = self._ledger()
        if self.fleet is not None:
            policy = placement_from_name(cell.placement)
            if self.streaming:
                return self.experiment.run_stream(
                    self._fresh_iter(cell), cell.scheme, policy,
                    mode=self.spec.placement_mode,
                    rebalance=self.spec.rebalance, ledger=ledger)
            return self.experiment.run(
                self._arrivals(cell), cell.scheme, policy,
                mode=self.spec.placement_mode,
                rebalance=self.spec.rebalance, ledger=ledger)
        if self.streaming:
            return self.experiment.run_stream(self._fresh_iter(cell),
                                              cell.scheme, ledger=ledger)
        return self.experiment.run(self._arrivals(cell), cell.scheme,
                                   ledger=ledger)


# -- process-pool plumbing ------------------------------------------------

# one runner per worker process, built by the pool initializer
_WORKER_RUNNER = None


def _init_worker(spec_json):
    """Pool initializer: rebuild the spec's runner and warm the kernel
    caches.  Under the ``fork`` start method the worker inherits the
    parent's already-warm caches, so this is near-free; under ``spawn``
    it does the real warm-up exactly once per process instead of once
    per cell."""
    global _WORKER_RUNNER
    spec = ExperimentSpec.from_json(spec_json)
    warm_caches(spec)
    _WORKER_RUNNER = _SpecRunner(spec)


def _run_cell_task(cell_fields):
    """The picklable work unit: one grid cell, by its plain-data form."""
    return _WORKER_RUNNER.run_cell(Cell(**cell_fields))


def _make_pool(spec, max_workers):
    """A process pool primed for ``spec``'s cells, or ``None`` when the
    platform cannot provide one (the caller then falls back to serial —
    same results, no pool)."""
    # warm the parent's kernel caches before forking: fork-started
    # workers inherit them, so their own warm-up call is a no-op
    warm_caches(spec)
    try:
        from concurrent.futures import ProcessPoolExecutor
        return ProcessPoolExecutor(max_workers=max_workers,
                                   initializer=_init_worker,
                                   initargs=(spec.to_json(),))
    except (ImportError, NotImplementedError, OSError, PermissionError,
            ValueError):
        return None


def _store_on_completion(store, digest, payload):
    """A done-callback flushing one finished cell to the cache — the
    flush happens when the *worker* finishes, not when the merge reaches
    the cell, so an interrupted parallel sweep keeps every completed
    result."""
    def flush(future):
        if future.cancelled() or future.exception() is not None:
            return
        store.put(digest, payload, future.result())
    return flush


def _merge_parallel(executor, cells, cached, pending, keys, store):
    """Submit every pending cell, then re-emit results in grid order
    regardless of completion order — the deterministic merge."""
    futures = {}
    try:
        for index in pending:
            future = executor.submit(_run_cell_task,
                                     cells[index].to_dict())
            if store is not None:
                digest, payload = keys[index]
                future.add_done_callback(
                    _store_on_completion(store, digest, payload))
            futures[index] = future
        for index, cell in enumerate(cells):
            if index in cached:
                yield (cell, cached[index])
            else:
                yield (cell, futures[index].result())
    finally:
        # wait=True joins the pool's manager thread, which is what runs
        # the done-callbacks — without it the last cells' cache flushes
        # could still be in flight when the caller reads the counters
        executor.shutdown(wait=True, cancel_futures=True)


def _open_cache(cache_dir, cache):
    if not cache or cache_dir is None:
        return None
    if isinstance(cache_dir, ResultCache):
        return cache_dir
    return ResultCache(cache_dir)


def _worker_count(workers):
    if workers is None:
        workers = 1
    if not isinstance(workers, int) or isinstance(workers, bool) \
            or workers < 1:
        raise SimulationError(
            "workers must be a positive integer, got {!r}".format(workers))
    return workers


def iter_runs(spec, workers=1, cache_dir=None, cache=True):
    """Yield ``(cell, result)`` pairs of ``spec``'s grid, in grid order.

    ``workers > 1`` executes cache-miss cells on a process pool; the
    merge re-emits results in grid order, so the output — and
    ``ResultSet.to_json`` built from it — is bit-identical to the
    serial path.  ``cache_dir`` (a directory path or a
    :class:`~repro.api.cache.ResultCache`) enables the content-addressed
    result cache; ``cache=False`` disables lookups and stores even when
    a directory is given.
    """
    spec = _coerce(spec)
    workers = _worker_count(workers)
    cells = _grid_cells(spec)
    store = _open_cache(cache_dir, cache)

    keys = None
    cached = {}
    if store is not None:
        keys = [cell_key(spec, cell) for cell in cells]
        for index in range(len(cells)):
            digest, payload = keys[index]
            hit = store.get(digest, payload, metrics=spec.metrics)
            if hit is not None:
                cached[index] = hit
    pending = [i for i in range(len(cells)) if i not in cached]

    if workers > 1 and len(pending) > 1:
        executor = _make_pool(spec, min(workers, len(pending)))
        if executor is not None:
            yield from _merge_parallel(executor, cells, cached, pending,
                                       keys, store)
            return
        # no usable process pool on this platform: run serially instead

    runner = None
    for index, cell in enumerate(cells):
        if index in cached:
            yield (cell, cached[index])
            continue
        if runner is None:
            runner = _SpecRunner(spec)
        result = runner.run_cell(cell)
        if store is not None:
            digest, payload = keys[index]
            store.put(digest, payload, result)
        yield (cell, result)


def _progress_note(spec, completed, store):
    note = ("experiment grid aborted after {}/{} cells".format(
        completed, spec.cell_count()))
    if store is not None:
        note += ("; completed cells are cached under {} — re-running "
                 "with the same cache_dir resumes from them".format(
                     store.directory))
    return note


def run(spec, workers=1, cache_dir=None, cache=True):
    """Run the whole grid; returns a :class:`ResultSet` in grid order.

    ``workers``/``cache_dir``/``cache`` pass through to
    :func:`iter_runs` (parallel execution, content-addressed result
    cache).  Completed cells are flushed to the cache *as they finish*,
    and a mid-grid failure re-raises with a note recording how far the
    sweep got — nothing already computed is lost.
    """
    spec = _coerce(spec)
    store = _open_cache(cache_dir, cache)
    pairs = []
    try:
        for pair in iter_runs(spec, workers=workers, cache_dir=store,
                              cache=cache):
            pairs.append(pair)
    except BaseException as exc:
        exc.add_note(_progress_note(spec, len(pairs), store))
        raise
    return ResultSet(spec, pairs)
