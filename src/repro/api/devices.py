"""Named device models for serializable experiment specs.

A spec cannot carry a :class:`~repro.cl.device.DeviceSpec` object —
specs serialize.  Instead a fleet entry names a registered *base* device
plus optional derating scales, and :func:`build_device` rebuilds the
concrete model.  The paper's two evaluation platforms are pre-registered;
``register_device`` adds further models (a factory returning a fresh
``DeviceSpec``), after which specs can name them.
"""

from __future__ import annotations

from repro.api.registry import Registry
from repro.cl.device import amd_r9_295x2, derated_device, nvidia_k20m
from repro.errors import SimulationError

DEVICES = Registry("device")


def register_device(name, factory, replace=False):
    """Register a zero-argument ``DeviceSpec`` factory under ``name``."""
    if not callable(factory):
        raise SimulationError(
            "device factories must be callable, got {!r}".format(
                type(factory).__name__))
    DEVICES.register(name, factory, replace=replace)
    return factory


def device_from_name(name):
    """A fresh ``DeviceSpec`` of one registered device model."""
    return DEVICES.from_name(name)()


def device_names():
    """All registered device-model names, in registration order."""
    return DEVICES.names()


def build_device(entry):
    """The concrete ``DeviceSpec`` of one :class:`~repro.api.spec.DeviceEntry`.

    Undersped entries (``clock_scale``/``cu_scale`` below 1) become
    derated siblings whose *name* encodes the base model and both scales.
    The harness caches (isolated times, §6.4 chunks) key on the device
    name, so the name must be a pure function of the timing-relevant
    identity — naming derated devices after the entry id would let two
    different deratings that reuse an id silently share calibration.
    """
    base = device_from_name(entry.base)
    if entry.clock_scale == 1.0 and entry.cu_scale == 1.0:
        return base
    # repr floats: shortest round-trip form, so the name is a *pure*
    # function of the scales ({:g} would collapse near-equal scales)
    name = "{}[clock={!r},cu={!r}]".format(entry.base, entry.clock_scale,
                                           entry.cu_scale)
    return derated_device(base, name, clock_scale=entry.clock_scale,
                          cu_scale=entry.cu_scale)


register_device("nvidia-k20m", nvidia_k20m)
register_device("amd-r9-295x2", amd_r9_295x2)
