"""The cross-device placement-policy registry (fleet experiments).

Placement policies are stateful (round-robin cursors, tenant homes), so
the registry stores *factories*: :func:`placement_from_name` returns a
fresh instance per call and two experiments can never share cursor
state.  The three stock policies of :mod:`repro.accelos.placement` are
pre-registered; ``register_placement`` adds a user policy, after which
fleet specs (:class:`repro.api.spec.ExperimentSpec`) and the fleet
harness accept its name everywhere.
"""

from __future__ import annotations

from repro.accelos.placement import (AffinityPlacement, LeastLoadedPlacement,
                                     PlacementPolicy, RoundRobinPlacement)
from repro.api.registry import Registry
from repro.errors import SimulationError

PLACEMENTS = Registry("placement policy")


def register_placement(name, factory, replace=False):
    """Register a zero-argument factory of :class:`PlacementPolicy`."""
    if not callable(factory):
        raise SimulationError(
            "placement factories must be callable, got {!r}".format(
                type(factory).__name__))
    PLACEMENTS.register(name, factory, replace=replace)
    return factory


def unregister_placement(name):
    """Remove a registered placement (tests clean up their toys)."""
    PLACEMENTS.unregister(name)


def placement_from_name(placement):
    """A fresh policy instance for ``placement`` (a registered name); a
    :class:`PlacementPolicy` instance passes through unchanged.  Unknown
    names raise listing every registered policy."""
    if isinstance(placement, PlacementPolicy):
        return placement
    policy = PLACEMENTS.from_name(placement)()
    if not isinstance(policy, PlacementPolicy):
        raise SimulationError(
            "placement factory {!r} built {!r}, not a "
            "PlacementPolicy".format(placement, type(policy).__name__))
    return policy


def placement_names():
    """All registered placement names, in registration order."""
    return PLACEMENTS.names()


def default_policies():
    """Fresh instances of every registered policy, keyed by name.

    User-registered policies appear here too; one fresh instance per
    call, so shared-cursor state can never leak between experiments.
    """
    return {name: placement_from_name(name) for name in placement_names()}


register_placement(RoundRobinPlacement.name, RoundRobinPlacement)
register_placement(LeastLoadedPlacement.name, LeastLoadedPlacement)
register_placement(AffinityPlacement.name, AffinityPlacement)
