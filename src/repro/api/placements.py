"""The cross-device placement-policy registry (fleet experiments).

Placement policies are stateful (round-robin cursors, tenant homes,
burst trackers), so the registry stores *factories*:
:func:`placement_from_name` returns a fresh instance per call and two
experiments can never share cursor state.  The stock policies of
:mod:`repro.accelos.placement` are pre-registered — the three offline
policies plus the closed-loop-only online ones (``burst-aware``,
``work-stealing``); ``register_placement`` adds a user policy, after
which fleet specs (:class:`repro.api.spec.ExperimentSpec`) and the
fleet harness accept its name everywhere.

:data:`REBALANCERS` is the re-balancer registry of the spec's
``rebalance`` field: each entry wraps an *online* policy with a
cross-device re-balancing hook (see docs/PLACEMENT.md).
"""

from __future__ import annotations

from repro.accelos.placement import (AffinityPlacement,
                                     BurstAwareOnlinePlacement,
                                     LeastLoadedPlacement,
                                     OnlinePlacementPolicy, PlacementPolicy,
                                     RoundRobinPlacement,
                                     WorkStealingRebalance)
from repro.api.registry import Registry
from repro.errors import SimulationError

PLACEMENTS = Registry("placement policy")
REBALANCERS = Registry("re-balancer")


def register_placement(name, factory, replace=False):
    """Register a zero-argument factory of :class:`PlacementPolicy`."""
    if not callable(factory):
        raise SimulationError(
            "placement factories must be callable, got {!r}".format(
                type(factory).__name__))
    PLACEMENTS.register(name, factory, replace=replace)
    return factory


def unregister_placement(name):
    """Remove a registered placement (tests clean up their toys)."""
    PLACEMENTS.unregister(name)


def placement_from_name(placement):
    """A fresh policy instance for ``placement`` (a registered name); a
    :class:`PlacementPolicy` / :class:`OnlinePlacementPolicy` instance
    passes through unchanged.  Unknown names raise listing every
    registered policy."""
    if isinstance(placement, (PlacementPolicy, OnlinePlacementPolicy)):
        return placement
    policy = PLACEMENTS.from_name(placement)()
    if not isinstance(policy, (PlacementPolicy, OnlinePlacementPolicy)):
        raise SimulationError(
            "placement factory {!r} built {!r}, not a "
            "PlacementPolicy".format(placement, type(policy).__name__))
    return policy


def is_online_placement(policy):
    """True when ``policy`` (instance or registered name) speaks the
    closed-loop protocol and cannot run in the offline pre-pass."""
    return isinstance(placement_from_name(policy), OnlinePlacementPolicy)


def register_rebalancer(name, wrapper, replace=False):
    """Register a re-balancer: ``wrapper(online_policy) -> online policy``
    adding a :meth:`~repro.accelos.placement.OnlinePlacementPolicy.rebalance`
    hook around any online placement policy."""
    if not callable(wrapper):
        raise SimulationError(
            "re-balancer wrappers must be callable, got {!r}".format(
                type(wrapper).__name__))
    REBALANCERS.register(name, wrapper, replace=replace)
    return wrapper


def unregister_rebalancer(name):
    """Remove a registered re-balancer (tests clean up their toys)."""
    REBALANCERS.unregister(name)


def rebalancer_from_name(name):
    """The wrapper registered under ``name`` (raises listing the valid
    names)."""
    return REBALANCERS.from_name(name)


def rebalancer_names():
    """All registered re-balancer names, in registration order."""
    return REBALANCERS.names()


def placement_names():
    """All registered placement names, in registration order."""
    return PLACEMENTS.names()


def default_policies():
    """Fresh instances of every registered *offline* policy, keyed by name.

    User-registered policies appear here too; one fresh instance per
    call, so shared-cursor state can never leak between experiments.
    Closed-loop-only (online) policies are excluded — they cannot drive
    :func:`repro.accelos.placement.place_arrivals`; list them via
    :func:`placement_names` + :func:`is_online_placement` instead.
    """
    policies = {name: placement_from_name(name)
                for name in placement_names()}
    return {name: policy for name, policy in policies.items()
            if not isinstance(policy, OnlinePlacementPolicy)}


register_placement(RoundRobinPlacement.name, RoundRobinPlacement)
register_placement(LeastLoadedPlacement.name, LeastLoadedPlacement)
register_placement(AffinityPlacement.name, AffinityPlacement)
register_placement(BurstAwareOnlinePlacement.name,
                   BurstAwareOnlinePlacement)
register_placement("work-stealing", WorkStealingRebalance)

# ``rebalance="work-stealing"`` in a spec composes the steal hook around
# whatever placement the cell names (keeping that placement's name for
# result selection); the "work-stealing" *placement* above is the same
# hook around the default burst-aware chooser.
register_rebalancer(
    "work-stealing",
    lambda policy: WorkStealingRebalance(inner=policy, name=policy.name))
