"""``ExperimentSpec``: the whole evaluation grid as one frozen value.

A spec names everything an experiment needs — schemes x scenario/seed/
load grid x fleet topology (heterogeneity included) x repetitions x
metric selection — using only registry names and plain numbers, so it
serializes exactly: ``from_dict(to_dict(spec)) == spec`` and
``to_json -> from_json -> to_json`` is bit-identical.  Validation is
eager and actionable: constructing a spec with an unknown scheme,
scenario, placement, device or metric name raises immediately, listing
the valid names, instead of failing mid-grid an hour into a run.

:class:`Cell` identifies one point of the grid — ``run(spec)`` yields
``(cell, result)`` pairs in deterministic grid order.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from typing import Any, Dict, Mapping, Optional, Sequence, Union

from repro.api.devices import DEVICES
from repro.api.placements import (PLACEMENTS, REBALANCERS,
                                  is_online_placement)
from repro.api.results import ATTRIBUTION_METRICS, METRICS
from repro.api.schemes import BUILTIN_SCHEMES, SCHEMES
from repro.accelos.adaptive import SchedulingPolicy
from repro.errors import SimulationError
from repro.workloads.scenarios import SCENARIOS

DEFAULT_METRICS = ("antt", "stp", "unfairness", "mean_queueing_delay",
                   "p99_slowdown")
DEFAULT_PLACEMENT = "least-loaded"

_POLICIES = (SchedulingPolicy.ADAPTIVE, SchedulingPolicy.NAIVE)
_PLACEMENT_MODES = ("auto", "offline", "online")
_METRICS_MODES = ("exact", "streaming")


def _require(condition: object, message: str) -> None:
    if not condition:
        raise SimulationError(message)


def _known(name: object, registry_names: Sequence[str],
           kind: str) -> object:
    if name not in registry_names:
        raise SimulationError(
            "unknown {} {!r} (valid: {})".format(
                kind, name, ", ".join(registry_names)))
    return name


@dataclass(frozen=True)
class DeviceEntry:
    """One fleet member: a registered base model plus optional derating.

    ``clock_scale``/``cu_scale`` below 1 build a slower sibling named
    after ``id`` (mixed-generation fleets); both 1.0 means the stock
    base device.
    """

    id: str
    base: str = "nvidia-k20m"
    clock_scale: float = 1.0
    cu_scale: float = 1.0

    def __post_init__(self) -> None:
        _require(isinstance(self.id, str) and self.id,
                 "device entry ids must be non-empty strings")
        _known(self.base, DEVICES.names(), "device")
        for label, scale in (("clock_scale", self.clock_scale),
                             ("cu_scale", self.cu_scale)):
            _require(isinstance(scale, (int, float))
                     and not isinstance(scale, bool)
                     and 0.0 < float(scale) <= 1.0,
                     "device {} must be in (0, 1], got {!r}".format(
                         label, scale))
        object.__setattr__(self, "clock_scale", float(self.clock_scale))
        object.__setattr__(self, "cu_scale", float(self.cu_scale))

    def to_dict(self) -> Dict[str, Any]:
        return {"id": self.id, "base": self.base,
                "clock_scale": self.clock_scale, "cu_scale": self.cu_scale}

    @classmethod
    def from_dict(cls, data: Union[str, Mapping[str, Any]]) -> "DeviceEntry":
        if isinstance(data, str):  # shorthand: a bare base-model name
            return cls(id=data, base=data)
        _check_keys(data, ("id", "base", "clock_scale", "cu_scale"),
                    "device entry")
        _require("id" in data,
                 "device entry {!r} needs an 'id' (the fleet-unique "
                 "handle results are keyed by)".format(data))
        return cls(**data)


@dataclass(frozen=True)
class Cell:
    """One grid point: which scheme/placement ran which stream."""

    scheme: str
    load: float
    seed: int
    repetition: int = 0
    placement: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {"scheme": self.scheme, "load": self.load, "seed": self.seed,
                "repetition": self.repetition, "placement": self.placement}

    def matches(self, **criteria: object) -> bool:
        """True when every given field equals this cell's value."""
        for key, value in criteria.items():
            if key not in ("scheme", "load", "seed", "repetition",
                           "placement"):
                raise SimulationError(
                    "unknown cell field {!r} (valid: scheme, load, seed, "
                    "repetition, placement)".format(key))
            if getattr(self, key) != value:
                return False
        return True


def _check_keys(data: object, valid: Sequence[str], what: str) -> None:
    _require(isinstance(data, dict),
             "{} must be a mapping, got {!r}".format(what,
                                                     type(data).__name__))
    unknown = [k for k in data if k not in valid]
    if unknown:
        raise SimulationError(
            "unknown {} key {!r} (valid: {})".format(
                what, unknown[0], ", ".join(valid)))


@dataclass(frozen=True)
class ExperimentSpec:
    """A declarative, serializable experiment: the grid, not the wiring.

    Single-device specs (one entry in ``devices``) route through
    :class:`~repro.harness.open_system.OpenSystemExperiment`; multi-device
    specs through the fleet path, one run per placement policy named in
    ``placements``.  ``placement_mode`` picks the fleet's evaluation
    plane — ``"auto"`` (offline policies replay the pre-pass estimate
    bit-identically, online policies run the closed loop), ``"offline"``
    (force the legacy pre-pass) or ``"online"`` (force live-state
    placement, adapting offline policies) — and ``rebalance`` names a
    registered re-balancer (``"none"`` to disable) wrapped around every
    placement, which requires live-state placement.  Streams come from
    the named traffic ``scenario`` at each offered ``load``;
    ``repetitions`` replays each grid point with
    derived per-repetition stream seeds (repetition 0 uses the seed
    verbatim, so a one-repetition spec reproduces historical streams
    bit-for-bit).

    ``metrics_mode`` picks the evaluation plane: ``"exact"`` (default)
    materialises every request record and computes metrics from the full
    population — the golden-checked path — while ``"streaming"`` feeds
    arrivals lazily through online sketches
    (:mod:`repro.metrics.sketches`) in bounded memory: counts, means,
    maxima and ANTT/STP/unfairness are exact up to summation order, and
    percentile metrics are P² estimates.  Streaming consumes arrivals
    incrementally, so it requires the closed loop (``placement_mode``
    ``"auto"`` or ``"online"``).

    ``attribution`` attaches a per-tenant accounting ledger
    (:class:`repro.attribution.AttributionLedger`) to every cell: each
    result gains an ``attribution`` fairness-audit report and the
    attribution metrics (``tenant_occupancy``, ``induced_delay_matrix``,
    ``attribution_summary``) become selectable.  Off by default — an
    unattributed run takes exactly the historical code paths, so its
    results stay bit-identical.  Attribution needs the closed loop's
    event timeline (``placement_mode`` ``"auto"`` or ``"online"``).
    """

    scenario: str = "steady"
    schemes: tuple[str, ...] = BUILTIN_SCHEMES
    loads: tuple[float, ...] = (1.0,)
    seeds: tuple[int, ...] = (0,)
    count: int = 32
    repetitions: int = 1
    devices: tuple[DeviceEntry, ...] = (
        DeviceEntry(id="device-0", base="nvidia-k20m"),)
    placements: tuple[str, ...] = ()
    placement_mode: str = "auto"
    rebalance: str = "none"
    metrics: tuple[str, ...] = DEFAULT_METRICS
    metrics_mode: str = "exact"
    policy: str = SchedulingPolicy.ADAPTIVE
    saturate: bool = True
    attribution: bool = False

    def __post_init__(self) -> None:
        _known(self.scenario, tuple(sorted(SCENARIOS)), "scenario")

        schemes = _as_tuple(self.schemes, "schemes")
        _require(schemes, "a spec needs at least one scheme")
        for name in schemes:
            _known(name, SCHEMES.names(), "scheme")
        _require(len(set(schemes)) == len(schemes),
                 "duplicate scheme names in {}".format(list(schemes)))
        object.__setattr__(self, "schemes", schemes)

        loads = _as_tuple(self.loads, "loads")
        _require(loads, "a spec needs at least one offered load")
        for load in loads:
            _require(isinstance(load, (int, float)) and float(load) > 0,
                     "offered loads must be positive numbers, got "
                     "{!r}".format(load))
        loads = tuple(float(l) for l in loads)
        _require(len(set(loads)) == len(loads),
                 "duplicate loads in {} (identical grid cells would make "
                 "result selection ambiguous)".format(list(loads)))
        object.__setattr__(self, "loads", loads)

        seeds = _as_tuple(self.seeds, "seeds")
        _require(seeds, "a spec needs at least one seed")
        for seed in seeds:
            _require(isinstance(seed, int) and not isinstance(seed, bool),
                     "seeds must be integers, got {!r}".format(seed))
        _require(len(set(seeds)) == len(seeds),
                 "duplicate seeds in {} (identical grid cells would make "
                 "result selection ambiguous)".format(list(seeds)))
        object.__setattr__(self, "seeds", seeds)

        _require(isinstance(self.count, int) and self.count > 0,
                 "count must be a positive integer, got {!r}".format(
                     self.count))
        _require(isinstance(self.repetitions, int) and self.repetitions >= 1,
                 "repetitions must be a positive integer, got {!r}".format(
                     self.repetitions))

        devices = _as_tuple(self.devices, "devices")
        _require(devices, "a spec needs at least one device")
        entries = tuple(
            e if isinstance(e, DeviceEntry) else DeviceEntry.from_dict(e)
            for e in devices)
        ids = [e.id for e in entries]
        _require(len(set(ids)) == len(ids),
                 "fleet device ids must be unique, got {}".format(ids))
        object.__setattr__(self, "devices", entries)

        placements = _as_tuple(self.placements, "placements")
        if len(entries) == 1:
            _require(not placements,
                     "placements only apply to multi-device fleets; drop "
                     "them or add devices")
        else:
            if not placements:
                placements = (DEFAULT_PLACEMENT,)
            for name in placements:
                _known(name, PLACEMENTS.names(), "placement")
            _require(len(set(placements)) == len(placements),
                     "duplicate placement names in {}".format(
                         list(placements)))
        object.__setattr__(self, "placements", placements)

        _known(self.placement_mode, _PLACEMENT_MODES, "placement mode")
        _require(isinstance(self.rebalance, str),
                 "rebalance must be a re-balancer name or 'none', got "
                 "{!r}".format(self.rebalance))
        if self.rebalance != "none":
            _known(self.rebalance, ("none",) + tuple(REBALANCERS.names()),
                   "re-balancer")
        if len(entries) == 1:
            _require(self.placement_mode == "auto",
                     "placement_mode only applies to multi-device fleets; "
                     "drop it or add devices")
            _require(self.rebalance == "none",
                     "rebalance only applies to multi-device fleets; drop "
                     "it or add devices")
        else:
            if self.placement_mode == "offline":
                _require(self.rebalance == "none",
                         "re-balancing needs the closed loop; use "
                         "placement_mode 'auto' or 'online'")
                for name in placements:
                    _require(not is_online_placement(name),
                             "placement {!r} is closed-loop-only; it "
                             "cannot run with placement_mode "
                             "'offline'".format(name))
            if self.rebalance != "none" and self.placement_mode == "auto":
                for name in placements:
                    _require(is_online_placement(name),
                             "rebalance {!r} needs live-state placement: "
                             "placement {!r} is offline — set "
                             "placement_mode 'online' (or use online "
                             "placements only)".format(self.rebalance,
                                                       name))

        metrics = _as_tuple(self.metrics, "metrics")
        _require(metrics, "a spec needs at least one metric")
        for name in metrics:
            _known(name, METRICS.names(), "metric")
        _require(len(set(metrics)) == len(metrics),
                 "duplicate metric names in {}".format(list(metrics)))
        object.__setattr__(self, "metrics", metrics)

        _known(self.metrics_mode, _METRICS_MODES, "metrics mode")
        if self.metrics_mode == "streaming":
            _require(self.placement_mode != "offline",
                     "streaming metrics need the closed loop (arrivals are "
                     "consumed incrementally); use placement_mode 'auto' or "
                     "'online'")

        _known(self.policy, _POLICIES, "scheduling policy")
        _require(isinstance(self.saturate, bool),
                 "saturate must be a boolean, got {!r}".format(self.saturate))

        _require(isinstance(self.attribution, bool),
                 "attribution must be a boolean, got {!r}".format(
                     self.attribution))
        if self.attribution:
            _require(self.placement_mode != "offline",
                     "attribution needs the closed loop's event timeline; "
                     "use placement_mode 'auto' or 'online'")
        else:
            selected = [n for n in metrics if n in ATTRIBUTION_METRICS]
            _require(not selected,
                     "metric {!r} needs the attribution plane; set "
                     "attribution: true".format(
                         selected[0] if selected else None))

    # -- derived shape -------------------------------------------------------

    @property
    def is_fleet(self) -> bool:
        return len(self.devices) > 1

    def cell_count(self) -> int:
        """How many ``(cell, result)`` pairs ``run`` will yield."""
        per_stream = len(self.schemes) * max(1, len(self.placements))
        return (len(self.loads) * len(self.seeds) * self.repetitions
                * per_stream)

    def cell_inputs(self) -> Dict[str, Any]:
        """The spec fields that determine one grid cell's *simulation* —
        the spec half of the result-cache key
        (:func:`repro.api.cache.cell_key`).

        ``metrics`` is deliberately excluded: it selects what a report
        prints, not what a cell computes, so two specs differing only in
        metric selection share cache entries.  The grid axes
        (``schemes``/``loads``/``seeds``/``repetitions``/``placements``)
        are excluded too — the cell itself carries its own point on
        each axis.
        """
        return {
            "scenario": self.scenario,
            "count": self.count,
            "devices": [e.to_dict() for e in self.devices],
            "placement_mode": self.placement_mode,
            "rebalance": self.rebalance,
            "metrics_mode": self.metrics_mode,
            "policy": self.policy,
            "saturate": self.saturate,
            # attribution changes what a cell *computes* (results carry
            # the audit report), so attributed and plain runs must not
            # share cache entries
            "attribution": self.attribution,
        }

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """The canonical plain-data form (lists, numbers, strings)."""
        return {
            "scenario": self.scenario,
            "schemes": list(self.schemes),
            "loads": list(self.loads),
            "seeds": list(self.seeds),
            "count": self.count,
            "repetitions": self.repetitions,
            "devices": [e.to_dict() for e in self.devices],
            "placements": list(self.placements),
            "placement_mode": self.placement_mode,
            "rebalance": self.rebalance,
            "metrics": list(self.metrics),
            "metrics_mode": self.metrics_mode,
            "policy": self.policy,
            "saturate": self.saturate,
            "attribution": self.attribution,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        valid = tuple(f.name for f in fields(cls))
        _check_keys(data, valid, "experiment spec")
        kwargs = dict(data)
        for key in ("schemes", "loads", "seeds", "placements", "metrics",
                    "devices"):
            if key in kwargs and isinstance(kwargs[key], list):
                kwargs[key] = tuple(kwargs[key])
        return cls(**kwargs)

    def to_json(self) -> str:
        """Deterministic JSON (sorted keys, shortest-round-trip floats):
        the exact inverse of :meth:`from_json`."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise SimulationError(
                "experiment spec is not valid JSON: {}".format(exc))
        return cls.from_dict(data)


def _as_tuple(value: object, what: str) -> tuple[Any, ...]:
    if isinstance(value, (str, bytes)):
        raise SimulationError(
            "{} must be a sequence of values, not a bare string "
            "{!r}".format(what, value))
    try:
        return tuple(value)
    except TypeError:
        raise SimulationError(
            "{} must be a sequence, got {!r}".format(what, value))
