"""A tiny ordered registry shared by schemes, placements, devices, metrics.

One pattern, four instances: named extension points where the built-ins
and user registrations live side by side, lookups fail with the full list
of valid names (actionable errors, not echoes of the bad string), and
iteration order is registration order so reports stay stable.
"""

from __future__ import annotations

from typing import Dict, Generic, Iterator, Tuple, TypeVar

from repro.errors import SimulationError

EntryT = TypeVar("EntryT")


class Registry(Generic[EntryT]):
    """Name -> entry mapping with actionable unknown-name errors."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: Dict[str, EntryT] = {}

    def register(self, name: str, entry: EntryT,
                 replace: bool = False) -> EntryT:
        """Bind ``name`` to ``entry``; re-binding requires ``replace``."""
        if not isinstance(name, str) or not name:
            raise SimulationError(
                "{} names must be non-empty strings, got {!r}".format(
                    self.kind, name))
        if name in self._entries and not replace:
            raise SimulationError(
                "{} {!r} is already registered (pass replace=True to "
                "override)".format(self.kind, name))
        self._entries[name] = entry
        return entry

    def unregister(self, name: str) -> None:
        """Remove one entry (tests register toy entries and clean up)."""
        self.from_name(name)  # unknown names get the actionable error
        del self._entries[name]

    def from_name(self, name: str) -> EntryT:
        """The entry registered under ``name``; unknown names raise with
        the registered-name list so the caller can self-correct."""
        try:
            return self._entries[name]
        except KeyError:
            raise SimulationError(
                "unknown {} {!r} (registered: {})".format(
                    self.kind, name, ", ".join(self.names()) or "<none>"))

    def names(self) -> Tuple[str, ...]:
        """Registered names, in registration order."""
        return tuple(self._entries)

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return "<Registry {} [{}]>".format(self.kind,
                                           ", ".join(self._entries))
