"""The one front door: a declarative, serializable experiment surface.

The paper's evaluation is a grid — schemes x workloads x loads x devices.
This package turns that grid into data:

* :mod:`repro.api.schemes` — the :class:`SchedulingScheme` registry.  A
  scheme owns its record-generation logic (closed batches, open-system
  streams, single-kernel studies); FIFO/exclusive baseline, Elastic
  Kernels and the paper's §3 system are pre-registered, and a scheme
  registered from user code runs through every harness, benchmark and
  report unchanged.
* :mod:`repro.api.placements` — the parallel placement registry for
  cross-device placement in fleet experiments: offline
  :class:`PlacementPolicy` pre-passes, closed-loop
  :class:`OnlinePlacementPolicy` policies (burst-aware, work-stealing)
  and the :data:`REBALANCERS` registry of cross-device re-balancers.
* :mod:`repro.api.devices` — named device models plus serializable
  derated variants for heterogeneous fleets.
* :mod:`repro.api.spec` — :class:`ExperimentSpec`, a frozen, eagerly
  validated description of one experiment grid with exact
  ``to_dict``/``from_dict``/JSON round-tripping.
* :mod:`repro.api.driver` — ``run(spec, workers=, cache_dir=)``: routes
  to single-device or fleet execution, yields incremental
  ``(cell, result)`` pairs via :func:`iter_runs`, and returns a
  :class:`ResultSet` with uniform tail/ANTT/STP/unfairness accessors
  plus ``to_json`` — optionally over a process pool (grid-order
  deterministic merge) and a content-addressed result cache
  (:mod:`repro.api.cache`).
* ``python -m repro.api.run spec.json`` — the command-line face of the
  same driver (:mod:`repro.api.run`).

Layering: everything here except the driver sits *below*
:mod:`repro.harness` (the harness dispatches through the registries);
the driver sits above it and imports it lazily.
"""

from repro.api.registry import Registry
from repro.api.kernels import (
    arrival_rate_for_load, base_spec, chunk_for_profile,
    fleet_arrival_rate_for_load, isolated_time, mean_isolated_service,
    requirements_from_spec, sharing_allocator, transform_chunks,
    warm_caches)
from repro.api.devices import (
    DEVICES, build_device, device_from_name, device_names, register_device)
from repro.api.placements import (
    PLACEMENTS, REBALANCERS, default_policies, is_online_placement,
    placement_from_name, placement_names, rebalancer_from_name,
    rebalancer_names, register_placement, register_rebalancer,
    unregister_rebalancer)
# note: the scheme registry object itself (repro.api.schemes.SCHEMES) is
# deliberately not re-exported — repro.harness.SCHEMES is the pinned
# builtin trio, and exporting a same-named registry here would invite
# silent mix-ups; use scheme_names()/register_scheme() instead.
from repro.api.schemes import (
    RequestRecord, SchedulingScheme, closed_scheme_names,
    open_scheme_names, reference_scheme, register_scheme,
    scheme_from_name, scheme_names, unregister_scheme)
from repro.api.spec import Cell, DeviceEntry, ExperimentSpec
from repro.api.results import (METRICS, ResultSet, metric_names,
                               register_metric, unregister_metric)

from repro.api.cache import ResultCache, cell_key
from repro.api.driver import (build_stream, build_stream_iter,
                              iter_runs, run)

__all__ = [
    "Registry",
    "arrival_rate_for_load", "base_spec", "chunk_for_profile",
    "fleet_arrival_rate_for_load", "isolated_time", "mean_isolated_service",
    "requirements_from_spec", "sharing_allocator", "transform_chunks",
    "warm_caches",
    "DEVICES", "build_device", "device_from_name", "device_names",
    "register_device",
    "PLACEMENTS", "REBALANCERS", "default_policies",
    "is_online_placement", "placement_from_name", "placement_names",
    "rebalancer_from_name", "rebalancer_names", "register_placement",
    "register_rebalancer", "unregister_rebalancer",
    "RequestRecord", "SchedulingScheme", "closed_scheme_names",
    "open_scheme_names", "reference_scheme", "register_scheme",
    "scheme_from_name", "scheme_names", "unregister_scheme",
    "Cell", "DeviceEntry", "ExperimentSpec",
    "METRICS", "ResultSet", "metric_names", "register_metric",
    "unregister_metric",
    "ResultCache", "cell_key",
    "build_stream", "build_stream_iter", "iter_runs", "run",
]
