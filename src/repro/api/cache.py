"""Content-addressed on-disk result cache for the experiment driver.

One completed grid cell = one pickle file named by the SHA-256 of a
canonical JSON *key payload*: the cell's own grid point, the spec fields
that determine its simulation (:meth:`ExperimentSpec.cell_inputs`), and
the implementation versions of the registry entries the cell resolves
(scenario, scheme, placement, re-balancer).  Because every cell is a
pure function of exactly that payload, an interrupted sweep resumes
from its completed cells and a repeated run is near-free — and because
the key is content-addressed, *any* change to an input (a different
``count``, a derated device, a bumped scheme implementation) lands on a
different file instead of silently reusing a stale result.

Invalidation rules (what makes a key change):

* any field of the cell (``scheme``/``load``/``seed``/``repetition``/
  ``placement``) — keyed on the raw ``(seed, repetition)`` pair, never
  on the derived stream seed (see :func:`cell_key`);
* any field of :meth:`ExperimentSpec.cell_inputs` (scenario, count,
  devices incl. derating scales, placement/metrics mode, rebalance,
  policy, saturate);
* the module-qualified class name or explicit ``cache_version``
  attribute of the resolved scenario/scheme/placement/re-balancer
  (:func:`implementation_version`) — bump ``cache_version`` on a
  result-changing edit that keeps the name;
* :data:`CACHE_FORMAT` (the entry layout itself).

Defective entries — truncated pickles, foreign files, key mismatches,
results whose metric surface no longer computes — are dropped and
recomputed, never trusted (:meth:`ResultCache.get`).  Writes are atomic
(same-directory temp file + ``os.replace``), so a killed sweep cannot
leave a torn entry behind.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from pathlib import Path

from repro.api.placements import placement_from_name, rebalancer_from_name
from repro.api.results import validate_result_surface
from repro.api.schemes import scheme_from_name
from repro.workloads.scenarios import scenario as scenario_from_name

# bump when the entry layout changes (every older entry then misses)
CACHE_FORMAT = 1


def implementation_version(obj):
    """The cache-version token of one registry entry.

    Combines the implementation's identity (module-qualified class or
    function name — renames and reimplementations invalidate) with an
    explicit ``cache_version`` attribute (default 1) that authors bump
    on result-changing edits which keep the name.
    """
    target = obj if hasattr(obj, "__qualname__") else type(obj)
    version = getattr(obj, "cache_version", 1)
    return "{}.{}#v{}".format(getattr(target, "__module__", "?"),
                              target.__qualname__, version)


def registry_versions(spec, cell):
    """Version tokens of every registry entry ``cell`` resolves."""
    versions = {
        "scenario": implementation_version(
            scenario_from_name(spec.scenario)),
        "scheme": implementation_version(scheme_from_name(cell.scheme)),
    }
    if cell.placement is not None:
        versions["placement"] = implementation_version(
            placement_from_name(cell.placement))
    if spec.rebalance != "none":
        versions["rebalancer"] = implementation_version(
            rebalancer_from_name(spec.rebalance))
    return versions


def cell_key(spec, cell):
    """``(digest, payload)`` identifying one grid cell's result.

    The payload carries the raw ``(seed, repetition)`` pair — never the
    derived stream seed: :func:`repro.api.driver.stream_seed` draws
    32-bit child seeds, so another spec seed's repetition-0 value can
    collide with a derived seed, and two *different* grid cells must
    never share a cache slot even while they happen to replay the same
    stream today (a change to the derivation would then corrupt one of
    them retroactively).
    """
    payload = {
        "format": CACHE_FORMAT,
        "cell": cell.to_dict(),
        "spec": spec.cell_inputs(),
        "versions": registry_versions(spec, cell),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
    return digest, payload


class ResultCache:
    """Content-addressed result store: one pickle per completed cell.

    ``get`` returns ``None`` on a miss *or* on any defect — unreadable
    pickle, key mismatch (foreign or truncated file), or a result that
    no longer serves the requested metric surface — so a corrupt entry
    costs one recompute, never a wrong report.  ``put`` is atomic.
    The counters (``hits``/``misses``/``stores``/``rejected``) feed the
    grid benchmark's zero-recompute assertion and the resume tests.
    """

    def __init__(self, directory):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.rejected = 0

    def path_for(self, digest):
        return self.directory / "{}.pkl".format(digest)

    def get(self, digest, payload, metrics=()):
        """The cached result for ``digest``, or ``None`` to recompute."""
        path = self.path_for(digest)
        try:
            with open(path, "rb") as handle:
                entry = pickle.load(handle)
            if entry["key"] != payload:
                raise ValueError("cache key mismatch")
            result = entry["result"]
            if not validate_result_surface(result, metrics):
                raise ValueError("stale result surface")
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # defective entry: drop it and recompute
            self.rejected += 1
            self.misses += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        self.hits += 1
        return result

    def put(self, digest, payload, result):
        """Atomically store one completed cell's result."""
        path = self.path_for(digest)
        # deterministic temp name: the only writer racing us holds the
        # same digest (= same bytes), and os.replace is atomic either way
        temp = path.with_name(path.name + ".tmp")
        with open(temp, "wb") as handle:
            pickle.dump({"key": payload, "result": result}, handle,
                        protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(temp, path)
        self.stores += 1

    def __len__(self):
        return sum(1 for _ in self.directory.glob("*.pkl"))

    def __repr__(self):
        return ("<ResultCache {} ({} hits, {} misses, {} stores)>"
                .format(self.directory, self.hits, self.misses,
                        self.stores))
