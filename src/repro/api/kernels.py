"""Kernel-spec and calibration primitives shared by schemes and harness.

These helpers used to live inside :mod:`repro.harness.experiment` and
:mod:`repro.harness.open_system`; they are the layer *below* both the
scheme registry and the harness — pure functions (plus caches) from the
corpus profiles and device models to simulator inputs:

* :func:`base_spec` / :func:`detailed_spec` — a corpus kernel's
  :class:`~repro.sim.spec.KernelExecSpec` (coarse sweep granularity, or
  the fine granularity single-kernel studies need);
* :func:`isolated_time` — the standard-OpenCL isolated execution time,
  the ``IS`` denominator of every slowdown in the repo;
* :func:`transform_chunks` / :func:`chunk_for_profile` — the §6.4
  dequeue chunk actually chosen by the JIT over the real kernel;
* :func:`requirements_from_spec` / :func:`sharing_allocator` — the §3
  sharing algorithm's inputs and its ``run_open`` callback form;
* :func:`mean_isolated_service` and the two ``arrival_rate_for_load``
  calibrations built on it (single device and fleet — the fleet variant
  delegates to the per-device one, it never re-derives the math).

The harness re-exports everything here under its historical names, so
existing imports keep working.
"""

from __future__ import annotations

import numpy as np

from repro.accelos.adaptive import SchedulingPolicy
from repro.accelos.sharing import (AllocationMemo, KernelRequirements,
                                   compute_allocations)
from repro.accelos.transform import AccelOSTransform
from repro.errors import SimulationError
from repro.sim import GPUSimulator, fast_path_enabled
from repro.workloads.parboil import (PROFILE_NAMES, compiled_module,
                                     profile_by_name)

_spec_cache = {}
_iso_cache = {}
_chunk_cache = {}
_detail_cache = {}

# Virtual-group granularity for single-kernel studies: real Parboil grids
# have far more work groups than the device holds resident; the coarse
# profile granularity (scale 1) keeps sweeps tractable but under-resolves
# the §6.4 chunking trade-off (see docs/PAPER_MAPPING.md, deviations).
SINGLE_KERNEL_DETAIL = 1


def base_spec(name):
    """One corpus kernel's simulator spec at sweep granularity (cached)."""
    spec = _spec_cache.get(name)
    if spec is None:
        spec = profile_by_name(name).exec_spec()
        _spec_cache[name] = spec
    return spec


def detailed_spec(name):
    """The fine-granularity spec single-kernel studies run on (cached)."""
    spec = _detail_cache.get(name)
    if spec is None:
        spec = profile_by_name(name).exec_spec(
            detail_scale=SINGLE_KERNEL_DETAIL)
        _detail_cache[name] = spec
    return spec


def transform_chunks(benchmark, policy=SchedulingPolicy.ADAPTIVE):
    """Run the real JIT over a benchmark module; returns {kernel: chunk}."""
    key = (benchmark, policy)
    chunks = _chunk_cache.get(key)
    if chunks is None:
        module = compiled_module(benchmark)
        _, infos = AccelOSTransform(policy=policy).run(module)
        chunks = {name: info.chunk for name, info in infos.items()}
        _chunk_cache[key] = chunks
    return chunks


def chunk_for_profile(profile, policy=SchedulingPolicy.ADAPTIVE):
    """The §6.4 dequeue chunk of one corpus kernel under ``policy``."""
    if policy == SchedulingPolicy.NAIVE:
        return 1
    return transform_chunks(profile.benchmark, policy)[profile.kernel]


def _device_key(device):
    """Hashable value identity of a device spec (every scalar field).

    Cache keys must cover the *full* input of the computation they stand
    in for (docs/PERFORMANCE.md): two specs sharing a display name — say
    differently-derated "K20m-derated" siblings built in separate
    experiments — are different simulation inputs, and a name-keyed memo
    would replay one device's times for the other.
    """
    return tuple(sorted(vars(device).items()))


def isolated_time(name, device):
    """Isolated standard-OpenCL execution time — the IS denominator."""
    key = (name, _device_key(device))
    value = _iso_cache.get(key)
    if value is None:
        sim = GPUSimulator(device)
        trace = sim.run([base_spec(name)])
        value = trace.makespan
        _iso_cache[key] = value
    return value


def warm_caches(spec=None, devices=None, names=None, policy=None):
    """Pre-populate the module-level calibration caches.

    The parallel driver's per-process warm-up: under a ``spawn`` start
    method a worker process begins with empty ``_spec_cache``/
    ``_iso_cache``/``_chunk_cache`` (under ``fork`` it inherits whatever
    the parent warmed), and every fill that happens lazily inside a cell
    would otherwise repeat per process.  Given a ``spec``, warms exactly
    what its grid touches: the scenario mix's kernel specs, their §6.4
    chunks under the spec's policy, and the isolated time of every
    (kernel, device) pair.  Without a spec, warms the explicit
    ``names``/``devices``/``policy`` (defaults: whole corpus, no
    devices, adaptive).  Returns the cache sizes after warming.
    """
    if spec is not None:
        # lazy: devices/scenarios sit above this calibration layer
        from repro.api.devices import build_device
        from repro.workloads.scenarios import scenario
        if devices is None:
            devices = [build_device(entry) for entry in spec.devices]
        if names is None:
            names = list(scenario(spec.scenario).mix_weights())
        if policy is None:
            policy = spec.policy
    if names is None:
        names = list(PROFILE_NAMES)
    if policy is None:
        policy = SchedulingPolicy.ADAPTIVE
    for name in names:
        base_spec(name)
        chunk_for_profile(profile_by_name(name), policy)
    for device in devices or ():
        for name in names:
            isolated_time(name, device)
    return {"specs": len(_spec_cache), "isolated": len(_iso_cache),
            "chunks": len(_chunk_cache)}


def requirements_from_spec(spec):
    """The §3 inputs of one simulator spec (resource demands per WG)."""
    return KernelRequirements(
        name=spec.name, wg_threads=spec.wg_threads,
        local_mem_bytes=spec.local_mem_per_wg,
        registers_per_thread=spec.registers_per_thread,
        total_groups=spec.total_groups)


def sharing_allocator(device, saturate=True, memo=None):
    """An allocator callback for :meth:`GPUSimulator.run_open`.

    Wraps the §3 sharing algorithm: given the specs of the currently-active
    kernels, returns their physical-group targets.

    ``memo=True`` routes repeats of an active multiset through an
    order-insensitive :class:`~repro.accelos.sharing.AllocationMemo`
    (bit-identical targets, see docs/PERFORMANCE.md); ``None`` follows the
    engine fast-path default so :func:`repro.sim.gpu.reference_path` also
    disables the memo for A/B baselines.  The memo object is exposed as
    ``allocate.memo`` for hit/miss instrumentation.
    """
    use_memo = fast_path_enabled() if memo is None else bool(memo)
    if not use_memo:
        def allocate(specs):
            requirements = [requirements_from_spec(s) for s in specs]
            allocations = compute_allocations(requirements, device,
                                              saturate=saturate)
            return [a.groups for a in allocations]
        return allocate

    memo_obj = AllocationMemo(device, saturate=saturate)

    def allocate(specs):
        # spec fields are already int-coerced, so these tuples equal the
        # requirement_key() of the KernelRequirements built on a miss
        keys = [(s.name, s.wg_threads, s.local_mem_per_wg,
                 s.registers_per_thread, s.total_groups) for s in specs]
        return memo_obj.groups_for_keyed(
            keys, lambda: [requirements_from_spec(s) for s in specs])

    allocate.memo = memo_obj
    return allocate


# -- offered-load calibration -------------------------------------------------

def mean_isolated_service(device, names=None, weights=None):
    """``E[S]``: mean isolated service time of a kernel mix on ``device``.

    ``weights`` optionally gives the mix's per-kernel selection
    probabilities (normalised here) — the scenario engine passes its
    effective mix so weighted traffic offers the load it claims; ``None``
    means a uniform mix over ``names`` (default: the whole corpus).
    This is the one calibration both :func:`arrival_rate_for_load` and
    :func:`fleet_arrival_rate_for_load` are built on.
    """
    pool = list(names) if names is not None else list(PROFILE_NAMES)
    if weights is None:
        return float(np.mean([isolated_time(n, device) for n in pool]))
    if len(weights) != len(pool):
        raise SimulationError(
            "need one weight per kernel name ({} != {})".format(
                len(weights), len(pool)))
    total = float(sum(weights))
    if total <= 0 or any(w < 0 for w in weights):
        raise SimulationError("weights must be non-negative with a "
                              "positive sum")
    return sum((w / total) * isolated_time(n, device)
               for n, w in zip(pool, weights))


def arrival_rate_for_load(load, device, names=None, weights=None):
    """The arrival rate (requests/s) producing offered load ``load``.

    Offered load is ``rho = lambda * E[S]`` with ``E[S]`` from
    :func:`mean_isolated_service`; ``rho = 1`` saturates a server that
    runs requests back to back with no sharing.
    """
    if load <= 0:
        raise SimulationError("offered load must be positive")
    return load / mean_isolated_service(device, names=names, weights=weights)


def fleet_arrival_rate_for_load(load, fleet, names=None, weights=None):
    """The arrival rate offering ``load`` to a whole fleet.

    The fleet's service capacity is the sum of the per-device rates
    ``1 / E[S_d]`` (each device as one server working through isolated
    service times of the kernel mix) — the same per-device calibration as
    :func:`arrival_rate_for_load`, summed; ``load = 1`` saturates the
    fleet when placement is perfect.
    """
    if load <= 0:
        raise SimulationError("offered load must be positive")
    capacity = sum(
        1.0 / mean_isolated_service(member.device, names=names,
                                    weights=weights)
        for member in fleet)
    return load * capacity
