"""``ResultSet``: uniform accessors over one experiment grid's results.

``run(spec)`` returns one of these.  Every cell's result (single-device
:class:`~repro.harness.open_system.OpenSystemResult` or fleet
:class:`~repro.harness.open_system.FleetOpenSystemResult`) already
exposes the same metric surface, so the set offers uniform selection —
``antt(scheme="accelos", load=1.0)`` — plus deterministic ``to_json``
keyed by the spec's metric selection.

:data:`METRICS` is the metric-name registry the spec validates against;
each entry maps a result object to one float.
"""

from __future__ import annotations

import json
from typing import (TYPE_CHECKING, Any, Callable, Dict, Iterable, Iterator,
                    List, Optional, Sequence, Tuple)

from repro.api.registry import Registry
from repro.errors import SimulationError

if TYPE_CHECKING:  # spec imports METRICS from here; avoid the cycle
    from repro.api.spec import Cell, ExperimentSpec

# a metric maps one result object (OpenSystemResult /
# FleetOpenSystemResult) to one float
MetricFn = Callable[[Any], float]
CellResult = Tuple["Cell", Any]

# name -> extractor over OpenSystemResult / FleetOpenSystemResult;
# registration order is report order.
METRICS: Registry[MetricFn] = Registry("metric")


def register_metric(name: str, extractor: MetricFn,
                    replace: bool = False) -> MetricFn:
    """Register a result-to-float extractor under ``name``; specs can
    then select it and ``ResultSet`` reports it like any built-in."""
    if not callable(extractor):
        raise SimulationError(
            "metric extractors must be callable, got {!r}".format(
                type(extractor).__name__))
    METRICS.register(name, extractor, replace=replace)
    return extractor


def unregister_metric(name: str) -> None:
    """Remove a registered metric (tests clean up their toys)."""
    METRICS.unregister(name)


def metric_names() -> Tuple[str, ...]:
    """All selectable metric names, in report order."""
    return METRICS.names()


def metric_value(name: str, result: object) -> float:
    """One metric of one result, by registry name."""
    return float(METRICS.from_name(name)(result))


def validate_result_surface(result: object,
                            metrics: Sequence[str]) -> bool:
    """True when every named metric is computable from ``result``.

    The cached-result round-trip guard: a pickle written by an older
    result class — or a truncated/foreign file that still unpickles —
    is rejected here and recomputed, instead of failing mid-report long
    after the cache hit.
    """
    try:
        for name in metrics:
            metric_value(name, result)
    except Exception:
        return False
    return True


register_metric("antt", lambda r: r.antt)
register_metric("stp", lambda r: r.stp)
register_metric("unfairness", lambda r: r.unfairness)
register_metric("mean_turnaround", lambda r: r.mean_turnaround)
register_metric("mean_queueing_delay", lambda r: r.mean_queueing_delay)
register_metric("makespan", lambda r: r.makespan)
register_metric("request_throughput", lambda r: r.request_throughput)
register_metric("p50_slowdown", lambda r: r.slowdown_tails.p50)
register_metric("p95_slowdown", lambda r: r.slowdown_tails.p95)
register_metric("p99_slowdown", lambda r: r.slowdown_tails.p99)
register_metric("max_slowdown", lambda r: r.slowdown_tails.max)
register_metric("max_over_mean_slowdown",
                lambda r: r.slowdown_tails.max_over_mean)
register_metric("p99_queueing_delay", lambda r: r.queueing_tails.p99)

# attribution-plane metrics: scalar reductions of the fairness audit a
# ledger-attached run carries as ``result.attribution`` (the full
# victim x aggressor matrix renders via harness.report.attribution_table).
# Specs selecting these must set ``attribution: true`` — a result from a
# default run has no attribution report and the extractor raises.
ATTRIBUTION_METRICS = ("tenant_occupancy", "induced_delay_matrix",
                       "attribution_summary")

register_metric("tenant_occupancy",
                lambda r: r.attribution.tenant_occupancy)
register_metric("induced_delay_matrix",
                lambda r: r.attribution.max_cross_tenant_induced_p99)
register_metric("attribution_summary",
                lambda r: r.attribution.cross_tenant_induced_share)


class ResultSet:
    """All ``(cell, result)`` pairs of one spec run, in grid order."""

    def __init__(self, spec: "ExperimentSpec",
                 cells: Iterable[CellResult]) -> None:
        self.spec = spec
        self.cells: List[CellResult] = list(cells)

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self) -> Iterator[CellResult]:
        return iter(self.cells)

    # -- selection -----------------------------------------------------------

    def select(self, **criteria: object) -> List[CellResult]:
        """Every ``(cell, result)`` whose cell matches ``criteria``."""
        return [(cell, result) for cell, result in self.cells
                if cell.matches(**criteria)]

    def get(self, **criteria: object) -> Any:
        """The one result matching ``criteria`` (error if 0 or many)."""
        matches = self.select(**criteria)
        if not matches:
            # summarise the grid instead of dumping every cell: large
            # grids would bury the actual criteria mismatch
            axes = {
                field: sorted({getattr(c, field) for c, _ in self.cells},
                              key=repr)
                for field in ("scheme", "load", "seed", "repetition",
                              "placement")
            }
            raise SimulationError(
                "no result cell matches {!r} among {} cells; grid axes: "
                "{}".format(criteria, len(self.cells), axes))
        if len(matches) > 1:
            raise SimulationError(
                "{} result cells match {!r}; narrow the criteria (e.g. "
                "scheme=, load=, seed=, repetition=, placement=)".format(
                    len(matches), criteria))
        return matches[0][1]

    # -- uniform metric accessors --------------------------------------------

    def metric(self, name: str, **criteria: object) -> float:
        """One registered metric of the single cell ``criteria`` selects."""
        return metric_value(name, self.get(**criteria))

    def antt(self, **criteria: object) -> float:
        return self.metric("antt", **criteria)

    def stp(self, **criteria: object) -> float:
        return self.metric("stp", **criteria)

    def unfairness(self, **criteria: object) -> float:
        return self.metric("unfairness", **criteria)

    def p99_slowdown(self, **criteria: object) -> float:
        return self.metric("p99_slowdown", **criteria)

    def slowdown_tails(self, **criteria: object) -> Any:
        """The full :class:`~repro.metrics.tails.TailSummary` of one cell."""
        return self.get(**criteria).slowdown_tails

    def queueing_tails(self, **criteria: object) -> Any:
        return self.get(**criteria).queueing_tails

    def records(self, **criteria: object) -> Any:
        """The per-request records of one cell (submission order)."""
        return self.get(**criteria).records

    # -- reporting -----------------------------------------------------------

    def rows(self,
             metrics: Optional[Sequence[str]] = None) -> List[List[Any]]:
        """One report row per cell: cell fields + the selected metrics."""
        names = tuple(metrics) if metrics is not None else self.spec.metrics
        rows: List[List[Any]] = []
        for cell, result in self.cells:
            row: List[Any] = [cell.scheme]
            if self.spec.is_fleet:
                row.append(cell.placement)
            row += [cell.load, cell.seed, cell.repetition]
            row += [metric_value(name, result) for name in names]
            rows.append(row)
        return rows

    def headers(self,
                metrics: Optional[Sequence[str]] = None) -> List[str]:
        """Column headers matching :meth:`rows`."""
        names = tuple(metrics) if metrics is not None else self.spec.metrics
        head = ["scheme"]
        if self.spec.is_fleet:
            head.append("placement")
        return head + ["load", "seed", "rep", *names]

    def to_dict(self) -> Dict[str, Any]:
        """Canonical plain-data form: the spec plus per-cell metrics."""
        return {
            "spec": self.spec.to_dict(),
            "cells": [
                {"cell": cell.to_dict(),
                 "metrics": {name: metric_value(name, result)
                             for name in self.spec.metrics}}
                for cell, result in self.cells
            ],
        }

    def to_json(self) -> str:
        """Deterministic JSON: same spec + same streams => identical
        bytes (floats serialize via their shortest round-trip repr)."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    def __repr__(self) -> str:
        return "<ResultSet {} cells of {!r}/{} schemes>".format(
            len(self.cells), self.spec.scenario, len(self.spec.schemes))
