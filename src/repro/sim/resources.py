"""Per-compute-unit occupancy accounting."""

from __future__ import annotations

from repro.errors import SimulationError


class CUState:
    """Mutable occupancy state of one compute unit."""

    __slots__ = ("index", "threads_free", "registers_free", "local_mem_free",
                 "slots_free")

    def __init__(self, index, device):
        self.index = index
        self.threads_free = device.max_threads_per_cu
        self.registers_free = device.registers_per_cu
        self.local_mem_free = device.local_mem_per_cu
        self.slots_free = device.max_wgs_per_cu

    def fits(self, spec):
        """Can one more WG of ``spec`` become resident here?"""
        return (self.slots_free >= 1
                and self.threads_free >= spec.wg_threads
                and self.registers_free >= spec.registers_per_group
                and self.local_mem_free >= spec.local_mem_per_wg)

    def admit(self, spec):
        if not self.fits(spec):
            raise SimulationError("admitting WG that does not fit on CU {}"
                                  .format(self.index))
        self.threads_free -= spec.wg_threads
        self.registers_free -= spec.registers_per_group
        self.local_mem_free -= spec.local_mem_per_wg
        self.slots_free -= 1

    def release(self, spec):
        self.threads_free += spec.wg_threads
        self.registers_free += spec.registers_per_group
        self.local_mem_free += spec.local_mem_per_wg
        self.slots_free += 1

    def __repr__(self):
        return "<CU{} thr={} slots={}>".format(
            self.index, self.threads_free, self.slots_free)


def max_resident_groups(spec, device):
    """Device-wide cap on concurrently resident WGs of ``spec``."""
    per_cu = min(
        device.max_wgs_per_cu,
        device.max_threads_per_cu // spec.wg_threads if spec.wg_threads else 0,
        (device.registers_per_cu // spec.registers_per_group
         if spec.registers_per_group else device.max_wgs_per_cu),
        (device.local_mem_per_cu // spec.local_mem_per_wg
         if spec.local_mem_per_wg else device.max_wgs_per_cu),
    )
    return max(0, per_cu) * device.num_cus
