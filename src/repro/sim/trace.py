"""Execution traces: per-kernel intervals and overlap computation."""

from __future__ import annotations

from repro.errors import SimulationError
from repro.metrics.overlap import execution_overlap as _overlap


class KernelInterval:
    """One kernel execution's lifetime within a simulated batch."""

    __slots__ = ("name", "start", "finish", "dispatch_done", "total_work",
                 "arrival")

    def __init__(self, name, start, finish, dispatch_done, total_work,
                 arrival=0.0):
        self.name = name
        self.start = start
        self.finish = finish
        self.dispatch_done = dispatch_done
        self.total_work = total_work
        # open-system runs stamp when the request entered the system;
        # closed batches submit everything at t=0.
        self.arrival = arrival

    @property
    def turnaround(self):
        """Completion time measured from the request's submission."""
        return self.finish - self.arrival

    @property
    def queueing_delay(self):
        """Time between submission and the first work group dispatching."""
        return self.start - self.arrival

    @property
    def duration(self):
        return self.finish - self.start

    def __repr__(self):
        return "<KernelInterval {} [{:.6f}, {:.6f}]>".format(
            self.name, self.start, self.finish)


class ExecutionTrace:
    """Result of simulating one batch of kernel execution requests."""

    def __init__(self, intervals, device_name, mode):
        if not intervals:
            raise SimulationError("empty execution trace")
        self.intervals = intervals
        self.device_name = device_name
        self.mode = mode

    @property
    def makespan(self):
        """Time for all kernels to execute (the throughput denominator)."""
        return max(iv.finish for iv in self.intervals)

    @property
    def turnarounds(self):
        return [iv.turnaround for iv in self.intervals]

    @property
    def queueing_delays(self):
        return [iv.queueing_delay for iv in self.intervals]

    def execution_overlap(self):
        """Paper §7.4: ``O = T(c) / T(t)`` (delegates to
        :func:`repro.metrics.overlap.execution_overlap`)."""
        return _overlap([(iv.start, iv.finish) for iv in self.intervals])

    def __repr__(self):
        return "<ExecutionTrace {} kernels on {} ({})>".format(
            len(self.intervals), self.device_name, self.mode)
