"""Execution traces: per-kernel intervals and overlap computation."""

from __future__ import annotations

from repro.errors import SimulationError


class KernelInterval:
    """One kernel execution's lifetime within a simulated batch."""

    __slots__ = ("name", "start", "finish", "dispatch_done", "total_work")

    def __init__(self, name, start, finish, dispatch_done, total_work):
        self.name = name
        self.start = start
        self.finish = finish
        self.dispatch_done = dispatch_done
        self.total_work = total_work

    @property
    def turnaround(self):
        """Completion time measured from batch submission (t=0)."""
        return self.finish

    @property
    def duration(self):
        return self.finish - self.start

    def __repr__(self):
        return "<KernelInterval {} [{:.6f}, {:.6f}]>".format(
            self.name, self.start, self.finish)


class ExecutionTrace:
    """Result of simulating one batch of kernel execution requests."""

    def __init__(self, intervals, device_name, mode):
        if not intervals:
            raise SimulationError("empty execution trace")
        self.intervals = intervals
        self.device_name = device_name
        self.mode = mode

    @property
    def makespan(self):
        """Time for all kernels to execute (the throughput denominator)."""
        return max(iv.finish for iv in self.intervals)

    @property
    def turnarounds(self):
        return [iv.turnaround for iv in self.intervals]

    def execution_overlap(self):
        """Paper §7.4: ``O = T(c) / T(t)``.

        ``T(t)`` is the total time the accelerator executes at least one
        kernel; ``T(c)`` the time during which *all* kernels co-execute.
        """
        total = _union_measure([(iv.start, iv.finish) for iv in self.intervals])
        if total <= 0:
            return 0.0
        co_start = max(iv.start for iv in self.intervals)
        co_finish = min(iv.finish for iv in self.intervals)
        co = max(0.0, co_finish - co_start)
        return co / total

    def __repr__(self):
        return "<ExecutionTrace {} kernels on {} ({})>".format(
            len(self.intervals), self.device_name, self.mode)


def _union_measure(intervals):
    """Total length of the union of [start, end) intervals."""
    measure = 0.0
    cursor = None
    for start, end in sorted(intervals):
        if cursor is None or start > cursor:
            measure += end - start
            cursor = end
        elif end > cursor:
            measure += end - cursor
            cursor = end
    return measure
