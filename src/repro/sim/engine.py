"""Minimal discrete-event engine: a time-ordered event queue."""

from __future__ import annotations

import heapq
import itertools
import math

from repro.errors import SimulationError


class EventQueue:
    """Priority queue of (time, payload) events with stable FIFO ties.

    Heap entries are ``(time, seq, payload)`` where ``seq`` is a monotonic
    insertion counter: equal-time events pop in insertion order and the
    payload itself is never compared — payloads of any (mutually
    non-comparable) type are safe.  ``push`` rejects NaN times outright:
    NaN compares false against everything, so a NaN entry would neither
    raise nor order correctly but silently scramble the heap invariant.
    """

    def __init__(self):
        self._heap = []
        self._counter = itertools.count()
        self.now = 0.0

    def push(self, time, payload):
        if math.isnan(time):
            raise SimulationError("event scheduled at NaN time")
        if time < self.now - 1e-12:
            raise SimulationError(
                "event scheduled in the past ({} < {})".format(time, self.now))
        heapq.heappush(self._heap, (time, next(self._counter), payload))

    def pop(self):
        """Advance to and return the next event as ``(time, payload)``."""
        if not self._heap:
            raise SimulationError("pop from empty event queue")
        time, _seq, payload = heapq.heappop(self._heap)
        self.now = max(self.now, time)
        return time, payload

    def __len__(self):
        return len(self._heap)

    def __bool__(self):
        return bool(self._heap)
