"""Minimal discrete-event engine: a time-ordered event queue."""

from __future__ import annotations

import heapq
import itertools
import math

from repro.errors import SimulationError

# Tie-breaking tier of arrival events: below the default tier, so an
# arrival pushed mid-run pops before any same-instant completion event —
# the order a batch run (all arrivals pushed at setup, before any other
# event) produces by insertion counter alone.
ARRIVAL_TIER = 0


class EventQueue:
    """Priority queue of (time, payload) events with stable FIFO ties.

    Heap entries are ``(time, tier, seq, payload)`` where ``seq`` is a
    monotonic insertion counter: equal-time, equal-tier events pop in
    insertion order and the payload itself is never compared — payloads
    of any (mutually non-comparable) type are safe.  ``tier`` breaks
    exact-time ties *across* insertion order: arrival events are pushed
    at :data:`ARRIVAL_TIER` so a request submitted mid-simulation (the
    incremental open-run interface) still pops before any same-time
    completion — exactly the order a batch ``run_open`` produces, where
    every arrival is pushed at setup and therefore carries a lower
    counter than any in-flight event.  ``push`` rejects NaN times
    outright: NaN compares false against everything, so a NaN entry
    would neither raise nor order correctly but silently scramble the
    heap invariant.
    """

    def __init__(self):
        self._heap = []
        self._counter = itertools.count()
        self.now = 0.0

    def push(self, time, payload, tier=1):
        if math.isnan(time):
            raise SimulationError("event scheduled at NaN time")
        if time < self.now - 1e-12:
            raise SimulationError(
                "event scheduled in the past ({} < {})".format(time, self.now))
        heapq.heappush(self._heap, (time, tier, next(self._counter), payload))

    def pop(self):
        """Advance to and return the next event as ``(time, payload)``."""
        if not self._heap:
            raise SimulationError("pop from empty event queue")
        time, _tier, _seq, payload = heapq.heappop(self._heap)
        self.now = max(self.now, time)
        return time, payload

    def peek_time(self):
        """The next event's time without popping (None when empty)."""
        return self._heap[0][0] if self._heap else None

    def __len__(self):
        return len(self._heap)

    def __bool__(self):
        return bool(self._heap)
