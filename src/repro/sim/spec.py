"""Kernel execution specifications consumed by the timing simulator.

A :class:`KernelExecSpec` fully describes one kernel execution request on
one device: the per-virtual-group compute costs (drawn deterministically
from the kernel's profile), the per-WG resource demands, and — when the
request was scheduled by accelOS or Elastic Kernels — the physical group
count, dequeue chunk and scheduling overhead.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError

# Cost of one scheduling operation on the virtual-group queue, in seconds.
# Each dequeue is an atomic RMW to device memory (~1 us of cross-CU latency)
# plus two work-group barriers in the scheduling loop that every work item
# pays; together on the order of several microseconds per operation, which
# is exactly why §6.4 amortises dequeues for short kernels.
SCHED_OP_OVERHEAD = 2.0e-6


class ExecutionMode:
    HARDWARE = "hardware"  # unmodified kernel, firmware scheduler
    ACCELOS = "accelos"    # dyn_sched kernel: shared-queue dequeue loop
    ELASTIC = "elastic"    # Elastic Kernels: static pre-assignment


class KernelExecSpec:
    """One kernel execution request, ready for simulation."""

    def __init__(self, name, wg_threads, wg_costs, mem_rate_per_wg,
                 registers_per_thread, local_mem_per_wg,
                 mode=ExecutionMode.HARDWARE, physical_groups=None,
                 chunk=1, sched_overhead=SCHED_OP_OVERHEAD,
                 sat_occupancy=1.0, arrival_time=0.0):
        wg_costs = np.asarray(wg_costs, dtype=np.float64)
        if wg_costs.ndim != 1 or wg_costs.size == 0:
            raise SimulationError("wg_costs must be a non-empty 1-D array")
        if (wg_costs <= 0).any():
            raise SimulationError("wg costs must be positive")
        self.name = name
        self.wg_threads = int(wg_threads)
        self.wg_costs = wg_costs
        self.mem_rate_per_wg = float(mem_rate_per_wg)  # bytes/s demanded
        self.registers_per_thread = int(registers_per_thread)
        self.local_mem_per_wg = int(local_mem_per_wg)
        self.mode = mode
        self.physical_groups = physical_groups
        self.chunk = int(chunk)
        self.sched_overhead = float(sched_overhead)
        # Occupancy saturation: the fraction of a CU's maximum residency at
        # which this kernel reaches peak per-CU throughput.  GPUs are
        # strongly sub-linear in occupancy — compute-bound kernels with high
        # ILP saturate early (small value), latency-bound kernels need full
        # occupancy (1.0).  WG cost arrays are expressed at FULL occupancy;
        # at lower residency each WG runs up to 1/sat_occupancy faster.
        if not 0.0 < sat_occupancy <= 1.0:
            raise SimulationError("sat_occupancy must be in (0, 1]")
        self.sat_occupancy = float(sat_occupancy)
        # When the request enters the system; 0.0 for closed batches, set by
        # the open-system path (GPUSimulator.run_open) for streaming arrivals.
        if arrival_time < 0:
            raise SimulationError("arrival_time must be non-negative")
        self.arrival_time = float(arrival_time)
        if mode != ExecutionMode.HARDWARE and not physical_groups:
            raise SimulationError(
                "{} execution needs a physical group count".format(mode))

    @property
    def total_groups(self):
        return int(self.wg_costs.size)

    @property
    def total_work(self):
        return float(self.wg_costs.sum())

    @property
    def registers_per_group(self):
        return self.registers_per_thread * self.wg_threads

    def scaled(self, cost_scale):
        """A copy with WG costs scaled (device speed normalisation)."""
        return KernelExecSpec(
            self.name, self.wg_threads, self.wg_costs * cost_scale,
            self.mem_rate_per_wg, self.registers_per_thread,
            self.local_mem_per_wg, self.mode, self.physical_groups,
            self.chunk, self.sched_overhead, self.sat_occupancy,
            self.arrival_time)

    def with_mode(self, mode, physical_groups=None, chunk=1,
                  sched_overhead=SCHED_OP_OVERHEAD):
        return KernelExecSpec(
            self.name, self.wg_threads, self.wg_costs,
            self.mem_rate_per_wg, self.registers_per_thread,
            self.local_mem_per_wg, mode, physical_groups, chunk,
            sched_overhead, self.sat_occupancy, self.arrival_time)

    def with_arrival(self, arrival_time):
        """A copy entering the system at ``arrival_time`` seconds."""
        return KernelExecSpec(
            self.name, self.wg_threads, self.wg_costs,
            self.mem_rate_per_wg, self.registers_per_thread,
            self.local_mem_per_wg, self.mode, self.physical_groups,
            self.chunk, self.sched_overhead, self.sat_occupancy,
            arrival_time)

    def __repr__(self):
        return ("<KernelExecSpec {} ({} WGs x {} thr, mode={})>"
                .format(self.name, self.total_groups, self.wg_threads,
                        self.mode))
