"""The GPU timing simulator.

Three execution modes over one event-driven core:

* **hardware** — unmodified kernels under the firmware scheduler.  Work
  groups are statically assigned round-robin to compute units (paper
  fig. 3a) and dispatch in strict kernel order subject to the device's
  policy (FIFO drain-overlap or exclusive).
* **accelos** — each kernel launches its reduced set of physical work
  groups; every physical group loops, atomically drawing chunks of virtual
  groups from the kernel's shared Virtual NDRange (fig. 3b).  Each dequeue
  costs :data:`~repro.sim.spec.SCHED_OP_OVERHEAD`, amortised by §6.4
  chunking.  Resources stay bound to the kernel until it finishes (§2.5).
* **elastic** — Elastic Kernels: physical groups receive a *static*
  pre-assignment of virtual groups (strided), so load imbalance is frozen
  at launch; no dequeue overhead, no adaptation.

Two pieces of hardware physics the evaluation depends on:

* **Sub-linear occupancy scaling.**  WG costs are expressed at full per-CU
  residency; with ``k`` co-resident WGs of the same kernel on a CU, each WG
  runs at ``occ = max(k, sat*k_max) / k_max`` of its full-occupancy cost
  (saturating throughput at ``sat`` of maximum occupancy).  This is why
  space sharing pays off: a kernel at 1/K residency is *not* K times
  slower.
* **Bandwidth roofline.**  Every resident WG demands memory bandwidth at
  its occupancy-corrected rate; oversubscription stretches in-flight WG
  costs proportionally (applied at dispatch).

WG costs in specs are for the reference device (K20m CU); other devices
scale them by relative per-CU throughput.
"""

from __future__ import annotations

from collections import deque

from repro.errors import SimulationError
from repro.sim.contention import BandwidthTracker
from repro.sim.engine import EventQueue
from repro.sim.hw_sched import scheduler_for
from repro.sim.resources import CUState
from repro.sim.spec import ExecutionMode
from repro.sim.trace import ExecutionTrace, KernelInterval

# K20m per-CU throughput; spec costs are expressed against this.
_REFERENCE_CU_RATE = 384 * 706.0

# Firmware/driver handoff latency between consecutive kernels' dispatch
# windows (grid setup, channel switch).  This is why even two small kernels
# that would fit together mostly serialise on the standard stack.
KERNEL_HANDOFF_LATENCY = 90e-6


def device_cost_scale(device):
    """Multiplier turning reference WG costs into this device's costs."""
    rate = device.flops_per_cycle_per_cu * device.clock_mhz
    return _REFERENCE_CU_RATE / rate


def per_cu_residency_cap(spec, device):
    """Maximum WGs of ``spec`` resident on one CU."""
    cap = min(
        device.max_wgs_per_cu,
        device.max_threads_per_cu // spec.wg_threads if spec.wg_threads else 0,
        (device.registers_per_cu // spec.registers_per_group
         if spec.registers_per_group else device.max_wgs_per_cu),
        (device.local_mem_per_cu // spec.local_mem_per_wg
         if spec.local_mem_per_wg else device.max_wgs_per_cu),
    )
    return max(1, cap)


class _KernelRun:
    """Mutable per-kernel simulation state."""

    def __init__(self, index, spec, device, cost_scale):
        self.index = index
        self.spec = spec
        self.costs = spec.wg_costs * cost_scale
        self.total = spec.total_groups
        self.k_max = per_cu_residency_cap(spec, device)
        self.completed = 0
        self.resident = 0
        self.start_time = None
        self.finish_time = None
        self.dispatch_done_time = None
        # hardware mode: static round-robin CU queues of WG indices
        self.cu_queues = None
        self.pending_count = self.total
        self.cu_resident = {}
        # software modes
        self.next_vgroup = 0
        self.slots_to_place = 0
        self.live_slots = 0
        self.slot_assignments = None   # elastic: per-slot deques
        self.slot_occ = {}             # slot index -> occupancy factor
        self.slot_rate = {}            # slot index -> bandwidth demand

    @property
    def finished(self):
        return self.completed >= self.total

    def mode_done(self):
        """For accelOS runs: is the shared virtual-group queue drained?
        (A pending slot whose queue is empty never needs placement.)"""
        if self.spec.mode == ExecutionMode.ACCELOS:
            return self.next_vgroup >= self.total
        return False

    def occupancy_factor(self, k):
        """Per-WG cost factor with ``k`` co-resident WGs on a CU."""
        k_sat = self.spec.sat_occupancy * self.k_max
        return max(k, k_sat) / self.k_max

    def mark_start(self, now):
        if self.start_time is None:
            self.start_time = now

    def mark_dispatch_done(self, now):
        if self.dispatch_done_time is None:
            self.dispatch_done_time = now


class GPUSimulator:
    """Simulates one batch of kernel execution requests on one device.

    ``rebalance`` enables the extension the paper lists as future work
    (§2.5 admits a kernel "cannot leverage additional resources that may be
    released if other kernel executions terminate first"): when a software-
    scheduled slot retires, the freed capacity is re-granted as extra slots
    to co-scheduled kernels that still have undrained virtual-group queues.
    Off by default — the paper's accelOS binds allocations for a kernel's
    lifetime, and the evaluation benches quantify what that costs.
    """

    def __init__(self, device, hardware_scheduler=None, rebalance=False):
        self.device = device
        self.hardware_scheduler = hardware_scheduler or scheduler_for(device)
        self.rebalance = rebalance

    # -- public -----------------------------------------------------------

    def run(self, specs, cost_jitter=None):
        """Simulate the batch; all specs must share one execution mode.

        ``cost_jitter`` optionally scales each kernel's costs by a per-run
        factor (array of len(specs)), modelling run-to-run system noise for
        the paper's 20-repetition averaging.
        """
        if not specs:
            raise SimulationError("empty batch")
        modes = {s.mode for s in specs}
        if len(modes) > 1:
            raise SimulationError("mixed execution modes in one batch")
        mode = modes.pop()

        scale = device_cost_scale(self.device)
        runs = []
        for i, spec in enumerate(specs):
            jitter = 1.0 if cost_jitter is None else float(cost_jitter[i])
            runs.append(_KernelRun(i, spec, self.device, scale * jitter))

        self.events = EventQueue()
        self.cus = [CUState(i, self.device) for i in range(self.device.num_cus)]
        self.bandwidth = BandwidthTracker(self.device)
        self.runs = runs

        if mode == ExecutionMode.HARDWARE:
            self._run_hardware()
        else:
            self._run_software(mode)

        intervals = []
        for run in runs:
            if run.finish_time is None:
                raise SimulationError(
                    "kernel {} never finished (resources too small?)".format(
                        run.spec.name))
            intervals.append(KernelInterval(
                run.spec.name, run.start_time, run.finish_time,
                run.dispatch_done_time, float(run.costs.sum())))
        return ExecutionTrace(intervals, self.device.name, mode)

    # -- hardware mode --------------------------------------------------------

    def _run_hardware(self):
        num_cus = self.device.num_cus
        for run in self.runs:
            run.cu_queues = [deque() for _ in range(num_cus)]
            for wg in range(run.total):
                run.cu_queues[wg % num_cus].append(wg)

        for index, run in enumerate(self.runs):
            run.dispatch_ready_time = 0.0 if index == 0 else None

        self._hw_dispatch()
        while self.events:
            _, payload = self.events.pop()
            if payload is not None:
                run, cu, wg, rate = payload
                self._complete_hw_wg(run, cu, rate)
            self._hw_dispatch()

    def _hw_dispatch(self):
        now = self.events.now
        for index, run in enumerate(self.runs):
            if run.pending_count == 0:
                continue
            if not self.hardware_scheduler.eligible(index, self.runs):
                break  # kernel order is strict; later kernels are blocked too
            if run.dispatch_ready_time is None:
                # this kernel just became eligible: the firmware needs a
                # handoff window before its grid starts dispatching
                run.dispatch_ready_time = now + KERNEL_HANDOFF_LATENCY
                self.events.push(run.dispatch_ready_time, None)
                break
            if now + 1e-15 < run.dispatch_ready_time:
                break
            for cu in self.cus:
                queue = run.cu_queues[cu.index]
                while queue and cu.fits(run.spec):
                    wg = queue.popleft()
                    self._start_hw_wg(run, cu, wg, now)
            if run.pending_count > 0:
                break  # this kernel still owns the dispatch window

    def _start_hw_wg(self, run, cu, wg, now):
        cu.admit(run.spec)
        k = run.cu_resident.get(cu.index, 0) + 1
        run.cu_resident[cu.index] = k
        # Rate the WG at the kernel's steady-state residency (bounded by how
        # much work the kernel has at all): WG durations in this model are
        # lifetime averages, so neither ramp-up nor drain-tail instants get
        # a transient speed boost — the software-scheduled modes rate their
        # slots the same way, keeping the comparison symmetric.
        k_steady = min(run.k_max, -(-run.total // len(self.cus)))
        occ = run.occupancy_factor(max(k, k_steady))
        rate = run.spec.mem_rate_per_wg / occ
        stretch = self.bandwidth.stretch(rate)
        self.bandwidth.add_rate(rate)
        run.resident += 1
        run.pending_count -= 1
        run.mark_start(now)
        if run.pending_count == 0:
            run.mark_dispatch_done(now)
        cost = float(run.costs[wg]) * occ * stretch
        self.events.push(now + cost, (run, cu, wg, rate))

    def _complete_hw_wg(self, run, cu, rate):
        cu.release(run.spec)
        self.bandwidth.remove_rate(rate)
        run.cu_resident[cu.index] -= 1
        run.resident -= 1
        run.completed += 1
        if run.finished:
            run.finish_time = self.events.now

    # -- software-scheduled modes (accelOS / Elastic Kernels) ---------------------

    def _run_software(self, mode):
        # All kernels are admitted together: the sharing algorithm (or EK's
        # static merge) guarantees the combined allocation fits the device.
        for run in self.runs:
            run.slots_to_place = run.spec.physical_groups
            run.mark_start(0.0)
            if mode == ExecutionMode.ELASTIC:
                slots = run.spec.physical_groups
                run.slot_assignments = [deque(range(s, run.total, slots))
                                        for s in range(slots)]

        self._pending_slots = deque()
        self._software_mode = mode
        self._place_software_slots(mode)
        while self.events:
            _, (run, cu, slot_index, done) = self.events.pop()
            run.completed += done
            self._draw_chunk(run, cu, mode, slot_index)

        for run in self.runs:
            if run.finish_time is None and run.total == 0:
                run.finish_time = 0.0
        if any(run.finish_time is None for run in self.runs):
            raise SimulationError(
                "software-scheduled batch deadlocked: slots could never be "
                "placed (allocation exceeds per-CU packing)")

    def _place_software_slots(self, mode):
        """Place physical WGs on CUs, interleaved across kernels.

        The device-level allocation is feasible by construction, but per-CU
        packing can fragment; slots that do not fit immediately queue and
        are placed as other slots retire — the same waiting non-resident
        work groups experience on hardware.  Round-robin interleaving makes
        sure every kernel gets resident slots from the start.

        Placement is two-phase: admit everything first, then compute each
        slot's occupancy factor from the final per-CU residency, then draw
        the first chunks — so co-placed slots of one kernel see a
        consistent occupancy.
        """
        placements = []  # (run, slot_index, cu)
        max_slots = max((run.slots_to_place for run in self.runs), default=0)
        for slot_index in range(max_slots):
            for run in self.runs:
                if slot_index >= run.slots_to_place:
                    continue
                cu = self._freest_cu(run.spec)
                if cu is None:
                    self._pending_slots.append((run, slot_index))
                    continue
                cu.admit(run.spec)
                run.cu_resident[cu.index] = run.cu_resident.get(cu.index, 0) + 1
                run.resident += 1
                run.live_slots += 1
                placements.append((run, slot_index, cu))
        for run in self.runs:
            run.slots_to_place = 0

        for run, slot_index, cu in placements:
            self._activate_slot(run, slot_index, cu)
        for run, slot_index, cu in placements:
            self._draw_chunk(run, cu, mode, slot_index)

    def _activate_slot(self, run, slot_index, cu):
        occ = run.occupancy_factor(run.cu_resident[cu.index])
        rate = run.spec.mem_rate_per_wg / occ
        run.slot_occ[slot_index] = occ
        run.slot_rate[slot_index] = rate
        self.bandwidth.add_rate(rate)

    def _try_place_slot(self, run, slot_index, mode):
        cu = self._freest_cu(run.spec)
        if cu is None:
            return False
        cu.admit(run.spec)
        run.cu_resident[cu.index] = run.cu_resident.get(cu.index, 0) + 1
        run.resident += 1
        run.live_slots += 1
        self._activate_slot(run, slot_index, cu)
        self._draw_chunk(run, cu, mode, slot_index)
        return True

    def _place_pending_slots(self):
        if not self._pending_slots:
            return
        still_pending = deque()
        while self._pending_slots:
            run, slot_index = self._pending_slots.popleft()
            if run.mode_done():
                continue
            if not self._try_place_slot(run, slot_index, self._software_mode):
                still_pending.append((run, slot_index))
        self._pending_slots = still_pending

    def _freest_cu(self, spec):
        best = None
        for cu in self.cus:
            if cu.fits(spec):
                if best is None or cu.threads_free > best.threads_free:
                    best = cu
        return best

    def _draw_chunk(self, run, cu, mode, slot_index):
        """A slot is idle: pull its next chunk of virtual groups (or retire)."""
        now = self.events.now
        if mode == ExecutionMode.ACCELOS:
            base = run.next_vgroup
            if base >= run.total:
                self._retire_slot(run, cu, slot_index)
                return
            end = min(base + run.spec.chunk, run.total)
            run.next_vgroup = end
            work = float(run.costs[base:end].sum())
            overhead = run.spec.sched_overhead
            done = end - base
        else:  # ELASTIC: frozen per-slot assignment, no dequeue cost
            queue = run.slot_assignments[slot_index]
            if not queue:
                self._retire_slot(run, cu, slot_index)
                return
            wg = queue.popleft()
            work = float(run.costs[wg])
            overhead = 0.0
            done = 1
        occ = run.slot_occ[slot_index]
        stretch = self.bandwidth.stretch_resident(run.slot_rate[slot_index])
        cost = work * occ * stretch + overhead
        self.events.push(now + cost, (run, cu, slot_index, done))

    def _retire_slot(self, run, cu, slot_index):
        cu.release(run.spec)
        self.bandwidth.remove_rate(run.slot_rate[slot_index])
        run.cu_resident[cu.index] -= 1
        run.resident -= 1
        run.live_slots -= 1
        self._place_pending_slots()
        if self.rebalance:
            self._grant_freed_capacity()
        if run.live_slots == 0 and not self._has_pending_work(run):
            run.finish_time = self.events.now
            run.mark_dispatch_done(self.events.now)

    def _grant_freed_capacity(self):
        """Future-work extension: hand freed capacity to unfinished kernels.

        Grants one extra slot per call to the co-scheduled accelOS kernel
        with the most remaining virtual groups that still fits — a minimal
        dynamic re-allocation policy on top of the paper's design.
        """
        candidates = [
            run for run in self.runs
            if run.spec.mode == ExecutionMode.ACCELOS and not run.mode_done()
            and run.next_vgroup + run.live_slots * run.spec.chunk
            < run.total
        ]
        if not candidates:
            return
        starved = max(candidates,
                      key=lambda r: r.total - r.next_vgroup)
        slot_index = len(starved.slot_occ)
        self._try_place_slot(starved, slot_index, self._software_mode)

    def _has_pending_work(self, run):
        return any(pending_run is run and not pending_run.mode_done()
                   for pending_run, _ in self._pending_slots)
