"""The GPU timing simulator.

Three execution modes over one event-driven core:

* **hardware** — unmodified kernels under the firmware scheduler.  Work
  groups are statically assigned round-robin to compute units (paper
  fig. 3a) and dispatch in strict kernel order subject to the device's
  policy (FIFO drain-overlap or exclusive).
* **accelos** — each kernel launches its reduced set of physical work
  groups; every physical group loops, atomically drawing chunks of virtual
  groups from the kernel's shared Virtual NDRange (fig. 3b).  Each dequeue
  costs :data:`~repro.sim.spec.SCHED_OP_OVERHEAD`, amortised by §6.4
  chunking.  Resources stay bound to the kernel until it finishes (§2.5).
* **elastic** — Elastic Kernels: physical groups receive a *static*
  pre-assignment of virtual groups (strided), so load imbalance is frozen
  at launch; no dequeue overhead, no adaptation.

Batches come in two shapes:

* :meth:`GPUSimulator.run` — a **closed batch**: every request is submitted
  at t=0 and the simulation drains it.
* :meth:`GPUSimulator.run_open` — an **open system**: requests enter the
  event loop at per-spec ``arrival_time``s; for software-scheduled kernels
  the sharing policy is re-run over the currently-active set on every
  arrival and completion (the proper re-allocation path that the closed
  batch ``rebalance`` flag only approximates).

Two pieces of hardware physics the evaluation depends on:

* **Sub-linear occupancy scaling.**  WG costs are expressed at full per-CU
  residency; with ``k`` co-resident WGs of the same kernel on a CU, each WG
  runs at ``occ = max(k, sat*k_max) / k_max`` of its full-occupancy cost
  (saturating throughput at ``sat`` of maximum occupancy).  This is why
  space sharing pays off: a kernel at 1/K residency is *not* K times
  slower.
* **Bandwidth roofline.**  Every resident WG demands memory bandwidth at
  its occupancy-corrected rate; oversubscription stretches in-flight WG
  costs proportionally (applied at dispatch).

WG costs in specs are for the reference device (K20m CU); other devices
scale them by relative per-CU throughput.

**Inputs:** a batch of :class:`~repro.sim.spec.KernelExecSpec` (one
execution mode per batch) plus, for accelOS open-system runs, an
``allocator(active_specs) -> [groups]`` callback wrapping the §3 sharing
algorithm.  **Outputs:** an :class:`~repro.sim.trace.ExecutionTrace` of
per-kernel intervals.  **Invariants:** one simulator simulates one device
(fleets compose simulators — :mod:`repro.sim.fleet`); simulation is
deterministic (no RNG; noise enters only through explicit ``cost_jitter``);
in open-system accelOS runs the allocator is re-run on *every* admission
and *every* request completion, allocations grow immediately and shrink
lazily at chunk boundaries, and resident work groups are never preempted
mid-chunk; every admitted request finishes or the run raises.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager

from repro.errors import SimulationError
from repro.sim.contention import BandwidthTracker
from repro.sim.engine import ARRIVAL_TIER, EventQueue
from repro.sim.hw_sched import scheduler_for
from repro.sim.resources import CUState
from repro.sim.spec import ExecutionMode
from repro.sim.trace import ExecutionTrace, KernelInterval

# K20m per-CU throughput; spec costs are expressed against this.
_REFERENCE_CU_RATE = 384 * 706.0

# Firmware/driver handoff latency between consecutive kernels' dispatch
# windows (grid setup, channel switch).  This is why even two small kernels
# that would fit together mostly serialise on the standard stack.
KERNEL_HANDOFF_LATENCY = 90e-6


# Engine fast path: incremental admission totals, the live-active run set,
# per-run pending-slot counters and the chunk-cost caches.  The fast path is
# bit-identical to the reference scans by construction (every structure is a
# running copy of what the reference path recomputes per event) and is pinned
# by the A/B suite (tests/test_engine_fastpath.py) and benchmarks/
# bench_engine.py.  The module default exists so A/B harnesses can flip whole
# stacks — sessions, fleets, allocators — without threading a flag through
# every constructor.
_FAST_PATH_DEFAULT = True


def fast_path_enabled():
    """The module-wide default for :class:`GPUSimulator` ``fast_path``."""
    return _FAST_PATH_DEFAULT


def set_fast_path(enabled):
    """Set the fast-path default; returns the previous value."""
    global _FAST_PATH_DEFAULT
    previous = _FAST_PATH_DEFAULT
    _FAST_PATH_DEFAULT = bool(enabled)
    return previous


@contextmanager
def reference_path():
    """Run the enclosed block on the unoptimised reference engine path.

    Simulators and allocators *created inside* the block use the original
    per-event scans (and no allocation memo) — the A/B baseline for
    tests/test_engine_fastpath.py and benchmarks/bench_engine.py.
    """
    previous = set_fast_path(False)
    try:
        yield
    finally:
        set_fast_path(previous)


def device_cost_scale(device):
    """Multiplier turning reference WG costs into this device's costs."""
    rate = device.flops_per_cycle_per_cu * device.clock_mhz
    return _REFERENCE_CU_RATE / rate


def per_cu_residency_cap(spec, device):
    """Maximum WGs of ``spec`` resident on one CU."""
    cap = min(
        device.max_wgs_per_cu,
        device.max_threads_per_cu // spec.wg_threads if spec.wg_threads else 0,
        (device.registers_per_cu // spec.registers_per_group
         if spec.registers_per_group else device.max_wgs_per_cu),
        (device.local_mem_per_cu // spec.local_mem_per_wg
         if spec.local_mem_per_wg else device.max_wgs_per_cu),
    )
    return max(1, cap)


class _KernelRun:
    """Mutable per-kernel simulation state."""

    def __init__(self, index, spec, device, cost_scale, costs=None,
                 chunk_sums=None):
        self.index = index
        self.spec = spec
        # ``costs``/``chunk_sums`` let the open-system fast path share one
        # scaled cost array (and its chunk-sum memo) across every run of
        # the same profile; both default to per-run state.
        self.costs = spec.wg_costs * cost_scale if costs is None else costs
        self.chunk_sums = chunk_sums   # {(base, end): float} or None
        self.total = spec.total_groups
        self.k_max = per_cu_residency_cap(spec, device)
        self.completed = 0
        self.resident = 0
        self.start_time = None
        self.finish_time = None
        self.dispatch_done_time = None
        # hardware mode: static round-robin CU queues of WG indices
        self.cu_queues = None
        self.pending_count = self.total
        self.cu_resident = {}
        self.dispatch_ready_time = None
        # software modes
        self.next_vgroup = 0
        self.slots_to_place = 0
        self.live_slots = 0
        self.slot_assignments = None   # elastic: per-slot deques
        self.slot_occ = {}             # slot index -> occupancy factor
        self.slot_rate = {}            # slot index -> bandwidth demand
        self.slot_counter = 0          # monotonic source of slot indices
        # open-system state
        self.active = False            # has the request arrived yet?
        self.shrink_slots = 0          # live slots to retire at chunk bounds
        self.withdrawn = False         # migrated away before starting
        # running copies of the _pending_slots scans (kept exact in both
        # engine paths; only the fast path reads them)
        self.pending_slots = 0         # live queued-slot entries of this run
        self.pending_drop = 0          # queued entries tombstoned by a shrink
        # per-WG residency footprint, computed once (registers_per_group is
        # a derived property) — read by the fast-path placement loops
        self.footprint = (spec.wg_threads, spec.registers_per_group,
                          spec.local_mem_per_wg)
        # chunk-draw constants, hoisted for the fast path's dequeue loop
        self.chunk_size = spec.chunk
        self.overhead = spec.sched_overhead
        # occupancy_factor(k) per co-residency k, filled by the fast path
        # (the factor depends only on k for a fixed spec)
        self.occ_cache = {}

    @property
    def finished(self):
        return self.completed >= self.total

    def mode_done(self):
        """For accelOS runs: is the shared virtual-group queue drained?
        (A pending slot whose queue is empty never needs placement.)"""
        if self.spec.mode == ExecutionMode.ACCELOS:
            return self.next_vgroup >= self.total
        return False

    def occupancy_factor(self, k):
        """Per-WG cost factor with ``k`` co-resident WGs on a CU."""
        k_sat = self.spec.sat_occupancy * self.k_max
        return max(k, k_sat) / self.k_max

    def mark_start(self, now):
        if self.start_time is None:
            self.start_time = now

    def mark_dispatch_done(self, now):
        if self.dispatch_done_time is None:
            self.dispatch_done_time = now


class GPUSimulator:
    """Simulates kernel execution requests on one device.

    ``rebalance`` enables the extension the paper lists as future work
    (§2.5 admits a kernel "cannot leverage additional resources that may be
    released if other kernel executions terminate first"): when a software-
    scheduled slot retires in a *closed* batch, the freed capacity is
    re-granted as extra slots to co-scheduled kernels that still have
    undrained virtual-group queues.  Off by default — the paper's accelOS
    binds allocations for a kernel's lifetime, and the evaluation benches
    quantify what that costs.  Open-system runs generalise this hook: they
    always re-run the sharing policy (the ``allocator``) over the active
    set on every arrival and completion.
    """

    def __init__(self, device, hardware_scheduler=None, rebalance=False,
                 fast_path=None):
        self.device = device
        self.hardware_scheduler = hardware_scheduler or scheduler_for(device)
        self.rebalance = rebalance
        # ``fast_path`` switches the per-event decision procedures between
        # the incremental structures and the original reference scans (same
        # decisions either way — see module docstring); None follows the
        # module default so A/B harnesses can flip whole stacks at once.
        self.fast_path = (fast_path_enabled() if fast_path is None
                          else bool(fast_path))
        self._open = False
        self._allocator = None

    # -- public -----------------------------------------------------------

    def run(self, specs, cost_jitter=None):
        """Simulate a closed batch; all specs must share one execution mode.

        ``cost_jitter`` optionally scales each kernel's costs by a per-run
        factor (array of len(specs)), modelling run-to-run system noise for
        the paper's 20-repetition averaging.
        """
        mode = self._check_batch(specs)
        if any(s.arrival_time > 0 for s in specs):
            raise SimulationError(
                "closed batches submit everything at t=0; "
                "use run_open for per-spec arrival times")
        self._setup(specs, cost_jitter)
        self._open = False
        self._allocator = None

        if mode == ExecutionMode.HARDWARE:
            self._run_hardware()
        else:
            self._run_software(mode)
        return self._collect_trace(mode)

    def run_open(self, specs, allocator=None, cost_jitter=None):
        """Simulate an open system: specs enter at their ``arrival_time``.

        * **hardware** mode: a kernel joins the firmware scheduler's queue
          at its arrival time; dispatch order is arrival order under the
          device's policy (FIFO drain-overlap or exclusive).
        * **accelos** mode: arrivals pass FIFO admission control — a
          request is only admitted while the minimum (one-group)
          allocations of everything already admitted still fit the device;
          a burst beyond that waits in the arrival queue (queueing delay)
          until completions free capacity.  On every admission *and* every
          request completion the ``allocator`` callback —
          ``allocator(active_specs) -> [groups]``, normally wrapping the §3
          sharing algorithm — is re-run over the admitted kernels whose
          virtual-group queues are still undrained.  Targets above a
          kernel's live slot count grow it immediately (or queue slots when
          per-CU packing is fragmented); targets below shrink it lazily at
          chunk boundaries, since resident work groups cannot be preempted
          mid-chunk.
        * **elastic** mode is rejected: statically merged kernels cannot
          join a running launch — replay serialised merged launches instead
          (see :mod:`repro.harness.open_system`).

        Returns an :class:`ExecutionTrace` whose intervals carry arrival
        times, so turnaround and queueing delay are per-request.
        """
        mode = self._check_batch(specs)
        self.open_begin(mode, allocator=allocator)
        # FIFO priority is arrival order (ties broken by submission order).
        order = sorted(range(len(specs)),
                       key=lambda i: (specs[i].arrival_time, i))
        for i in order:
            jitter = 1.0 if cost_jitter is None else float(cost_jitter[i])
            self.open_submit(specs[i], jitter=jitter, index=i)
        self.open_drain()
        return self.open_trace()

    # -- incremental open-system interface ------------------------------------
    #
    # The advance-to-next-event core :meth:`run_open` is built on, exposed
    # so a fleet co-simulation (:class:`repro.sim.fleet.FleetSimulator`)
    # can merge several devices onto one timeline: submit requests as the
    # placement loop decides them, advance each device only as far as the
    # global clock allows, observe live state between events, and withdraw
    # still-queued requests for cross-device migration.  A batch
    # ``run_open`` is exactly ``open_begin`` + sorted ``open_submit`` +
    # ``open_drain`` + ``open_trace`` — one code path, so the incremental
    # and batch forms cannot drift apart.

    def open_begin(self, mode, allocator=None):
        """Start an empty open-system run accepting incremental submits."""
        if mode == ExecutionMode.ELASTIC:
            raise SimulationError(
                "elastic kernels cannot join a running merged launch; "
                "replay serialised merged launches instead "
                "(harness.open_system)")
        if mode == ExecutionMode.ACCELOS and allocator is None:
            raise SimulationError(
                "accelos open-system runs need an allocator callback")
        self._setup([], None)
        self._open = True
        self._allocator = allocator
        self._open_mode = mode
        self._software_mode = mode
        self._pending_slots = deque()
        self._admission_queue = deque()

    def open_submit(self, spec, jitter=1.0, index=None):
        """Add one request to the running open system.

        Submissions must come in arrival order (the FIFO contract of
        :meth:`run_open`); the spec's ``arrival_time`` must not precede
        the simulator's clock.  Returns the mutable run handle, whose
        ``start_time``/``finish_time`` carry the request's timing once
        simulated.
        """
        if spec.mode != self._open_mode:
            raise SimulationError(
                "open run is in {} mode, got a {} spec".format(
                    self._open_mode, spec.mode))
        if spec.arrival_time < self.events.now - 1e-12:
            raise SimulationError(
                "request {} would arrive in the simulated past "
                "({} < {})".format(spec.name, spec.arrival_time,
                                   self.events.now))
        first = self._live_submissions == 0
        self._live_submissions += 1
        run_index = index if index is not None else len(self.runs)
        if self.fast_path and jitter == 1.0:
            # Streams re-submit the same profile (one shared wg_costs array
            # per kernel) thousands of times; scale it once per simulator
            # and share the scaled array — and its chunk-sum memo — across
            # those runs.  Costs are read-only downstream, and the cached
            # array holds exactly what the per-run multiply would produce.
            entry = self._costs_cache.get(id(spec.wg_costs))
            if entry is None or entry[0] is not spec.wg_costs:
                entry = (spec.wg_costs, spec.wg_costs * self._cost_scale, {})
                self._costs_cache[id(spec.wg_costs)] = entry
            run = _KernelRun(run_index, spec, self.device, self._cost_scale,
                             costs=entry[1], chunk_sums=entry[2])
        else:
            run = _KernelRun(run_index, spec, self.device,
                             self._cost_scale * jitter)
        # Keep the run list sorted by (arrival, submission order): it IS
        # the FIFO priority order of the hardware dispatch window and the
        # allocator's iteration order.  Plain arrival-order submission
        # (the batch path, and a fleet loop without migration) appends;
        # only a migrated request re-homed behind later submissions needs
        # the insertion scan.
        at = len(self.runs)
        while at > 0 and self.runs[at - 1].spec.arrival_time \
                > spec.arrival_time:
            at -= 1
        self.runs.insert(at, run)
        if self._open_mode == ExecutionMode.HARDWARE:
            num_cus = self.device.num_cus
            run.cu_queues = [deque() for _ in range(num_cus)]
            for wg in range(run.total):
                run.cu_queues[wg % num_cus].append(wg)
            if first:
                # The first arrival finds an idle device: its grid is set
                # up by its submission, so it dispatches at arrival
                # without a handoff window (mirroring the closed batch's
                # first kernel).  Later kernels pay the handoff when they
                # take over the dispatch window.
                run.dispatch_ready_time = spec.arrival_time
            self.events.push(spec.arrival_time, None, tier=ARRIVAL_TIER)
        else:
            self.events.push(spec.arrival_time, ("arrival", run),
                             tier=ARRIVAL_TIER)
        return run

    def open_peek(self):
        """The next event's time, or None when the device is drained."""
        return self.events.peek_time()

    def open_step(self):
        """Process exactly one event; returns its simulation time."""
        time, payload = self.events.pop()
        self.events_processed += 1
        if self._open_mode == ExecutionMode.HARDWARE:
            self._process_hw_event(payload)
        else:
            self._process_software_event(payload, self._software_mode)
        return time

    def open_advance_before(self, time):
        """Process every event strictly before ``time`` (the causality
        boundary of a fleet co-simulation: a device may not run ahead of
        an arrival that could still be placed on it)."""
        while self.events and self.events.peek_time() < time:
            self.open_step()

    def open_drain(self):
        """Process all remaining events (no further submissions)."""
        while self.events:
            self.open_step()

    def open_trace(self):
        """The finished run's :class:`ExecutionTrace` (raises if any
        admitted request never finished)."""
        if self._harvested:
            raise SimulationError(
                "open_trace needs the full run list, but finished runs "
                "were pruned by open_harvest; a streaming consumer must "
                "collect timings from the harvested runs instead")
        if self._open_mode != ExecutionMode.HARDWARE:
            self._check_software_drained()
        return self._collect_trace(self._open_mode)

    def open_harvest(self):
        """Finished runs since the last harvest, pruned from the run list.

        The bounded-memory contract of streaming open-system runs: once a
        request finishes, its timing is final, and every scheduling
        decision (FIFO/exclusive eligibility, admission fits, the
        allocator's active set) treats finished runs exactly like absent
        ones — so removing them from ``self.runs`` is observationally
        equivalent and keeps both memory *and* per-event scan cost bounded
        by the live set.  Callers take ownership of the returned runs
        (``start_time``/``finish_time``/``index`` are final); batch-style
        ``open_trace`` is unavailable after the first non-empty harvest.
        """
        harvested = []
        while self._finished_runs:
            run = self._finished_runs.popleft()
            self.runs.remove(run)
            harvested.append(run)
        if harvested:
            self._harvested = True
        return harvested

    def open_withdrawable(self, run):
        """May ``run`` still be withdrawn (migrated to another device)?

        Only before the device commits resources: a software-scheduled
        request is withdrawable until admission control activates it, a
        hardware request until the firmware begins its grid setup.
        """
        if run.withdrawn:
            return False
        if self._open_mode == ExecutionMode.HARDWARE:
            return (run.start_time is None
                    and (run.dispatch_ready_time is None
                         or self.events.now + 1e-15 < run.spec.arrival_time))
        return not run.active

    def open_queued(self):
        """Withdrawable runs in arrival order (the migration candidates)."""
        return [run for run in self.runs if self.open_withdrawable(run)]

    def open_withdraw(self, run):
        """Remove a still-queued request (it migrates to another device).

        The run must be :meth:`open_withdrawable`; its pending arrival
        event (if any) becomes a no-op.  Withdrawing may unblock the
        admission queue (software modes) or the dispatch window
        (hardware), so both are re-checked.
        """
        if not self.open_withdrawable(run):
            raise SimulationError(
                "request {} cannot be withdrawn: it already started on "
                "this device".format(run.spec.name))
        run.withdrawn = True
        self.runs.remove(run)
        self._live_submissions -= 1
        if self._open_mode == ExecutionMode.HARDWARE:
            # a blocked successor may now own the dispatch window: kick
            # the dispatcher at the current time
            self.events.push(self.events.now, None)
        else:
            if run in self._admission_queue:
                self._admission_queue.remove(run)
            if self._admit_arrivals():
                self._reallocate()

    # -- shared setup / teardown ----------------------------------------------

    def _check_batch(self, specs):
        if not specs:
            raise SimulationError("empty batch")
        modes = {s.mode for s in specs}
        if len(modes) > 1:
            raise SimulationError("mixed execution modes in one batch")
        return modes.pop()

    def _setup(self, specs, cost_jitter):
        scale = device_cost_scale(self.device)
        runs = []
        for i, spec in enumerate(specs):
            jitter = 1.0 if cost_jitter is None else float(cost_jitter[i])
            runs.append(_KernelRun(i, spec, self.device, scale * jitter))
        self.events = EventQueue()
        self.cus = [CUState(i, self.device) for i in range(self.device.num_cus)]
        self.bandwidth = BandwidthTracker(self.device)
        self.runs = runs
        self._cost_scale = scale
        self.finished_requests = 0
        # events popped off the queue — the denominator of events/sec in
        # benchmarks/bench_engine.py (identical across engine paths: the
        # fast path changes per-event cost, never the event sequence)
        self.events_processed = 0
        # fast-path running state; maintained exactly in both paths, read
        # only when self.fast_path (so the reference path stays the
        # original per-event scans)
        self._adm_threads = 0          # admission footprint of active,
        self._adm_lmem = 0             # unfinished software runs
        self._adm_regs = 0
        self._live_active = {}         # admitted unfinished runs, in
        #                                admission order == self.runs order
        # id(spec.wg_costs) -> (wg_costs, scaled costs, chunk-sum memo);
        # holding the key array pins its id, so entries cannot collide
        self._costs_cache = {}
        # resource footprint -> live queued-slot entries with it: the index
        # over _pending_slots that lets a placement pass stop as soon as
        # every queued footprint is known-unplaceable
        self._pending_footprints = {}
        # open-system streaming support: finished runs queue here until
        # the owner harvests (and thereby prunes) them
        self._finished_runs = deque()
        self._harvested = False
        # submissions minus withdrawals — what len(self.runs) would be
        # had no finished run been pruned; open_submit's first-arrival
        # rule keys on it so harvesting cannot change dispatch timing
        self._live_submissions = 0

    def _collect_trace(self, mode):
        intervals = []
        for run in sorted(self.runs, key=lambda r: r.index):
            if run.finish_time is None:
                raise SimulationError(
                    "kernel {} never finished (resources too small?)".format(
                        run.spec.name))
            intervals.append(KernelInterval(
                run.spec.name, run.start_time, run.finish_time,
                run.dispatch_done_time, float(run.costs.sum()),
                run.spec.arrival_time))
        return ExecutionTrace(intervals, self.device.name, mode)

    # -- hardware mode --------------------------------------------------------

    def _run_hardware(self):
        self._build_cu_queues()
        self.runs[0].dispatch_ready_time = 0.0
        self._hw_loop()

    def _build_cu_queues(self):
        num_cus = self.device.num_cus
        for run in self.runs:
            run.cu_queues = [deque() for _ in range(num_cus)]
            for wg in range(run.total):
                run.cu_queues[wg % num_cus].append(wg)

    def _hw_loop(self):
        self._hw_dispatch()
        while self.events:
            _, payload = self.events.pop()
            self.events_processed += 1
            self._process_hw_event(payload)

    def _process_hw_event(self, payload):
        if payload is not None:
            run, cu, wg, rate = payload
            self._complete_hw_wg(run, cu, rate)
        self._hw_dispatch()

    def _hw_dispatch(self):
        now = self.events.now
        for index, run in enumerate(self.runs):
            if run.pending_count == 0:
                continue
            if not self.hardware_scheduler.eligible(index, self.runs):
                break  # kernel order is strict; later kernels are blocked too
            if now + 1e-15 < run.spec.arrival_time:
                break  # not submitted yet; its arrival event will wake us
            if run.dispatch_ready_time is None:
                # this kernel just became eligible: the firmware needs a
                # handoff window before its grid starts dispatching
                run.dispatch_ready_time = now + KERNEL_HANDOFF_LATENCY
                self.events.push(run.dispatch_ready_time, None)
                break
            if now + 1e-15 < run.dispatch_ready_time:
                break
            for cu in self.cus:
                queue = run.cu_queues[cu.index]
                while queue and cu.fits(run.spec):
                    wg = queue.popleft()
                    self._start_hw_wg(run, cu, wg, now)
            if run.pending_count > 0:
                break  # this kernel still owns the dispatch window

    def _start_hw_wg(self, run, cu, wg, now):
        cu.admit(run.spec)
        k = run.cu_resident.get(cu.index, 0) + 1
        run.cu_resident[cu.index] = k
        # Rate the WG at the kernel's steady-state residency (bounded by how
        # much work the kernel has at all): WG durations in this model are
        # lifetime averages, so neither ramp-up nor drain-tail instants get
        # a transient speed boost — the software-scheduled modes rate their
        # slots the same way, keeping the comparison symmetric.
        k_steady = min(run.k_max, -(-run.total // len(self.cus)))
        occ = run.occupancy_factor(max(k, k_steady))
        rate = run.spec.mem_rate_per_wg / occ
        stretch = self.bandwidth.stretch(rate)
        self.bandwidth.add_rate(rate)
        run.resident += 1
        run.pending_count -= 1
        run.mark_start(now)
        if run.pending_count == 0:
            run.mark_dispatch_done(now)
        cost = float(run.costs[wg]) * occ * stretch
        self.events.push(now + cost, (run, cu, wg, rate))

    def _complete_hw_wg(self, run, cu, rate):
        cu.release(run.spec)
        self.bandwidth.remove_rate(rate)
        run.cu_resident[cu.index] -= 1
        run.resident -= 1
        run.completed += 1
        if run.finished:
            run.finish_time = self.events.now
            self.finished_requests += 1
            if self._open:
                self._finished_runs.append(run)

    # -- software-scheduled modes (accelOS / Elastic Kernels) ---------------------

    def _run_software(self, mode):
        # All kernels are admitted together: the sharing algorithm (or EK's
        # static merge) guarantees the combined allocation fits the device.
        for run in self.runs:
            run.slots_to_place = run.spec.physical_groups
            run.slot_counter = run.spec.physical_groups
            run.active = True
            run.mark_start(0.0)
            if mode == ExecutionMode.ELASTIC:
                slots = run.spec.physical_groups
                run.slot_assignments = [deque(range(s, run.total, slots))
                                        for s in range(slots)]

        self._pending_slots = deque()
        self._software_mode = mode
        self._place_software_slots(mode)
        self._software_loop(mode)
        self._check_software_drained()

    def _software_loop(self, mode):
        while self.events:
            _, payload = self.events.pop()
            self.events_processed += 1
            self._process_software_event(payload, mode)

    def _process_software_event(self, payload, mode):
        if payload is None:
            return
        if payload[0] == "arrival":
            run = payload[1]
            if run.withdrawn:
                return  # migrated to another device before arriving
            self._admission_queue.append(run)
            if self._admit_arrivals():
                self._reallocate()
            return
        _, run, cu, slot_index, done = payload
        run.completed += done
        self._draw_chunk(run, cu, mode, slot_index)

    def _admit_arrivals(self):
        """FIFO admission control for open-system arrivals.

        The §3 algorithm guarantees nothing if even one group per kernel
        exceeds the device (sharing raises), so a request only joins the
        active set while the minimum allocations of everything already
        admitted — finished requests excepted — plus its own still fit;
        the rest of a burst waits in arrival order and is admitted as
        completions free capacity.  Returns True if anything was admitted.
        """
        admitted = False
        while self._admission_queue:
            if not self._admission_fits(self._admission_queue[0]):
                break
            run = self._admission_queue.popleft()
            run.active = True
            # incremental admission accounting + the live-active set
            # (admission order is arrival order, which is self.runs order)
            spec = run.spec
            self._adm_threads += spec.wg_threads
            self._adm_lmem += spec.local_mem_per_wg
            self._adm_regs += spec.registers_per_group
            self._live_active[run] = None
            admitted = True
        return admitted

    def _admission_fits(self, candidate):
        spec = candidate.spec
        if self.fast_path:
            # the running totals are exact int copies of the sums below
            # (updated on admit and finish), so the comparison is identical
            return (self._adm_threads + spec.wg_threads
                    <= self.device.max_threads
                    and (self._adm_lmem + spec.local_mem_per_wg
                         <= self.device.total_local_mem)
                    and (self._adm_regs + spec.registers_per_group
                         <= self.device.total_registers))
        specs = [run.spec for run in self.runs
                 if run.active and run.finish_time is None]
        specs.append(spec)
        return (sum(s.wg_threads for s in specs) <= self.device.max_threads
                and (sum(s.local_mem_per_wg for s in specs)
                     <= self.device.total_local_mem)
                and (sum(s.registers_per_group for s in specs)
                     <= self.device.total_registers))

    def _check_software_drained(self):
        for run in self.runs:
            if run.finish_time is None and run.total == 0:
                run.finish_time = 0.0
        if any(run.finish_time is None for run in self.runs):
            raise SimulationError(
                "software-scheduled batch deadlocked: slots could never be "
                "placed (allocation exceeds per-CU packing)")

    def _place_software_slots(self, mode):
        """Place physical WGs on CUs, interleaved across kernels.

        The device-level allocation is feasible by construction, but per-CU
        packing can fragment; slots that do not fit immediately queue and
        are placed as other slots retire — the same waiting non-resident
        work groups experience on hardware.  Round-robin interleaving makes
        sure every kernel gets resident slots from the start.

        Placement is two-phase: admit everything first, then compute each
        slot's occupancy factor from the final per-CU residency, then draw
        the first chunks — so co-placed slots of one kernel see a
        consistent occupancy.
        """
        placements = []  # (run, slot_index, cu)
        max_slots = max((run.slots_to_place for run in self.runs), default=0)
        for slot_index in range(max_slots):
            for run in self.runs:
                if slot_index >= run.slots_to_place:
                    continue
                cu = self._freest_cu(run.spec)
                if cu is None:
                    self._pending_slots.append((run, slot_index))
                    run.pending_slots += 1
                    self._pending_inc(run)
                    continue
                cu.admit(run.spec)
                run.cu_resident[cu.index] = run.cu_resident.get(cu.index, 0) + 1
                run.resident += 1
                run.live_slots += 1
                placements.append((run, slot_index, cu))
        for run in self.runs:
            run.slots_to_place = 0

        for run, slot_index, cu in placements:
            self._activate_slot(run, slot_index, cu)
        for run, slot_index, cu in placements:
            self._draw_chunk(run, cu, mode, slot_index)

    # -- open-system re-allocation ------------------------------------------

    def _reallocate(self):
        """Re-run the sharing policy over the currently-active request set.

        Called on every arrival and every request completion — the proper
        re-allocation path that generalises the closed-batch ``rebalance``
        hook.  The allocator returns a physical-group target per active
        kernel with an undrained virtual-group queue; targets are
        reconciled against the kernel's current slots by growing
        immediately (queueing when per-CU packing is fragmented) and
        shrinking lazily at chunk boundaries, since resident work groups
        are never preempted mid-chunk.
        """
        if self.fast_path:
            # the live-active set is the admission-ordered running copy of
            # the filter below (finished runs left at finish time, and
            # finished implies mode_done for accelOS runs)
            active = [run for run in self._live_active
                      if not run.mode_done()]
        else:
            active = [run for run in self.runs
                      if run.active and not run.mode_done()]
        if not active:
            return
        targets = self._allocator([run.spec for run in active])
        if len(targets) != len(active):
            raise SimulationError(
                "allocator returned {} targets for {} active kernels".format(
                    len(targets), len(active)))
        fast = self.fast_path
        for run, target in zip(active, targets):
            remaining = run.total - run.next_vgroup
            target = max(1, min(int(target), remaining))
            if fast:
                pending = run.pending_slots
            else:
                pending = sum(1 for r, _ in self._pending_slots if r is run)
            effective = run.live_slots - run.shrink_slots + pending
            if target > effective:
                self._grow_run(run, target - effective)
            elif target < effective:
                self._shrink_run(run, effective - target, pending)

    def _grow_run(self, run, count):
        # first cancel lazy shrinks that have not retired yet
        revived = min(count, run.shrink_slots)
        run.shrink_slots -= revived
        count -= revived
        for _ in range(count):
            slot_index = run.slot_counter
            run.slot_counter += 1
            if not self._try_place_slot(run, slot_index, self._software_mode):
                self._pending_slots.append((run, slot_index))
                run.pending_slots += 1
                self._pending_inc(run)

    def _pending_inc(self, run):
        footprint = run.footprint
        counts = self._pending_footprints
        counts[footprint] = counts.get(footprint, 0) + 1

    def _pending_dec(self, run, count=1):
        footprint = run.footprint
        counts = self._pending_footprints
        left = counts[footprint] - count
        if left:
            counts[footprint] = left
        else:
            del counts[footprint]

    def _shrink_run(self, run, count, pending):
        # drop queued (never-placed) slots first: they hold no resources
        if pending:
            if self.fast_path:
                # Tombstone instead of rebuilding the deque: the run's
                # earliest queued entries are discarded when they are next
                # popped — the same entries the rebuild below removes
                # eagerly, since both take them in FIFO order.
                dropped = min(count, run.pending_slots)
                run.pending_slots -= dropped
                run.pending_drop += dropped
                count -= dropped
                if dropped:
                    self._pending_dec(run, dropped)
            else:
                dropped = 0
                kept = deque()
                while self._pending_slots:
                    entry = self._pending_slots.popleft()
                    if entry[0] is run and dropped < count:
                        dropped += 1
                        run.pending_slots -= 1
                        self._pending_dec(run)
                    else:
                        kept.append(entry)
                self._pending_slots = kept
                count -= dropped
        # retire the rest at chunk boundaries; never shrink the last live
        # slot while the virtual-group queue is undrained
        run.shrink_slots = min(run.shrink_slots + count,
                               max(0, run.live_slots - 1))

    # -- slot lifecycle ------------------------------------------------------

    def _activate_slot(self, run, slot_index, cu):
        k = run.cu_resident[cu.index]
        if self.fast_path:
            # occupancy_factor(k) is a pure function of k for a fixed
            # spec; memoise it per run (k is bounded by k_max)
            occ = run.occ_cache.get(k)
            if occ is None:
                occ = run.occupancy_factor(k)
                run.occ_cache[k] = occ
        else:
            occ = run.occupancy_factor(k)
        rate = run.spec.mem_rate_per_wg / occ
        run.slot_occ[slot_index] = occ
        run.slot_rate[slot_index] = rate
        self.bandwidth.add_rate(rate)

    def _try_place_slot(self, run, slot_index, mode):
        if self.fast_path:
            # fused scan-and-admit: same selection as _freest_cu (max
            # threads_free among fitting CUs, earliest index on ties),
            # with the footprint read once from the run and the admit-time
            # fits() recheck dropped — the scan just proved the fit
            threads, regs, lmem = run.footprint
            cu = None
            best_free = -1
            for cand in self.cus:
                free = cand.threads_free
                if (free > best_free and free >= threads
                        and cand.slots_free >= 1
                        and cand.registers_free >= regs
                        and cand.local_mem_free >= lmem):
                    cu = cand
                    best_free = free
            if cu is None:
                return False
            cu.threads_free = best_free - threads
            cu.registers_free -= regs
            cu.local_mem_free -= lmem
            cu.slots_free -= 1
            run.cu_resident[cu.index] = run.cu_resident.get(cu.index, 0) + 1
            run.resident += 1
            run.live_slots += 1
            if run.start_time is None:   # inlined mark_start
                run.start_time = self.events.now
            self._activate_slot(run, slot_index, cu)
            self._draw_chunk(run, cu, mode, slot_index)
            return True
        else:
            cu = self._freest_cu(run.spec)
            if cu is None:
                return False
            cu.admit(run.spec)
        run.cu_resident[cu.index] = run.cu_resident.get(cu.index, 0) + 1
        run.resident += 1
        run.live_slots += 1
        run.mark_start(self.events.now)
        self._activate_slot(run, slot_index, cu)
        self._draw_chunk(run, cu, mode, slot_index)
        return True

    def _place_pending_slots(self):
        if not self._pending_slots:
            return
        still_pending = deque()
        # Free capacity only shrinks within one pass (successful
        # placements consume resources, failures change nothing), so a
        # resource footprint that failed once keeps failing — skip its
        # repeats instead of rescanning every CU.  Pure pruning of
        # known-failing attempts: placement order and outcomes are
        # unchanged.
        unplaceable = set()
        fast = self.fast_path
        while self._pending_slots:
            run, slot_index = self._pending_slots.popleft()
            if run.pending_drop:
                # tombstoned by a fast-path shrink: the reference path
                # removed this entry from the deque eagerly
                run.pending_drop -= 1
                continue
            if run.mode_done():
                run.pending_slots -= 1
                self._pending_dec(run)
                continue
            footprint = run.footprint
            if footprint in unplaceable:
                still_pending.append((run, slot_index))
                continue
            if not self._try_place_slot(run, slot_index, self._software_mode):
                unplaceable.add(footprint)
                still_pending.append((run, slot_index))
                if fast and len(unplaceable) == len(self._pending_footprints):
                    # every live queued footprint is known-unplaceable:
                    # the rest of this pass could only skip or re-append
                    # entries unchanged, so keep them in place (tombstones
                    # and drained runs left behind are discarded by a
                    # later pass, exactly as a skipped entry would be)
                    break
            else:
                run.pending_slots -= 1
                self._pending_dec(run)
        still_pending.extend(self._pending_slots)
        self._pending_slots = still_pending

    def _freest_cu(self, spec):
        if self.fast_path:
            # same selection as below — max threads_free among fitting
            # CUs, earliest index on ties — with the spec's footprint
            # hoisted and the fits() predicate inlined (it runs per CU
            # per placement attempt, millions of times per stream)
            threads = spec.wg_threads
            regs = spec.registers_per_group
            lmem = spec.local_mem_per_wg
            best = None
            best_free = -1
            for cu in self.cus:
                free = cu.threads_free
                if (free > best_free and free >= threads
                        and cu.slots_free >= 1
                        and cu.registers_free >= regs
                        and cu.local_mem_free >= lmem):
                    best = cu
                    best_free = free
            return best
        best = None
        for cu in self.cus:
            if cu.fits(spec):
                if best is None or cu.threads_free > best.threads_free:
                    best = cu
        return best

    def _draw_chunk(self, run, cu, mode, slot_index):
        """A slot is idle: pull its next chunk of virtual groups (or retire)."""
        now = self.events.now
        if mode == ExecutionMode.ACCELOS:
            base = run.next_vgroup
            if base >= run.total:
                self._retire_slot(run, cu, slot_index)
                return
            if run.shrink_slots > 0:
                # a re-allocation shrank this kernel: hand the slot back
                run.shrink_slots -= 1
                self._retire_slot(run, cu, slot_index)
                return
            end = min(base + run.chunk_size, run.total)
            run.next_vgroup = end
            sums = run.chunk_sums
            if sums is None:
                work = float(run.costs[base:end].sum())
            else:
                # memoised per shared costs array: every run of a profile
                # draws the same (base, end) windows, and the cached value
                # is exactly what the slice-sum would return (a prefix-sum
                # rewrite would change numpy's pairwise summation order)
                work = sums.get((base, end))
                if work is None:
                    work = float(run.costs[base:end].sum())
                    sums[(base, end)] = work
            overhead = run.overhead
            done = end - base
        else:  # ELASTIC: frozen per-slot assignment, no dequeue cost
            queue = run.slot_assignments[slot_index]
            if not queue:
                self._retire_slot(run, cu, slot_index)
                return
            wg = queue.popleft()
            work = float(run.costs[wg])
            overhead = 0.0
            done = 1
        occ = run.slot_occ[slot_index]
        stretch = self.bandwidth.stretch_resident(run.slot_rate[slot_index])
        cost = work * occ * stretch + overhead
        self.events.push(now + cost, ("chunk", run, cu, slot_index, done))

    def _retire_slot(self, run, cu, slot_index):
        if self.fast_path:
            # inlined cu.release(run.spec) via the cached footprint
            threads, regs, lmem = run.footprint
            cu.threads_free += threads
            cu.registers_free += regs
            cu.local_mem_free += lmem
            cu.slots_free += 1
        else:
            cu.release(run.spec)
        self.bandwidth.remove_rate(run.slot_rate[slot_index])
        run.cu_resident[cu.index] -= 1
        run.resident -= 1
        run.live_slots -= 1
        self._place_pending_slots()
        if self.rebalance and not self._open:
            self._grant_freed_capacity()
        finished = run.live_slots == 0 and not self._has_pending_work(run)
        if finished and run.spec.mode == ExecutionMode.ACCELOS:
            finished = run.next_vgroup >= run.total
        if finished and run.finish_time is None:
            run.finish_time = self.events.now
            run.mark_dispatch_done(self.events.now)
            self.finished_requests += 1
            if self._open:
                # a finished run leaves the admission footprint and the
                # live-active set before the queue is re-checked
                spec = run.spec
                self._adm_threads -= spec.wg_threads
                self._adm_lmem -= spec.local_mem_per_wg
                self._adm_regs -= spec.registers_per_group
                self._live_active.pop(run, None)
                self._finished_runs.append(run)
                self._admit_arrivals()
                self._reallocate()

    def _grant_freed_capacity(self):
        """Future-work extension: hand freed capacity to unfinished kernels.

        Grants one extra slot per call to the co-scheduled accelOS kernel
        with the most remaining virtual groups that still fits — a minimal
        dynamic re-allocation policy on top of the paper's design.  The
        open-system path supersedes this with a full re-run of the sharing
        policy (:meth:`_reallocate`).
        """
        candidates = [
            run for run in self.runs
            if run.spec.mode == ExecutionMode.ACCELOS and not run.mode_done()
            and run.next_vgroup + run.live_slots * run.spec.chunk
            < run.total
        ]
        if not candidates:
            return
        starved = max(candidates,
                      key=lambda r: r.total - r.next_vgroup)
        slot_index = starved.slot_counter
        starved.slot_counter += 1
        self._try_place_slot(starved, slot_index, self._software_mode)

    def _has_pending_work(self, run):
        if self.fast_path:
            return run.pending_slots > 0 and not run.mode_done()
        return any(pending_run is run and not pending_run.mode_done()
                   for pending_run, _ in self._pending_slots)
