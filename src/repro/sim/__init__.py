"""Event-driven GPU timing simulator (the evaluation plane).

Replaces the paper's physical K20m / R9 295X2 boards.  The simulator models
what the evaluation (§8) actually measures:

* per-CU occupancy limits (threads, registers, local memory, WG slots)
  gating work-group residency,
* the firmware scheduler's behaviour for concurrent kernels — FIFO with
  drain-tail overlap (NVIDIA-like) or near-exclusive (AMD-like),
* static round-robin WG placement for hardware dispatch (paper fig. 3a)
  versus the dynamic shared-queue dequeue loop of accelOS work groups
  (fig. 3b), including the atomic cost of each scheduling operation and
  §6.4 chunking,
* shared memory bandwidth: a dispatch-time roofline multiplier stretches a
  WG's cost when co-resident work oversubscribes the device's bandwidth.

Inputs are :class:`~repro.sim.spec.KernelExecSpec` objects (per-virtual-group
cost arrays plus resource demands); outputs are per-kernel execution
intervals from which the metrics package derives slowdowns, unfairness,
overlap and throughput.
"""

from repro.sim.engine import EventQueue
from repro.sim.spec import KernelExecSpec, ExecutionMode
from repro.sim.gpu import (GPUSimulator, fast_path_enabled, reference_path,
                           set_fast_path)
from repro.sim.fleet import (DeviceFleet, DeviceStatus, FleetDevice,
                             FleetSimulator, FleetStatus, MigrationOrder,
                             PlacedRequest, QueuedRequest)
from repro.sim.trace import ExecutionTrace, KernelInterval

__all__ = [
    "EventQueue", "KernelExecSpec", "ExecutionMode", "GPUSimulator",
    "DeviceFleet", "FleetDevice", "FleetSimulator", "FleetStatus",
    "DeviceStatus", "MigrationOrder", "PlacedRequest", "QueuedRequest",
    "ExecutionTrace", "KernelInterval",
    "fast_path_enabled", "reference_path", "set_fast_path",
]
