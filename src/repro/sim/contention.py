"""Shared memory-bandwidth contention model.

A dispatch-time roofline: every resident work group demands memory
bandwidth at ``spec.mem_rate_per_wg`` bytes/s.  When the aggregate demand of
all resident WGs exceeds the device's bandwidth, every in-flight WG's
progress stretches proportionally; we apply that stretch as a multiplier on
the WG's compute cost at dispatch time.

This captures the two behaviours the evaluation depends on:

* a memory-bound kernel saturates bandwidth on its own — its isolated time
  is bandwidth-limited, so accelOS can take most of its compute units away
  almost for free (where the paper's throughput gains come from);
* co-scheduling two memory-bound kernels slows both down (real contention),
  keeping accelOS's fairness numbers honest rather than optimistic.
"""

from __future__ import annotations


class BandwidthTracker:
    """Tracks aggregate bandwidth demand of resident work groups."""

    def __init__(self, device):
        self.capacity = device.mem_bw_gbs * 1e9  # bytes/s
        self.demand = 0.0
        self.resident = 0

    def add_rate(self, rate):
        """Register a resident WG's bandwidth demand (bytes/s).

        The caller passes the occupancy-corrected rate: a WG running faster
        at low occupancy pulls proportionally more bandwidth.
        """
        self.demand += rate
        self.resident += 1

    def remove_rate(self, rate):
        self.demand -= rate
        self.resident -= 1
        # Guard against unbalanced add/remove while tolerating float drift
        # (demand sits at ~1e11 bytes/s, so the tolerance is relative).
        if self.demand < -1e-6 * self.capacity or self.resident < 0:
            raise AssertionError("bandwidth demand went negative")
        if self.demand < 0:
            self.demand = 0.0

    def _stretch(self, rate, total, resident):
        """Max-min-flavoured roofline.

        Under oversubscription only WGs demanding more than the per-WG fair
        share are throttled; a compute-bound WG co-resident with memory hogs
        keeps making progress (its small demand is served).  Uniform
        memory-bound mixes degenerate to the classic ``D / BW`` stretch.
        """
        if total <= self.capacity or resident == 0:
            return 1.0
        fair_share = self.capacity / resident
        if rate <= fair_share:
            return 1.0
        return total / self.capacity

    def stretch(self, new_rate):
        """Stretch for a WG about to be dispatched (not yet registered)."""
        return self._stretch(new_rate, self.demand + new_rate,
                             self.resident + 1)

    def stretch_resident(self, rate):
        """Stretch for a chunk of an already-registered slot."""
        return self._stretch(rate, self.demand, self.resident)
