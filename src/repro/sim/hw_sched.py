"""Firmware scheduler policies for concurrent kernels (paper §2.3, §8.2).

Both policies model the measured behaviour of standard OpenCL: "the
execution request that arrives first tends to reserve all the available
resources".

* :class:`FifoHardwareScheduler` (NVIDIA-like): work groups dispatch in
  strict kernel arrival order, but once a kernel has no *pending* groups
  left, the next kernel may start filling freed compute units — giving the
  drain-tail overlap the paper measures (~21% for 2 kernels).
* :class:`ExclusiveHardwareScheduler` (AMD-like): the next kernel starts
  only after the current one has fully *completed* (~0–4% overlap).
"""

from __future__ import annotations


class HardwareScheduler:
    """Decides which kernels are eligible to dispatch work groups."""

    def eligible(self, index, kernels):
        raise NotImplementedError


class FifoHardwareScheduler(HardwareScheduler):
    name = "fifo"

    def eligible(self, index, kernels):
        """Kernel ``index`` may dispatch iff all earlier kernels have no
        pending (undispatched) work groups."""
        return all(k.pending_count == 0 for k in kernels[:index])


class ExclusiveHardwareScheduler(HardwareScheduler):
    name = "exclusive"

    def eligible(self, index, kernels):
        """Kernel ``index`` may dispatch iff all earlier kernels finished."""
        return all(k.finished for k in kernels[:index])


def scheduler_for(device):
    """The firmware scheduler matching a device's observed policy."""
    if device.scheduler_policy == "fifo":
        return FifoHardwareScheduler()
    if device.scheduler_policy == "exclusive":
        return ExclusiveHardwareScheduler()
    raise ValueError("unknown scheduler policy {!r}".format(
        device.scheduler_policy))
