"""A heterogeneous fleet of simulated devices (the multi-device plane).

One :class:`~repro.sim.gpu.GPUSimulator` models one accelerator; a fleet
models the deployment reality of the ROADMAP's north star — many devices
of mixed speed and size serving one request stream.  The fleet layer is
deliberately thin:

* each device keeps its **own** simulator, allocator state and §3
  guarantees — nothing about single-device simulation changes;
* a placement policy (:mod:`repro.accelos.placement`) routes every request
  to exactly one device;
* per-device traces are combined by the harness
  (:class:`repro.harness.open_system.FleetOpenSystemExperiment`) into
  per-device and fleet-wide metrics.

Invariants: a fleet is non-empty, device ids are unique, and a request is
simulated on exactly one device (conservation — enforced at placement).
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.sim.gpu import device_cost_scale


class FleetDevice:
    """One fleet member: a device spec plus its fleet-unique id.

    ``cost_scale`` is the factor turning reference (K20m) work-group costs
    into this device's costs — the fleet's measure of relative speed
    (bigger scale = slower device).
    """

    __slots__ = ("id", "device", "cost_scale")

    def __init__(self, device, device_id=None):
        self.id = device_id if device_id is not None else device.name
        self.device = device
        self.cost_scale = device_cost_scale(device)

    @property
    def relative_speed(self):
        """Device throughput relative to the reference device (K20m = 1.0
        per CU, scaled by the CU count)."""
        return self.device.num_cus / self.cost_scale

    def __repr__(self):
        return "<FleetDevice {} ({} CUs, {:.2f}x ref)>".format(
            self.id, self.device.num_cus, self.relative_speed)


class DeviceFleet:
    """N per-device simulators behind one placement boundary.

    Constructed from device specs or ``(id, spec)`` pairs:

    >>> fleet = DeviceFleet([nvidia_k20m(),
    ...                      ("slow", derated_device(nvidia_k20m(),
    ...                                              "K20m-derated", 0.5))])

    The fleet itself holds no scheduling state — per-device simulators are
    created fresh by whoever runs an experiment — so one fleet object can
    drive any number of independent experiments deterministically.
    """

    def __init__(self, devices):
        members = []
        for entry in devices:
            if isinstance(entry, FleetDevice):
                members.append(entry)
            elif isinstance(entry, tuple):
                device_id, device = entry
                members.append(FleetDevice(device, device_id))
            else:
                members.append(FleetDevice(entry))
        if not members:
            raise SimulationError("a fleet needs at least one device")
        ids = [m.id for m in members]
        if len(set(ids)) != len(ids):
            raise SimulationError(
                "fleet device ids must be unique, got {}".format(ids))
        # Harness caches (isolated_time and friends) key on the device
        # *name*: two members may share a name only if their specs are
        # identical, otherwise whichever is queried first silently poisons
        # every estimate and metric for the other.
        by_name = {}
        for member in members:
            spec = vars(member.device)
            other = by_name.setdefault(member.device.name, spec)
            if spec != other:
                raise SimulationError(
                    "fleet devices named {!r} have differing specs; give "
                    "derated/custom devices distinct names".format(
                        member.device.name))
        self.members = members

    # -- container surface -------------------------------------------------

    def __len__(self):
        return len(self.members)

    def __iter__(self):
        return iter(self.members)

    def __getitem__(self, index):
        return self.members[index]

    @property
    def ids(self):
        return [m.id for m in self.members]

    @property
    def devices(self):
        return [m.device for m in self.members]

    def index_of(self, device_id):
        for i, member in enumerate(self.members):
            if member.id == device_id:
                return i
        raise SimulationError(
            "no device {!r} in fleet {}".format(device_id, self.ids))

    def id_to_index(self):
        """``{device_id: fleet index}`` for pinned-placement lookups."""
        return {m.id: i for i, m in enumerate(self.members)}

    # -- properties the harness and benchmarks reason about ----------------

    @property
    def homogeneous(self):
        """True when every member's spec is identical — including memory
        bandwidth and firmware scheduler policy, which change simulated
        timing even at equal compute capacity."""
        first = vars(self.members[0].device)
        return all(vars(m.device) == first for m in self.members)

    def __repr__(self):
        return "<DeviceFleet {} devices: {}>".format(
            len(self.members), ", ".join(self.ids))
