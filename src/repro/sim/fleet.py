"""A heterogeneous fleet of simulated devices (the multi-device plane).

One :class:`~repro.sim.gpu.GPUSimulator` models one accelerator; a fleet
models the deployment reality of the ROADMAP's north star — many devices
of mixed speed and size serving one request stream.  Two pieces live
here:

* :class:`DeviceFleet` — the topology: N devices behind one placement
  boundary, each keeping its **own** simulator, allocator state and §3
  guarantees — nothing about single-device simulation changes;
* :class:`FleetSimulator` — the **closed-loop co-simulation**: every
  device's open-system session is merged onto one event timeline, the
  placement policy is consulted *at each arrival* against live
  per-device state (actual outstanding work, not a pre-pass estimate),
  and a re-balance hook fires at completion/idle events so still-queued
  requests may migrate between devices (charged a migration penalty).

The co-simulation is deliberately scheme-agnostic: it drives duck-typed
*device sessions* (the incremental advance-to-next-event interface of
:meth:`repro.sim.gpu.GPUSimulator.open_begin` and friends, wrapped per
scheduling scheme by :mod:`repro.api.schemes`) and a duck-typed
*placement policy* (:mod:`repro.accelos.placement` defines the offline
and online protocols), so this module stays below both the accelos and
api layers.

Invariants: a fleet is non-empty, device ids are unique, and a request is
simulated on exactly one device (conservation — a migrated request is
withdrawn from its old device before it is submitted to the new one);
devices never advance past an arrival that could still be placed on them
(causality); the whole loop is deterministic — no RNG, ties broken by
fleet index.
"""

from __future__ import annotations

from repro.errors import SchedulingError, SimulationError
from repro.sim.gpu import device_cost_scale


class FleetDevice:
    """One fleet member: a device spec plus its fleet-unique id.

    ``cost_scale`` is the factor turning reference (K20m) work-group costs
    into this device's costs — the fleet's measure of relative speed
    (bigger scale = slower device).
    """

    __slots__ = ("id", "device", "cost_scale")

    def __init__(self, device, device_id=None):
        self.id = device_id if device_id is not None else device.name
        self.device = device
        self.cost_scale = device_cost_scale(device)

    @property
    def relative_speed(self):
        """Device throughput relative to the reference device (K20m = 1.0
        per CU, scaled by the CU count)."""
        return self.device.num_cus / self.cost_scale

    def __repr__(self):
        return "<FleetDevice {} ({} CUs, {:.2f}x ref)>".format(
            self.id, self.device.num_cus, self.relative_speed)


class DeviceFleet:
    """N per-device simulators behind one placement boundary.

    Constructed from device specs or ``(id, spec)`` pairs:

    >>> fleet = DeviceFleet([nvidia_k20m(),
    ...                      ("slow", derated_device(nvidia_k20m(),
    ...                                              "K20m-derated", 0.5))])

    The fleet itself holds no scheduling state — per-device simulators are
    created fresh by whoever runs an experiment — so one fleet object can
    drive any number of independent experiments deterministically.
    """

    def __init__(self, devices):
        members = []
        for entry in devices:
            if isinstance(entry, FleetDevice):
                members.append(entry)
            elif isinstance(entry, tuple):
                device_id, device = entry
                members.append(FleetDevice(device, device_id))
            else:
                members.append(FleetDevice(entry))
        if not members:
            raise SimulationError("a fleet needs at least one device")
        ids = [m.id for m in members]
        if len(set(ids)) != len(ids):
            raise SimulationError(
                "fleet device ids must be unique, got {}".format(ids))
        # Harness caches (isolated_time and friends) key on the device
        # *name*: two members may share a name only if their specs are
        # identical, otherwise whichever is queried first silently poisons
        # every estimate and metric for the other.
        by_name = {}
        for member in members:
            spec = vars(member.device)
            other = by_name.setdefault(member.device.name, spec)
            if spec != other:
                raise SimulationError(
                    "fleet devices named {!r} have differing specs; give "
                    "derated/custom devices distinct names".format(
                        member.device.name))
        self.members = members
        # id -> fleet index, precomputed once: index_of runs per arrival
        # (pinned requests, session routing), a linear scan per call made
        # fleet-size lookups O(N^2) over a stream
        self._index_by_id = {m.id: i for i, m in enumerate(members)}
        # estimator callable -> {(kernel name, fleet index): estimate};
        # shared by every FleetSimulator over this fleet (estimators are
        # deterministic in (name, device), so the values are identical to
        # per-simulator recomputation)
        self._estimate_caches = {}

    def estimate_cache(self, estimator):
        """The fleet-lifetime estimator memo for one estimator callable.

        Online placement calls the estimator per (arrival, device); the
        values depend only on (kernel name, device), so one fleet-level
        dict serves every simulator — repeated experiment cells (the
        parallel driver reuses one fleet per worker) stop re-deriving
        estimates per run.
        """
        cache = self._estimate_caches.get(estimator)
        if cache is None:
            cache = {}
            self._estimate_caches[estimator] = cache
        return cache

    # -- container surface -------------------------------------------------

    def __len__(self):
        return len(self.members)

    def __iter__(self):
        return iter(self.members)

    def __getitem__(self, index):
        return self.members[index]

    @property
    def ids(self):
        return [m.id for m in self.members]

    @property
    def devices(self):
        return [m.device for m in self.members]

    def index_of(self, device_id):
        try:
            return self._index_by_id[device_id]
        except KeyError:
            raise SimulationError(
                "no device {!r} in fleet {}".format(device_id, self.ids))

    def id_to_index(self):
        """``{device_id: fleet index}`` for pinned-placement lookups."""
        return dict(self._index_by_id)

    # -- properties the harness and benchmarks reason about ----------------

    @property
    def homogeneous(self):
        """True when every member's spec is identical — including memory
        bandwidth and firmware scheduler policy, which change simulated
        timing even at equal compute capacity."""
        first = vars(self.members[0].device)
        return all(vars(m.device) == first for m in self.members)

    def __repr__(self):
        return "<DeviceFleet {} devices: {}>".format(
            len(self.members), ", ".join(self.ids))


# -- closed-loop fleet co-simulation ------------------------------------------
#
# Device-session protocol (duck-typed; implemented per scheduling scheme
# in repro.api.schemes):
#
#   submit(key, arrival, effective_time)  one request enters this device
#   peek() -> float | None                next event time (None = drained)
#   step() -> (time, finished_delta)      process exactly one event
#   queued() -> [QueuedRequest]           withdrawable (not-yet-started)
#   withdraw(key) -> float                remove a queued request, return
#                                         its old effective arrival time
#   backlog_seconds(now) -> float         live outstanding estimated work
#   active_count() -> int                 admitted & unfinished requests
#
# Placement-policy protocol: the online protocol of
# repro.accelos.placement (reset / observe_arrival / choose /
# migration_penalty / placed / rebalance).  Legacy offline policies are
# adapted there, never here.


class QueuedRequest:
    """One withdrawable queued request, as the re-balance hook sees it."""

    __slots__ = ("key", "name", "tenant", "effective_time")

    def __init__(self, key, name, tenant, effective_time):
        self.key = key
        self.name = name
        self.tenant = tenant
        self.effective_time = effective_time

    def __repr__(self):
        return "<QueuedRequest {} key={} eff={:.6f}>".format(
            self.name, self.key, self.effective_time)


class DeviceStatus:
    """Live snapshot of one device inside the closed loop."""

    __slots__ = ("index", "id", "relative_speed", "backlog_seconds",
                 "queued", "active_count")

    def __init__(self, index, device_id, relative_speed, backlog_seconds,
                 queued, active_count):
        self.index = index
        self.id = device_id
        self.relative_speed = relative_speed
        self.backlog_seconds = backlog_seconds
        self.queued = queued            # tuple of QueuedRequest
        self.active_count = active_count

    @property
    def queue_depth(self):
        return len(self.queued)

    def __repr__(self):
        return ("<DeviceStatus {} backlog={:.4f}s queue={} active={}>"
                .format(self.id, self.backlog_seconds, self.queue_depth,
                        self.active_count))


class FleetStatus:
    """Live snapshot of the whole fleet at one loop instant — what online
    placement policies observe (instead of the offline pre-pass's
    single-server backlog estimate).  ``estimate(name, index)`` is the
    loop's memoised service estimator, so re-balancers can price a
    candidate migration on its target device."""

    __slots__ = ("now", "devices", "estimate")

    def __init__(self, now, devices, estimate=None):
        self.now = now
        self.devices = devices          # tuple of DeviceStatus
        self.estimate = estimate

    def __len__(self):
        return len(self.devices)

    def __repr__(self):
        return "<FleetStatus t={:.6f} {} devices>".format(
            self.now, len(self.devices))


class MigrationOrder:
    """One re-balance decision: move a queued request between devices.

    ``penalty`` is the buffer-migration delay charged to the request (its
    effective arrival on the new device is ``max(now, old effective
    arrival) + penalty``).
    """

    __slots__ = ("key", "source", "target", "penalty")

    def __init__(self, key, source, target, penalty):
        if penalty < 0:
            raise SchedulingError("migration penalty must be non-negative")
        self.key = key
        self.source = source
        self.target = target
        self.penalty = float(penalty)

    def __repr__(self):
        return "<MigrationOrder key={} {}->{} (+{:.1f}ms)>".format(
            self.key, self.source, self.target, self.penalty * 1e3)


class PlacedRequest:
    """Final routing of one arrival through the closed loop.

    ``index`` is the device that ultimately *served* the request (after
    any migrations), ``penalty`` the total migration delay it was
    charged, ``migrated`` how many times the re-balance hook moved it.
    """

    __slots__ = ("position", "arrival", "index", "penalty", "pinned",
                 "migrated")

    def __init__(self, position, arrival, index, penalty, pinned):
        self.position = position
        self.arrival = arrival
        self.index = index
        self.penalty = float(penalty)
        self.pinned = pinned
        self.migrated = 0

    def __repr__(self):
        return "<PlacedRequest {} -> device {}{}>".format(
            self.arrival.name, self.index,
            " (+{:.1f}ms)".format(self.penalty * 1e3) if self.penalty
            else "")


class FleetSimulator:
    """Closed-loop co-simulation of one arrival stream over a fleet.

    Merges every device session onto one global event timeline.  At each
    arrival the placement policy chooses a device against the **live**
    fleet state; after each completion (and whenever a device drains to
    idle) the policy's re-balance hook may migrate still-queued requests
    between devices.  Contrast with the offline pre-pass
    (:func:`repro.accelos.placement.place_arrivals`), which walks the
    whole stream against a single-server backlog estimate before any
    device simulates.

    ``sessions`` are per-device scheme sessions (see the protocol note
    above); ``policy`` speaks the online protocol; ``estimator(name,
    device)`` supplies per-request service estimates for the policy's
    cost vector (memoised here per ``(name, device index)``).

    Determinism: no RNG anywhere; the next event is the minimum over
    sessions of ``peek()``, ties broken by fleet index; arrivals at time
    ``t`` are placed before any device processes an event at exactly
    ``t`` (matching the arrival-first tie rule inside each device).
    """

    def __init__(self, fleet, sessions, policy, estimator, ledger=None):
        if len(sessions) != len(fleet):
            raise SimulationError(
                "need one device session per fleet member ({} != {})"
                .format(len(sessions), len(fleet)))
        self.fleet = fleet
        self.sessions = list(sessions)
        self.policy = policy
        self._estimator = estimator
        self._cost_cache = fleet.estimate_cache(estimator)
        self._rebalance_enabled = True
        self.migrations = []            # executed MigrationOrders
        # optional repro.attribution.AttributionLedger: fed placement,
        # migration and completion events as they happen.  Completions
        # only reach it through the harvest path, so attributed runs must
        # go through run_stream (the harness routes attributed exact runs
        # through the same loop over a materialised stream).
        self.ledger = ledger

    # -- estimator memoisation ---------------------------------------------

    def _cost(self, name, index):
        key = (name, index)
        value = self._cost_cache.get(key)
        if value is None:
            value = self._estimator(name, self.fleet[index].device)
            self._cost_cache[key] = value
        return value

    def events_processed(self):
        """Total simulator events across device sessions (sessions without
        a counter — e.g. Elastic Kernels replay — contribute zero)."""
        return sum(getattr(session, "events_processed", 0)
                   for session in self.sessions)

    # -- the loop ----------------------------------------------------------

    def run(self, arrivals):
        """Place and co-simulate one stream; returns one
        :class:`PlacedRequest` per arrival, in the stream's order."""
        if not arrivals:
            raise SimulationError("empty arrival stream")
        count = len(self.fleet)
        self.policy.reset()
        self.migrations = []
        self._placed = placed = [None] * len(arrivals)
        # policies that never read the live snapshot (the estimate-mode
        # adapter) or never re-balance skip the O(outstanding-work)
        # status walks entirely — the default replay path stays linear
        uses_status = getattr(self.policy, "uses_status", True)
        self._rebalance_enabled = getattr(self.policy, "wants_rebalance",
                                          True)
        id_to_index = self.fleet.id_to_index()
        order = sorted(range(len(arrivals)),
                       key=lambda i: (arrivals[i].time, i))
        for i in order:
            arrival = arrivals[i]
            self._advance_before(arrival.time)
            placed[i] = self._place_one(arrival, i, uses_status,
                                        id_to_index)
        self._advance_before(None)      # drain every device
        return placed

    def run_stream(self, arrivals, on_record):
        """Place and co-simulate one *lazy* time-ordered stream in bounded
        memory.

        The streaming twin of :meth:`run`: ``arrivals`` is any iterable
        yielding :class:`~repro.workloads.arrivals.ArrivalRequest` in
        nondecreasing time order (the scenario ``iter_arrivals``
        contract — enforced here, since the iterator cannot be sorted
        without materialising it).  Every device session must support
        ``harvest()``; completed requests are handed to
        ``on_record(entry, start, finish)`` in deterministic
        completion-harvest order (global event order, ties by fleet
        index) and then dropped, so live state is bounded by the
        outstanding request set, never the stream length.  Returns the
        number of requests placed.
        """
        for j, session in enumerate(self.sessions):
            if not hasattr(session, "harvest"):
                raise SimulationError(
                    "device session {} ({}) does not support harvest(); "
                    "streaming fleet runs need harvesting sessions".format(
                        j, type(session).__name__))
        self.policy.reset()
        self.migrations = []
        self._placed = placed = {}      # key -> PlacedRequest, outstanding
        uses_status = getattr(self.policy, "uses_status", True)
        self._rebalance_enabled = getattr(self.policy, "wants_rebalance",
                                          True)
        id_to_index = self.fleet.id_to_index()
        position = 0
        last_time = None
        for arrival in arrivals:
            if last_time is not None and arrival.time < last_time - 1e-12:
                raise SimulationError(
                    "streaming arrivals must be time-ordered: {:.6f} "
                    "after {:.6f}".format(arrival.time, last_time))
            last_time = arrival.time
            self._advance_before(arrival.time)
            self._harvest_finished(on_record)
            placed[position] = self._place_one(arrival, position,
                                               uses_status, id_to_index)
            position += 1
        if position == 0:
            raise SimulationError("empty arrival stream")
        self._advance_before(None)      # drain every device
        self._harvest_finished(on_record)
        if placed:
            raise SimulationError(
                "{} requests were placed but never harvested "
                "(conservation violated)".format(len(placed)))
        return position

    def _place_one(self, arrival, key, uses_status, id_to_index):
        """Consult the policy and submit one arrival (shared by the
        eager and streaming loops)."""
        count = len(self.fleet)
        self.policy.observe_arrival(arrival)
        if arrival.device is not None:
            index = id_to_index.get(arrival.device)
            if index is None:
                raise SchedulingError(
                    "arrival pinned to unknown device {!r}".format(
                        arrival.device))
            pinned = True
        else:
            costs = ([self._cost(arrival.name, j)
                      for j in range(count)]
                     if self.policy.uses_costs else [0.0] * count)
            index = self.policy.choose(
                arrival,
                self._status(arrival.time) if uses_status else None,
                costs)
            if not 0 <= index < count:
                raise SchedulingError(
                    "policy {} chose device {} of {}".format(
                        self.policy.name, index, count))
            pinned = False
        penalty = self.policy.migration_penalty(arrival, index)
        self.policy.placed(arrival, index, penalty,
                           self._cost(arrival.name, index))
        self.sessions[index].submit(key, arrival, arrival.time + penalty)
        if self.ledger is not None:
            self.ledger.submit(key, arrival.name, arrival.tenant, index,
                               arrival.time, self._cost(arrival.name, index))
        return PlacedRequest(key, arrival, index, penalty, pinned)

    def _harvest_finished(self, on_record):
        """Drain every session's completed requests into ``on_record``
        and forget them (sessions are scanned in fleet index order, so
        the harvest order is deterministic)."""
        for session in self.sessions:
            for key, start, finish in session.harvest():
                entry = self._placed.pop(key)
                if self.ledger is not None:
                    self.ledger.finish(key, start, finish)
                on_record(entry, start, finish)

    def _advance_before(self, time):
        """Process all device events strictly before ``time`` (None =
        drain everything), in global time order, firing the re-balance
        hook after completions and idle transitions."""
        while True:
            best = None
            best_time = None
            for j, session in enumerate(self.sessions):
                next_time = session.peek()
                if next_time is None:
                    continue
                if best_time is None or next_time < best_time:
                    best, best_time = j, next_time
            if best is None or (time is not None and best_time >= time):
                return
            event_time, finished = self.sessions[best].step()
            if self._rebalance_enabled \
                    and (finished or self.sessions[best].peek() is None):
                self._maybe_rebalance(event_time)

    # -- live state & re-balancing -----------------------------------------

    def _status(self, now):
        views = []
        for j, (member, session) in enumerate(zip(self.fleet,
                                                  self.sessions)):
            # pinned requests are invisible to re-balancers: a device tag
            # is a hard constraint, the request must not be stolen away
            queued = tuple(entry for entry in session.queued()
                           if not self._placed[entry.key].pinned)
            views.append(DeviceStatus(
                j, member.id, member.relative_speed,
                session.backlog_seconds(now), queued,
                session.active_count()))
        return FleetStatus(now, tuple(views), self._cost)

    def _maybe_rebalance(self, now):
        orders = self.policy.rebalance(self._status(now))
        if not orders:
            return
        for migration in orders:
            if migration.source == migration.target:
                raise SchedulingError(
                    "re-balance order moves request {} onto its own "
                    "device {}".format(migration.key, migration.source))
            entry = self._placed[migration.key]
            if entry is None or entry.index != migration.source:
                raise SchedulingError(
                    "re-balance order for request {} does not match its "
                    "current device".format(migration.key))
            if entry.pinned:
                raise SchedulingError(
                    "re-balance order would move device-pinned request "
                    "{} off {}".format(migration.key,
                                       self.fleet[entry.index].id))
            old_effective = self.sessions[migration.source].withdraw(
                migration.key)
            effective = max(now, old_effective) + migration.penalty
            self.sessions[migration.target].submit(
                migration.key, entry.arrival, effective)
            entry.index = migration.target
            entry.penalty += migration.penalty
            entry.migrated += 1
            self.migrations.append(migration)
            if self.ledger is not None:
                self.ledger.migrate(migration.key, migration.source,
                                    migration.target, now,
                                    migration.penalty)
