"""Elastic Kernels (Pai et al., ASPLOS'13) — re-implemented as in §7.3.

Elastic Kernels improves GPGPU concurrency by *statically* transforming
kernels so several can share the device.  Its defining properties — the ones
the paper contrasts accelOS against — are:

* **static merging**: kernel codes are combined and resource splits are
  decided once, at launch, from static occupancy estimates;
* **static work assignment**: each physical work group receives a frozen
  slice of the logical range (no dynamic dequeue, so imbalance is frozen);
* **no adaptation**: a finished kernel's share idles; a workload larger
  than one merge's capacity serialises into successive merged launches;
* **merge overhead**: the combined kernel pays index-remapping and
  divergence costs that grow with the number of merged kernels;
* **security concern**: kernels of different applications share one binary
  (demonstrated by :func:`elastic_merge_kernels`).

Two deliverables here: a *scheduling model* that turns a workload into
simulator specs (used by the evaluation), and a *real IR-level merge* of two
1-D kernels (used by tests/examples to demonstrate the mechanism and its
security implication).
"""

from __future__ import annotations

from repro.errors import SchedulingError
from repro.ir import instructions as I
from repro.ir.builder import IRBuilder
from repro.ir.clone import clone_function
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.values import Constant
from repro.kernelc import types as T
from repro.sim.resources import max_resident_groups
from repro.sim.spec import ExecutionMode

# Cost multiplier per additional kernel merged into a launch: index
# remapping, extra branching and divergence in the merged binary.
MERGE_OVERHEAD_PER_KERNEL = 0.04

# EK's static slicing can shrink a kernel's residency to at most this
# fraction of its desired occupancy before the packer gives up and starts a
# new (serialised) merged launch.
MIN_STATIC_SHARE = 0.02

# The static merge transformation combines a bounded number of kernels into
# one binary; beyond this the merged control flow and argument plumbing stop
# paying off, so larger workloads serialise into successive merged launches
# — which is where the paper's EK overlap collapse at 8 requests comes from.
MAX_MERGE = 4


class MergedGroup:
    """One merged launch: kernels co-resident with static allocations."""

    __slots__ = ("specs", "allocations")

    def __init__(self, specs, allocations):
        self.specs = specs
        self.allocations = allocations

    def __repr__(self):
        return "<MergedGroup {}>".format(
            [(s.name, a) for s, a in zip(self.specs, self.allocations)])


class ElasticKernelsScheduler:
    """Packs a workload into statically merged launches."""

    def __init__(self, device):
        self.device = device

    def desired_groups(self, spec):
        """Full occupancy the kernel would claim on its own."""
        return max(1, min(spec.total_groups,
                          max_resident_groups(spec, self.device)))

    def pack(self, specs):
        """Greedy arrival-order packing into merged groups.

        Each kernel asks for its full occupancy; if the current group cannot
        host at least ``MIN_STATIC_SHARE`` of that after proportional
        shrinking, the group is closed and a new launch begins.
        """
        groups = []
        current = []
        for spec in specs:
            trial = current + [spec]
            allocation = self._static_split(trial) if len(trial) <= MAX_MERGE \
                else None
            if allocation is None:
                if not current:
                    raise SchedulingError(
                        "kernel {} does not fit the device alone".format(
                            spec.name))
                groups.append(self._finish_group(current))
                current = [spec]
            else:
                current = trial
        if current:
            groups.append(self._finish_group(current))
        return groups

    def _static_split(self, specs):
        """Work-proportional static split (EK's occupancy-greedy heuristic).

        Weights follow each kernel's *total* logical range: EK sizes slices
        to maximise utilisation, so heavyweight kernels take most of the
        device and lightweight co-runners squeeze into the rest — which is
        exactly why the paper finds EK "does not allocate resources evenly".
        Returns None if someone falls below the share floor.
        """
        desired = [self.desired_groups(s) for s in specs]
        total_work = sum(s.total_groups for s in specs)
        capacity = sum(desired)
        weighted = [capacity * s.total_groups / total_work for s in specs]
        allocation = list(desired)
        # Shrink proportionally (by misestimated weight) until the joint
        # allocation fits the device.
        scale = 1.0
        for _ in range(96):
            allocation = [min(d, max(1, int(w * scale)))
                          for d, w in zip(desired, weighted)]
            if self._fits(specs, allocation):
                break
            scale *= 0.9
        else:
            return None
        for got, want in zip(allocation, desired):
            if got < MIN_STATIC_SHARE * want:
                return None
        return allocation

    def _fits(self, specs, allocation):
        threads = sum(a * s.wg_threads for s, a in zip(specs, allocation))
        regs = sum(a * s.registers_per_group for s, a in zip(specs, allocation))
        lmem = sum(a * s.local_mem_per_wg for s, a in zip(specs, allocation))
        return (threads <= self.device.max_threads
                and regs <= self.device.total_registers
                and lmem <= self.device.total_local_mem)

    def _finish_group(self, specs):
        allocation = self._static_split(specs)
        if allocation is None:
            raise SchedulingError("static split failed for a closed group")
        return MergedGroup(specs, allocation)

    def to_sim_specs(self, group):
        """Simulator specs for one merged launch (elastic mode)."""
        overhead = 1.0 + MERGE_OVERHEAD_PER_KERNEL * (len(group.specs) - 1)
        out = []
        for spec, groups in zip(group.specs, group.allocations):
            merged = spec.with_mode(ExecutionMode.ELASTIC,
                                    physical_groups=groups)
            merged = merged.scaled(overhead)
            out.append(merged)
        return out


# ---------------------------------------------------------------------------
# Real static merge of two 1-D kernels (mechanism demonstration)
# ---------------------------------------------------------------------------

def elastic_merge_kernels(module_a, kernel_a, module_b, kernel_b, split):
    """Statically merge two 1-D kernels into one module and kernel.

    The merged kernel takes A's parameters, then B's, and dispatches on the
    hardware group id: groups ``[0, split)`` run A's body, the rest run B's
    with their group ids rebased — the Elastic Kernels mechanism.  Both
    kernels must use 1-D ranges and identical work-group sizes.

    Returns ``(merged_module, merged_kernel_name)``.
    """
    merged = Module("ek_merge")
    impls = {}
    for tag, (mod, name) in (("a", (module_a, kernel_a)),
                             ("b", (module_b, kernel_b))):
        src = mod.clone()
        kernel = src.get(name)
        # Pull in everything the kernel transitively calls, renamed per side
        # (the "merged binaries of different applications" security issue).
        rename = {}
        for func in src.functions.values():
            if not func.is_kernel:
                rename[func.name] = "ek_{}_{}".format(tag, func.name)
        for func in list(src.functions.values()):
            if func.is_kernel and func is not kernel:
                continue
            clone, _ = clone_function(
                func, new_name=rename.get(func.name,
                                          "ek_{}_{}".format(tag, func.name)))
            clone.is_kernel = False
            impls[(tag, func.name)] = clone
        # Retarget calls inside the clones.
        for clone in impls.values():
            for insn in clone.instructions():
                if isinstance(insn, I.Call) and not insn.is_intrinsic():
                    key_a = ("a", insn.callee.name)
                    key_b = ("b", insn.callee.name)
                    if clone.name.startswith("ek_a_") and key_a in impls:
                        insn.callee = impls[key_a]
                    elif clone.name.startswith("ek_b_") and key_b in impls:
                        insn.callee = impls[key_b]
        impl = impls[(tag, name)]
        _rebase_group_ids(impl, tag, split)
        merged.add_function(impl)
        for key, clone in impls.items():
            if key[0] == tag and clone is not impl and clone.name not in merged:
                merged.add_function(clone)

    impl_a = impls[("a", kernel_a)]
    impl_b = impls[("b", kernel_b)]

    name = "ek_{}__{}".format(kernel_a, kernel_b)
    param_types = ([a.type for a in impl_a.arguments]
                   + [b.type for b in impl_b.arguments])
    param_names = (["a_{}".format(a.name) for a in impl_a.arguments]
                   + ["b_{}".format(b.name) for b in impl_b.arguments])
    kernel = Function(name, T.VOID, param_types, param_names, is_kernel=True)
    entry = kernel.add_block("entry")
    run_a = kernel.add_block("run.a")
    run_b = kernel.add_block("run.b")
    done = kernel.add_block("done")

    builder = IRBuilder(kernel, entry)
    gid = builder.call("get_group_id", [Constant(T.UINT, 0)], T.SIZE_T, "grp")
    builder.condbr(builder.cmp("lt", gid, Constant(T.SIZE_T, split)),
                   run_a, run_b)

    builder.position_at_end(run_a)
    builder.call(impl_a, kernel.arguments[:len(impl_a.arguments)])
    builder.br(done)

    builder.position_at_end(run_b)
    builder.call(impl_b, kernel.arguments[len(impl_a.arguments):])
    builder.br(done)

    builder.position_at_end(done)
    builder.ret()

    merged.add_function(kernel)
    return merged, name


def _rebase_group_ids(func, tag, split):
    """Rewrite dim-0 work-item queries for one merged side.

    Side "b" sees ``group_id - split`` (and a correspondingly shifted global
    id); both sides keep their own logical ``get_global_size`` untouched —
    EK patches those with compile-time constants, which our corpus kernels
    only use for strided loops, where the hardware value stays correct for
    side "a" and is conservative for side "b".
    """
    if tag == "a":
        return
    for block in func.blocks:
        for insn in list(block.instructions):
            if not (isinstance(insn, I.Call) and insn.is_intrinsic()):
                continue
            if insn.callee not in ("get_group_id", "get_global_id"):
                continue
            dim = insn.operands[0]
            if not (isinstance(dim, Constant) and dim.value == 0):
                continue
            # recompute the position: earlier rewrites shift indices
            index = block.instructions.index(insn)
            if insn.callee == "get_group_id":
                offset = split
            else:
                # global id shifts by split * local_size(0); emit the
                # multiply inline after the original call.
                offset = None
            # Build: original - shift
            replacement_block_insns = block.instructions
            if offset is not None:
                shift = Constant(T.SIZE_T, offset)
                sub = I.BinOp("sub", insn, shift, T.SIZE_T)
                sub.name = func.unique_name("rebase")
                sub.parent = block
                replacement_block_insns.insert(index + 1, sub)
                _replace_uses_except(func, insn, sub)
            else:
                lsz = I.Call("get_local_size", [Constant(T.UINT, 0)], T.SIZE_T)
                lsz.name = func.unique_name("lsz")
                lsz.parent = block
                mul = I.BinOp("mul", lsz, Constant(T.SIZE_T, split), T.SIZE_T)
                mul.name = func.unique_name("shift")
                mul.parent = block
                sub = I.BinOp("sub", insn, mul, T.SIZE_T)
                sub.name = func.unique_name("rebase")
                sub.parent = block
                replacement_block_insns.insert(index + 1, lsz)
                replacement_block_insns.insert(index + 2, mul)
                replacement_block_insns.insert(index + 3, sub)
                _replace_uses_except(func, insn, sub, keep={lsz, mul, sub})


def _replace_uses_except(func, old, new, keep=None):
    keep = keep or {new}
    for insn in func.instructions():
        if insn not in keep:
            insn.replace_operand(old, new)
