"""Baselines the paper compares against.

* Standard OpenCL is the simulator's hardware mode (no module needed).
* :mod:`repro.baselines.elastic_kernels` re-implements Elastic Kernels
  (Pai et al., ASPLOS'13), as the paper did for OpenCL (§7.3).
"""

from repro.baselines.elastic_kernels import (
    ElasticKernelsScheduler, elastic_merge_kernels)

__all__ = ["ElasticKernelsScheduler", "elastic_merge_kernels"]
