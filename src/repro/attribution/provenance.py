"""Provenance labels: who a buffer or kernel launch belongs to.

The attribution plane threads one small value type from arrival to
buffer to kernel step: a :class:`Provenance` names the tenant the work
is billed to, optionally refined by a session id (one application's
connection to the runtime) and a request id (one arrival in an
open-system stream).  Interpreter memory
(:class:`repro.interp.memory.MemoryRegion`), the accelOS memory manager
and :class:`repro.interp.executor.LaunchStats` all carry an optional
provenance, so device-memory occupancy and executed work are
attributable without changing any untagged call site.

Tenants are plain strings; an arrival without a tenant (``tenant is
None``) is billed to the reserved :data:`UNTENANTED` label, so every
byte and every second lands in exactly one bucket — the ledger's
conservation invariant needs a total assignment, not a partial one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

# the bucket untagged work is billed to (arrivals with tenant=None)
UNTENANTED = "untenanted"


def tenant_label(tenant: Optional[Any]) -> str:
    """The ledger bucket of one tenant id (:data:`UNTENANTED` for None).

    Non-string tenant ids are coerced to ``str`` so ledger buckets stay
    mutually comparable (sorted iteration over mixed id types).
    """
    return str(tenant) if tenant is not None else UNTENANTED


@dataclass(frozen=True)
class Provenance:
    """One attribution identity: tenant, optional session, optional
    request id.

    Frozen and hashable, so it can key per-provenance aggregates and ride
    inside ``__slots__`` classes without lifecycle concerns.  Ordering is
    lexicographic over ``(label, session, request)``, giving every
    sorted-iteration site a deterministic order even for mixed
    None/str/int fields.
    """

    tenant: Optional[str] = None
    session: Optional[str] = None
    request: Optional[int] = None

    @property
    def label(self) -> str:
        """The tenant bucket this provenance bills to."""
        return tenant_label(self.tenant)

    def sort_key(self) -> tuple[str, str, int]:
        """Deterministic total order over provenances."""
        return (self.label, self.session or "",
                self.request if self.request is not None else -1)

    def as_dict(self) -> Dict[str, Any]:
        """Plain-data form (JSON-ready)."""
        return {"tenant": self.tenant, "session": self.session,
                "request": self.request}

    def __repr__(self) -> str:
        parts = [self.label]
        if self.session is not None:
            parts.append("session={}".format(self.session))
        if self.request is not None:
            parts.append("request={}".format(self.request))
        return "<Provenance {}>".format(" ".join(parts))
