"""The accounting ledger: sim events in, per-tenant attribution out.

:class:`AttributionLedger` consumes the closed loop's event stream —
submissions (:meth:`submit`), migrations (:meth:`migrate`) and
completions (:meth:`finish`), in nondecreasing event time per device —
and maintains three per-tenant accounts:

* **Occupancy** — resident device-memory bytes per ``(device, tenant)``,
  charged from a request's submission to its completion using the
  functional plane's real buffer footprints
  (:func:`repro.attribution.footprint.kernel_footprint_bytes`), with a
  running byte·seconds integral and peak.  The conservation invariant —
  per-device tenant bytes sum *exactly* to the device's total resident
  bytes — is checked at every event, not just at the end.
* **Induced delay** — each request's queueing delay (start − arrival)
  decomposed over the tenants whose outstanding work was *ahead of it*
  on its device when it was submitted (the ahead-of-me snapshot:
  admission is arrival-ordered, so work already outstanding at submit is
  what the request waited behind).  Shares are proportional to estimated
  outstanding seconds; an empty snapshot self-charges the victim.  Per
  ``(victim, aggressor)`` pair the ledger keeps the total induced
  seconds and a bounded-memory :class:`~repro.metrics.sketches.TailSketch`
  of per-request induced delay, so the audit can quote "tenant A's burst
  cost tenant B X ms of p99".
* **Migration costs** — each re-balance penalty is charged to the tenant
  with the most outstanding estimated work on the *source* device (the
  tenant whose backlog triggered the move), the migrant itself when no
  other tenant is outstanding; ties break lexicographically.

Memory is O(#tenants·#devices) occupancy cells plus O(#tenants²)
induced-delay cells plus the outstanding request set — never the stream
length — so the ledger composes with the PR 7 streaming plane
(:meth:`observe_record` is the
:class:`~repro.metrics.sketches.StreamingRecordSink` attribution hook).
:meth:`report` freezes everything into a plain-data
:class:`AttributionReport` (picklable: result caches store it).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.attribution.footprint import kernel_footprint_bytes
from repro.attribution.provenance import tenant_label
from repro.errors import SimulationError
from repro.metrics.fairness import safe_share
from repro.metrics.sketches import TailSketch


class _Outstanding:
    """One submitted-but-unfinished request, as the ledger tracks it."""

    __slots__ = ("label", "name", "device", "arrival", "est_seconds",
                 "footprint", "ahead")

    label: str
    name: str
    device: int
    arrival: float
    est_seconds: float
    footprint: int
    ahead: Dict[str, float]

    def __init__(self, label: str, name: str, device: int, arrival: float,
                 est_seconds: float, footprint: int,
                 ahead: Dict[str, float]) -> None:
        self.label = label
        self.name = name
        self.device = device
        self.arrival = arrival
        self.est_seconds = est_seconds
        self.footprint = footprint
        self.ahead = ahead


class _TenantWork:
    """Per-tenant work totals (requests, estimated/busy/queued seconds)."""

    __slots__ = ("requests", "est_seconds", "busy_seconds",
                 "queueing_seconds")

    requests: int
    est_seconds: float
    busy_seconds: float
    queueing_seconds: float

    def __init__(self) -> None:
        self.requests = 0
        self.est_seconds = 0.0
        self.busy_seconds = 0.0
        self.queueing_seconds = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {"requests": float(self.requests),
                "est_seconds": self.est_seconds,
                "busy_seconds": self.busy_seconds,
                "queueing_seconds": self.queueing_seconds}


class AttributionLedger:
    """Streaming per-tenant accounting over one closed-loop run.

    ``device_ids`` fixes the device axis (fleet ids, or the single
    device's name); ``footprint`` maps a kernel name to its resident
    byte count (the functional-plane default is right for the corpus;
    tests inject constants).  Event methods must be called in
    nondecreasing time per device — exactly the order
    :class:`~repro.sim.fleet.FleetSimulator` and the open-system
    harness produce.
    """

    def __init__(self, device_ids: Sequence[str],
                 footprint: Callable[[str], int] = kernel_footprint_bytes
                 ) -> None:
        if not device_ids:
            raise SimulationError("attribution needs at least one device")
        self.device_ids: List[str] = list(device_ids)
        self._footprint = footprint
        count = len(self.device_ids)
        self._outstanding: Dict[Any, _Outstanding] = {}
        self._resident: List[Dict[str, int]] = [{} for _ in range(count)]
        self._resident_total: List[int] = [0] * count
        self._peak: List[Dict[str, int]] = [{} for _ in range(count)]
        self._byte_seconds: List[Dict[str, float]] = [{} for _ in
                                                      range(count)]
        self._clock: List[float] = [0.0] * count
        self._tenants: Dict[str, None] = {}     # insertion-ordered set
        self._induced_total: Dict[Tuple[str, str], float] = {}
        self._induced_sketch: Dict[Tuple[str, str], TailSketch] = {}
        self._work: Dict[str, _TenantWork] = {}
        self._migration_cost: Dict[str, float] = {}
        self._observed_count: Dict[str, int] = {}
        self._observed_queueing: Dict[str, float] = {}
        self.events = 0
        self.requests = 0
        self.migrations = 0

    # -- event intake ------------------------------------------------------

    def submit(self, key: Any, name: str, tenant: Optional[str],
               device_index: int, arrival_time: float,
               est_seconds: float) -> None:
        """One request enters ``device_index`` at ``arrival_time``.

        ``est_seconds`` is the caller's service estimate on that device
        (the fleet loop's memoised estimator) — the weight its
        outstanding work contributes to later arrivals' ahead-of-me
        snapshots.
        """
        if key in self._outstanding:
            raise SimulationError(
                "attribution ledger saw request key {!r} twice".format(key))
        label = tenant_label(tenant)
        self._tenants.setdefault(label, None)
        self._work.setdefault(label, _TenantWork())
        work = self._work[label]
        work.requests += 1
        work.est_seconds += float(est_seconds)
        ahead: Dict[str, float] = {}
        for entry in self._outstanding.values():
            if entry.device == device_index:
                ahead[entry.label] = ahead.get(entry.label, 0.0) \
                    + entry.est_seconds
        footprint = int(self._footprint(name))
        self._outstanding[key] = _Outstanding(
            label, name, device_index, float(arrival_time),
            float(est_seconds), footprint, ahead)
        self._advance(device_index, float(arrival_time))
        self._add_bytes(device_index, label, footprint)
        self.events += 1
        self.requests += 1

    def migrate(self, key: Any, source: int, target: int, time: float,
                penalty: float) -> None:
        """A queued request moves ``source`` → ``target`` at ``time``;
        the ``penalty`` seconds are charged to the source device's
        dominant tenant (the backlog that triggered the move)."""
        entry = self._outstanding.get(key)
        if entry is None or entry.device != source:
            raise SimulationError(
                "attribution ledger cannot migrate unknown request "
                "{!r} from device {}".format(key, source))
        self._advance(source, float(time))
        self._advance(target, float(time))
        self._add_bytes(source, entry.label, -entry.footprint)
        self._add_bytes(target, entry.label, entry.footprint)
        # the triggering tenant: most outstanding estimated work on the
        # source device, the migrant excluded; ties lexicographic; the
        # migrant itself when nothing else is outstanding there
        totals: Dict[str, float] = {}
        for other_key, other in self._outstanding.items():
            if other.device == source and other_key != key:
                totals[other.label] = totals.get(other.label, 0.0) \
                    + other.est_seconds
        if totals:
            aggressor = min(totals, key=lambda t: (-totals[t], t))
        else:
            aggressor = entry.label
        self._migration_cost[aggressor] = \
            self._migration_cost.get(aggressor, 0.0) + float(penalty)
        # the request now also waits behind the target device's
        # outstanding work; fold it into the ahead-of-me snapshot
        for other in self._outstanding.values():
            if other.device == target and other is not entry:
                entry.ahead[other.label] = \
                    entry.ahead.get(other.label, 0.0) + other.est_seconds
        entry.device = target
        self.events += 1
        self.migrations += 1

    def finish(self, key: Any, start: float, finish: float) -> None:
        """One request completes: close its occupancy interval and
        decompose its queueing delay over its ahead-of-me snapshot."""
        entry = self._outstanding.pop(key, None)
        if entry is None:
            raise SimulationError(
                "attribution ledger cannot finish unknown request "
                "{!r}".format(key))
        self._advance(entry.device, float(finish))
        self._add_bytes(entry.device, entry.label, -entry.footprint)
        delay = max(0.0, float(start) - entry.arrival)
        victim = entry.label
        work = self._work[victim]
        work.queueing_seconds += delay
        work.busy_seconds += max(0.0, float(finish) - float(start))
        total_ahead = sum(entry.ahead.values())
        # one observation per known aggressor (0-share when absent from
        # the snapshot), so each pair sketch covers the victim's whole
        # request population from the aggressor's first appearance on
        for aggressor in sorted(self._tenants):
            if total_ahead > 0.0:
                share = delay * safe_share(
                    entry.ahead.get(aggressor, 0.0), total_ahead)
            else:
                share = delay if aggressor == victim else 0.0
            pair = (victim, aggressor)
            self._induced_total[pair] = \
                self._induced_total.get(pair, 0.0) + share
            sketch = self._induced_sketch.get(pair)
            if sketch is None:
                sketch = self._induced_sketch[pair] = TailSketch()
            sketch.observe(share)
        self.events += 1

    def observe_record(self, record: Any) -> None:
        """The :class:`~repro.metrics.sketches.StreamingRecordSink`
        attribution hook: per-tenant completed-request counts and
        queueing totals, for cross-checking the decomposition."""
        label = tenant_label(getattr(record, "tenant", None))
        self._observed_count[label] = self._observed_count.get(label, 0) + 1
        self._observed_queueing[label] = \
            self._observed_queueing.get(label, 0.0) \
            + float(record.queueing_delay)

    # -- occupancy internals ----------------------------------------------

    def _advance(self, device: int, time: float) -> None:
        """Integrate byte·seconds on ``device`` up to ``time`` (clamped
        monotone: harvest scan order may deliver same-time events a hair
        out of order across devices, never meaningfully backwards)."""
        now = max(time, self._clock[device])
        dt = now - self._clock[device]
        if dt > 0.0:
            integral = self._byte_seconds[device]
            for label, resident in self._resident[device].items():
                if resident:
                    integral[label] = integral.get(label, 0.0) \
                        + resident * dt
        self._clock[device] = now

    def _add_bytes(self, device: int, label: str, delta: int) -> None:
        resident = self._resident[device]
        value = resident.get(label, 0) + delta
        if value < 0:
            raise SimulationError(
                "attribution conservation violated: tenant {!r} resident "
                "bytes went negative on {}".format(
                    label, self.device_ids[device]))
        resident[label] = value
        self._resident_total[device] += delta
        peak = self._peak[device]
        if value > peak.get(label, 0):
            peak[label] = value
        self._byte_seconds[device].setdefault(label, 0.0)
        self._check_conservation(device)

    def _check_conservation(self, device: int) -> None:
        """Tenant bytes must sum *exactly* to the device total — checked
        at every event, in exact integer arithmetic."""
        total = sum(self._resident[device].values())
        if total != self._resident_total[device]:
            raise SimulationError(
                "attribution conservation violated on {}: per-tenant "
                "bytes sum to {} but {} bytes are resident".format(
                    self.device_ids[device], total,
                    self._resident_total[device]))

    # -- queries -----------------------------------------------------------

    def resident_by_tenant(self, device_index: int) -> Dict[str, int]:
        """Current resident bytes per tenant on one device (sorted)."""
        return {label: self._resident[device_index][label]
                for label in sorted(self._resident[device_index])}

    def total_resident(self, device_index: int) -> int:
        """Current total resident bytes on one device."""
        return self._resident_total[device_index]

    def tenants(self) -> List[str]:
        """Every tenant label seen so far, sorted."""
        return sorted(self._tenants)

    def state_cells(self) -> int:
        """Persistent accounting cells — the memory-bound witness: grows
        with #tenants·#devices + #tenants², never with request count."""
        return (sum(len(d) for d in self._byte_seconds)
                + sum(len(d) for d in self._resident)
                + sum(len(d) for d in self._peak)
                + len(self._induced_total) + len(self._induced_sketch)
                + len(self._work) + len(self._migration_cost)
                + len(self._observed_count) + len(self._observed_queueing))

    # -- the audit ---------------------------------------------------------

    def report(self) -> "AttributionReport":
        """Freeze the accounts into a plain-data audit report."""
        if self._outstanding:
            raise SimulationError(
                "{} requests still outstanding; the attribution report "
                "is only valid after the run drains".format(
                    len(self._outstanding)))
        horizon = max(self._clock) if self._clock else 0.0
        for device in range(len(self.device_ids)):
            self._advance(device, horizon)
        tenants = sorted(self._tenants)
        occupancy: Dict[str, Dict[str, Dict[str, float]]] = {}
        for index, device_id in enumerate(self.device_ids):
            per_tenant: Dict[str, Dict[str, float]] = {}
            for label in sorted(self._byte_seconds[index]):
                per_tenant[label] = {
                    "byte_seconds": self._byte_seconds[index][label],
                    "peak_bytes": float(self._peak[index].get(label, 0)),
                    "resident_bytes": float(
                        self._resident[index].get(label, 0)),
                }
            occupancy[device_id] = per_tenant
        byte_seconds_by_tenant = {
            label: sum(self._byte_seconds[index].get(label, 0.0)
                       for index in range(len(self.device_ids)))
            for label in tenants
        }
        total_byte_seconds = sum(byte_seconds_by_tenant.values())
        occupancy_share = {
            label: safe_share(byte_seconds_by_tenant[label],
                              total_byte_seconds)
            for label in tenants
        }
        induced_p99: Dict[str, Dict[str, float]] = {}
        induced_total: Dict[str, Dict[str, float]] = {}
        for victim in tenants:
            induced_p99[victim] = {}
            induced_total[victim] = {}
            for aggressor in tenants:
                pair = (victim, aggressor)
                induced_total[victim][aggressor] = \
                    self._induced_total.get(pair, 0.0)
                sketch = self._induced_sketch.get(pair)
                induced_p99[victim][aggressor] = \
                    sketch.summary().p99 if sketch is not None \
                    and sketch.count else 0.0
        return AttributionReport(
            devices=list(self.device_ids),
            tenants=tenants,
            occupancy=occupancy,
            occupancy_share=occupancy_share,
            induced_p99=induced_p99,
            induced_total=induced_total,
            work={label: self._work[label].as_dict() for label in tenants},
            migration_costs={label: self._migration_cost.get(label, 0.0)
                             for label in tenants},
            observed={label: {
                "requests": float(self._observed_count.get(label, 0)),
                "queueing_seconds":
                    self._observed_queueing.get(label, 0.0)}
                for label in sorted(self._observed_count)},
            requests=self.requests,
            migrations=self.migrations,
            makespan=horizon,
        )


class AttributionReport:
    """Plain-data audit of one attributed run (picklable, JSON-ready).

    ``induced_p99[victim][aggressor]`` is the p99 over the victim's
    requests of the delay seconds attributed to the aggressor —
    the fairness audit's "tenant A's burst cost tenant B X ms of p99";
    the diagonal is self-induced delay.  The three headline scalars
    back the METRICS registry entries:

    * :attr:`tenant_occupancy` — the largest tenant share of total
      byte·seconds (``tenant_occupancy`` metric);
    * :attr:`max_cross_tenant_induced_p99` — the largest off-diagonal
      induced p99 (``induced_delay_matrix`` metric);
    * :attr:`cross_tenant_induced_share` — the fraction of all queueing
      delay induced *across* tenants (``attribution_summary`` metric).
    """

    __slots__ = ("devices", "tenants", "occupancy", "occupancy_share",
                 "induced_p99", "induced_total", "work", "migration_costs",
                 "observed", "requests", "migrations", "makespan")

    devices: List[str]
    tenants: List[str]
    occupancy: Dict[str, Dict[str, Dict[str, float]]]
    occupancy_share: Dict[str, float]
    induced_p99: Dict[str, Dict[str, float]]
    induced_total: Dict[str, Dict[str, float]]
    work: Dict[str, Dict[str, float]]
    migration_costs: Dict[str, float]
    observed: Dict[str, Dict[str, float]]
    requests: int
    migrations: int
    makespan: float

    def __init__(self, devices: List[str], tenants: List[str],
                 occupancy: Dict[str, Dict[str, Dict[str, float]]],
                 occupancy_share: Dict[str, float],
                 induced_p99: Dict[str, Dict[str, float]],
                 induced_total: Dict[str, Dict[str, float]],
                 work: Dict[str, Dict[str, float]],
                 migration_costs: Dict[str, float],
                 observed: Dict[str, Dict[str, float]],
                 requests: int, migrations: int, makespan: float) -> None:
        self.devices = devices
        self.tenants = tenants
        self.occupancy = occupancy
        self.occupancy_share = occupancy_share
        self.induced_p99 = induced_p99
        self.induced_total = induced_total
        self.work = work
        self.migration_costs = migration_costs
        self.observed = observed
        self.requests = requests
        self.migrations = migrations
        self.makespan = makespan

    # -- headline scalars (the METRICS registry entries) -------------------

    @property
    def tenant_occupancy(self) -> float:
        """Largest tenant share of total byte·seconds (0 when empty)."""
        if not self.occupancy_share:
            return 0.0
        return max(self.occupancy_share.values())

    @property
    def max_cross_tenant_induced_p99(self) -> float:
        """Largest off-diagonal induced-delay p99, in seconds."""
        worst = 0.0
        for victim in self.tenants:
            for aggressor in self.tenants:
                if aggressor != victim:
                    value = self.induced_p99[victim][aggressor]
                    if value > worst:
                        worst = value
        return worst

    @property
    def cross_tenant_induced_share(self) -> float:
        """Fraction of all queueing delay induced across tenants."""
        cross = 0.0
        total = 0.0
        for victim in self.tenants:
            for aggressor in self.tenants:
                value = self.induced_total[victim][aggressor]
                total += value
                if aggressor != victim:
                    cross += value
        return safe_share(cross, total)

    def aggressor_ranking(self) -> List[Tuple[str, float]]:
        """Tenants ranked by total delay induced *on others*, worst
        first (ties lexicographic) — the audit's aggressor finder."""
        induced_on_others = {
            aggressor: sum(self.induced_total[victim][aggressor]
                           for victim in self.tenants
                           if victim != aggressor)
            for aggressor in self.tenants
        }
        return sorted(induced_on_others.items(),
                      key=lambda item: (-item[1], item[0]))

    def to_dict(self) -> Dict[str, Any]:
        """Canonical plain-data form (deterministic key order)."""
        return {
            "devices": list(self.devices),
            "tenants": list(self.tenants),
            "occupancy": self.occupancy,
            "occupancy_share": self.occupancy_share,
            "induced_p99": self.induced_p99,
            "induced_total": self.induced_total,
            "work": self.work,
            "migration_costs": self.migration_costs,
            "observed": self.observed,
            "requests": self.requests,
            "migrations": self.migrations,
            "makespan": self.makespan,
            "tenant_occupancy": self.tenant_occupancy,
            "max_cross_tenant_induced_p99":
                self.max_cross_tenant_induced_p99,
            "cross_tenant_induced_share": self.cross_tenant_induced_share,
        }

    def __repr__(self) -> str:
        return ("<AttributionReport {} tenants x {} devices, {} reqs, "
                "cross-share={:.2f}>".format(
                    len(self.tenants), len(self.devices), self.requests,
                    self.cross_tenant_induced_share))
