"""Per-tenant attribution plane: provenance tags, accounting, audits.

Three layers (see ``docs/ATTRIBUTION.md``):

* :mod:`repro.attribution.provenance` — the identity value type
  (:class:`Provenance`) threaded through interpreter buffers
  (:class:`repro.interp.memory.MemoryRegion`), the accelOS memory
  manager and kernel launch stats.
* :mod:`repro.attribution.footprint` — per-kernel resident-byte
  footprints derived from the functional plane's real argument sets.
* :mod:`repro.attribution.ledger` — the streaming event consumer that
  turns placements, migrations and completions into per-tenant
  occupancy, induced-delay and migration-cost accounts
  (:class:`AttributionLedger`) and freezes them into the fairness-audit
  report (:class:`AttributionReport`).
"""

from repro.attribution.footprint import FootprintFn, kernel_footprint_bytes
from repro.attribution.ledger import AttributionLedger, AttributionReport
from repro.attribution.provenance import (
    UNTENANTED, Provenance, tenant_label)

__all__ = [
    "AttributionLedger", "AttributionReport", "FootprintFn",
    "Provenance", "UNTENANTED", "kernel_footprint_bytes", "tenant_label",
]
