"""Per-kernel device-buffer footprints, from the functional plane.

The timing simulator deals in :class:`~repro.sim.spec.KernelExecSpec`
objects — work-group counts and costs, no buffers — so the attribution
ledger needs an independent, deterministic answer to "how many bytes
does one request of kernel X keep resident?".  The functional plane
already knows: :mod:`repro.workloads.datasets` builds a real argument
set per corpus kernel (the arrays the equivalence suite uploads through
:func:`repro.interp.memory.alloc_buffer`), and the sum of those buffer
sizes is the kernel's device footprint.

Footprints are memoised per kernel name — dataset builders allocate
real numpy arrays, so they run once, not once per arrival — and the
builder draws from :func:`repro.util.make_rng` with a fixed seed, so
the byte counts are a pure function of the kernel name.
"""

from __future__ import annotations

from typing import Callable, Dict

# name -> bytes, filled on first use (builders allocate real arrays)
_FOOTPRINTS: Dict[str, int] = {}

FootprintFn = Callable[[str], int]


def kernel_footprint_bytes(name: str) -> int:
    """Device-buffer bytes one request of corpus kernel ``name`` keeps
    resident (sum of its functional instance's in/out buffer sizes).

    Deterministic: the instance is built from a fixed seed, so the same
    name always yields the same byte count.  Unknown names raise
    ``KeyError`` listing nothing — callers validate names upstream
    (arrival generators only emit registered profile names).
    """
    cached = _FOOTPRINTS.get(name)
    if cached is not None:
        return cached
    # lazy: dataset builders import numpy workloads; the attribution
    # package stays importable without touching them until first use
    from repro.workloads.datasets import build_instance
    instance = build_instance(name, seed=0)
    total = 0
    for kind, value in instance.args:
        if kind in ("in", "out"):
            total += int(value.nbytes)
    _FOOTPRINTS[name] = total
    return total
