"""Dead code elimination: drop unused side-effect-free instructions.

Loads are removed when unused (they have no observable effect in our memory
model); allocas are removed once nothing references them.  Iterates to a
fixed point within the pass.
"""

from __future__ import annotations

from repro.ir.passes.manager import FunctionPass


class DeadCodeEliminationPass(FunctionPass):
    name = "dce"

    def run_on_function(self, func, module):
        changed = False
        while True:
            used = set()
            for insn in func.instructions():
                for op in insn.operands:
                    used.add(op)
            removed = False
            for block in func.blocks:
                kept = []
                for insn in block.instructions:
                    dead = (
                        not insn.has_side_effects()
                        and insn not in used
                        and not insn.is_terminator()
                    )
                    if dead:
                        removed = True
                    else:
                        kept.append(insn)
                block.instructions = kept
            if not removed:
                break
            changed = True
        return changed
