"""Optimisation and analysis passes over the IR.

The accelOS JIT (paper fig. 7b) instantiates "an LLVM Pass Manager" and loads
its compiler passes; :func:`standard_pipeline` is our equivalent of the
always-on pipeline (constant folding, CFG simplification, DCE), and the
transformation-specific passes (inlining after the scheduling rewrite,
resource analysis for §3) are composed by :mod:`repro.accelos`.
"""

from repro.ir.passes.manager import FunctionPass, ModulePass, PassManager
from repro.ir.passes.constfold import ConstantFoldPass
from repro.ir.passes.dce import DeadCodeEliminationPass
from repro.ir.passes.simplifycfg import SimplifyCFGPass
from repro.ir.passes.inliner import InlinePass
from repro.ir.passes.resources import ResourceAnalysis, ResourceUsage
from repro.ir.passes.count import count_instructions, count_kernel_instructions

__all__ = [
    "FunctionPass", "ModulePass", "PassManager",
    "ConstantFoldPass", "DeadCodeEliminationPass", "SimplifyCFGPass",
    "InlinePass", "ResourceAnalysis", "ResourceUsage",
    "count_instructions", "count_kernel_instructions",
    "standard_pipeline",
]


def standard_pipeline():
    """The default optimisation pipeline applied to every compiled module."""
    pm = PassManager()
    pm.add(ConstantFoldPass())
    pm.add(SimplifyCFGPass())
    pm.add(DeadCodeEliminationPass())
    return pm
