"""Instruction counting — the key for §6.4 adaptive scheduling.

The paper keys its dequeue chunk size on "the number of kernel instructions
in LLVM IR"; this is our equivalent measure, counted on the *computation*
function (the original kernel body), excluding allocas which are not
executed work.
"""

from __future__ import annotations


def count_instructions(func, include_allocas=False):
    """Count IR instructions in ``func``."""
    total = 0
    for insn in func.instructions():
        if insn.opcode == "alloca" and not include_allocas:
            continue
        total += 1
    return total


def count_kernel_instructions(module, kernel_name):
    """Instruction count of a kernel plus everything it (transitively) calls."""
    seen = set()

    def visit(func):
        if func.name in seen:
            return 0
        seen.add(func.name)
        total = count_instructions(func)
        for insn in func.instructions():
            if insn.opcode == "call" and not insn.is_intrinsic():
                total += visit(insn.callee)
        return total

    return visit(module.get(kernel_name))
