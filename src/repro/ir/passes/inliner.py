"""Function inlining.

The paper relies on the vendor GPU compilers' default inlining to erase the
register overhead of the scheduling rewrite (§6.5).  We provide the same
behaviour: :class:`InlinePass` inlines every direct call to a non-kernel
function (GPU toolchains inline everything by default since device code has
no call stack guarantees).
"""

from __future__ import annotations

from repro.errors import IRError
from repro.ir import instructions as I
from repro.ir.clone import clone_function
from repro.ir.passes.manager import ModulePass
from repro.ir.values import Constant
from repro.kernelc import types as T


def inline_call(func, block, call_index, module=None):
    """Inline the call at ``block.instructions[call_index]`` into ``func``.

    Returns the continuation block (useful for chained inlining).
    """
    call = block.instructions[call_index]
    if not isinstance(call, I.Call) or call.is_intrinsic():
        raise IRError("inline_call target is not a direct call")
    callee = call.callee

    # Clone the callee so we can splice its blocks into the caller.
    cloned, _ = clone_function(callee, new_name="{}.inl".format(callee.name))

    # Rebind cloned arguments: store actual arguments into fresh slots (or
    # substitute directly — arguments are read through allocas already, and
    # pointer args were bound by value during lowering, so substitution is
    # always safe here).
    substitution = {}
    for cloned_arg, actual in zip(cloned.arguments, call.operands):
        substitution[cloned_arg] = actual
    for insn in cloned.instructions():
        insn.operands = [substitution.get(op, op) for op in insn.operands]

    # Result slot for non-void callees.
    result_slot = None
    if not callee.return_type.is_void():
        result_slot = I.Alloca(callee.return_type, 1, T.PRIVATE)
        result_slot.name = func.unique_name("inlret")
        entry = func.entry
        pos = 0
        for i, existing in enumerate(entry.instructions):
            if existing.opcode == "alloca":
                pos = i + 1
            else:
                break
        result_slot.parent = entry
        entry.instructions.insert(pos, result_slot)
        if entry is block:
            call_index = block.instructions.index(call)

    # Split the caller block after the call.
    continuation = func.add_block("{}.cont".format(block.name.rsplit(".", 1)[0]))
    continuation.instructions = block.instructions[call_index + 1:]
    for insn in continuation.instructions:
        insn.parent = continuation
    block.instructions = block.instructions[:call_index]

    # Hoist the callee's allocas into the caller entry (private slots must
    # execute once; local allocas keep work-group shared semantics).
    callee_blocks = list(cloned.blocks)
    entry_allocas = []
    for cblock in callee_blocks:
        remaining = []
        for insn in cblock.instructions:
            if insn.opcode == "alloca":
                entry_allocas.append(insn)
            else:
                remaining.append(insn)
        cblock.instructions = remaining
    entry = func.entry
    pos = 0
    for i, existing in enumerate(entry.instructions):
        if existing.opcode == "alloca":
            pos = i + 1
        else:
            break
    for alloca in entry_allocas:
        alloca.parent = entry
        entry.instructions.insert(pos, alloca)
        pos += 1
    if entry is block:
        pass  # indexes no longer needed; block already truncated

    # Rewrite rets in the cloned body: store result, branch to continuation.
    for cblock in callee_blocks:
        term = cblock.terminator
        if isinstance(term, I.Ret):
            cblock.instructions.pop()
            if term.value is not None and result_slot is not None:
                store = I.Store(result_slot, term.value)
                store.parent = cblock
                cblock.instructions.append(store)
            br = I.Br(continuation)
            br.parent = cblock
            cblock.instructions.append(br)

    # Splice callee blocks into the caller after ``block``.
    insert_at = func.blocks.index(block) + 1
    for offset, cblock in enumerate(callee_blocks):
        cblock.parent = func
        cblock.name = func.unique_name("inl")
        func.blocks.insert(insert_at + offset, cblock)
    func.blocks.remove(continuation)
    func.blocks.insert(insert_at + len(callee_blocks), continuation)

    # Branch from the split point into the inlined entry.
    br = I.Br(callee_blocks[0])
    br.parent = block
    block.instructions.append(br)

    # Replace uses of the call's value with a load of the result slot.
    if result_slot is not None:
        load = I.Load(result_slot)
        load.name = func.unique_name("inlval")
        load.parent = continuation
        continuation.instructions.insert(0, load)
        for other in func.instructions():
            if other is not load:
                other.replace_operand(call, load)
    return continuation


class InlinePass(ModulePass):
    """Inline all direct calls to non-kernel functions, bottom-up."""

    name = "inline"

    def __init__(self, max_rounds=32):
        self.max_rounds = max_rounds

    def run_on_module(self, module):
        changed = False
        for _ in range(self.max_rounds):
            site = self._find_site(module)
            if site is None:
                return changed
            func, block, index = site
            inline_call(func, block, index, module)
            changed = True
        return changed

    def _find_site(self, module):
        for func in module.functions.values():
            for block in func.blocks:
                for i, insn in enumerate(block.instructions):
                    if isinstance(insn, I.Call) and not insn.is_intrinsic():
                        # Only inline calls whose callee is leaf-resolvable;
                        # recursion is rejected (OpenCL forbids it anyway).
                        if insn.callee is func:
                            raise IRError("recursive call to {} cannot be inlined"
                                          .format(func.name))
                        return func, block, i
        return None
