"""Constant folding over binops, comparisons, casts and selects.

Folding is semantics-preserving with respect to the interpreter: integer
arithmetic wraps to the operand width and division by zero is left unfolded
(it must trap at run time, not compile time).
"""

from __future__ import annotations

from repro.ir import instructions as I
from repro.ir.passes.manager import FunctionPass
from repro.ir.values import Constant
from repro.kernelc import types as T


def _wrap_int(value, ty):
    bits, signed = T.SCALAR_INFO[ty.kind]
    if ty.is_bool():
        return bool(value)
    mask = (1 << bits) - 1
    value &= mask
    if signed and value >= (1 << (bits - 1)):
        value -= 1 << bits
    return value


def fold_binop(op, lhs, rhs, ty):
    """Fold constants; returns a Constant or None when not foldable."""
    a, b = lhs.value, rhs.value
    if ty.is_float():
        try:
            result = {
                "add": lambda: a + b, "sub": lambda: a - b,
                "mul": lambda: a * b,
                "div": lambda: a / b if b != 0.0 else None,
                "rem": lambda: None,
                "and": lambda: None, "or": lambda: None, "xor": lambda: None,
                "shl": lambda: None, "shr": lambda: None,
            }[op]()
        except OverflowError:
            return None
        if result is None:
            return None
        return Constant(ty, result)
    a, b = int(a), int(b)
    if op in ("div", "rem") and b == 0:
        return None  # must trap at run time
    if op == "div":
        # C semantics: truncate toward zero.
        result = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            result = -result
    elif op == "rem":
        quotient = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            quotient = -quotient
        result = a - quotient * b
    elif op == "add":
        result = a + b
    elif op == "sub":
        result = a - b
    elif op == "mul":
        result = a * b
    elif op == "and":
        result = a & b
    elif op == "or":
        result = a | b
    elif op == "xor":
        result = a ^ b
    elif op == "shl":
        result = a << (b & 63)
    elif op == "shr":
        result = a >> (b & 63)
    else:
        return None
    return Constant(ty, _wrap_int(result, ty))


def fold_cmp(op, lhs, rhs):
    a, b = lhs.value, rhs.value
    result = {
        "eq": a == b, "ne": a != b, "lt": a < b,
        "le": a <= b, "gt": a > b, "ge": a >= b,
    }[op]
    return Constant(T.BOOL, result)


def fold_cast(value, to_type):
    if not to_type.is_scalar():
        return None
    v = value.value
    if to_type.is_float():
        return Constant(to_type, float(v))
    return Constant(to_type, _wrap_int(int(v), to_type))


class ConstantFoldPass(FunctionPass):
    name = "constfold"

    def run_on_function(self, func, module):
        changed = False
        replacements = {}
        for block in func.blocks:
            new_instructions = []
            for insn in block.instructions:
                # Rewrite operands through earlier replacements first.
                insn.operands = [replacements.get(op, op) for op in insn.operands]
                folded = self._try_fold(insn)
                if folded is not None:
                    replacements[insn] = folded
                    changed = True
                else:
                    new_instructions.append(insn)
            block.instructions = new_instructions
        if replacements:
            for block in func.blocks:
                for insn in block.instructions:
                    insn.operands = [replacements.get(op, op) for op in insn.operands]
        return changed

    def _try_fold(self, insn):
        ops = insn.operands
        if isinstance(insn, I.BinOp) and all(isinstance(o, Constant) for o in ops):
            return fold_binop(insn.op, ops[0], ops[1], insn.type)
        if isinstance(insn, I.Cmp) and all(isinstance(o, Constant) for o in ops):
            return fold_cmp(insn.op, ops[0], ops[1])
        if isinstance(insn, I.Cast) and isinstance(ops[0], Constant):
            return fold_cast(ops[0], insn.type)
        if isinstance(insn, I.Select) and isinstance(ops[0], Constant):
            return ops[1] if ops[0].value else ops[2]
        return None
