"""Static resource-usage analysis (paper §3 inputs).

The sharing algorithm needs, per kernel:

* ``registers`` — registers per work-item.  Estimated as the maximum number
  of simultaneously-live IR values (linear-scan liveness over a reverse
  traversal, block-local plus cross-block live sets) plus an ABI baseline.
  This mirrors what vendor compilers report per kernel.
* ``local_memory`` — bytes of work-group local memory: sized ``local``
  allocas plus a host-supplied size for ``local`` pointer parameters.
* work-group ``threads`` come from the launch configuration, not the code.
"""

from __future__ import annotations

from repro.ir import instructions as I
from repro.kernelc import types as T

# Registers every work-item consumes regardless of the kernel body
# (ids, stack pointer equivalents); matches typical SASS/GCN baselines.
ABI_BASELINE_REGISTERS = 4


class ResourceUsage:
    """Static resource summary of one kernel."""

    __slots__ = ("registers", "local_memory_bytes", "instruction_count")

    def __init__(self, registers, local_memory_bytes, instruction_count):
        self.registers = registers
        self.local_memory_bytes = local_memory_bytes
        self.instruction_count = instruction_count

    def __repr__(self):
        return ("ResourceUsage(regs={}, lmem={}B, insns={})"
                .format(self.registers, self.local_memory_bytes,
                        self.instruction_count))


def _type_size(ty):
    """Storage size in bytes of a scalar or pointer type."""
    if ty.is_pointer():
        return 8
    return max(1, ty.bits // 8)


def _registers_for_type(ty):
    """32-bit register slots a value of ``ty`` occupies."""
    if ty.is_pointer():
        return 2
    if ty.is_void():
        return 0
    return max(1, ty.bits // 32)


def estimate_registers(func):
    """Max-live-values estimate of per-work-item register usage."""
    # Cross-block liveness: values used in a different block than their
    # definition are conservatively live for the whole function.
    def_block = {}
    for block in func.blocks:
        for insn in block.instructions:
            def_block[insn] = block

    global_live = set()
    for block in func.blocks:
        for insn in block.instructions:
            for op in insn.operands:
                if isinstance(op, I.Instruction) and def_block.get(op) is not block:
                    global_live.add(op)

    global_regs = sum(_registers_for_type(v.type) for v in global_live)

    max_block_live = 0
    for block in func.blocks:
        last_use = {}
        for i, insn in enumerate(block.instructions):
            for op in insn.operands:
                if isinstance(op, I.Instruction) and def_block.get(op) is block:
                    last_use[op] = i
        live = 0
        peak = 0
        ends_at = {}
        for i, insn in enumerate(block.instructions):
            if insn in last_use and not insn.type.is_void():
                live += _registers_for_type(insn.type)
                ends_at.setdefault(last_use[insn], []).append(insn)
            peak = max(peak, live)
            for dead in ends_at.get(i, []):
                live -= _registers_for_type(dead.type)
        max_block_live = max(max_block_live, peak)

    return ABI_BASELINE_REGISTERS + global_regs + max_block_live


def estimate_local_memory(func, local_arg_sizes=None):
    """Bytes of work-group local memory used by ``func``.

    ``local_arg_sizes`` maps parameter names to the byte sizes the host
    passed via ``clSetKernelArg`` (local pointer arguments have host-decided
    sizes — the compiler cannot know them).
    """
    local_arg_sizes = local_arg_sizes or {}
    total = 0
    for insn in func.instructions():
        if isinstance(insn, I.Alloca) and insn.address_space == T.LOCAL:
            total += insn.count * _type_size(insn.allocated_type)
    for arg in func.arguments:
        if arg.type.is_pointer() and arg.type.address_space == T.LOCAL:
            total += local_arg_sizes.get(arg.name, 0)
    return total


class ResourceAnalysis:
    """Analysis facade producing :class:`ResourceUsage` per kernel."""

    def __init__(self, local_arg_sizes=None):
        self.local_arg_sizes = local_arg_sizes or {}

    def analyze(self, func):
        return ResourceUsage(
            registers=estimate_registers(func),
            local_memory_bytes=estimate_local_memory(func, self.local_arg_sizes),
            instruction_count=func.instruction_count(),
        )
