"""Pass manager mirroring the paper's use of the LLVM PassManager."""

from __future__ import annotations


class FunctionPass:
    """A pass run once per function; returns True if it changed anything."""

    name = "function-pass"

    def run_on_function(self, func, module):
        raise NotImplementedError


class ModulePass:
    """A pass run once per module; returns True if it changed anything."""

    name = "module-pass"

    def run_on_module(self, module):
        raise NotImplementedError


class PassManager:
    """Runs a pass sequence, optionally iterating to a fixed point."""

    def __init__(self, max_iterations=4):
        self.passes = []
        self.max_iterations = max_iterations

    def add(self, pass_):
        self.passes.append(pass_)
        return self

    def run(self, module):
        """Run all passes over ``module``; repeat while anything changes."""
        any_change = False
        for _ in range(self.max_iterations):
            changed = False
            for pass_ in self.passes:
                if isinstance(pass_, ModulePass):
                    changed |= bool(pass_.run_on_module(module))
                else:
                    for func in list(module.functions.values()):
                        changed |= bool(pass_.run_on_function(func, module))
            any_change |= changed
            if not changed:
                break
        return any_change
