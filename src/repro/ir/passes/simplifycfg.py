"""CFG simplification: fold constant branches, drop unreachable blocks,
merge single-predecessor/single-successor block pairs."""

from __future__ import annotations

from repro.ir import instructions as I
from repro.ir.passes.manager import FunctionPass
from repro.ir.values import Constant


class SimplifyCFGPass(FunctionPass):
    name = "simplifycfg"

    def run_on_function(self, func, module):
        changed = False
        changed |= self._fold_constant_branches(func)
        changed |= self._remove_unreachable(func)
        changed |= self._merge_blocks(func)
        return changed

    def _fold_constant_branches(self, func):
        changed = False
        for block in func.blocks:
            term = block.terminator
            if isinstance(term, I.CondBr) and isinstance(term.cond, Constant):
                target = term.then_block if term.cond.value else term.else_block
                block.instructions[-1] = I.Br(target)
                block.instructions[-1].parent = block
                changed = True
            elif isinstance(term, I.CondBr) and term.then_block is term.else_block:
                block.instructions[-1] = I.Br(term.then_block)
                block.instructions[-1].parent = block
                changed = True
        return changed

    def _remove_unreachable(self, func):
        reachable = func.reachable_blocks()
        if len(reachable) == len(func.blocks):
            return False
        func.blocks = [b for b in func.blocks if b in reachable]
        return True

    def _merge_blocks(self, func):
        """Merge ``a -> b`` when a ends in an unconditional br and b has a as
        its only predecessor."""
        changed = False
        while True:
            preds = func.predecessors()
            merged = False
            for block in func.blocks:
                term = block.terminator
                if not isinstance(term, I.Br):
                    continue
                succ = term.target
                if succ is block or succ is func.entry:
                    continue
                if len(preds[succ]) != 1:
                    continue
                # splice: drop the br, absorb succ's instructions
                block.instructions.pop()
                for insn in succ.instructions:
                    insn.parent = block
                    block.instructions.append(insn)
                func.blocks.remove(succ)
                merged = True
                changed = True
                break
            if not merged:
                return changed
