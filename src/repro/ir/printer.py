"""Textual IR printer (SPIR-like assembly for humans, tests and examples)."""

from __future__ import annotations

from repro.ir import instructions as I
from repro.ir.values import Argument, Constant, Undef


class _Namer:
    """Assigns stable %N names to unnamed values for printing."""

    def __init__(self):
        self.names = {}
        self.counter = 0

    def name(self, value):
        if isinstance(value, Constant):
            return value.short()
        if isinstance(value, Undef):
            return value.short()
        if value not in self.names:
            if value.name:
                self.names[value] = "%{}".format(value.name)
            else:
                self.names[value] = "%{}".format(self.counter)
                self.counter += 1
        return self.names[value]


def _format_instruction(insn, namer):
    n = namer.name
    if isinstance(insn, I.Alloca):
        out = "{} = alloca {} x {} [{}]".format(
            n(insn), insn.count, insn.allocated_type, insn.address_space)
    elif isinstance(insn, I.Load):
        out = "{} = load {}".format(n(insn), n(insn.pointer))
    elif isinstance(insn, I.Store):
        out = "store {} -> {}".format(n(insn.value), n(insn.pointer))
    elif isinstance(insn, I.PtrAdd):
        out = "{} = ptradd {}, {}".format(n(insn), n(insn.base), n(insn.index))
    elif isinstance(insn, I.BinOp):
        out = "{} = {} {} {}, {}".format(n(insn), insn.op, insn.type,
                                         n(insn.lhs), n(insn.rhs))
    elif isinstance(insn, I.Cmp):
        out = "{} = cmp {} {}, {}".format(n(insn), insn.op, n(insn.lhs), n(insn.rhs))
    elif isinstance(insn, I.Cast):
        out = "{} = cast {} to {}".format(n(insn), n(insn.value), insn.type)
    elif isinstance(insn, I.Select):
        out = "{} = select {}, {}, {}".format(
            n(insn), n(insn.operands[0]), n(insn.operands[1]), n(insn.operands[2]))
    elif isinstance(insn, I.Call):
        args = ", ".join(n(a) for a in insn.operands)
        target = insn.callee_name
        if insn.type.is_void():
            out = "call @{}({})".format(target, args)
        else:
            out = "{} = call {} @{}({})".format(n(insn), insn.type, target, args)
    elif isinstance(insn, I.AtomicRMW):
        args = ", ".join(n(op) for op in insn.operands)
        out = "{} = atomicrmw {} {}".format(n(insn), insn.op, args)
    elif isinstance(insn, I.Barrier):
        out = "barrier {}".format(n(insn.operands[0]))
    elif isinstance(insn, I.Br):
        out = "br {}".format(insn.target.name)
    elif isinstance(insn, I.CondBr):
        out = "condbr {}, {}, {}".format(
            n(insn.cond), insn.then_block.name, insn.else_block.name)
    elif isinstance(insn, I.Ret):
        out = "ret" if insn.value is None else "ret {}".format(n(insn.value))
    else:
        out = "<unknown {}>".format(insn.opcode)
    return out


def print_function(func):
    """Render one function as SPIR-like text."""
    namer = _Namer()
    kind = "kernel" if func.is_kernel else "func"
    params = ", ".join("{} %{}".format(a.type, a.name) for a in func.arguments)
    lines = ["{} {} @{}({}) {{".format(kind, func.return_type, func.name, params)]
    for block in func.blocks:
        lines.append("{}:".format(block.name))
        for insn in block.instructions:
            lines.append("  " + _format_instruction(insn, namer))
    lines.append("}")
    return "\n".join(lines)


def print_module(module):
    """Render a whole module as SPIR-like text."""
    parts = ["; module {}".format(module.name)]
    for func in module.functions.values():
        parts.append(print_function(func))
    return "\n\n".join(parts)
