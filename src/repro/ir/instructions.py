"""IR instruction set.

A deliberately small, fully typed instruction set sufficient for the OpenCL-C
subset and the accelOS transformation:

==============  ============================================================
opcode          meaning
==============  ============================================================
``alloca``      reserve ``count`` elements of ``allocated_type``; private
                allocas are per work-item, ``local`` allocas are per
                work-group (OpenCL shared arrays)
``load``        read through a pointer
``store``       write through a pointer
``ptradd``      pointer displacement by an element index (flat GEP)
``binop``       arithmetic/bitwise op, semantics chosen by operand type
``cmp``         comparison producing ``bool``
``cast``        scalar conversions and pointer bitcasts
``select``      ternary select (no control flow)
``call``        direct call to a :class:`Function` or named intrinsic
``atomicrmw``   atomic read-modify-write through a pointer
``barrier``     work-group barrier
``br``          unconditional branch
``condbr``      conditional branch
``ret``         function return
==============  ============================================================
"""

from __future__ import annotations

from repro.errors import IRError
from repro.ir.values import Value
from repro.kernelc import types as T

TERMINATORS = ("br", "condbr", "ret")

BINOPS = ("add", "sub", "mul", "div", "rem", "and", "or", "xor", "shl", "shr")
CMPOPS = ("eq", "ne", "lt", "le", "gt", "ge")
ATOMIC_OPS = ("add", "sub", "min", "max", "xchg", "inc", "dec", "cmpxchg")


class Instruction(Value):
    """Base class: an operation that is also a value (its result)."""

    __slots__ = ("opcode", "operands", "parent")

    def __init__(self, opcode, type_, operands, name=""):
        super().__init__(type_, name)
        self.opcode = opcode
        self.operands = list(operands)
        self.parent = None  # owning BasicBlock, set on insertion

    def is_terminator(self):
        return self.opcode in TERMINATORS

    def has_side_effects(self):
        """Conservative: may this instruction affect observable state?"""
        return self.opcode in ("store", "call", "atomicrmw", "barrier",
                               "br", "condbr", "ret")

    def replace_operand(self, old, new):
        self.operands = [new if op is old else op for op in self.operands]

    def __repr__(self):
        return "<{} {}>".format(self.opcode, self.name or hex(id(self)))


class Alloca(Instruction):
    __slots__ = ("allocated_type", "count", "address_space")

    def __init__(self, allocated_type, count=1, address_space=T.PRIVATE, name=""):
        ptr = T.PointerType(allocated_type, address_space)
        super().__init__("alloca", ptr, [], name)
        self.allocated_type = allocated_type
        self.count = count
        self.address_space = address_space


class Load(Instruction):
    def __init__(self, pointer, name=""):
        if not pointer.type.is_pointer():
            raise IRError("load requires a pointer, got {}".format(pointer.type))
        super().__init__("load", pointer.type.pointee, [pointer], name)

    @property
    def pointer(self):
        return self.operands[0]


class Store(Instruction):
    def __init__(self, pointer, value):
        if not pointer.type.is_pointer():
            raise IRError("store requires a pointer, got {}".format(pointer.type))
        super().__init__("store", T.VOID, [pointer, value])

    @property
    def pointer(self):
        return self.operands[0]

    @property
    def value(self):
        return self.operands[1]


class PtrAdd(Instruction):
    """``result = base + index`` in units of the pointee type."""

    def __init__(self, base, index, name=""):
        if not base.type.is_pointer():
            raise IRError("ptradd requires a pointer base")
        super().__init__("ptradd", base.type, [base, index], name)

    @property
    def base(self):
        return self.operands[0]

    @property
    def index(self):
        return self.operands[1]


class BinOp(Instruction):
    __slots__ = ("op",)

    def __init__(self, op, lhs, rhs, type_, name=""):
        if op not in BINOPS:
            raise IRError("unknown binop {!r}".format(op))
        super().__init__("binop", type_, [lhs, rhs], name)
        self.op = op

    @property
    def lhs(self):
        return self.operands[0]

    @property
    def rhs(self):
        return self.operands[1]


class Cmp(Instruction):
    __slots__ = ("op",)

    def __init__(self, op, lhs, rhs, name=""):
        if op not in CMPOPS:
            raise IRError("unknown cmp {!r}".format(op))
        super().__init__("cmp", T.BOOL, [lhs, rhs], name)
        self.op = op

    @property
    def lhs(self):
        return self.operands[0]

    @property
    def rhs(self):
        return self.operands[1]


class Cast(Instruction):
    def __init__(self, value, to_type, name=""):
        super().__init__("cast", to_type, [value], name)

    @property
    def value(self):
        return self.operands[0]


class Select(Instruction):
    def __init__(self, cond, then, otherwise, name=""):
        super().__init__("select", then.type, [cond, then, otherwise], name)


class Call(Instruction):
    """Direct call. ``callee`` is a Function or an intrinsic name string.

    Intrinsics cover work-item queries (``get_global_id``...), math builtins
    and anything else resolved by the execution backend rather than by
    linkage.
    """

    __slots__ = ("callee",)

    def __init__(self, callee, args, return_type, name=""):
        super().__init__("call", return_type, list(args), name)
        self.callee = callee

    @property
    def callee_name(self):
        return self.callee if isinstance(self.callee, str) else self.callee.name

    def is_intrinsic(self):
        return isinstance(self.callee, str)


class AtomicRMW(Instruction):
    __slots__ = ("op",)

    def __init__(self, op, pointer, value=None, comparand=None, name=""):
        if op not in ATOMIC_OPS:
            raise IRError("unknown atomic op {!r}".format(op))
        if not pointer.type.is_pointer():
            raise IRError("atomicrmw requires a pointer")
        operands = [pointer]
        if value is not None:
            operands.append(value)
        if comparand is not None:
            operands.append(comparand)
        super().__init__("atomicrmw", pointer.type.pointee, operands, name)
        self.op = op

    @property
    def pointer(self):
        return self.operands[0]


class Barrier(Instruction):
    def __init__(self, flags):
        super().__init__("barrier", T.VOID, [flags])


class Br(Instruction):
    __slots__ = ("target",)

    def __init__(self, target):
        super().__init__("br", T.VOID, [])
        self.target = target


class CondBr(Instruction):
    __slots__ = ("then_block", "else_block")

    def __init__(self, cond, then_block, else_block):
        super().__init__("condbr", T.VOID, [cond], "")
        self.then_block = then_block
        self.else_block = else_block

    @property
    def cond(self):
        return self.operands[0]


class Ret(Instruction):
    def __init__(self, value=None):
        super().__init__("ret", T.VOID, [value] if value is not None else [])

    @property
    def value(self):
        return self.operands[0] if self.operands else None
