"""Typed intermediate representation and pass infrastructure.

The IR plays the role LLVM plays in the paper: the accelOS JIT transformation
(:mod:`repro.accelos.transform`) is implemented as IR-to-IR rewrites, and the
functional device (:mod:`repro.interp`) executes IR directly (our "native
code generation").

Design notes
------------
* Types are shared with the frontend (:mod:`repro.kernelc.types`) — they are
  structural value objects carrying OpenCL address spaces, which is exactly
  what the IR needs.
* The IR is *not* in SSA form: locals live in ``alloca`` slots accessed by
  ``load``/``store`` (LLVM-before-mem2reg style).  The accelOS transformation
  only rewrites calls, extends interfaces and injects control flow, none of
  which needs phi nodes, and the interpreter and inliner stay simple.
* ``local``-address-space allocas in kernels denote *work-group shared*
  arrays (OpenCL semantics); the executor materialises them once per group.
"""

from repro.ir.function import BasicBlock, Function
from repro.ir.module import Module
from repro.ir.builder import IRBuilder
from repro.ir.lowering import lower_program
from repro.ir.printer import print_module, print_function
from repro.ir.verifier import verify_module

__all__ = [
    "BasicBlock", "Function", "Module", "IRBuilder",
    "lower_program", "print_module", "print_function", "verify_module",
    "compile_source",
]


def compile_source(source, options=None, name="program", optimize=True):
    """Compile mini OpenCL-C source into a verified (optionally optimized) Module."""
    from repro.kernelc import frontend
    from repro.ir.passes import standard_pipeline

    program = frontend(source, options)
    module = lower_program(program, name=name)
    verify_module(module)
    if optimize:
        standard_pipeline().run(module)
        verify_module(module)
    return module
