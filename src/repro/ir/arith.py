"""Evaluation semantics for IR scalar operations.

Shared by the constant folder and the interpreter so compile-time folding
can never disagree with run-time evaluation (a classic source of
miscompiles).  Integer arithmetic wraps to the type width with C signedness;
division truncates toward zero; shifts mask the shift amount.
"""

from __future__ import annotations

from repro.errors import InterpError
from repro.kernelc import types as T


def wrap_int(value, ty):
    """Wrap an unbounded Python int to scalar type ``ty``."""
    if ty.is_bool():
        return bool(value)
    bits, signed = T.SCALAR_INFO[ty.kind]
    mask = (1 << bits) - 1
    value = int(value) & mask
    if signed and value >= (1 << (bits - 1)):
        value -= 1 << bits
    return value


def eval_binop(op, a, b, ty):
    """Evaluate a binop on Python scalars with ``ty`` result semantics.

    Raises :class:`InterpError` on integer division by zero (the run-time
    trap); float division by zero follows IEEE (inf/nan).
    """
    if ty.is_float():
        a = float(a)
        b = float(b)
        if op == "add":
            return a + b
        if op == "sub":
            return a - b
        if op == "mul":
            return a * b
        if op == "div":
            if b == 0.0:
                if a == 0.0:
                    return float("nan")
                return float("inf") if a > 0 else float("-inf")
            return a / b
        if op == "rem":
            import math
            return math.fmod(a, b) if b != 0.0 else float("nan")
        raise InterpError("float {} is not defined".format(op))

    a = int(a)
    b = int(b)
    if op == "add":
        result = a + b
    elif op == "sub":
        result = a - b
    elif op == "mul":
        result = a * b
    elif op == "div":
        if b == 0:
            raise InterpError("integer division by zero")
        result = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            result = -result
    elif op == "rem":
        if b == 0:
            raise InterpError("integer remainder by zero")
        quotient = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            quotient = -quotient
        result = a - quotient * b
    elif op == "and":
        result = a & b
    elif op == "or":
        result = a | b
    elif op == "xor":
        result = a ^ b
    elif op == "shl":
        result = a << (b & 63)
    elif op == "shr":
        bits, signed = T.SCALAR_INFO[ty.kind]
        shift = b & 63
        if signed:
            result = a >> shift
        else:
            result = (a & ((1 << bits) - 1)) >> shift
    else:
        raise InterpError("unknown binop {}".format(op))
    return wrap_int(result, ty)


def eval_cmp(op, a, b):
    if op == "eq":
        return a == b
    if op == "ne":
        return a != b
    if op == "lt":
        return a < b
    if op == "le":
        return a <= b
    if op == "gt":
        return a > b
    if op == "ge":
        return a >= b
    raise InterpError("unknown cmp {}".format(op))


def eval_cast(value, to_type):
    """Scalar conversion with C truncation semantics."""
    if to_type.is_float():
        # Intermediate float values are kept in double precision; rounding to
        # 32 bits happens at stores, matching how we compare results.
        return float(value)
    if to_type.is_bool():
        return bool(value)
    return wrap_int(int(value), to_type)
