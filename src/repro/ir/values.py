"""IR value hierarchy: constants, arguments and instruction results.

Every :class:`Value` has a ``type`` drawn from :mod:`repro.kernelc.types`.
Instructions (which are themselves values) live in
:mod:`repro.ir.instructions`.
"""

from __future__ import annotations

from repro.kernelc import types as T


class Value:
    """Base class of everything that can appear as an operand."""

    __slots__ = ("type", "name")

    def __init__(self, type_, name=""):
        self.type = type_
        self.name = name

    def short(self):
        """Compact printable form used by the IR printer."""
        return "%{}".format(self.name or id(self))


class Constant(Value):
    """A typed scalar constant."""

    __slots__ = ("value",)

    def __init__(self, type_, value):
        super().__init__(type_, "")
        if type_.is_float():
            value = float(value)
        elif type_.is_bool():
            value = bool(value)
        else:
            value = int(value)
        self.value = value

    def short(self):
        if self.type.is_float():
            return "{} {!r}".format(self.type, self.value)
        return "{} {}".format(self.type, self.value)

    def __repr__(self):
        return "Constant({}, {})".format(self.type, self.value)


class Undef(Value):
    """An undefined value (used for uninitialised loads in tests)."""

    def short(self):
        return "{} undef".format(self.type)


class Argument(Value):
    """A formal parameter of a :class:`~repro.ir.function.Function`."""

    __slots__ = ()

    def __repr__(self):
        return "Argument({} %{})".format(self.type, self.name)


def const_int(value, type_=T.INT):
    return Constant(type_, value)


def const_long(value):
    return Constant(T.LONG, value)


def const_size(value):
    return Constant(T.SIZE_T, value)


def const_float(value):
    return Constant(T.FLOAT, value)


def const_bool(value):
    return Constant(T.BOOL, value)
