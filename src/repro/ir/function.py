"""Functions, basic blocks and the CFG utilities used by passes."""

from __future__ import annotations

from repro.errors import IRError
from repro.ir import instructions as I
from repro.ir.values import Argument


class BasicBlock:
    """A straight-line instruction sequence ending in a terminator."""

    __slots__ = ("name", "instructions", "parent")

    def __init__(self, name, parent=None):
        self.name = name
        self.instructions = []
        self.parent = parent

    @property
    def terminator(self):
        if self.instructions and self.instructions[-1].is_terminator():
            return self.instructions[-1]
        return None

    def append(self, instruction):
        if self.terminator is not None:
            raise IRError("appending after terminator in block {}".format(self.name))
        instruction.parent = self
        self.instructions.append(instruction)
        return instruction

    def successors(self):
        term = self.terminator
        if isinstance(term, I.Br):
            return [term.target]
        if isinstance(term, I.CondBr):
            return [term.then_block, term.else_block]
        return []

    def __repr__(self):
        return "<block {} ({} insns)>".format(self.name, len(self.instructions))

    def __iter__(self):
        return iter(self.instructions)


class Function:
    """An IR function: arguments, ordered blocks, and kernel metadata.

    ``metadata`` is a free-form dict; the accelOS transformation records
    transformation provenance there (e.g. ``original_kernel``, ``chunk``).
    """

    def __init__(self, name, return_type, param_types, param_names=None,
                 is_kernel=False):
        self.name = name
        self.return_type = return_type
        param_names = param_names or ["arg{}".format(i) for i in range(len(param_types))]
        if len(param_names) != len(param_types):
            raise IRError("parameter name/type arity mismatch")
        self.arguments = [Argument(ty, nm) for ty, nm in zip(param_types, param_names)]
        self.blocks = []
        self.is_kernel = is_kernel
        self.metadata = {}
        self._name_counter = 0

    @property
    def entry(self):
        if not self.blocks:
            raise IRError("function {} has no blocks".format(self.name))
        return self.blocks[0]

    def add_block(self, name_hint="bb"):
        block = BasicBlock(self.unique_name(name_hint), self)
        self.blocks.append(block)
        return block

    def unique_name(self, hint):
        self._name_counter += 1
        return "{}.{}".format(hint, self._name_counter)

    def instructions(self):
        for block in self.blocks:
            for insn in block.instructions:
                yield insn

    def instruction_count(self):
        """Number of IR instructions — the paper's §6.4 adaptive-chunking key."""
        return sum(len(b.instructions) for b in self.blocks)

    def block_index(self):
        return {block: i for i, block in enumerate(self.blocks)}

    # -- CFG analyses used by the verifier and simplifycfg -------------------

    def predecessors(self):
        preds = {block: [] for block in self.blocks}
        for block in self.blocks:
            for succ in block.successors():
                preds[succ].append(block)
        return preds

    def reachable_blocks(self):
        seen = set()
        work = [self.entry]
        while work:
            block = work.pop()
            if block in seen:
                continue
            seen.add(block)
            work.extend(block.successors())
        return seen

    def dominators(self):
        """Classic iterative dominator sets over reachable blocks."""
        reachable = [b for b in self.blocks if b in self.reachable_blocks()]
        if not reachable:
            return {}
        entry = self.entry
        all_blocks = set(reachable)
        dom = {block: set(all_blocks) for block in reachable}
        dom[entry] = {entry}
        preds = self.predecessors()
        changed = True
        while changed:
            changed = False
            for block in reachable:
                if block is entry:
                    continue
                block_preds = [p for p in preds[block] if p in all_blocks]
                if not block_preds:
                    continue
                new = set.intersection(*(dom[p] for p in block_preds))
                new.add(block)
                if new != dom[block]:
                    dom[block] = new
                    changed = True
        return dom

    def __repr__(self):
        kind = "kernel" if self.is_kernel else "func"
        return "<{} {} ({} blocks)>".format(kind, self.name, len(self.blocks))
