"""Deep-cloning of IR functions and modules.

Used by the accelOS transformation (which clones the original kernel before
rewriting it into a plain computation function) and by the inliner.
"""

from __future__ import annotations

from repro.errors import IRError
from repro.ir import instructions as I
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.values import Argument, Constant, Undef


def clone_function(func, new_name=None, extra_param_types=(), extra_param_names=()):
    """Clone ``func``; optionally append extra trailing parameters.

    Returns ``(clone, value_map)`` where ``value_map`` maps original values
    (arguments and instructions) to their clones, so callers can keep
    rewriting the clone.
    """
    param_types = [a.type for a in func.arguments] + list(extra_param_types)
    param_names = [a.name for a in func.arguments] + list(extra_param_names)
    clone = Function(new_name or func.name, func.return_type, param_types,
                     param_names, is_kernel=func.is_kernel)
    clone.metadata = dict(func.metadata)

    value_map = {}
    for old_arg, new_arg in zip(func.arguments, clone.arguments):
        value_map[old_arg] = new_arg

    block_map = {}
    for block in func.blocks:
        new_block = clone.add_block(block.name.rsplit(".", 1)[0])
        block_map[block] = new_block

    for block in func.blocks:
        new_block = block_map[block]
        for insn in block.instructions:
            cloned = _clone_instruction(insn, value_map, block_map)
            cloned.parent = new_block
            new_block.instructions.append(cloned)
            value_map[insn] = cloned
    return clone, value_map


def _map_value(value, value_map):
    if value is None:
        return None
    if isinstance(value, (Constant, Undef)):
        return value
    mapped = value_map.get(value)
    if mapped is None:
        raise IRError("clone: operand {!r} not yet mapped (use before def?)"
                      .format(value))
    return mapped


def _clone_instruction(insn, value_map, block_map):
    ops = [_map_value(op, value_map) for op in insn.operands]
    if isinstance(insn, I.Alloca):
        out = I.Alloca(insn.allocated_type, insn.count, insn.address_space)
    elif isinstance(insn, I.Load):
        out = I.Load(ops[0])
    elif isinstance(insn, I.Store):
        out = I.Store(ops[0], ops[1])
    elif isinstance(insn, I.PtrAdd):
        out = I.PtrAdd(ops[0], ops[1])
    elif isinstance(insn, I.BinOp):
        out = I.BinOp(insn.op, ops[0], ops[1], insn.type)
    elif isinstance(insn, I.Cmp):
        out = I.Cmp(insn.op, ops[0], ops[1])
    elif isinstance(insn, I.Cast):
        out = I.Cast(ops[0], insn.type)
    elif isinstance(insn, I.Select):
        out = I.Select(ops[0], ops[1], ops[2])
    elif isinstance(insn, I.Call):
        out = I.Call(insn.callee, ops, insn.type)
    elif isinstance(insn, I.AtomicRMW):
        pointer = ops[0]
        value = ops[1] if len(ops) > 1 else None
        comparand = ops[2] if len(ops) > 2 else None
        out = I.AtomicRMW(insn.op, pointer, value, comparand)
    elif isinstance(insn, I.Barrier):
        out = I.Barrier(ops[0])
    elif isinstance(insn, I.Br):
        out = I.Br(block_map[insn.target])
    elif isinstance(insn, I.CondBr):
        out = I.CondBr(ops[0], block_map[insn.then_block], block_map[insn.else_block])
    elif isinstance(insn, I.Ret):
        out = I.Ret(ops[0] if ops else None)
    else:
        raise IRError("clone: unhandled instruction {!r}".format(insn))
    out.name = insn.name
    return out


def clone_module(module):
    """Deep-copy a module, re-targeting direct calls to the cloned functions."""
    out = Module(module.name)
    clones = {}
    for name, func in module.functions.items():
        cloned, _ = clone_function(func)
        clones[name] = cloned
        out.add_function(cloned)
    # Redirect call sites from old Function objects to the new ones.
    for func in out.functions.values():
        for insn in func.instructions():
            if isinstance(insn, I.Call) and not insn.is_intrinsic():
                insn.callee = clones[insn.callee.name]
    return out
