"""IR verifier: structural and dominance checks.

Run after lowering, after each transformation and after linking; it is the
safety net that keeps the accelOS rewrites honest.
"""

from __future__ import annotations

from repro.errors import IRError
from repro.ir import instructions as I
from repro.ir.values import Argument, Constant, Undef


def verify_function(func, module=None):
    """Raise :class:`IRError` if ``func`` is malformed."""
    if not func.blocks:
        raise IRError("function {} has no blocks".format(func.name))

    block_set = set(func.blocks)
    defined = set(func.arguments)
    for block in func.blocks:
        for insn in block.instructions:
            defined.add(insn)

    for block in func.blocks:
        if block.terminator is None:
            raise IRError("block {} in {} lacks a terminator".format(
                block.name, func.name))
        for i, insn in enumerate(block.instructions):
            if insn.is_terminator() and i != len(block.instructions) - 1:
                raise IRError("terminator mid-block in {}:{}".format(
                    func.name, block.name))
            if insn.parent is not block:
                raise IRError("instruction parent link broken in {}:{}".format(
                    func.name, block.name))
            _verify_instruction(insn, func, module, defined)
        for succ in block.successors():
            if succ not in block_set:
                raise IRError("branch to foreign block {} from {}:{}".format(
                    succ.name, func.name, block.name))

    _verify_dominance(func)
    return True


def _verify_instruction(insn, func, module, defined):
    for op in insn.operands:
        if op is None:
            raise IRError("null operand in {} ({})".format(func.name, insn.opcode))
        if isinstance(op, (Constant, Undef, Argument)):
            if isinstance(op, Argument) and op not in defined:
                raise IRError("foreign argument {} used in {}".format(
                    op.name, func.name))
            continue
        if op not in defined:
            raise IRError("operand {!r} not defined in {}".format(op, func.name))

    if isinstance(insn, I.Load) and not insn.pointer.type.is_pointer():
        raise IRError("load from non-pointer in {}".format(func.name))
    if isinstance(insn, I.Store):
        if not insn.pointer.type.is_pointer():
            raise IRError("store to non-pointer in {}".format(func.name))
        if insn.value.type != insn.pointer.type.pointee:
            raise IRError("store type mismatch in {}: {} into {}".format(
                func.name, insn.value.type, insn.pointer.type))
    if isinstance(insn, I.BinOp):
        if insn.lhs.type != insn.rhs.type:
            raise IRError("binop operand mismatch in {}: {} vs {}".format(
                func.name, insn.lhs.type, insn.rhs.type))
    if isinstance(insn, I.Cmp):
        if insn.lhs.type != insn.rhs.type:
            raise IRError("cmp operand mismatch in {}: {} vs {}".format(
                func.name, insn.lhs.type, insn.rhs.type))
    if isinstance(insn, I.Ret):
        expected = func.return_type
        if insn.value is None:
            if not expected.is_void():
                raise IRError("ret void in non-void function {}".format(func.name))
        elif insn.value.type != expected:
            raise IRError("ret type mismatch in {}: {} vs {}".format(
                func.name, insn.value.type, expected))
    if isinstance(insn, I.Call) and not insn.is_intrinsic():
        callee = insn.callee
        if module is not None and callee.name in module.functions \
                and module.functions[callee.name] is not callee:
            raise IRError("call in {} targets a stale clone of {!r}".format(
                func.name, callee.name))
        if len(insn.operands) != len(callee.arguments):
            raise IRError("call arity mismatch to {} in {}".format(
                callee.name, func.name))
        for arg, param in zip(insn.operands, callee.arguments):
            if arg.type != param.type and not (
                    arg.type.is_pointer() and param.type.is_pointer()):
                raise IRError("call argument type mismatch to {} in {}: {} vs {}"
                              .format(callee.name, func.name, arg.type, param.type))


def _verify_dominance(func):
    """Every use must be dominated by its definition."""
    dom = func.dominators()
    reachable = func.reachable_blocks()
    positions = {}
    for block in func.blocks:
        for i, insn in enumerate(block.instructions):
            positions[insn] = (block, i)

    for block in func.blocks:
        if block not in reachable:
            continue
        for i, insn in enumerate(block.instructions):
            for op in insn.operands:
                if not isinstance(op, I.Instruction):
                    continue
                def_block, def_pos = positions[op]
                if def_block not in reachable:
                    raise IRError(
                        "use of value from unreachable block in {}".format(func.name))
                if def_block is block:
                    if def_pos >= i:
                        raise IRError("use before def in {}:{}".format(
                            func.name, block.name))
                elif def_block not in dom.get(block, set()):
                    raise IRError(
                        "def of {!r} does not dominate use in {}:{}".format(
                            op.name or op.opcode, func.name, block.name))


def verify_module(module):
    """Verify every function in ``module``."""
    for func in module.functions.values():
        verify_function(func, module)
    return True
