"""Convenience builder for emitting IR with automatic type handling.

The builder inserts at the end of a *current block* and provides typed
helpers that apply the implicit conversions of the source language (so the
lowering code and the accelOS transformation stay readable).
"""

from __future__ import annotations

from repro.errors import IRError
from repro.ir import instructions as I
from repro.ir.values import Constant
from repro.kernelc import types as T


class IRBuilder:
    def __init__(self, function, block=None):
        self.function = function
        self.block = block

    def position_at_end(self, block):
        self.block = block
        return self

    def _insert(self, insn, name_hint=""):
        if self.block is None:
            raise IRError("builder has no insertion block")
        if name_hint and not insn.name:
            insn.name = self.function.unique_name(name_hint)
        self.block.append(insn)
        return insn

    # -- conversions --------------------------------------------------------

    def convert(self, value, to_type):
        """Emit a cast if ``value`` is not already of ``to_type``."""
        if value.type == to_type:
            return value
        if isinstance(value, Constant) and to_type.is_scalar():
            return Constant(to_type, value.value)
        return self._insert(I.Cast(value, to_type), "cv")

    def coerce_pair(self, lhs, rhs):
        """Apply usual arithmetic conversions to a scalar operand pair."""
        if not (lhs.type.is_scalar() and rhs.type.is_scalar()):
            raise IRError("coerce_pair on non-scalars {} / {}".format(
                lhs.type, rhs.type))
        common = T.common_type(lhs.type, rhs.type)
        return self.convert(lhs, common), self.convert(rhs, common), common

    # -- memory --------------------------------------------------------------

    def alloca(self, allocated_type, count=1, address_space=T.PRIVATE, name="slot"):
        # Allocas conventionally live in the entry block so they execute once.
        insn = I.Alloca(allocated_type, count, address_space)
        insn.name = self.function.unique_name(name)
        entry = self.function.entry
        insertion = 0
        for i, existing in enumerate(entry.instructions):
            if existing.opcode == "alloca":
                insertion = i + 1
            else:
                break
        insn.parent = entry
        entry.instructions.insert(insertion, insn)
        return insn

    def load(self, pointer, name="ld"):
        return self._insert(I.Load(pointer), name)

    def store(self, pointer, value):
        value = self.convert(value, pointer.type.pointee)
        return self._insert(I.Store(pointer, value))

    def ptradd(self, base, index, name="ptr"):
        index = self.convert(index, T.LONG)
        return self._insert(I.PtrAdd(base, index), name)

    # -- arithmetic ------------------------------------------------------------

    def binop(self, op, lhs, rhs, name="t"):
        if lhs.type.is_pointer():
            # pointer +/- integer displacement
            index = self.convert(rhs, T.LONG)
            if op == "sub":
                index = self.binop("sub", Constant(T.LONG, 0), index)
            return self.ptradd(lhs, index, name)
        lhs, rhs, common = self.coerce_pair(lhs, rhs)
        return self._insert(I.BinOp(op, lhs, rhs, common), name)

    def cmp(self, op, lhs, rhs, name="c"):
        if lhs.type.is_pointer() and rhs.type.is_pointer():
            return self._insert(I.Cmp(op, lhs, rhs), name)
        lhs, rhs, _ = self.coerce_pair(lhs, rhs)
        return self._insert(I.Cmp(op, lhs, rhs), name)

    def select(self, cond, then, otherwise, name="sel"):
        cond = self.to_bool(cond)
        if then.type.is_scalar() and otherwise.type.is_scalar():
            then, otherwise, _ = self.coerce_pair(then, otherwise)
        return self._insert(I.Select(cond, then, otherwise), name)

    def to_bool(self, value):
        """Truth-test a scalar or pointer value (C semantics)."""
        if value.type.is_bool():
            return value
        if value.type.is_pointer():
            raise IRError("pointer truth tests are not supported; compare explicitly")
        zero = Constant(value.type, 0)
        return self.cmp("ne", value, zero, "tobool")

    # -- calls, atomics, sync ---------------------------------------------------

    def call(self, callee, args, return_type=None, name="call"):
        if return_type is None:
            if isinstance(callee, str):
                raise IRError("intrinsic calls must state their return type")
            return_type = callee.return_type
        insn = I.Call(callee, args, return_type)
        hint = name if not return_type.is_void() else ""
        return self._insert(insn, hint)

    def atomic(self, op, pointer, value=None, comparand=None, name="old"):
        if value is not None:
            value = self.convert(value, pointer.type.pointee)
        if comparand is not None:
            comparand = self.convert(comparand, pointer.type.pointee)
        return self._insert(I.AtomicRMW(op, pointer, value, comparand), name)

    def barrier(self, flags=None):
        flags = flags if flags is not None else Constant(T.INT, 1)
        return self._insert(I.Barrier(flags))

    # -- control flow ---------------------------------------------------------

    def br(self, target):
        return self._insert(I.Br(target))

    def condbr(self, cond, then_block, else_block):
        cond = self.to_bool(cond)
        return self._insert(I.CondBr(cond, then_block, else_block))

    def ret(self, value=None):
        if value is not None:
            value = self.convert(value, self.function.return_type)
        return self._insert(I.Ret(value))

    def is_terminated(self):
        return self.block is not None and self.block.terminator is not None
