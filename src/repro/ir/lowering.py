"""Lowering from the typed AST to IR.

Strategy (LLVM-before-mem2reg style):

* every local variable and parameter gets an ``alloca`` slot; reads load it,
  writes store it — no SSA construction needed;
* lvalues lower to *addresses* (``ptradd`` chains), rvalues to loaded values;
* ``&&``/``||`` lower to control flow with a result slot (short-circuit);
* ``local`` arrays lower to ``alloca`` in the local address space, which the
  executor materialises once per work-group (OpenCL shared semantics).
"""

from __future__ import annotations

from repro.errors import IRError, SemanticError
from repro.ir.builder import IRBuilder
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.values import Constant
from repro.kernelc import ast_nodes as ast
from repro.kernelc import builtins as B
from repro.kernelc import types as T

_BINOP_MAP = {
    "+": "add", "-": "sub", "*": "mul", "/": "div", "%": "rem",
    "&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "shr",
}
_CMP_MAP = {"==": "eq", "!=": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge"}
_ATOMIC_MAP = {
    "atomic_add": "add", "atomic_sub": "sub", "atomic_min": "min",
    "atomic_max": "max", "atomic_xchg": "xchg", "atomic_inc": "inc",
    "atomic_dec": "dec", "atomic_cmpxchg": "cmpxchg",
}


class _FunctionLowering:
    def __init__(self, module, func_map, func_def):
        self.module = module
        self.func_map = func_map          # name -> IR Function (pre-declared)
        self.func_def = func_def
        self.ir_func = func_map[func_def.name]
        self.builder = IRBuilder(self.ir_func)
        self.slots = {}                   # AST decl object -> alloca/argument
        self.loop_stack = []              # (continue_block, break_block)

    # -- entry ---------------------------------------------------------------

    def run(self):
        entry = self.ir_func.add_block("entry")
        self.builder.position_at_end(entry)

        for param, argument in zip(self.func_def.params, self.ir_func.arguments):
            if param.type.is_pointer():
                # Pointer params are read-only handles in our corpus; binding
                # the argument directly keeps pointer provenance obvious.
                self.slots[param] = ("value", argument)
            else:
                slot = self.builder.alloca(param.type, name=param.name)
                self.builder.store(slot, argument)
                self.slots[param] = ("slot", slot)

        self.lower_compound(self.func_def.body)

        if not self.builder.is_terminated():
            if self.ir_func.return_type.is_void():
                self.builder.ret()
            else:
                # Falling off the end of a value-returning function: return 0,
                # mirroring the undefined-but-tolerated C behaviour.
                self.builder.ret(Constant(self.ir_func.return_type, 0))
        return self.ir_func

    # -- statements ------------------------------------------------------------

    def lower_statement(self, stmt):
        if self.builder.is_terminated():
            # unreachable code after return/break: skip, keep CFG clean
            return
        if isinstance(stmt, ast.Compound):
            self.lower_compound(stmt)
        elif isinstance(stmt, ast.DeclStmt):
            self.lower_decl(stmt)
        elif isinstance(stmt, ast.If):
            self.lower_if(stmt)
        elif isinstance(stmt, ast.For):
            self.lower_for(stmt)
        elif isinstance(stmt, ast.While):
            self.lower_while(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self.lower_do(stmt)
        elif isinstance(stmt, ast.Return):
            value = self.rvalue(stmt.value) if stmt.value is not None else None
            self.builder.ret(value)
        elif isinstance(stmt, ast.Break):
            self.builder.br(self.loop_stack[-1][1])
        elif isinstance(stmt, ast.Continue):
            self.builder.br(self.loop_stack[-1][0])
        elif isinstance(stmt, ast.ExprStmt):
            self.rvalue(stmt.expr)
        else:
            raise IRError("cannot lower statement {!r}".format(stmt))

    def lower_compound(self, block):
        for stmt in block.statements:
            self.lower_statement(stmt)

    def lower_decl(self, stmt):
        for decl in stmt.decls:
            ty = decl.type
            if ty.is_array():
                slot = self.builder.alloca(ty.element, count=ty.size,
                                           address_space=ty.address_space,
                                           name=decl.name)
            else:
                slot = self.builder.alloca(ty, name=decl.name)
            self.slots[decl] = ("slot", slot)
            if decl.init is not None:
                self.builder.store(slot, self.rvalue(decl.init))

    def lower_if(self, stmt):
        then_block = self.ir_func.add_block("if.then")
        merge_block = self.ir_func.add_block("if.end")
        else_block = merge_block
        if stmt.otherwise is not None:
            else_block = self.ir_func.add_block("if.else")
        self.builder.condbr(self.rvalue(stmt.cond), then_block, else_block)

        self.builder.position_at_end(then_block)
        self.lower_statement(stmt.then)
        if not self.builder.is_terminated():
            self.builder.br(merge_block)

        if stmt.otherwise is not None:
            self.builder.position_at_end(else_block)
            self.lower_statement(stmt.otherwise)
            if not self.builder.is_terminated():
                self.builder.br(merge_block)

        self.builder.position_at_end(merge_block)

    def lower_for(self, stmt):
        if stmt.init is not None:
            self.lower_statement(stmt.init)
        cond_block = self.ir_func.add_block("for.cond")
        body_block = self.ir_func.add_block("for.body")
        step_block = self.ir_func.add_block("for.step")
        exit_block = self.ir_func.add_block("for.end")

        self.builder.br(cond_block)
        self.builder.position_at_end(cond_block)
        if stmt.cond is not None:
            self.builder.condbr(self.rvalue(stmt.cond), body_block, exit_block)
        else:
            self.builder.br(body_block)

        self.builder.position_at_end(body_block)
        self.loop_stack.append((step_block, exit_block))
        self.lower_statement(stmt.body)
        self.loop_stack.pop()
        if not self.builder.is_terminated():
            self.builder.br(step_block)

        self.builder.position_at_end(step_block)
        if stmt.step is not None:
            self.rvalue(stmt.step)
        self.builder.br(cond_block)

        self.builder.position_at_end(exit_block)

    def lower_while(self, stmt):
        cond_block = self.ir_func.add_block("while.cond")
        body_block = self.ir_func.add_block("while.body")
        exit_block = self.ir_func.add_block("while.end")

        self.builder.br(cond_block)
        self.builder.position_at_end(cond_block)
        self.builder.condbr(self.rvalue(stmt.cond), body_block, exit_block)

        self.builder.position_at_end(body_block)
        self.loop_stack.append((cond_block, exit_block))
        self.lower_statement(stmt.body)
        self.loop_stack.pop()
        if not self.builder.is_terminated():
            self.builder.br(cond_block)

        self.builder.position_at_end(exit_block)

    def lower_do(self, stmt):
        body_block = self.ir_func.add_block("do.body")
        cond_block = self.ir_func.add_block("do.cond")
        exit_block = self.ir_func.add_block("do.end")

        self.builder.br(body_block)
        self.builder.position_at_end(body_block)
        self.loop_stack.append((cond_block, exit_block))
        self.lower_statement(stmt.body)
        self.loop_stack.pop()
        if not self.builder.is_terminated():
            self.builder.br(cond_block)

        self.builder.position_at_end(cond_block)
        self.builder.condbr(self.rvalue(stmt.cond), body_block, exit_block)

        self.builder.position_at_end(exit_block)

    # -- lvalues ---------------------------------------------------------------

    def lvalue(self, expr):
        """Lower an lvalue expression to an address (pointer value)."""
        if isinstance(expr, ast.Ident):
            kind, value = self.slots[expr.decl]
            if kind == "slot":
                return value
            raise SemanticError(
                "cannot take an lvalue of pointer parameter {!r}".format(expr.name),
                expr.line)
        if isinstance(expr, ast.Index):
            base = self.pointer_value(expr.base)
            index = self.rvalue(expr.index)
            return self.builder.ptradd(base, index, "elem")
        if isinstance(expr, ast.Unary) and expr.op == "*":
            return self.rvalue(expr.operand)
        raise IRError("cannot lower lvalue {!r}".format(expr))

    def pointer_value(self, expr):
        """Lower an expression used as a pointer base (arrays decay)."""
        ty = expr.type
        if ty.is_array():
            if isinstance(expr, ast.Ident):
                kind, value = self.slots[expr.decl]
                if kind != "slot":
                    raise IRError("array parameter without slot")
                return value  # alloca pointer: already the decayed pointer
            raise IRError("cannot decay array expression {!r}".format(expr))
        return self.rvalue(expr)

    # -- rvalues ---------------------------------------------------------------

    def rvalue(self, expr):
        if isinstance(expr, ast.IntLit):
            return Constant(expr.type, expr.value)
        if isinstance(expr, ast.FloatLit):
            return Constant(T.FLOAT, expr.value)
        if isinstance(expr, ast.BoolLit):
            return Constant(T.BOOL, expr.value)
        if isinstance(expr, ast.Ident):
            kind, value = self.slots[expr.decl]
            if kind == "value":
                return value
            if expr.type.is_array():
                return value  # decay to pointer
            return self.builder.load(value, expr.name)
        if isinstance(expr, ast.Binary):
            return self.lower_binary(expr)
        if isinstance(expr, ast.Unary):
            return self.lower_unary(expr)
        if isinstance(expr, ast.PostIncDec):
            address = self.lvalue(expr.operand)
            old = self.builder.load(address, "old")
            op = "add" if expr.op == "++" else "sub"
            new = self.builder.binop(op, old, Constant(T.INT, 1))
            self.builder.store(address, new)
            return old
        if isinstance(expr, ast.Assign):
            return self.lower_assign(expr)
        if isinstance(expr, ast.Ternary):
            return self.lower_ternary(expr)
        if isinstance(expr, ast.Call):
            return self.lower_call(expr)
        if isinstance(expr, ast.Index):
            address = self.lvalue(expr)
            return self.builder.load(address, "val")
        if isinstance(expr, ast.Cast):
            value = self.rvalue(expr.operand)
            return self.builder.convert(value, expr.target_type)
        raise IRError("cannot lower expression {!r}".format(expr))

    def lower_binary(self, expr):
        op = expr.op
        if op == ",":
            self.rvalue(expr.lhs)
            return self.rvalue(expr.rhs)
        if op in ("&&", "||"):
            return self.lower_short_circuit(expr)
        lhs = self.rvalue(expr.lhs)
        rhs = self.rvalue(expr.rhs)
        if op in _CMP_MAP:
            return self.builder.cmp(_CMP_MAP[op], lhs, rhs)
        if op in _BINOP_MAP:
            if op == "+" and rhs.type.is_pointer() and not lhs.type.is_pointer():
                lhs, rhs = rhs, lhs
            if op == "-" and lhs.type.is_pointer() and rhs.type.is_pointer():
                raise IRError("pointer difference is not supported")
            return self.builder.binop(_BINOP_MAP[op], lhs, rhs)
        raise IRError("unknown binary operator {!r}".format(op))

    def lower_short_circuit(self, expr):
        result = self.builder.alloca(T.BOOL, name="sc")
        rhs_block = self.ir_func.add_block("sc.rhs")
        end_block = self.ir_func.add_block("sc.end")

        lhs = self.builder.to_bool(self.rvalue(expr.lhs))
        self.builder.store(result, lhs)
        if expr.op == "&&":
            self.builder.condbr(lhs, rhs_block, end_block)
        else:
            self.builder.condbr(lhs, end_block, rhs_block)

        self.builder.position_at_end(rhs_block)
        rhs = self.builder.to_bool(self.rvalue(expr.rhs))
        self.builder.store(result, rhs)
        self.builder.br(end_block)

        self.builder.position_at_end(end_block)
        return self.builder.load(result, "scv")

    def lower_unary(self, expr):
        op = expr.op
        if op == "-":
            operand = self.rvalue(expr.operand)
            zero = Constant(operand.type if not operand.type.is_bool() else T.INT, 0)
            return self.builder.binop("sub", zero, operand)
        if op == "!":
            operand = self.builder.to_bool(self.rvalue(expr.operand))
            return self.builder.cmp("eq", operand, Constant(T.BOOL, 0))
        if op == "~":
            operand = self.rvalue(expr.operand)
            return self.builder.binop("xor", operand, Constant(operand.type, -1))
        if op == "*":
            address = self.rvalue(expr.operand)
            return self.builder.load(address, "deref")
        if op == "&":
            return self.lvalue(expr.operand)
        if op in ("++", "--"):
            address = self.lvalue(expr.operand)
            old = self.builder.load(address, "old")
            binop = "add" if op == "++" else "sub"
            new = self.builder.binop(binop, old, Constant(T.INT, 1))
            self.builder.store(address, new)
            return new
        raise IRError("unknown unary operator {!r}".format(op))

    def lower_assign(self, expr):
        address = self.lvalue(expr.target)
        value = self.rvalue(expr.value)
        if expr.op != "=":
            current = self.builder.load(address, "cur")
            base_op = expr.op[:-1]
            if base_op in _BINOP_MAP:
                value = self.builder.binop(_BINOP_MAP[base_op], current, value)
            else:
                raise IRError("unknown compound assignment {!r}".format(expr.op))
        self.builder.store(address, value)
        return self.builder.load(address, "asg")

    def lower_ternary(self, expr):
        result_ty = expr.type
        result = self.builder.alloca(result_ty, name="tern")
        then_block = self.ir_func.add_block("tern.then")
        else_block = self.ir_func.add_block("tern.else")
        end_block = self.ir_func.add_block("tern.end")

        self.builder.condbr(self.rvalue(expr.cond), then_block, else_block)

        self.builder.position_at_end(then_block)
        self.builder.store(result, self.rvalue(expr.then))
        self.builder.br(end_block)

        self.builder.position_at_end(else_block)
        self.builder.store(result, self.rvalue(expr.otherwise))
        self.builder.br(end_block)

        self.builder.position_at_end(end_block)
        return self.builder.load(result, "ternv")

    def lower_call(self, expr):
        args = []
        for i, arg in enumerate(expr.args):
            if isinstance(arg.type, T.ArrayType):
                args.append(self.pointer_value(arg))
            else:
                args.append(self.rvalue(arg))

        if B.is_builtin(expr.name):
            builtin = B.lookup(expr.name)
            if expr.name == "barrier" or expr.name == "mem_fence":
                return self.builder.barrier(args[0])
            if builtin.category == "atomic":
                op = _ATOMIC_MAP[expr.name]
                pointer = args[0]
                value = args[1] if len(args) > 1 else None
                comparand = args[2] if len(args) > 2 else None
                return self.builder.atomic(op, pointer, value, comparand)
            result_ty = builtin.result_type([a.type for a in args])
            if builtin.category == "workitem" and builtin.arg_count == 1:
                args[0] = self.builder.convert(args[0], T.UINT)
            return self.builder.call(expr.name, args, result_ty, expr.name)

        callee = self.func_map[expr.callee.name]
        coerced = [self.builder.convert(a, p.type)
                   for a, p in zip(args, callee.arguments)]
        return self.builder.call(callee, coerced, name=expr.name)


def lower_program(program, name="program"):
    """Lower a type-checked AST :class:`Program` into an IR :class:`Module`."""
    module = Module(name)
    func_map = {}
    for func_def in program.functions:
        ir_func = Function(
            func_def.name,
            func_def.return_type,
            [p.type for p in func_def.params],
            [p.name for p in func_def.params],
            is_kernel=func_def.is_kernel,
        )
        func_map[func_def.name] = ir_func
        module.add_function(ir_func)
    for func_def in program.functions:
        _FunctionLowering(module, func_map, func_def).run()
    return module
