"""IR modules: a named collection of functions (one per translation unit)."""

from __future__ import annotations

from repro.errors import IRError


class Module:
    """A compilation unit holding IR functions.

    Functions keep insertion order; kernels are just functions with
    ``is_kernel`` set.  ``link`` merges another module in, which is how the
    accelOS transformation statically links the GPU scheduling runtime
    library into every kernel module (paper §6, fig. 7b).
    """

    def __init__(self, name="module"):
        self.name = name
        self.functions = {}

    def add_function(self, function):
        if function.name in self.functions:
            raise IRError("duplicate function {!r} in module".format(function.name))
        self.functions[function.name] = function
        return function

    def get(self, name):
        func = self.functions.get(name)
        if func is None:
            raise IRError("no function {!r} in module {}".format(name, self.name))
        return func

    def __contains__(self, name):
        return name in self.functions

    def kernels(self):
        return [f for f in self.functions.values() if f.is_kernel]

    def plain_functions(self):
        return [f for f in self.functions.values() if not f.is_kernel]

    def link(self, other, allow_duplicates=False):
        """Merge ``other``'s functions into this module.

        With ``allow_duplicates`` a function already present is kept (first
        definition wins), mirroring static-library link semantics.
        """
        for name, func in other.functions.items():
            if name in self.functions:
                if allow_duplicates:
                    continue
                raise IRError("link collision on function {!r}".format(name))
            self.functions[name] = func
        return self

    def clone(self):
        """Deep-copy the module (used before destructive transformations)."""
        from repro.ir.clone import clone_module
        return clone_module(self)

    def __repr__(self):
        return "<Module {} ({} functions, {} kernels)>".format(
            self.name, len(self.functions), len(self.kernels()))
