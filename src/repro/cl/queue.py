"""In-order command queues executing on the functional device."""

from __future__ import annotations

from repro.errors import CLError
from repro.interp import KernelLauncher


class Event:
    """Completion record for an enqueued command."""

    def __init__(self, kind, detail=None, complete=True):
        self.kind = kind
        self.detail = detail
        # the functional queue is synchronous, so events are born complete;
        # asynchronous queues construct with complete=False and call
        # mark_complete() when the command retires.
        self.complete = complete
        self._callbacks = []

    def on_complete(self, callback):
        """Run ``callback`` when the command completes (immediately if it
        already has) — the hook resource owners use to tie buffer lifetimes
        to command completion."""
        if self.complete:
            callback()
        else:
            self._callbacks.append(callback)

    def mark_complete(self):
        if self.complete:
            return
        self.complete = True
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback()

    def __repr__(self):
        return "<Event {} {}>".format(
            self.kind, "complete" if self.complete else "pending")


class CommandQueue:
    """An in-order queue. Execution is synchronous in the functional plane;
    the timing plane replays enqueue traces in :mod:`repro.sim`."""

    def __init__(self, context):
        self.context = context
        self.enqueue_log = []  # (kind, payload) trace, consumed by the sim

    def enqueue_write_buffer(self, buffer, host_array):
        buffer.write(host_array)
        self.enqueue_log.append(("write", buffer.size_bytes))
        return Event("write")

    def enqueue_read_buffer(self, buffer, dtype=None):
        self.enqueue_log.append(("read", buffer.size_bytes))
        result = buffer.read(dtype)
        return result

    def enqueue_nd_range(self, kernel, nd_range):
        """Launch a kernel over an ND-range (functionally, synchronously)."""
        module = kernel.program.module
        launcher = KernelLauncher(module)
        stats = launcher.launch(kernel.name, kernel.runtime_args(),
                                nd_range.global_size, nd_range.local_size)
        self.enqueue_log.append(("ndrange", (kernel.name, nd_range)))
        return Event("ndrange", stats)

    def finish(self):
        """Block until all enqueued work completes (no-op: synchronous)."""
        return None
