"""Mini-OpenCL host runtime (the paper's "System Interface", level 0).

Implements the slice of the OpenCL 1.2 host API that accelOS relies on:
platform/device discovery, contexts, command queues, buffers, programs and
kernels.  Applications written against this API are what ``ProxyCL``
intercepts; accelOS itself also uses it to reach the device ("We use
standard OpenCL to leverage accelerators", §4).

Functional execution is backed by :mod:`repro.interp`; timing questions are
answered by :mod:`repro.sim`.
"""

from repro.cl.device import (
    DeviceSpec, nvidia_k20m, amd_r9_295x2, known_devices, derated_device)
from repro.cl.platform import Platform, get_platforms
from repro.cl.context import Context
from repro.cl.memory import Buffer, DeviceAllocator
from repro.cl.program import Program
from repro.cl.kernel import Kernel, NDRange
from repro.cl.queue import CommandQueue

__all__ = [
    "DeviceSpec", "nvidia_k20m", "amd_r9_295x2", "known_devices",
    "derated_device",
    "Platform", "get_platforms", "Context", "Buffer", "DeviceAllocator",
    "Program", "Kernel", "NDRange", "CommandQueue",
]
