"""Kernels and ND-ranges (``clCreateKernel`` / ``clSetKernelArg``)."""

from __future__ import annotations

from repro.cl.memory import Buffer
from repro.errors import CLError
from repro.interp.memory import LocalArg


class NDRange:
    """Launch geometry: global and local sizes (up to 3 dimensions)."""

    def __init__(self, global_size, local_size):
        self.global_size = _norm(global_size)
        self.local_size = _norm(local_size)
        for g, l in zip(self.global_size, self.local_size):
            if l <= 0 or g % l:
                raise CLError("global size {} not divisible by local size {}"
                              .format(self.global_size, self.local_size))

    @property
    def work_dim(self):
        dims = 3
        while dims > 1 and self.global_size[dims - 1] == 1:
            dims -= 1
        return dims

    @property
    def work_group_size(self):
        size = 1
        for l in self.local_size:
            size *= l
        return size

    @property
    def num_groups(self):
        total = 1
        for g, l in zip(self.global_size, self.local_size):
            total *= g // l
        return total

    @property
    def groups_per_dim(self):
        return tuple(g // l for g, l in zip(self.global_size, self.local_size))

    def __repr__(self):
        return "NDRange(global={}, local={})".format(self.global_size,
                                                     self.local_size)


def _norm(size):
    if isinstance(size, int):
        size = (size,)
    size = tuple(int(s) for s in size)
    if not 1 <= len(size) <= 3:
        raise CLError("ND-range dimension must be 1..3")
    return size + (1,) * (3 - len(size))


class Kernel:
    """A kernel object with bound arguments."""

    def __init__(self, program, name):
        self.program = program
        self.name = name
        self.function = program.module.get(name)
        self.args = [None] * len(self.function.arguments)
        self._arg_set = [False] * len(self.function.arguments)

    def set_arg(self, index, value):
        """Bind argument ``index``.

        Accepts a :class:`Buffer`, a :class:`LocalArg` (size-only local
        pointer), or a scalar.
        """
        if not 0 <= index < len(self.args):
            raise CLError("argument index {} out of range for {}".format(
                index, self.name))
        self.args[index] = value
        self._arg_set[index] = True
        return self

    @property
    def visible_arg_count(self):
        """Arguments the application is expected to set.

        Trailing runtime-owned parameters (declared via the function's
        ``hidden_params`` metadata, e.g. by the accelOS JIT) are excluded —
        this is what keeps interception transparent to applications.
        """
        return len(self.args) - int(self.function.metadata.get("hidden_params", 0))

    def set_args(self, *values):
        if len(values) != self.visible_arg_count:
            raise CLError("{} expects {} arguments, got {}".format(
                self.name, self.visible_arg_count, len(values)))
        for i, value in enumerate(values):
            self.set_arg(i, value)
        return self

    def local_arg_sizes(self):
        """Byte sizes bound to local pointer parameters (for §3 analysis)."""
        sizes = {}
        for formal, actual in zip(self.function.arguments, self.args):
            if isinstance(actual, LocalArg):
                sizes[formal.name] = actual.size_bytes
        return sizes

    def runtime_args(self):
        """Arguments in the form the interpreter consumes."""
        resolved = []
        for i, (formal, actual) in enumerate(zip(self.function.arguments,
                                                 self.args)):
            if not self._arg_set[i]:
                raise CLError("argument {} of {} was never set".format(
                    i, self.name))
            if isinstance(actual, Buffer):
                resolved.append(actual.pointer())
            else:
                resolved.append(actual)
        return resolved

    def __repr__(self):
        return "<Kernel {}>".format(self.name)
