"""Device models for the paper's two evaluation platforms.

The sharing algorithm (§3) needs three per-device capacities — hardware
threads ``T``, local memory ``L`` and registers ``R`` — and the timing
simulator additionally needs per-CU occupancy limits, relative compute
throughput, memory bandwidth and the firmware scheduler's policy.

Capacities follow the public architecture documents the paper cites
(NVIDIA Kepler GK110 whitepaper; AMD APP OpenCL programming guide).
"""

from __future__ import annotations


class DeviceSpec:
    """Static description of an accelerator."""

    def __init__(self, name, vendor, num_cus, max_threads_per_cu,
                 wavefront, registers_per_cu, local_mem_per_cu,
                 max_wgs_per_cu, max_wg_size, clock_mhz, mem_bw_gbs,
                 flops_per_cycle_per_cu, global_mem_bytes,
                 scheduler_policy):
        self.name = name
        self.vendor = vendor
        self.num_cus = num_cus
        self.max_threads_per_cu = max_threads_per_cu
        self.wavefront = wavefront
        self.registers_per_cu = registers_per_cu
        self.local_mem_per_cu = local_mem_per_cu
        self.max_wgs_per_cu = max_wgs_per_cu
        self.max_wg_size = max_wg_size
        self.clock_mhz = clock_mhz
        self.mem_bw_gbs = mem_bw_gbs
        self.flops_per_cycle_per_cu = flops_per_cycle_per_cu
        self.global_mem_bytes = global_mem_bytes
        # 'fifo': next kernel's groups may start as the current one drains
        # (NVIDIA-observed behaviour); 'exclusive': the device serialises
        # kernels almost completely (AMD-observed behaviour).  Both match the
        # paper's measured overlap for standard OpenCL (§8.2).
        self.scheduler_policy = scheduler_policy

    # -- device-wide capacities used by the §3 sharing algorithm -------------

    @property
    def max_threads(self):
        """``T``: maximum concurrently resident hardware threads."""
        return self.num_cus * self.max_threads_per_cu

    @property
    def total_local_mem(self):
        """``L``: total local memory across compute units (bytes)."""
        return self.num_cus * self.local_mem_per_cu

    @property
    def total_registers(self):
        """``R``: total register file entries across compute units."""
        return self.num_cus * self.registers_per_cu

    @property
    def compute_rate(self):
        """Device FLOP rate in GFLOP/s (used by the timing model)."""
        return self.num_cus * self.flops_per_cycle_per_cu * self.clock_mhz / 1e3

    def __repr__(self):
        return "<DeviceSpec {} ({} CUs)>".format(self.name, self.num_cus)


def nvidia_k20m():
    """NVIDIA Tesla K20m (Kepler GK110, 13 SMX)."""
    return DeviceSpec(
        name="Tesla K20m",
        vendor="NVIDIA",
        num_cus=13,
        max_threads_per_cu=2048,
        wavefront=32,
        registers_per_cu=65536,
        local_mem_per_cu=48 * 1024,
        max_wgs_per_cu=16,
        max_wg_size=1024,
        clock_mhz=706,
        mem_bw_gbs=208.0,
        flops_per_cycle_per_cu=384,   # 192 SP cores x FMA
        global_mem_bytes=5 * 1024**3,
        scheduler_policy="fifo",
    )


def amd_r9_295x2():
    """AMD Radeon R9 295X2 (one Hawaii GPU of the pair, 44 CUs)."""
    return DeviceSpec(
        name="R9 295X2",
        vendor="AMD",
        num_cus=44,
        max_threads_per_cu=2560,     # 40 wavefronts x 64 lanes
        wavefront=64,
        registers_per_cu=65536,      # 256 KB VGPR file / 4 B
        local_mem_per_cu=64 * 1024,
        max_wgs_per_cu=40,
        max_wg_size=256,
        clock_mhz=1018,
        mem_bw_gbs=320.0,
        flops_per_cycle_per_cu=128,  # 64 lanes x FMA
        global_mem_bytes=4 * 1024**3,
        scheduler_policy="exclusive",
    )


def known_devices():
    """The two evaluation devices, keyed by vendor (paper §7.1)."""
    return {"NVIDIA": nvidia_k20m(), "AMD": amd_r9_295x2()}


def derated_device(base, name, clock_scale=1.0, cu_scale=1.0):
    """A slower sibling of ``base`` for heterogeneous-fleet studies.

    Scales the clock (and memory bandwidth, which tracks the memory clock)
    by ``clock_scale`` and the compute-unit count by ``cu_scale``; per-CU
    capacities — the §3 inputs — are untouched, so the sharing algorithm's
    per-device guarantees hold unchanged on the derated part.  Models the
    common fleet reality of mixed generations of the same architecture.
    """
    if not 0.0 < clock_scale <= 1.0 or not 0.0 < cu_scale <= 1.0:
        raise ValueError("derating scales must be in (0, 1]")
    # copy every field so future DeviceSpec additions survive derating
    fields = dict(vars(base))
    fields.update(
        name=name,
        num_cus=max(1, int(round(base.num_cus * cu_scale))),
        clock_mhz=base.clock_mhz * clock_scale,
        mem_bw_gbs=base.mem_bw_gbs * clock_scale,
    )
    return DeviceSpec(**fields)
