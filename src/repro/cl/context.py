"""Contexts (``clCreateContext`` equivalent)."""

from __future__ import annotations

from repro.cl.memory import Buffer, DeviceAllocator
from repro.errors import CLError


class Context:
    """An OpenCL context bound to a single device.

    The paper's platforms each expose one GPU; multi-device contexts are not
    needed and keeping a 1:1 context/device mapping simplifies accounting.
    """

    def __init__(self, device):
        self.device = device
        self.allocator = DeviceAllocator(device.global_mem_bytes)

    def create_buffer(self, elem_type, count, tag="", provenance=None):
        return Buffer(self, elem_type, count, tag, provenance=provenance)

    def create_program(self, source):
        from repro.cl.program import Program
        return Program(self, source)

    def create_queue(self):
        from repro.cl.queue import CommandQueue
        return CommandQueue(self)

    def __repr__(self):
        return "<Context on {}>".format(self.device.name)
