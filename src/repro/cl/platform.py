"""Platform discovery (``clGetPlatformIDs`` equivalent)."""

from __future__ import annotations

from repro.cl.device import amd_r9_295x2, nvidia_k20m


class Platform:
    """An OpenCL platform: a vendor runtime exposing devices."""

    def __init__(self, name, vendor, devices):
        self.name = name
        self.vendor = vendor
        self.devices = list(devices)

    def __repr__(self):
        return "<Platform {} ({} devices)>".format(self.name, len(self.devices))


def get_platforms():
    """Return the simulated platforms (one per vendor, as in the paper)."""
    return [
        Platform("NVIDIA OpenCL 331.79", "NVIDIA", [nvidia_k20m()]),
        Platform("AMD APP 1445.5", "AMD", [amd_r9_295x2()]),
    ]
