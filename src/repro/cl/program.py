"""Programs (``clCreateProgramWithSource`` / ``clBuildProgram``).

``Program.build`` is the interception point the accelOS JIT hooks: the
Application Monitor replaces the standard build with the transformed module
(paper fig. 6, "New clProgram" edge).  A build hook can be installed per
program, which is exactly how ProxyCL wires accelOS in without the
application noticing.
"""

from __future__ import annotations

from repro.errors import CLError
from repro.ir import compile_source
from repro.ir.passes import ResourceAnalysis


class Program:
    """An OpenCL program: source plus (after build) a compiled module."""

    def __init__(self, context, source):
        self.context = context
        self.source = source
        self.module = None
        self.build_options = None
        self.build_hook = None  # callable(module) -> module, set by accelOS

    def build(self, options=None):
        """Compile the source; applies the build hook if one is installed."""
        module = compile_source(self.source, options, name="program")
        if self.build_hook is not None:
            module = self.build_hook(module)
        self.module = module
        self.build_options = options
        return self

    def kernel_names(self):
        self._check_built()
        return [f.name for f in self.module.kernels()]

    def create_kernel(self, name):
        from repro.cl.kernel import Kernel
        self._check_built()
        if name not in {f.name for f in self.module.kernels()}:
            raise CLError("no kernel {!r} in program".format(name))
        return Kernel(self, name)

    def kernel_resource_usage(self, name, local_arg_sizes=None):
        """Static resource usage of a kernel (what ``clGetKernelWorkGroupInfo``
        exposes as ``CL_KERNEL_*`` on real drivers)."""
        self._check_built()
        func = self.module.get(name)
        return ResourceAnalysis(local_arg_sizes).analyze(func)

    def _check_built(self):
        if self.module is None:
            raise CLError("program has not been built")
