"""Device memory: buffers and a capacity-tracking allocator.

The allocator enforces the device's global-memory capacity so the accelOS
memory manager (§5, "Memory Management") has real pressure to react to:
when concurrent applications oversubscribe device memory, allocation fails
with :class:`DeviceOutOfMemory` and the runtime pauses applications.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CLError, DeviceOutOfMemory
from repro.interp.memory import MemoryRegion, Pointer
from repro.kernelc import types as T


class DeviceAllocator:
    """Tracks allocations against a device's global memory capacity."""

    def __init__(self, capacity_bytes):
        self.capacity_bytes = int(capacity_bytes)
        self.used_bytes = 0
        self.live = {}

    def allocate(self, size_bytes, tag="", provenance=None):
        size_bytes = int(size_bytes)
        if size_bytes <= 0:
            raise CLError("buffer size must be positive")
        if self.used_bytes + size_bytes > self.capacity_bytes:
            raise DeviceOutOfMemory(
                "requested {}B with {}B free".format(
                    size_bytes, self.capacity_bytes - self.used_bytes))
        region = MemoryRegion(size_bytes, T.GLOBAL, tag,
                              provenance=provenance)
        self.used_bytes += size_bytes
        self.live[id(region)] = size_bytes
        return region

    def release(self, region):
        size = self.live.pop(id(region), None)
        if size is None:
            raise CLError("releasing an unknown region")
        self.used_bytes -= size

    @property
    def free_bytes(self):
        return self.capacity_bytes - self.used_bytes


class Buffer:
    """A device buffer (``cl_mem``) of ``count`` elements of ``elem_type``."""

    def __init__(self, context, elem_type, count, tag="", provenance=None):
        from repro.interp.memory import scalar_size
        self.context = context
        self.elem_type = elem_type
        self.count = int(count)
        self.size_bytes = self.count * scalar_size(elem_type)
        self.region = context.allocator.allocate(self.size_bytes, tag,
                                                 provenance=provenance)
        self.released = False

    def pointer(self):
        """Device pointer to the start of the buffer."""
        self._check_live()
        return Pointer(self.region, self.elem_type, 0)

    def write(self, host_array):
        """Host-to-device copy (synchronous form used by the queue)."""
        self._check_live()
        self.region.fill_from(np.asarray(host_array))

    def read(self, dtype=None):
        """Device-to-host copy returning a fresh numpy array."""
        self._check_live()
        from repro.interp.memory import dtype_for
        dtype = dtype or dtype_for(self.elem_type)
        return self.region.to_array(dtype, self.count)

    def release(self):
        if not self.released:
            self.context.allocator.release(self.region)
            self.released = True

    def _check_live(self):
        if self.released:
            raise CLError("use of released buffer")

    def __repr__(self):
        return "<Buffer {}x{} ({}B)>".format(self.count, self.elem_type,
                                             self.size_bytes)
