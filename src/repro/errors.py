"""Exception hierarchy for the repro package.

Every layer of the stack raises a subclass of :class:`ReproError` so callers
can catch failures from the whole toolchain with a single handler while the
leaf classes keep diagnostics precise.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class CompileError(ReproError):
    """Base class for kernel compilation failures."""

    def __init__(self, message, line=None, column=None):
        self.line = line
        self.column = column
        if line is not None:
            message = "line {}:{}: {}".format(line, column or 0, message)
        super().__init__(message)


class LexError(CompileError):
    """Invalid character sequence in kernel source."""


class ParseError(CompileError):
    """Kernel source does not match the grammar."""


class SemanticError(CompileError):
    """Kernel source is grammatical but ill-typed or ill-formed."""


class IRError(ReproError):
    """Malformed IR detected (verifier failure or builder misuse)."""


class InterpError(ReproError):
    """Runtime fault while functionally executing a kernel."""


class MemoryFault(InterpError):
    """Out-of-bounds or wild access in the simulated device memory."""


class CLError(ReproError):
    """Mini-OpenCL host API misuse (mirrors OpenCL error codes loosely)."""


class DeviceOutOfMemory(CLError):
    """Device memory allocator cannot satisfy a request."""


class SimulationError(ReproError):
    """Timing simulator invariant violation."""


class SchedulingError(ReproError):
    """accelOS scheduler could not produce a valid allocation."""
