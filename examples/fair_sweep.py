"""Mini evaluation sweep: fairness and throughput across request sizes.

A reduced version of the paper's §8 campaign (figs. 9, 12, 13): random 2-,
4- and 8-kernel workloads on both simulated platforms, under all three
schemes.  Takes about a minute; scale up with REPRO_SWEEP_SCALE.

Run:  python examples/fair_sweep.py
"""

from repro.cl import amd_r9_295x2, nvidia_k20m
from repro.harness import format_table, run_sweep, summarize
from repro.workloads import random_workloads

SAMPLES = 32


def main():
    for device in (nvidia_k20m(), amd_r9_295x2()):
        rows = []
        for k in (2, 4, 8):
            workloads = random_workloads(k, SAMPLES)
            summary = summarize(run_sweep(workloads, device, repetitions=2))
            rows.append([
                k,
                summary.avg_unfairness["baseline"],
                summary.avg_unfairness["accelos"],
                summary.avg_fairness_improvement("accelos"),
                summary.avg_throughput_speedup("accelos"),
                "{:.0f}%".format(100 * summary.avg_overlap["accelos"]),
            ])
        print(format_table(
            ["requests", "U standard", "U accelOS", "fairness improvement",
             "throughput speedup", "overlap"],
            rows,
            title="{} - {} random workloads per size".format(
                device.name, SAMPLES)))
        print()


if __name__ == "__main__":
    main()
