"""Compiler explorer: watch the accelOS JIT rewrite a kernel.

Shows the paper's fig. 8 transformation on its own example kernel: the
original `mop` kernel, the computation function it becomes, and the
generated `dyn_sched` scheduling kernel — plus the Elastic Kernels static
merge, including why merging two applications' kernels into one binary is
the security concern the paper calls out.

Run:  python examples/compiler_explorer.py
"""

from repro.accelos.transform import AccelOSTransform
from repro.baselines.elastic_kernels import elastic_merge_kernels
from repro.ir import compile_source, print_function

MOP_SOURCE = """
#define NConstant 4
kernel void mop(global const float* ina, global const float* inb,
                global float* out)
{
    size_t gid = get_global_id(0);
    size_t grid = get_group_id(0);

    if (grid < NConstant)
        out[gid] = ina[gid] + inb[gid];
    else
        out[gid] = ina[gid] - inb[gid];
}
"""

OTHER_APP_SOURCE = """
kernel void secret_scale(global float* data, float key)
{
    data[get_global_id(0)] = data[get_global_id(0)] * key;
}
"""


def banner(text):
    print("\n" + "=" * 72)
    print(text)
    print("=" * 72)


def main():
    module = compile_source(MOP_SOURCE)

    banner("1. Original kernel (paper fig. 8a), lowered to IR")
    print(print_function(module.get("mop")))

    transformed, infos = AccelOSTransform(inline=False).run(module)
    info = infos["mop"]

    banner("2. Computation function after the accelOS rewrite (fig. 8b top):"
           "\n   kernel -> plain function, work-item builtins -> rt_* calls")
    print(print_function(transformed.get(info.impl_name)))

    banner("3. Generated scheduling kernel (fig. 8b bottom): the dequeue "
           "loop\n   transparently keeps the original name 'mop'")
    print(print_function(transformed.get("mop")))

    print("\nJIT decisions: {} IR instructions -> dequeue chunk {} "
          "(paper 6.4 table)".format(info.instruction_count, info.chunk))

    banner("4. Elastic Kernels baseline: STATIC merge of two applications' "
           "kernels")
    other = compile_source(OTHER_APP_SOURCE)
    merged, name = elastic_merge_kernels(module, "mop",
                                         other, "secret_scale", split=4)
    print(print_function(merged.get(name)))
    print("\nNote the single binary containing both applications' code "
          "(functions {} ...) — the cross-application isolation problem the "
          "paper's accelOS avoids by never merging kernels.".format(
              ", ".join(sorted(f for f in merged.functions
                               if f.startswith("ek_"))[:4])))


if __name__ == "__main__":
    main()
