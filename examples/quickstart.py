"""Quickstart: run a kernel through accelOS, transparently.

An application writes ordinary OpenCL-style code: create a context, build a
program, set kernel args, enqueue an ND-range.  Pointing the "context" at an
accelOS session instead of the vendor runtime is the ONLY difference — the
kernel source and every call below are unchanged, which is the paper's
transparency claim.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.accelos import AccelOSRuntime
from repro.cl import Context, NDRange, nvidia_k20m
from repro.kernelc import types as T

KERNEL_SOURCE = """
kernel void saxpy(global const float* x, global float* y, float a)
{
    size_t gid = get_global_id(0);
    y[gid] = a * x[gid] + y[gid];
}
"""

N = 4096
WG = 256


def run_app(ctx):
    """The application code: identical for vendor OpenCL and accelOS."""
    program = ctx.create_program(KERNEL_SOURCE).build()
    kernel = program.create_kernel("saxpy")
    queue = ctx.create_queue()

    x = ctx.create_buffer(T.FLOAT, N)
    y = ctx.create_buffer(T.FLOAT, N)
    x_host = np.linspace(0, 1, N, dtype=np.float32)
    y_host = np.ones(N, dtype=np.float32)
    queue.enqueue_write_buffer(x, x_host)
    queue.enqueue_write_buffer(y, y_host)

    kernel.set_args(x, y, 2.5)
    queue.enqueue_nd_range(kernel, NDRange((N,), (WG,)))
    queue.finish()
    return queue.enqueue_read_buffer(y), x_host, y_host


def main():
    device = nvidia_k20m()

    # 1. the standard stack
    vendor_result, x_host, y_host = run_app(Context(device))

    # 2. the same application, unmodified, through accelOS
    runtime = AccelOSRuntime(device)
    accel_result, _, _ = run_app(runtime.session("quickstart-app"))

    expected = 2.5 * x_host + y_host
    assert np.allclose(vendor_result, expected)
    assert np.array_equal(vendor_result, accel_result)

    plan = runtime.launch_history[0]
    print("saxpy over {} work groups".format(plan.nd_range.num_groups))
    print("accelOS transformed the kernel and launched {} physical work "
          "groups".format(plan.physical_groups))
    print("dequeue chunk (paper 6.4): {}".format(plan.chunk))
    print("results identical to the vendor stack: OK")


if __name__ == "__main__":
    main()
