"""Multi-device accelOS: a heterogeneous fleet serving streaming arrivals.

One accelOS instance arbitrates one accelerator; a deployment runs many.
This example declares a two-device fleet — a full-speed K20m and a
derated sibling (40% clock, half the CUs) — as one serializable
:class:`repro.api.ExperimentSpec` and sweeps every registered
cross-device placement policy over the same multi-tenant stream:

* round-robin      — blind alternation (the fleet baseline),
* least-loaded     — route to the earliest estimated completion,
* affinity         — least-loaded, but moving a tenant's buffers off the
                     device that holds them costs a migration penalty,
* burst-aware      — closed-loop only: places against *live* simulator
                     backlog with short-horizon burst detection,
* work-stealing    — burst-aware plus a re-balancer that migrates
                     still-queued requests to idle devices.

Every device keeps its own §3 allocator, so the paper's per-device
fairness guarantees are untouched; placement only decides *which* device
a request shares.  Watch round-robin drown the slow device while
least-loaded placement wins on ANTT.

The second table pushes the same fleet past saturation and compares the
offline pre-pass against the closed loop (docs/PLACEMENT.md): online
placement reads actual outstanding work instead of a single-server
estimate, which is exactly what bursty multi-tenant traffic punishes.

It also shows the functional plane: FleetRuntime places application
sessions across devices while each kernel still executes bit-for-bit
correctly.

Run:  python examples/fleet.py
"""

import numpy as np

from repro.accelos import FleetRuntime
from repro.api import ExperimentSpec, placement_names, run
from repro.cl import NDRange, derated_device, nvidia_k20m
from repro.harness import format_table
from repro.kernelc import types as T

REQUESTS = 32
SEED = 7
LOAD = 1.0

SAXPY = """
kernel void saxpy(global const float* x, global float* y, float a)
{
    size_t gid = get_global_id(0);
    y[gid] = a * x[gid] + y[gid];
}
"""


def evaluation_plane():
    spec = ExperimentSpec(
        scenario="multi-tenant",
        schemes=("accelos",),
        loads=(LOAD,),
        seeds=(SEED,),
        count=REQUESTS,
        devices=(
            {"id": "fast", "base": "nvidia-k20m"},
            {"id": "slow", "base": "nvidia-k20m",
             "clock_scale": 0.4, "cu_scale": 0.5},
        ),
        placements=placement_names(),
        metrics=("unfairness", "stp", "antt"),
    )
    results = run(spec)

    rows = []
    for name in placement_names():
        result = results.get(placement=name)
        share = " ".join("{}={:.0%}".format(device_id, fraction)
                         for device_id, fraction
                         in result.device_share.items())
        rows.append([name, result.overall.unfairness, result.overall.stp,
                     result.overall.antt, result.migrations, share])
    print(format_table(
        ["placement", "unfairness", "STP", "ANTT", "migrations",
         "device share"],
        rows,
        title="Heterogeneous fleet ({} multi-tenant requests, load {})"
        .format(REQUESTS, LOAD)))


def closed_loop():
    spec = ExperimentSpec(
        scenario="multi-tenant",
        schemes=("baseline", "accelos"),
        loads=(1.5,),                  # past saturation: bursts queue
        seeds=(SEED,),
        count=REQUESTS,
        devices=(
            {"id": "fast", "base": "nvidia-k20m"},
            {"id": "slow", "base": "nvidia-k20m",
             "clock_scale": 0.4, "cu_scale": 0.5},
        ),
        placements=("least-loaded", "burst-aware"),
        metrics=("unfairness", "antt", "p99_slowdown"),
    )
    results = run(spec)
    rows = []
    for scheme in spec.schemes:
        for placement in spec.placements:
            result = results.get(scheme=scheme, placement=placement)
            rows.append([scheme, placement, result.overall.unfairness,
                         result.overall.antt, result.p99_slowdown])
    print(format_table(
        ["scheme", "placement", "unfairness", "ANTT", "p99 slowdown"],
        rows,
        title="Offline estimate vs closed-loop burst-aware placement "
              "(load 1.5)"))


def functional_plane():
    fleet = FleetRuntime([
        ("fast", nvidia_k20m()),
        ("slow", derated_device(nvidia_k20m(), "K20m-derated", 0.5)),
    ])
    n, wg = 1024, 256
    for app in ("app-a", "app-b", "app-c"):
        ctx = fleet.session(app)
        program = ctx.create_program(SAXPY).build()
        kernel = program.create_kernel("saxpy")
        queue = ctx.create_queue()
        x = ctx.create_buffer(T.FLOAT, n)
        y = ctx.create_buffer(T.FLOAT, n)
        x_host = np.linspace(0, 1, n, dtype=np.float32)
        y_host = np.ones(n, dtype=np.float32)
        queue.enqueue_write_buffer(x, x_host)
        queue.enqueue_write_buffer(y, y_host)
        kernel.set_args(x, y, 2.5)
        queue.enqueue_nd_range(kernel, NDRange((n,), (wg,)))
        queue.finish()
        result = queue.enqueue_read_buffer(y)
        assert np.allclose(result, 2.5 * x_host + y_host)
        print("{} placed on {!r}: results correct".format(
            app, fleet.device_of(app)))
    print("{} kernels executed across the fleet".format(
        len(fleet.launch_history)))


def main():
    evaluation_plane()
    print()
    closed_loop()
    print()
    functional_plane()


if __name__ == "__main__":
    main()
