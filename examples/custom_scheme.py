"""Register a custom scheduling scheme and run it everywhere, unchanged.

The scheme registry (:mod:`repro.api.schemes`) is the extension point
the paper's three schemes themselves use.  This example registers a toy
``serial`` scheme — a strict one-at-a-time scheduler that runs each
request alone in arrival order (the theoretical M/G/1 floor every
sharing scheme should beat on turnaround *variance*, and the ceiling on
queueing delay) — in ~20 lines, then drives it through the same
declarative :class:`repro.api.ExperimentSpec` grid as the built-ins.
Nothing else changes: the harness, driver, metrics and reports all read
the registry.

Run:  python examples/custom_scheme.py
"""

from repro.api import (ExperimentSpec, SchedulingScheme, isolated_time,
                       register_scheme, run)
from repro.harness import format_table

REQUESTS = 24
SEED = 7
LOAD = 1.0


class SerialScheme(SchedulingScheme):
    """One request at a time, arrival order, device exclusively owned."""

    name = "serial"
    description = "strict one-at-a-time service in arrival order"

    def open_records(self, arrivals, device, **knobs):
        from repro.api.schemes import RequestRecord
        free_at = 0.0
        records = [None] * len(arrivals)
        order = sorted(range(len(arrivals)),
                       key=lambda i: (arrivals[i].time, i))
        for i in order:
            a = arrivals[i]
            start = max(free_at, a.time)
            service = isolated_time(a.name, device)
            records[i] = RequestRecord(a.name, a.time, start,
                                       start + service, service,
                                       tenant=a.tenant)
            free_at = start + service
        return records


def main():
    register_scheme(SerialScheme)

    spec = ExperimentSpec(
        scenario="bursty",
        schemes=("baseline", "accelos", "serial"),
        loads=(LOAD,), seeds=(SEED,), count=REQUESTS,
        metrics=("antt", "stp", "unfairness", "p99_slowdown"))
    results = run(spec)

    rows = [[scheme, results.antt(scheme=scheme),
             results.stp(scheme=scheme),
             results.unfairness(scheme=scheme),
             results.p99_slowdown(scheme=scheme)]
            for scheme in spec.schemes]
    print(format_table(
        ["scheme", "ANTT", "STP", "unfairness", "p99 slowdown"],
        rows,
        title="Custom scheme beside the built-ins (bursty traffic, "
              "load {})".format(LOAD)))


if __name__ == "__main__":
    main()
