"""Open-system accelOS: serving a stream of kernel requests over time.

The paper's accelOS is a daemon that serves applications continuously, not
a batch scheduler.  This example declares the whole campaign as one
serializable :class:`repro.api.ExperimentSpec` — steady traffic over the
Parboil corpus at increasing offered load, every registered scheme — and
runs it through the one driver, streaming progress cell by cell.  Watch
the standard stack's unfairness explode as late arrivals queue behind
earlier kernels, while accelOS's continuous re-allocation of the §3
shares keeps slowdowns even.

Run:  python examples/open_system.py
"""

from repro.api import ExperimentSpec, ResultSet, iter_runs
from repro.harness import format_table

REQUESTS = 32
SEED = 7
LOADS = (0.5, 1.0, 2.0)


def main():
    spec = ExperimentSpec(
        scenario="steady",
        schemes=("baseline", "ek", "accelos"),
        loads=LOADS,
        seeds=(SEED,),
        count=REQUESTS,
        devices=({"id": "k20m", "base": "nvidia-k20m"},),
        metrics=("unfairness", "stp", "antt", "mean_queueing_delay"),
    )

    cells = []
    for cell, result in iter_runs(spec):  # streams as the grid fills
        print("ran {:8s} at load {}".format(cell.scheme, cell.load))
        cells.append((cell, result))
    results = ResultSet(spec, cells)

    rows = [[cell.load, cell.scheme, r.unfairness, r.stp, r.antt,
             "{:.3f}".format(r.mean_queueing_delay * 1e3)]
            for cell, r in results]
    print()
    print(format_table(
        ["offered load", "scheme", "unfairness", "STP", "ANTT",
         "queue delay (ms)"],
        rows,
        title="Streaming arrivals ({} steady requests per stream)"
        .format(REQUESTS)))


if __name__ == "__main__":
    main()
