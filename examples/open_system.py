"""Open-system accelOS: serving a stream of kernel requests over time.

The paper's accelOS is a daemon that serves applications continuously, not
a batch scheduler.  This example drives the three schemes with a seeded
Poisson arrival stream over the Parboil corpus at increasing offered load
and prints the paper's metrics (unfairness, STP, ANTT) plus mean queueing
delay.  Watch the standard stack's unfairness explode as late arrivals
queue behind earlier kernels, while accelOS's continuous re-allocation of
the §3 shares keeps slowdowns even.

Run:  python examples/open_system.py
"""

from repro.cl import nvidia_k20m
from repro.harness import (OpenSystemExperiment, arrival_rate_for_load,
                           format_table)
from repro.workloads import poisson_arrivals

REQUESTS = 32
SEED = 7
LOADS = (0.5, 1.0, 2.0)


def main():
    device = nvidia_k20m()
    experiment = OpenSystemExperiment(device)

    rows = []
    for load in LOADS:
        rate = arrival_rate_for_load(load, device)
        arrivals = poisson_arrivals(rate, REQUESTS, seed=SEED)
        results = experiment.run_all(arrivals)
        for scheme in ("baseline", "ek", "accelos"):
            r = results[scheme]
            rows.append([load, scheme, r.unfairness, r.stp, r.antt,
                         "{:.3f}".format(r.mean_queueing_delay * 1e3)])
    print(format_table(
        ["offered load", "scheme", "unfairness", "STP", "ANTT",
         "queue delay (ms)"],
        rows,
        title="Streaming arrivals on {} ({} Poisson requests per stream)"
        .format(device.name, REQUESTS)))


if __name__ == "__main__":
    main()
