"""Scenario traffic: realistic arrival patterns against the three schemes.

The open-system example (examples/open_system.py) drives plain steady
load; production traffic is rarely that polite.  This example replays the
registered traffic scenarios — bursty Markov-modulated arrivals, diurnal
rate swings, heavy-tailed service-demand mixes, multi-tenant blends
(see docs/SCENARIOS.md) — each as one declarative
:class:`repro.api.ExperimentSpec`, and reports the tail statistics that
mean ANTT hides: p50/p95/p99 per-request slowdown and the max/mean ratio.
Watch the standard stack's p99 explode whenever arrivals bunch, while
accelOS's continuous re-allocation keeps the tail near the median; the
multi-tenant scenario additionally prints the per-tenant p99 split.

Run:  python examples/scenarios.py
"""

from repro.api import ExperimentSpec, run
from repro.harness import TAIL_HEADERS, format_table, tail_cells
from repro.workloads import SCENARIOS, scenario

REQUESTS = 24
SEED = 7
LOAD = 1.2
SCHEMES = ("baseline", "ek", "accelos")


def main():
    rows = []
    tenant_rows = []
    for name in sorted(SCENARIOS):
        results = run(ExperimentSpec(
            scenario=name, schemes=SCHEMES, loads=(LOAD,), seeds=(SEED,),
            count=REQUESTS, devices=({"id": "k20m", "base": "nvidia-k20m"},),
            metrics=("antt", "p99_slowdown")))
        for scheme in SCHEMES:
            result = results.get(scheme=scheme)
            rows.append([name, scheme, *tail_cells(result.slowdown_tails),
                         result.queueing_tails.p99 * 1e3, result.antt])
            for tenant, tails in result.tenant_slowdown_tails.items():
                if tenant is not None:
                    tenant_rows.append([name, scheme, tenant, tails.p50,
                                        tails.p99])

    print(format_table(
        ["scenario", "scheme", *TAIL_HEADERS, "queue p99 (ms)", "ANTT"],
        rows,
        title="Traffic scenarios ({} requests, load {}, seed {})"
        .format(REQUESTS, LOAD, SEED)))
    print()
    print(format_table(
        ["scenario", "scheme", "tenant", "p50", "p99"],
        tenant_rows,
        title="Per-tenant slowdown tails (tenant-tagged scenarios)"))
    print()
    for name in sorted(SCENARIOS):
        print("{:16s} {}".format(name, scenario(name).description))


if __name__ == "__main__":
    main()
