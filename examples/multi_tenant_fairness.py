"""Multi-tenant fairness: four applications share one GPU.

Reproduces the paper's motivating example (fig. 2) end to end: bfs, cutcp,
stencil and tpacf submitted concurrently by four distinct applications,
executed under the standard stack, Elastic Kernels, and accelOS — then
compared on individual slowdowns, unfairness and throughput.

Run:  python examples/multi_tenant_fairness.py
"""

from repro.cl import nvidia_k20m
from repro.harness import format_table, run_workload

WORKLOAD = ("bfs", "cutcp", "stencil", "tpacf")


def main():
    device = nvidia_k20m()
    results = {scheme: run_workload(WORKLOAD, scheme, device, repetitions=3)
               for scheme in ("baseline", "ek", "accelos")}

    rows = []
    for i, kernel in enumerate(WORKLOAD):
        rows.append([kernel,
                     results["baseline"].slowdowns[i],
                     results["ek"].slowdowns[i],
                     results["accelos"].slowdowns[i]])
    print(format_table(
        ["kernel", "standard", "elastic kernels", "accelOS"], rows,
        title="Individual slowdowns (fig 2a): the standard stack serialises "
              "- first kernel barely slowed, later ones starve"))
    print()

    base = results["baseline"]
    rows = []
    for scheme in ("baseline", "ek", "accelos"):
        r = results[scheme]
        rows.append([scheme, r.unfairness,
                     base.unfairness / r.unfairness,
                     base.makespan / r.makespan,
                     "{:.0f}%".format(100 * r.overlap)])
    print(format_table(
        ["scheme", "unfairness", "fairness improvement",
         "throughput speedup", "overlap"],
        rows, title="System metrics (fig 2b/2c)"))


if __name__ == "__main__":
    main()
