"""Documentation checkers (the former ``tools/check_docs.py``).

Two classes of rot, now reported as structured findings through the
unified entry point (``tools/check_docs.py`` remains as a shim):

=======  ====================================================================
code     rot
=======  ====================================================================
W401     broken intra-repo markdown link — ``[text](path)`` must resolve
         to a file or directory (anchors stripped; ``http(s)``/
         ``mailto``/pure-anchor links ignored)
W402     fenced ``sh`` block quotes a command file that does not exist
         (``python examples/...``, ``python -m pytest benchmarks/...``)
=======  ====================================================================
"""

from __future__ import annotations

import re

from tools.analysis.core import Checker, Finding

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCE_OPEN_RE = re.compile(r"^```(sh|bash|console)\s*$")
FENCE_CLOSE_RE = re.compile(r"^```\s*$")
COMMAND_PATH_RE = re.compile(
    r"python(?:3)?(?:\s+-m\s+pytest)?\s+((?:examples|benchmarks|tests|"
    r"tools)/[\w./-]+\.py)")


class MarkdownLinkChecker(Checker):
    name = "markdown-links"
    codes = ("W401",)
    description = "relative markdown links must resolve inside the repo"

    def run(self, ctx):
        for md in ctx.markdown_files():
            relpath = md.relative_to(ctx.root).as_posix()
            for lineno, line in enumerate(
                    md.read_text(encoding="utf-8").splitlines(), start=1):
                for target in LINK_RE.findall(line):
                    if target.startswith(("http://", "https://",
                                          "mailto:", "#")):
                        continue
                    path = target.split("#", 1)[0]
                    if not path:
                        continue
                    if not (md.parent / path).resolve().exists():
                        yield Finding(relpath, lineno, "W401",
                                      "broken link -> {}".format(target))


class DocCommandPathChecker(Checker):
    name = "doc-command-paths"
    codes = ("W402",)
    description = "files quoted by runnable doc snippets must exist"

    def run(self, ctx):
        for md in ctx.markdown_files():
            relpath = md.relative_to(ctx.root).as_posix()
            in_fence = False
            for lineno, line in enumerate(
                    md.read_text(encoding="utf-8").splitlines(), start=1):
                if not in_fence and FENCE_OPEN_RE.match(line):
                    in_fence = True
                    continue
                if in_fence and FENCE_CLOSE_RE.match(line):
                    in_fence = False
                    continue
                if not in_fence:
                    continue
                for path in COMMAND_PATH_RE.findall(line):
                    if not (ctx.root / path).exists():
                        yield Finding(
                            relpath, lineno, "W402",
                            "code block references missing file "
                            "{}".format(path))


DOCS_CHECKERS = (MarkdownLinkChecker, DocCommandPathChecker)
