"""Spec-contract exhaustiveness: every field, every surface.

The PR 5 ``placement_mode``/``rebalance`` additions showed how easy it
is to add an :class:`~repro.api.spec.ExperimentSpec` field and miss one
of its three contract surfaces — serialization out (``to_dict``),
serialization in (``from_dict`` tuple coercion) and the eager validator
(``__post_init__``).  A missed surface is silent: the spec still
"works" until a JSON round-trip drops the field or an invalid value
sails through to mid-grid failure.

Checked over the *source* of ``src/repro/api/spec.py`` (AST, not
runtime), for every ``@dataclass`` there:

=======  ====================================================================
code     contract surface
=======  ====================================================================
C301     field missing from the dict literal ``to_dict`` returns
C302     field never read (``self.<field>``) by ``__post_init__`` —
         the eager validator must at least look at every field
C303     tuple-typed field missing from ``from_dict``'s list->tuple
         coercion (JSON arrays must come back as the frozen tuples
         ``__eq__`` and the goldens expect)
=======  ====================================================================
"""

from __future__ import annotations

import ast

from tools.analysis.core import Checker, Finding

SPEC_PATH = "src/repro/api/spec.py"


def _dataclass_fields(classdef):
    """Ordered (name, annotation_source, lineno) of AnnAssign fields."""
    fields = []
    for node in classdef.body:
        if isinstance(node, ast.AnnAssign) and \
                isinstance(node.target, ast.Name):
            fields.append((node.target.id, ast.unparse(node.annotation),
                           node.lineno))
    return fields


def _is_dataclass(classdef):
    for deco in classdef.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = target.attr if isinstance(target, ast.Attribute) else \
            target.id if isinstance(target, ast.Name) else ""
        if name == "dataclass":
            return True
    return False


def _method(classdef, name):
    for node in classdef.body:
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    return None


def _returned_dict_keys(funcdef):
    keys = set()
    for node in ast.walk(funcdef):
        if isinstance(node, ast.Return) and isinstance(node.value, ast.Dict):
            for key in node.value.keys:
                if isinstance(key, ast.Constant) and \
                        isinstance(key.value, str):
                    keys.add(key.value)
    return keys


def _self_reads(funcdef):
    reads = set()
    for node in ast.walk(funcdef):
        if isinstance(node, ast.Attribute) and \
                isinstance(node.value, ast.Name) and \
                node.value.id == "self":
            reads.add(node.attr)
    return reads


def _coercion_keys(funcdef):
    """String tuples/lists iterated inside ``from_dict`` — the
    list->tuple coercion key set."""
    keys = set()
    for node in ast.walk(funcdef):
        if isinstance(node, ast.For) and \
                isinstance(node.iter, (ast.Tuple, ast.List)):
            for elt in node.iter.elts:
                if isinstance(elt, ast.Constant) and \
                        isinstance(elt.value, str):
                    keys.add(elt.value)
    return keys


class SpecContractChecker(Checker):
    name = "spec-contract"
    codes = ("C301", "C302", "C303")
    description = ("ExperimentSpec fields must appear in to_dict, "
                   "from_dict coercion and the eager validator")

    def run(self, ctx):
        pyfiles = ctx.python_files(SPEC_PATH)
        if not pyfiles:
            yield Finding(SPEC_PATH, 1, "C301",
                          "spec module not found; contract unchecked")
            return
        pyfile = pyfiles[0]
        for node in pyfile.tree.body:
            if isinstance(node, ast.ClassDef) and _is_dataclass(node):
                yield from self._check_class(pyfile.relpath, node)

    def _check_class(self, relpath, classdef):
        fields = _dataclass_fields(classdef)
        if not fields:
            return
        to_dict = _method(classdef, "to_dict")
        if to_dict is not None:
            keys = _returned_dict_keys(to_dict)
            for name, _, lineno in fields:
                if name not in keys:
                    yield Finding(
                        relpath, lineno, "C301",
                        "{}.{} missing from to_dict(): the field would "
                        "silently vanish on serialization".format(
                            classdef.name, name))
        post_init = _method(classdef, "__post_init__")
        if post_init is not None:
            reads = _self_reads(post_init)
            for name, _, lineno in fields:
                if name not in reads:
                    yield Finding(
                        relpath, lineno, "C302",
                        "{}.{} never read by __post_init__: the eager "
                        "validator must cover every field".format(
                            classdef.name, name))
        from_dict = _method(classdef, "from_dict")
        if from_dict is not None:
            coerced = _coercion_keys(from_dict)
            if coerced:  # only meaningful when the method coerces at all
                for name, annotation, lineno in fields:
                    if "tuple" in annotation and name not in coerced:
                        yield Finding(
                            relpath, lineno, "C303",
                            "{}.{} is tuple-typed but missing from "
                            "from_dict's list->tuple coercion: JSON "
                            "round-trips would break frozen equality"
                            .format(classdef.name, name))


SPEC_CHECKERS = (SpecContractChecker,)
