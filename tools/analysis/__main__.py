"""Unified static-analysis entry point (the CI ``analysis`` gate).

Usage::

    python -m tools.analysis                  # full battery + mypy/ruff
    python -m tools.analysis --select D       # determinism lints only
    python -m tools.analysis --select W       # docs checks (docs job)
    python -m tools.analysis --json out.json  # machine-readable report
    python -m tools.analysis --update-baseline  # grandfather findings

Exit status 0 when every finding is baselined (or none), 1 otherwise.
mypy/ruff run when installed and are skipped with a notice when not —
the CI job installs both, so the gate is only ever open locally.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from tools.analysis import default_manager  # noqa: E402
from tools.analysis.core import (AnalysisContext, BASELINE_PATH,  # noqa: E402
                                 load_baseline, save_baseline,
                                 split_by_baseline)
from tools.analysis.external import run_mypy, run_ruff  # noqa: E402


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m tools.analysis", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--select", action="append", default=None,
                        metavar="PREFIX",
                        help="only run checkers emitting codes with this "
                             "prefix (repeatable; e.g. D, R201, W)")
    parser.add_argument("--skip", action="append", default=None,
                        metavar="PREFIX",
                        help="drop checkers whose codes all match PREFIX")
    parser.add_argument("--json", metavar="FILE", default=None,
                        help="also write findings as JSON")
    parser.add_argument("--no-external", action="store_true",
                        help="skip the mypy/ruff wrappers")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite {} from the current findings "
                             "(then commit the diff deliberately)".format(
                                 BASELINE_PATH.name))
    parser.add_argument("--list-checkers", action="store_true",
                        help="print the checker battery and exit")
    parser.add_argument("root", nargs="?", default=str(REPO_ROOT),
                        help="repo root to analyse (default: this repo)")
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    manager = default_manager(select=args.select, skip=args.skip)

    if args.list_checkers:
        for checker in manager.checkers:
            print("{:<28} {:<18} {}".format(
                checker.name, "/".join(checker.codes), checker.description))
        return 0

    ctx = AnalysisContext(root=args.root)
    findings = manager.run(ctx)

    skipped = []
    if not args.no_external and (args.select is None and args.skip is None):
        for runner in (run_mypy, run_ruff):
            extra, reason = runner(ctx.root)
            findings.extend(extra)
            if reason:
                skipped.append(reason)
        findings.sort()

    baseline = load_baseline()
    new, grandfathered, stale = split_by_baseline(findings, baseline)

    if args.update_baseline:
        save_baseline(findings)
        print("baseline rewritten with {} entries -> {}".format(
            len(findings), BASELINE_PATH))
        return 0

    if args.json:
        report = {
            "findings": [f.to_dict() for f in new],
            "baselined": [f.to_dict() for f in grandfathered],
            "stale_baseline": [
                {"file": f, "code": c, "message": m} for f, c, m in stale],
            "skipped": skipped,
        }
        Path(args.json).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")

    for reason in skipped:
        print("note: {}".format(reason))
    for finding in grandfathered:
        print("baselined: {}".format(finding.render()))
    for file, code, message in stale:
        print("stale baseline entry (delete it): {}: {} {}".format(
            file, code, message))
    for finding in new:
        print(finding.render())

    if new:
        print("analysis FAILED: {} finding(s) ({} baselined)".format(
            len(new), len(grandfathered)))
        return 1
    print("analysis OK: 0 new findings ({} baselined, {} checkers)".format(
        len(grandfathered), len(manager.checkers)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
