"""Core of the static-analysis suite: findings, checkers, the manager.

Modelled on :mod:`repro.ir.passes.manager`: checkers register against an
ordered manager, run over one shared :class:`AnalysisContext`, and report
structured :class:`Finding` values instead of mutating anything.  The
manager owns the two escape hatches every practical linter needs:

* **inline suppressions** — ``# lint: ignore[D103] -- reason`` on the
  offending line (multiple codes: ``ignore[D103,R201]``); a whole file
  opts out with ``# lint: skip-file -- reason`` in its first comment
  lines.  Reasons are mandatory: a suppression without ``--  why`` is
  itself reported (code ``S001``), so silent opt-outs cannot accrete.
* **a committed baseline** — ``tools/analysis/baseline.json`` lists
  grandfathered findings by ``(file, code, message)``.  Baselined
  findings are reported but do not fail the run; stale entries (no
  longer firing) are flagged so the baseline only ever shrinks.

The determinism contract these checkers enforce is documented in
``docs/DETERMINISM.md``.
"""

from __future__ import annotations

import ast
import io
import json
import re
import sys
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
BASELINE_PATH = Path(__file__).resolve().parent / "baseline.json"

SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", ".mypy_cache",
             ".ruff_cache", "node_modules", "testdata"}

_IGNORE_RE = re.compile(
    r"#\s*lint:\s*ignore\[([A-Z0-9,\s]+)\](\s*--\s*\S.*)?")
_SKIP_FILE_RE = re.compile(r"#\s*lint:\s*skip-file(\s*--\s*\S.*)?")


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic: where, what rule, and an actionable message."""

    file: str  # repo-relative posix path
    line: int
    code: str
    message: str

    def render(self):
        return "{}:{}: {} {}".format(self.file, self.line, self.code,
                                     self.message)

    def to_dict(self):
        return {"file": self.file, "line": self.line, "code": self.code,
                "message": self.message}

    def baseline_key(self):
        """Line numbers drift; identity for baselining ignores them."""
        return (self.file, self.code, self.message)


class Checker:
    """One analysis pass; yields :class:`Finding`s, changes nothing."""

    name = "checker"
    codes = ()  # the finding codes this checker can emit
    description = ""

    def run(self, ctx):
        raise NotImplementedError


@dataclass
class Suppressions:
    """Parsed ``# lint:`` directives of one python file."""

    by_line: dict = field(default_factory=dict)  # line -> set of codes
    skip_file = False
    bad_directives: list = field(default_factory=list)  # (line, text)

    def suppresses(self, finding):
        if self.skip_file:
            return True
        return finding.code in self.by_line.get(finding.line, ())


def parse_suppressions(text):
    """Extract inline suppressions from python source via the tokenizer
    (so strings that merely *contain* directive text never count)."""
    supp = Suppressions()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        comments = [(tok.start[0], tok.string) for tok in tokens
                    if tok.type == tokenize.COMMENT]
    except (tokenize.TokenError, SyntaxError, IndentationError):
        comments = [(i + 1, line[line.index("#"):])
                    for i, line in enumerate(text.splitlines())
                    if "#" in line]
    for line, comment in comments:
        skip = _SKIP_FILE_RE.search(comment)
        if skip:
            if skip.group(1):
                supp.skip_file = True
            else:
                supp.bad_directives.append((line, comment.strip()))
            continue
        match = _IGNORE_RE.search(comment)
        if match:
            if not match.group(2):
                supp.bad_directives.append((line, comment.strip()))
                continue
            codes = {c.strip() for c in match.group(1).split(",")
                     if c.strip()}
            supp.by_line.setdefault(line, set()).update(codes)
    return supp


class PyFile:
    """One parsed python source file, AST and suppressions cached."""

    def __init__(self, path, root):
        self.path = path
        self.relpath = path.relative_to(root).as_posix()
        self.text = path.read_text(encoding="utf-8")
        self.tree = ast.parse(self.text, filename=str(path))
        self.suppressions = parse_suppressions(self.text)


class AnalysisContext:
    """Shared state one manager run hands every checker.

    Lazily parses python files (cached per path) and lazily imports the
    live registries from ``src/repro`` — checkers validate name literals
    against what is actually registered, not against a stale copy.
    """

    def __init__(self, root=REPO_ROOT):
        self.root = Path(root)
        self._pyfiles = {}
        self._registries = None

    # -- file discovery ------------------------------------------------------

    def _walk(self, relative, suffix):
        base = self.root / relative
        if base.is_file():
            return [base]
        if not base.exists():
            return []
        return [p for p in sorted(base.rglob("*" + suffix))
                if not any(part in SKIP_DIRS for part in p.parts)]

    def python_files(self, *relatives):
        """Parsed :class:`PyFile`s under the given repo-relative roots."""
        out = []
        for relative in relatives:
            for path in self._walk(relative, ".py"):
                if path not in self._pyfiles:
                    self._pyfiles[path] = PyFile(path, self.root)
                out.append(self._pyfiles[path])
        return out

    def markdown_files(self):
        return self._walk(".", ".md")

    def json_files(self, *relatives):
        return [p for relative in relatives
                for p in self._walk(relative, ".json")]

    # -- live registries -----------------------------------------------------

    def registries(self):
        """Name inventories of every ``repro.api`` registry, plus the
        scenario table — imported live so user registrations in this
        checkout count."""
        if self._registries is None:
            src = str(self.root / "src")
            if src not in sys.path:
                sys.path.insert(0, src)
            from repro.api.devices import DEVICES
            from repro.api.placements import PLACEMENTS, REBALANCERS
            from repro.api.results import METRICS
            from repro.api.schemes import SCHEMES
            from repro.workloads.scenarios import SCENARIOS
            self._registries = {
                "scheme": tuple(SCHEMES.names()),
                "placement": tuple(PLACEMENTS.names()),
                "rebalancer": tuple(REBALANCERS.names()),
                "device": tuple(DEVICES.names()),
                "metric": tuple(METRICS.names()),
                "scenario": tuple(SCENARIOS),
            }
        return self._registries


class AnalysisManager:
    """Runs an ordered checker sequence; one list of findings out.

    The :mod:`repro.ir.passes.manager` shape without the fixed point:
    analysis never mutates, so one round is always enough.
    """

    def __init__(self):
        self.checkers = []

    def add(self, checker):
        self.checkers.append(checker)
        return self

    def run(self, ctx):
        """All findings, suppressions applied, sorted for stable output."""
        findings = []
        for checker in self.checkers:
            findings.extend(checker.run(ctx))
        findings.extend(directive_findings(ctx))
        kept = []
        for finding in findings:
            pyfile = self._pyfile_for(ctx, finding)
            if pyfile is not None and pyfile.suppressions.suppresses(finding):
                continue
            kept.append(finding)
        return sorted(set(kept))

    @staticmethod
    def _pyfile_for(ctx, finding):
        path = ctx.root / finding.file
        return ctx._pyfiles.get(path)


def directive_findings(ctx):
    """S001 for malformed ``# lint:`` directives (missing reasons)."""
    out = []
    for pyfile in ctx._pyfiles.values():
        for line, text in pyfile.suppressions.bad_directives:
            out.append(Finding(
                pyfile.relpath, line, "S001",
                "suppression without a reason: {!r} (append "
                "' -- why this is safe')".format(text)))
    return out


# -- baseline ----------------------------------------------------------------

def load_baseline(path=BASELINE_PATH):
    """The grandfathered finding keys committed in ``baseline.json``."""
    if not Path(path).exists():
        return []
    entries = json.loads(Path(path).read_text(encoding="utf-8"))
    return [(e["file"], e["code"], e["message"]) for e in entries]


def save_baseline(findings, path=BASELINE_PATH):
    entries = [{"file": f.file, "code": f.code, "message": f.message}
               for f in sorted(findings)]
    Path(path).write_text(
        json.dumps(entries, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")


def split_by_baseline(findings, baseline):
    """``(new, grandfathered, stale_entries)`` — stale entries are
    baseline lines that no longer fire and should be deleted."""
    keys = set(baseline)
    new = [f for f in findings if f.baseline_key() not in keys]
    old = [f for f in findings if f.baseline_key() in keys]
    fired = {f.baseline_key() for f in old}
    stale = [k for k in baseline if k not in fired]
    return new, old, stale


# -- shared AST helpers ------------------------------------------------------

class ImportMap(ast.NodeVisitor):
    """alias -> dotted module/name map for resolving qualified calls."""

    def __init__(self):
        self.aliases = {}

    def visit_Import(self, node):
        for alias in node.names:
            self.aliases[alias.asname or alias.name.split(".")[0]] = \
                alias.name if alias.asname else alias.name.split(".")[0]

    def visit_ImportFrom(self, node):
        if node.module is None or node.level:
            return
        for alias in node.names:
            self.aliases[alias.asname or alias.name] = \
                node.module + "." + alias.name


def import_map(tree):
    mapper = ImportMap()
    mapper.visit(tree)
    return mapper.aliases


def dotted_name(node, aliases):
    """Resolve ``np.random.rand`` -> ``numpy.random.rand`` (or None)."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    head = aliases.get(node.id, node.id)
    return ".".join([head] + list(reversed(parts)))
