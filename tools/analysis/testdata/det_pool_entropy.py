# Seeded-violation fixture for the D107 pool-entropy checker: process
# identity and salted hash() must never reach cell hashes or the merge.
import hashlib
import json
import os
import threading
from multiprocessing import current_process


def bad_cell_key(cell):
    worker = os.getpid()  # EXPECT[D107]
    lane = threading.get_ident()  # EXPECT[D107]
    name = current_process().name  # EXPECT[D107]
    digest = hash((cell, worker))  # EXPECT[D107]
    return digest, lane, name


def good_cell_key(payload):
    canonical = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
