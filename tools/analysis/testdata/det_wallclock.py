# Seeded-violation fixture for the D102 wall-clock / OS-entropy checker.
import datetime
import os
import time
import uuid


def bad_clock_reads():
    started = time.time()  # EXPECT[D102]
    stamp = datetime.datetime.now()  # EXPECT[D102]
    token = os.urandom(16)  # EXPECT[D102]
    run_id = uuid.uuid4()  # EXPECT[D102]
    return started, stamp, token, run_id


def good_clock(engine):
    return engine.now  # ok: simulated time comes from the event queue
