# Seeded-violation fixture for the D103 unsorted-set-iteration checker.


def bad_iterations(pending, table):
    for item in {3, 1, 2}:  # EXPECT[D103]
        yield item
    for key in table.keys():  # EXPECT[D103]
        yield key
    yield [x for x in set(pending)]  # EXPECT[D103]
    yield list(frozenset(pending))  # EXPECT[D103]


def good_iterations(pending, table):
    for item in sorted({3, 1, 2}):  # ok: sorted pins the order
        yield item
    for key in sorted(table):  # ok
        yield key
    yield [x for x in sorted(set(pending))]  # ok
