# Seeded-violation fixture for the D105 float-time-equality checker.


class Event:
    def __init__(self, when, arrival, start_time):
        self.time = when
        self.arrival = arrival
        self.start_time = start_time

    def __eq__(self, other):
        return self.time == other.time  # ok: structural dunder is exempt

    def __hash__(self):
        return hash(self.time)  # ok: exempt


def bad_time_compares(ev, other, t):
    if ev.time == other.time:  # EXPECT[D105]
        return True
    if ev.arrival != other.arrival:  # EXPECT[D105]
        return False
    return ev.start_time == t  # EXPECT[D105]
