# Seeded-violation fixture for the R201 registry-literal checker.
import pytest

from repro.api import DeviceEntry, register_scheme, scheme_from_name


class ToyScheme:
    name = "toy-fixture-scheme"


register_scheme(ToyScheme)


def bad_literals():
    spec = dict(
        scenario="no-such-scenario",  # EXPECT[R201]
        schemes=("baseline",
                 "ghost-scheme"),  # EXPECT[R201]
        placements=("round-robin",
                    "bogus-placement"),  # EXPECT[R201]
        metrics=("antt",
                 "fake-metric"),  # EXPECT[R201]
        rebalance="not-a-rebalancer",  # EXPECT[R201]
    )
    looked_up = scheme_from_name("missing-scheme")  # EXPECT[R201]
    device = DeviceEntry(base="no-such-device")  # EXPECT[R201]
    ok = scheme_from_name("toy-fixture-scheme")  # ok: registered in-file
    return spec, looked_up, device, ok


def error_path_is_exempt():
    with pytest.raises(Exception):
        scheme_from_name("definitely-unknown")  # ok: raises-block exempt
