# Fixture for the suppression machinery: a reasoned ignore silences its
# finding, a reasonless one is itself reported (S001) and silences nothing.
import time


def suppressed_ok():
    return time.time()  # lint: ignore[D102] -- fixture: reasoned opt-out


def suppressed_badly():
    return time.time()  # lint: ignore[D102]  EXPECT[D102,S001]
