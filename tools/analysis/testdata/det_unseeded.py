# Seeded-violation fixture for the D101 unseeded-RNG checker.
# The EXPECT markers name the exact line a finding must anchor to;
# tests/test_analysis.py copies this file into a scratch repo tree and
# asserts the finding set matches the markers bit-for-bit.
import random

import numpy as np
from numpy.random import default_rng

from repro.util.rng import make_rng


def bad_draws(n):
    jitter = random.random()  # EXPECT[D101]
    order = np.random.rand(n)  # EXPECT[D101]
    random.shuffle(order)  # EXPECT[D101]
    gen = np.random.default_rng()  # EXPECT[D101]
    other = default_rng()  # EXPECT[D101]
    return jitter, order, gen, other


def good_draws(seed):
    rng = make_rng("fixture", seed)  # ok: the sanctioned seeding point
    seeded = np.random.default_rng(seed)  # ok: explicit seed
    return rng.random(), seeded.random()
