# Seeded-violation fixture for the D108 memo-state checker.
from collections import defaultdict

_ALLOCATION_CACHE = {}  # EXPECT[D108]
RESULT_MEMO = defaultdict(list)  # EXPECT[D108]
cache_by_name: dict = {}  # EXPECT[D108]


def lookup_with_shared_default(key, memo={}):  # EXPECT[D108]
    if key not in memo:
        memo[key] = expensive(key)
    return memo[key]


def keyword_only_default(key, *, seen=[]):  # EXPECT[D108]
    seen.append(key)
    return seen


def expensive(key):
    return key * 2


# instance-level memo state created per run is the sanctioned pattern
class PerRunMemo:
    def __init__(self):
        self._cache = {}

    def get(self, key):
        if key not in self._cache:
            self._cache[key] = expensive(key)
        return self._cache[key]


# a module-level *constant* table is not a memo: name carries intent
REPLACEMENT_TABLE = {"a": "b"}


def explicit_none_default(key, memo=None):
    if memo is None:
        memo = {}
    memo[key] = expensive(key)
    return memo
