# Seeded-violation fixture for the C301/C302/C303 spec-contract checker.
# Copied to src/repro/api/spec.py inside the scratch tree by the tests.
from dataclasses import dataclass


@dataclass(frozen=True)
class BadSpec:
    name: str
    seeds: tuple[int, ...] = (0,)  # EXPECT[C303]
    tags: tuple[str, ...] = ()
    note: str = ""  # EXPECT[C301,C302]

    def __post_init__(self):
        if not self.name:
            raise ValueError("name required")
        _ = self.seeds
        _ = self.tags
        # `note` deliberately never read -> C302

    def to_dict(self):
        # `note` deliberately omitted -> C301
        return {"name": self.name, "seeds": list(self.seeds),
                "tags": list(self.tags)}

    @classmethod
    def from_dict(cls, data):
        data = dict(data)
        for key in ("tags",):  # `seeds` deliberately missing -> C303
            if key in data:
                data[key] = tuple(data[key])
        return cls(**data)
