# Seeded-violation fixture for the D104 id()-derived-ordering checker.


def bad_orderings(items, a, b):
    if id(a) < id(b):  # EXPECT[D104]
        a, b = b, a
    ranked = sorted(items, key=lambda x: id(x))  # EXPECT[D104]
    return ranked


def good_identity_map(items, weights):
    # id() as a dict *key* is fine — no ordering is derived from it
    weight_of = {id(x): w for x, w in zip(items, weights)}
    return weight_of
