# Seeded-violation fixture for the D106 arrival-materialisation checker.


def bad_consumption(arrivals, arrival_iter, queue):
    snapshot = list(arrivals)  # EXPECT[D106]
    frozen = tuple(arrival_iter)  # EXPECT[D106]
    ordered = sorted(queue.pending_arrivals)  # EXPECT[D106]
    return snapshot, frozen, ordered


def good_consumption(arrivals, records):
    for arrival in arrivals:  # ok: incremental consumption
        yield arrival
    materialised = list(records)  # ok: not an arrival stream
    yield sorted(records)  # ok
    yield materialised
