# lint: skip-file -- fixture: whole-file opt-out demo
import time


def wall():
    return time.time()  # no finding: the file opted out above
