"""Gated wrappers around the external tools: mypy and ruff.

The container running the tier-1 suite does not ship either tool, so
both are *gated*: when the module is importable we run it and fold its
diagnostics into the unified finding stream (codes ``MYPY``/``RUFF``);
when it is not, the run reports the gap and carries on — the CI
``analysis`` job installs both, so the gate only ever opens locally.

The strict-typing surface (``STRICT_TYPED_MODULES``) is the
contract-bearing core named in ``pyproject.toml``: the spec/registry/
results front door plus the metrics and util layers.  Future PRs must
keep these fully typed; everything else is checked permissively.
"""

from __future__ import annotations

import importlib.util
import re
import subprocess
import sys

from tools.analysis.core import Finding

# keep in sync with the [[tool.mypy.overrides]] list in pyproject.toml
STRICT_TYPED_MODULES = (
    "src/repro/api/spec.py",
    "src/repro/api/registry.py",
    "src/repro/api/results.py",
    "src/repro/attribution",
    "src/repro/metrics",
    "src/repro/util",
)

_MYPY_LINE_RE = re.compile(r"^(.*?):(\d+):(?:\d+:)? error: (.*)$")
_RUFF_LINE_RE = re.compile(r"^(.*?):(\d+):(?:\d+:)? (.*)$")


def _available(module):
    return importlib.util.find_spec(module) is not None


def run_mypy(root):
    """``(findings, skipped_reason)`` from mypy over the strict core."""
    if not _available("mypy"):
        return [], "mypy not installed; strict-core typing unchecked"
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", "pyproject.toml",
         *STRICT_TYPED_MODULES],
        cwd=str(root), capture_output=True, text=True)
    findings = []
    for line in proc.stdout.splitlines():
        match = _MYPY_LINE_RE.match(line.strip())
        if match:
            findings.append(Finding(match.group(1).replace("\\", "/"),
                                    int(match.group(2)), "MYPY",
                                    match.group(3)))
    if proc.returncode != 0 and not findings:
        findings.append(Finding("pyproject.toml", 1, "MYPY",
                                "mypy failed: {}".format(
                                    (proc.stdout + proc.stderr).strip()
                                    or "unknown error")))
    return findings, None


def run_ruff(root):
    """``(findings, skipped_reason)`` from ruff over the whole repo."""
    if not _available("ruff"):
        return [], "ruff not installed; mechanical style unchecked"
    proc = subprocess.run(
        [sys.executable, "-m", "ruff", "check", "--output-format",
         "concise", "."],
        cwd=str(root), capture_output=True, text=True)
    findings = []
    for line in proc.stdout.splitlines():
        line = line.strip()
        if not line or line.startswith(("Found ", "warning:", "[")):
            continue
        match = _RUFF_LINE_RE.match(line)
        if match and match.group(1).endswith(".py"):
            findings.append(Finding(match.group(1).replace("\\", "/"),
                                    int(match.group(2)), "RUFF",
                                    match.group(3)))
    return findings, None
