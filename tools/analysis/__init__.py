"""Static-analysis suite for the repro codebase.

``python -m tools.analysis`` runs every registered checker (plus mypy
and ruff when installed) and fails on any non-baselined finding; it is
the CI ``analysis`` gate.  See ``docs/DETERMINISM.md`` for the contract
the determinism checkers enforce, and each checker module for its
finding codes.

The framework mirrors :mod:`repro.ir.passes.manager`: small checker
objects registered against an ordered manager, structured
:class:`~tools.analysis.core.Finding` output, inline suppressions and a
committed baseline.
"""

from tools.analysis.core import (AnalysisContext, AnalysisManager, Checker,
                                 Finding, load_baseline, save_baseline,
                                 split_by_baseline)
from tools.analysis.determinism import DETERMINISM_CHECKERS
from tools.analysis.docs import DOCS_CHECKERS
from tools.analysis.registry_names import REGISTRY_CHECKERS
from tools.analysis.spec_contract import SPEC_CHECKERS

ALL_CHECKERS = (DETERMINISM_CHECKERS + REGISTRY_CHECKERS + SPEC_CHECKERS
                + DOCS_CHECKERS)


def default_manager(select=None, skip=None):
    """An :class:`AnalysisManager` loaded with the stock battery.

    ``select``/``skip`` filter by finding code prefix (``"D"`` selects
    every determinism checker, ``"D103"`` exactly one).
    """
    manager = AnalysisManager()
    for checker_cls in ALL_CHECKERS:
        codes = checker_cls.codes
        if select and not any(c.startswith(tuple(select)) for c in codes):
            continue
        if skip and all(c.startswith(tuple(skip)) for c in codes):
            continue
        manager.add(checker_cls())
    return manager


__all__ = [
    "ALL_CHECKERS", "AnalysisContext", "AnalysisManager", "Checker",
    "Finding", "default_manager", "load_baseline", "save_baseline",
    "split_by_baseline",
]
