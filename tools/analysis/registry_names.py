"""Registry-literal consistency: every name literal must resolve.

A scheme/placement/rebalancer/device/metric/scenario name typo'd in a
doc snippet, example, or golden spec JSON only fails at runtime — if the
snippet is ever executed at all.  R201 resolves every such literal
against the *live* ``repro.api`` registries at analysis time:

* **python** (``src/``, ``tests/``, ``examples/``, ``benchmarks/``) —
  keyword arguments with registry semantics (``scenario=``,
  ``schemes=``, ``placements=`` ...), the ``*_from_name`` lookup
  helpers, and ``DeviceEntry(base=...)``.  Literals inside
  ``pytest.raises`` blocks are exempt (tests exercising unknown-name
  errors *should* use unknown names), and names registered in the same
  file (``register_scheme("toy", ...)``) are treated as known.
* **markdown** — the same keyword patterns inside fenced code blocks
  and inline code, JSON-style ``"scenario": "..."`` keys included.
* **spec JSONs** — any JSON object shaped like an
  :class:`~repro.api.spec.ExperimentSpec` (has ``scenario`` +
  ``schemes``) under ``tests/`` or ``examples/`` is field-checked.
"""

from __future__ import annotations

import ast
import json
import re

from tools.analysis.core import Checker, Finding, dotted_name, import_map

# keyword-argument name -> registry kind; extra names always allowed
KWARG_REGISTRY = {
    "scenario": ("scenario", ()),
    "schemes": ("scheme", ()),
    "scheme": ("scheme", ()),
    "placements": ("placement", ()),
    "placement": ("placement", ()),
    "rebalance": ("rebalancer", ("none",)),
    "metrics": ("metric", ()),
    "metric": ("metric", ()),
}

LOOKUP_FUNCS = {
    "scheme_from_name": "scheme",
    "placement_from_name": "placement",
    "rebalancer_from_name": "rebalancer",
    "device_from_name": "device",
    "metric_value": "metric",
}

REGISTER_FUNCS = ("register_scheme", "register_placement",
                  "register_rebalancer", "register_device",
                  "register_metric", "register_scenario", "register")

_MD_KWARG_RE = re.compile(
    r"\b(scenario|scheme|schemes|placement|placements|rebalance|metrics)"
    r"\s*=\s*(\"[^\"]*\"|'[^']*'|\[[^\]]*\]|\([^\)]*\))")
_MD_JSON_KEY_RE = re.compile(
    r"\"(scenario|schemes|placement|placements|rebalance|metrics)\""
    r"\s*:\s*(\"[^\"]*\"|\[[^\]]*\])")
_MD_REGISTER_RE = re.compile(
    r"\bregister_(?:scheme|placement|rebalancer|device|metric|scenario)"
    r"\s*\(\s*[\"']([^\"']+)[\"']")
_STR_RE = re.compile(r"[\"']([^\"']*)[\"']")

_SPEC_FIELDS = (("scenario", "scenario"), ("schemes", "scheme"),
                ("placements", "placement"), ("metrics", "metric"))


def _kwarg_fields(kw_singular):
    # markdown kwarg name -> registry kind (merging singular/plural)
    return KWARG_REGISTRY.get(kw_singular, (None, ()))


class RegistryNameChecker(Checker):
    name = "registry-literals"
    codes = ("R201",)
    description = ("scheme/placement/rebalancer/device/metric/scenario "
                   "name literals must resolve against repro.api")
    python_roots = ("src/repro", "tests", "examples", "benchmarks")
    json_roots = ("tests", "examples")

    def run(self, ctx):
        registries = ctx.registries()
        for pyfile in ctx.python_files(*self.python_roots):
            yield from self._check_python(pyfile, registries)
        for md in ctx.markdown_files():
            yield from self._check_markdown(md, ctx, registries)
        for path in ctx.json_files(*self.json_roots):
            yield from self._check_json(path, ctx, registries)

    # -- python --------------------------------------------------------------

    def _check_python(self, pyfile, registries):
        aliases = import_map(pyfile.tree)
        local = self._locally_registered(pyfile.tree)
        exempt = self._raises_ranges(pyfile.tree, aliases)

        def known(kind, value, extra):
            return (value in registries[kind] or value in extra
                    or value in local)

        for node in ast.walk(pyfile.tree):
            if not isinstance(node, ast.Call):
                continue
            if any(lo <= node.lineno <= hi for lo, hi in exempt):
                continue
            for kw in node.keywords:
                entry = KWARG_REGISTRY.get(kw.arg)
                if entry is None:
                    continue
                kind, extra = entry
                for value, lineno in _literal_strings(kw.value):
                    if not known(kind, value, extra):
                        yield self._finding(pyfile.relpath, lineno, kind,
                                            value, registries)
            func = dotted_name(node.func, aliases) or ""
            tail = func.rsplit(".", 1)[-1]
            kind = LOOKUP_FUNCS.get(tail)
            if kind and node.args:
                for value, lineno in _literal_strings(node.args[0]):
                    if not known(kind, value, ()):
                        yield self._finding(pyfile.relpath, lineno, kind,
                                            value, registries)
            if tail == "DeviceEntry" or func.endswith(".DeviceEntry"):
                for kw in node.keywords:
                    if kw.arg == "base":
                        for value, lineno in _literal_strings(kw.value):
                            if not known("device", value, ()):
                                yield self._finding(pyfile.relpath, lineno,
                                                    "device", value,
                                                    registries)

    @staticmethod
    def _locally_registered(tree):
        """Names the file registers itself (toy schemes in tests...).

        Covers both spellings: ``register_x("name", ...)`` and
        ``register_x(SomeClass)`` where the class carries a
        ``name = "..."`` attribute (the scheme/placement idiom).
        """
        names = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                for stmt in node.body:
                    if isinstance(stmt, ast.Assign) and \
                            isinstance(stmt.value, ast.Constant) and \
                            isinstance(stmt.value.value, str) and any(
                                isinstance(t, ast.Name) and t.id == "name"
                                for t in stmt.targets):
                        names.add(stmt.value.value)
            elif isinstance(node, ast.Call):
                func = node.func
                tail = func.attr if isinstance(func, ast.Attribute) else \
                    func.id if isinstance(func, ast.Name) else None
                if tail in REGISTER_FUNCS and node.args and \
                        isinstance(node.args[0], ast.Constant) and \
                        isinstance(node.args[0].value, str):
                    names.add(node.args[0].value)
            elif isinstance(node, ast.Subscript) and \
                    isinstance(node.ctx, ast.Store) and \
                    isinstance(node.slice, ast.Constant) and \
                    isinstance(node.slice.value, str):
                # direct table writes, e.g. SCENARIOS["toy"] = ...
                names.add(node.slice.value)
        return names

    @staticmethod
    def _raises_ranges(tree, aliases):
        """Line ranges of ``with pytest.raises(...)`` bodies — unknown
        names in error-path tests are the whole point."""
        ranges = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.With):
                continue
            for item in node.items:
                expr = item.context_expr
                if isinstance(expr, ast.Call):
                    name = dotted_name(expr.func, aliases) or ""
                    if name.endswith("raises"):
                        ranges.append((node.lineno, _end_line(node)))
        return ranges

    @staticmethod
    def _finding(relpath, lineno, kind, value, registries):
        return Finding(
            relpath, lineno, "R201",
            "unknown {} name {!r} (registered: {})".format(
                kind, value, ", ".join(registries[kind]) or "<none>"))

    # -- markdown ------------------------------------------------------------

    def _check_markdown(self, path, ctx, registries):
        text = path.read_text(encoding="utf-8")
        relpath = path.relative_to(ctx.root).as_posix()
        local = set(_MD_REGISTER_RE.findall(text))
        for lineno, line in enumerate(text.splitlines(), start=1):
            for match in _MD_KWARG_RE.finditer(line):
                kwarg, payload = match.group(1), match.group(2)
                kind, extra = _kwarg_fields(kwarg)
                if kind is None:
                    continue
                for value in _STR_RE.findall(payload):
                    if value and value not in registries[kind] \
                            and value not in extra and value not in local:
                        yield self._finding(relpath, lineno, kind, value,
                                            registries)
            for match in _MD_JSON_KEY_RE.finditer(line):
                kwarg, payload = match.group(1), match.group(2)
                kind, extra = _kwarg_fields(kwarg)
                if kind is None:
                    continue
                for value in _STR_RE.findall(payload):
                    if value and value not in registries[kind] \
                            and value not in extra and value not in local:
                        yield self._finding(relpath, lineno, kind, value,
                                            registries)

    # -- spec-shaped JSON ----------------------------------------------------

    def _check_json(self, path, ctx, registries):
        relpath = path.relative_to(ctx.root).as_posix()
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except ValueError:
            return
        for spec in _spec_dicts(data):
            for field, kind in _SPEC_FIELDS:
                values = spec.get(field, ())
                if isinstance(values, str):
                    values = (values,)
                for value in values:
                    if isinstance(value, str) and \
                            value not in registries[kind]:
                        yield self._finding(relpath, 1, kind, value,
                                            registries)
            rebalance = spec.get("rebalance")
            if isinstance(rebalance, str) and rebalance != "none" and \
                    rebalance not in registries["rebalancer"]:
                yield self._finding(relpath, 1, "rebalancer", rebalance,
                                    registries)
            for device in spec.get("devices", ()):
                if isinstance(device, dict):
                    base = device.get("base")
                elif isinstance(device, str):
                    base = device
                else:
                    continue
                if isinstance(base, str) and \
                        base not in registries["device"]:
                    yield self._finding(relpath, 1, "device", base,
                                        registries)


def _literal_strings(node):
    """(value, line) for a string literal or a tuple/list of them."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return [(node.value, node.lineno)]
    if isinstance(node, (ast.Tuple, ast.List)):
        out = []
        for elt in node.elts:
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                out.append((elt.value, elt.lineno))
        return out
    return []


def _end_line(node):
    return max((getattr(sub, "lineno", node.lineno)
                for sub in ast.walk(node)), default=node.lineno)


def _spec_dicts(data):
    """Every dict in ``data`` that looks like an ExperimentSpec."""
    if isinstance(data, dict):
        if "scenario" in data and "schemes" in data:
            yield data
        for value in data.values():
            yield from _spec_dicts(value)
    elif isinstance(data, list):
        for item in data:
            yield from _spec_dicts(item)


REGISTRY_CHECKERS = (RegistryNameChecker,)
