"""Determinism lints: the hazards that silently rot golden traces.

Every regression lock in this repo — golden traces, ``cmp``-checked
benchmark JSON, estimate-mode replay — assumes bit-identical replays.
These checkers reject the constructs that break that assumption at CI
time instead of one numpy upgrade later:

=======  ====================================================================
code     hazard
=======  ====================================================================
D101     unseeded global-RNG calls (``random.*`` / ``numpy.random.*``)
         anywhere outside ``util/rng.py`` — all seeding goes through
         :func:`repro.util.rng.make_rng`
D102     wall-clock / OS entropy in ``src/repro`` (``time.time``,
         ``datetime.now``, ``os.urandom``, ``uuid.uuid4`` ...): simulated
         time comes from the event queue, never the host
D103     iteration over ``set``/``frozenset`` literals, calls,
         comprehensions or ``dict.keys()`` without ``sorted()`` in the
         timeline-feeding modules (``sim/``, ``accelos/placement.py``,
         ``accelos/fleet.py``, ``workloads/``) — set order is
         hash-randomised across runs
D104     ``id()``-derived ordering (sort keys or ``<``/``>`` comparisons
         built on ``id()``): CPython ids are allocation addresses
D105     float ``==``/``!=`` against event/arrival-time attributes in
         timeline modules — ties must go through the
         :class:`~repro.sim.engine.EventQueue` tie tiers, not float
         equality
D106     ``list``/``tuple``/``sorted`` materialisation of an arrival
         stream inside ``src/repro/sim`` — the streaming plane's memory
         bound holds only while arrivals stay lazy end to end; consume
         them incrementally (``for``/``next``) instead
D107     process identity (``os.getpid``, ``threading.get_ident``,
         ``multiprocessing.current_process`` ...) or the salted builtin
         ``hash()`` in the driver plane (``src/repro/api``) — cell hashes
         and the parallel merge must derive only from spec fields and
         registry versions, never from which worker ran the cell; cache
         keys go through ``hashlib`` over canonical JSON
D108     module-level or default-argument memo/cache containers in the
         engine planes (``sim/``, ``accelos/``) — memo state that
         outlives one simulation leaks results across runs and across
         the fast/reference A/B legs; memos must live on an instance
         created per run (``self._cache = {}`` in ``__init__``), keyed
         on their full inputs (see :class:`repro.accelos.sharing
         .AllocationMemo`)
=======  ====================================================================
"""

from __future__ import annotations

import ast
import re

from tools.analysis.core import Checker, Finding, dotted_name, import_map

# module roots whose iteration order feeds the shared event timeline
TIMELINE_ROOTS = ("src/repro/sim", "src/repro/accelos/placement.py",
                  "src/repro/accelos/fleet.py", "src/repro/workloads")

WALL_CLOCK = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
    "os.urandom", "uuid.uuid4", "secrets.token_bytes", "secrets.token_hex",
}

# numpy.random constructors that take an explicit seed are fine *when
# actually given one*; everything else on the module is global-RNG state
_SEEDED_CTORS = {"numpy.random.default_rng", "numpy.random.Generator",
                 "numpy.random.SeedSequence", "numpy.random.PCG64",
                 "numpy.random.Philox", "numpy.random.SFC64",
                 "numpy.random.MT19937"}

TIME_ATTRS = {"time", "now", "arrival", "deadline"}


def _is_time_attr(node):
    return (isinstance(node, ast.Attribute)
            and (node.attr in TIME_ATTRS or node.attr.endswith("_time")))


class UnseededRandomChecker(Checker):
    name = "unseeded-random"
    codes = ("D101",)
    description = ("global-RNG calls outside util/rng.py (seed via "
                   "repro.util.rng.make_rng)")
    roots = ("src/repro", "examples", "benchmarks")

    def run(self, ctx):
        for pyfile in ctx.python_files(*self.roots):
            if pyfile.relpath == "src/repro/util/rng.py":
                continue
            aliases = import_map(pyfile.tree)
            for node in ast.walk(pyfile.tree):
                if not isinstance(node, ast.Call):
                    continue
                name = dotted_name(node.func, aliases)
                if name is None:
                    continue
                if name in _SEEDED_CTORS:
                    if not node.args and not node.keywords:
                        yield Finding(
                            pyfile.relpath, node.lineno, "D101",
                            "{}() without a seed is entropy-seeded; "
                            "use repro.util.rng.make_rng(*seed_parts)"
                            .format(name))
                    continue
                if (name.startswith("random.")
                        or name.startswith("numpy.random.")):
                    yield Finding(
                        pyfile.relpath, node.lineno, "D101",
                        "call to global RNG {}(); derive a generator via "
                        "repro.util.rng.make_rng(*seed_parts) instead"
                        .format(name))


class WallClockChecker(Checker):
    name = "wall-clock"
    codes = ("D102",)
    description = "host clocks / OS entropy inside the simulation planes"
    roots = ("src/repro",)

    def run(self, ctx):
        for pyfile in ctx.python_files(*self.roots):
            aliases = import_map(pyfile.tree)
            for node in ast.walk(pyfile.tree):
                if not isinstance(node, ast.Call):
                    continue
                name = dotted_name(node.func, aliases)
                if name in WALL_CLOCK:
                    yield Finding(
                        pyfile.relpath, node.lineno, "D102",
                        "{}() reads host state; simulated time/entropy "
                        "must come from the event timeline or a seeded "
                        "generator".format(name))


def _is_set_expr(node):
    """Expressions whose iteration order is hash-randomised."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "set literal/comprehension"
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and \
                node.func.id in ("set", "frozenset"):
            return "{}()".format(node.func.id)
        if isinstance(node.func, ast.Attribute) and node.func.attr == "keys":
            return ".keys() view"
    return None


class UnsortedSetIterationChecker(Checker):
    name = "unsorted-set-iteration"
    codes = ("D103",)
    description = "set-ordered iteration feeding the event timeline"
    roots = TIMELINE_ROOTS

    def run(self, ctx):
        for pyfile in ctx.python_files(*self.roots):
            for node in ast.walk(pyfile.tree):
                iters = []
                if isinstance(node, ast.For):
                    iters.append(node.iter)
                elif isinstance(node, (ast.ListComp, ast.SetComp,
                                       ast.GeneratorExp, ast.DictComp)):
                    iters.extend(gen.iter for gen in node.generators)
                elif isinstance(node, ast.Call) and \
                        isinstance(node.func, ast.Name) and \
                        node.func.id in ("list", "tuple", "enumerate") and \
                        node.args:
                    iters.append(node.args[0])
                for it in iters:
                    kind = _is_set_expr(it)
                    if kind:
                        yield Finding(
                            pyfile.relpath, it.lineno, "D103",
                            "iteration over {} in a timeline-feeding "
                            "module; wrap in sorted(...) to pin the "
                            "order".format(kind))


class IdOrderingChecker(Checker):
    name = "id-ordering"
    codes = ("D104",)
    description = "orderings derived from id() (allocation addresses)"
    roots = ("src/repro",)

    @staticmethod
    def _contains_id_call(node):
        return any(
            isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name)
            and sub.func.id == "id"
            for sub in ast.walk(node))

    def run(self, ctx):
        for pyfile in ctx.python_files(*self.roots):
            for node in ast.walk(pyfile.tree):
                if isinstance(node, ast.Compare):
                    ordered = any(isinstance(op, (ast.Lt, ast.LtE, ast.Gt,
                                                  ast.GtE))
                                  for op in node.ops)
                    sides = [node.left] + list(node.comparators)
                    if ordered and any(
                            isinstance(s, ast.Call)
                            and isinstance(s.func, ast.Name)
                            and s.func.id == "id" for s in sides):
                        yield Finding(
                            pyfile.relpath, node.lineno, "D104",
                            "ordering comparison of id() values; ids are "
                            "allocation addresses and vary per run")
                elif isinstance(node, ast.Call):
                    for kw in node.keywords:
                        if kw.arg == "key" and self._contains_id_call(
                                kw.value):
                            yield Finding(
                                pyfile.relpath, node.lineno, "D104",
                                "sort/min/max key built on id(); if id() "
                                "only keys a lookup table this is safe — "
                                "suppress with a reason — but id()-derived "
                                "*order* varies per run")


class FloatTimeEqualityChecker(Checker):
    name = "float-time-equality"
    codes = ("D105",)
    description = "float ==/!= against event/arrival time attributes"
    roots = TIMELINE_ROOTS

    # structural-equality dunders legitimately compare stored times
    EXEMPT_METHODS = ("__eq__", "__ne__", "__hash__")

    def run(self, ctx):
        for pyfile in ctx.python_files(*self.roots):
            exempt = set()
            for node in ast.walk(pyfile.tree):
                if isinstance(node, ast.FunctionDef) and \
                        node.name in self.EXEMPT_METHODS:
                    exempt.update(id(sub) for sub in ast.walk(node))
            for node in ast.walk(pyfile.tree):
                if not isinstance(node, ast.Compare) or id(node) in exempt:
                    continue
                if not any(isinstance(op, (ast.Eq, ast.NotEq))
                           for op in node.ops):
                    continue
                sides = [node.left] + list(node.comparators)
                if any(_is_time_attr(s) for s in sides):
                    yield Finding(
                        pyfile.relpath, node.lineno, "D105",
                        "float equality against a time attribute; order "
                        "simultaneous events via EventQueue tie tiers "
                        "(see docs/DETERMINISM.md), not ==")


# identifiers that (by repo convention) carry lazy arrival streams:
# `arrivals`, `arrival_iter`, `arrival_stream`, `pending_arrivals`, ...
_ARRIVAL_STREAM_NAME = re.compile(
    r"(^|_)arrivals?($|_iter$|_stream$|_)")


class ArrivalMaterializationChecker(Checker):
    name = "arrival-materialisation"
    codes = ("D106",)
    description = ("list()/tuple()/sorted() of a lazy arrival stream "
                   "inside the simulator")
    roots = ("src/repro/sim",)

    @staticmethod
    def _stream_name(node):
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            return node.attr
        return None

    def run(self, ctx):
        for pyfile in ctx.python_files(*self.roots):
            for node in ast.walk(pyfile.tree):
                if not (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Name)
                        and node.func.id in ("list", "tuple", "sorted")
                        and node.args):
                    continue
                name = self._stream_name(node.args[0])
                if name and _ARRIVAL_STREAM_NAME.search(name):
                    yield Finding(
                        pyfile.relpath, node.lineno, "D106",
                        "{}({}) materialises an arrival stream inside "
                        "the simulator; the streaming plane's memory "
                        "bound needs arrivals consumed lazily — iterate "
                        "instead".format(node.func.id, name))


# values that identify the executing process/thread: meaningless across
# a worker pool, so they must never reach a cell hash or the merge order
POOL_IDENTITY = {
    "os.getpid", "os.getppid", "os.getpgid", "os.getsid",
    "multiprocessing.current_process", "threading.get_ident",
    "threading.get_native_id", "threading.current_thread",
}


class PoolEntropyChecker(Checker):
    name = "pool-entropy"
    codes = ("D107",)
    description = ("process identity / salted builtin hash() in the "
                   "driver plane (cell-hash inputs)")
    roots = ("src/repro/api",)

    def run(self, ctx):
        for pyfile in ctx.python_files(*self.roots):
            aliases = import_map(pyfile.tree)
            for node in ast.walk(pyfile.tree):
                if not isinstance(node, ast.Call):
                    continue
                name = dotted_name(node.func, aliases)
                if name in POOL_IDENTITY:
                    yield Finding(
                        pyfile.relpath, node.lineno, "D107",
                        "{}() is process-local; cell hashes and the "
                        "parallel merge must derive only from spec "
                        "fields and registry versions".format(name))
                elif isinstance(node.func, ast.Name) and \
                        node.func.id == "hash":
                    yield Finding(
                        pyfile.relpath, node.lineno, "D107",
                        "builtin hash() is salted per interpreter "
                        "(PYTHONHASHSEED) and differs across pool "
                        "workers; content-address cache keys with "
                        "hashlib over canonical JSON instead")


# names that (by repo convention) hold memoised results
_MEMO_NAME = re.compile(r"cache|memo", re.IGNORECASE)

# constructors yielding an empty mutable container
_MUTABLE_CTORS = ("dict", "list", "set", "defaultdict", "OrderedDict",
                  "Counter", "deque")


def _is_mutable_container(node):
    """AST expressions that build a mutable container."""
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                         ast.ListComp, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in _MUTABLE_CTORS)


class MemoStateChecker(Checker):
    name = "memo-state"
    codes = ("D108",)
    description = ("module-level / default-argument memo containers in "
                   "the engine planes (state leaking across runs)")
    roots = ("src/repro/sim", "src/repro/accelos")

    def run(self, ctx):
        for pyfile in ctx.python_files(*self.roots):
            # module-level memo/cache containers: shared by every
            # simulation in the process, so a replay is only identical
            # if the first run already populated them the same way —
            # and the fast/reference A/B legs would observe each other
            for node in pyfile.tree.body:
                targets = ()
                if isinstance(node, ast.Assign):
                    targets = node.targets
                    value = node.value
                elif isinstance(node, ast.AnnAssign) and node.value:
                    targets = (node.target,)
                    value = node.value
                for target in targets:
                    if (isinstance(target, ast.Name)
                            and _MEMO_NAME.search(target.id)
                            and _is_mutable_container(value)):
                        yield Finding(
                            pyfile.relpath, node.lineno, "D108",
                            "module-level memo container {!r} outlives "
                            "the simulation and leaks results across "
                            "runs (and across the fast/reference A/B "
                            "legs); hold memo state on an instance "
                            "created per run, keyed on its full inputs"
                            .format(target.id))
            # mutable default arguments: one shared container per
            # *function object*, i.e. a process-lifetime memo in
            # disguise (with the classic aliasing footgun on top)
            for node in ast.walk(pyfile.tree):
                if not isinstance(node, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                    continue
                defaults = list(node.args.defaults) + [
                    d for d in node.args.kw_defaults if d is not None]
                for default in defaults:
                    if _is_mutable_container(default):
                        yield Finding(
                            pyfile.relpath, default.lineno, "D108",
                            "mutable default argument on {}() is one "
                            "shared container per function object — a "
                            "process-lifetime memo; default to None and "
                            "create the container per call/instance"
                            .format(node.name))


DETERMINISM_CHECKERS = (
    UnseededRandomChecker, WallClockChecker, UnsortedSetIterationChecker,
    IdOrderingChecker, FloatTimeEqualityChecker,
    ArrivalMaterializationChecker, PoolEntropyChecker, MemoStateChecker)
