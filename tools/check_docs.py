"""Documentation health check (run by the CI docs job).

Two classes of rot this catches:

1. **Broken intra-repo links** — every relative markdown link
   ``[text](path)`` in a tracked ``*.md`` file must resolve to a file or
   directory in the repo (anchors are stripped; external ``http(s)``,
   ``mailto`` and pure-anchor links are ignored).
2. **Stale file references in runnable doc snippets** — fenced ``sh``
   code blocks in README/docs quote commands like
   ``python examples/fleet.py`` or
   ``python -m pytest benchmarks/bench_fig09_unfairness.py -q``; the
   referenced paths must exist (the CI job additionally *executes* the
   quickstart example as the run-the-docs smoke test).

Exit status 0 when clean, 1 with a report when anything dangles.

Usage:  python tools/check_docs.py [repo_root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"```(?:sh|bash|console)\n(.*?)```", re.DOTALL)
COMMAND_PATH_RE = re.compile(
    r"python(?:3)?(?:\s+-m\s+pytest)?\s+((?:examples|benchmarks|tests|"
    r"tools)/[\w./-]+\.py)")

SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", "node_modules"}


def markdown_files(root):
    for path in sorted(root.rglob("*.md")):
        if not any(part in SKIP_DIRS for part in path.parts):
            yield path


def check_links(root):
    problems = []
    for md in markdown_files(root):
        text = md.read_text(encoding="utf-8")
        for target in LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (md.parent / path).resolve()
            if not resolved.exists():
                problems.append("{}: broken link -> {}".format(
                    md.relative_to(root), target))
    return problems


def check_code_block_paths(root):
    problems = []
    for md in markdown_files(root):
        text = md.read_text(encoding="utf-8")
        for block in FENCE_RE.findall(text):
            for path in COMMAND_PATH_RE.findall(block):
                if not (root / path).exists():
                    problems.append(
                        "{}: code block references missing file {}".format(
                            md.relative_to(root), path))
    return problems


def main(argv):
    root = Path(argv[1]).resolve() if len(argv) > 1 else \
        Path(__file__).resolve().parent.parent
    problems = check_links(root) + check_code_block_paths(root)
    if problems:
        print("documentation check FAILED:")
        for problem in problems:
            print("  " + problem)
        return 1
    count = sum(1 for _ in markdown_files(root))
    print("documentation check OK ({} markdown files)".format(count))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
