"""Documentation health check — now a shim over the unified suite.

The link/doc-path checkers moved into :mod:`tools.analysis.docs`
(finding codes W401/W402) so they run with suppressions, baseline and
``--json`` reporting like every other checker.  This entry point is
kept so existing muscle memory and scripts keep working; it is exactly
``python -m tools.analysis --select W``.

Usage:  python tools/check_docs.py [repo_root]
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))


def main(argv):
    from tools.analysis.__main__ import main as analysis_main
    args = ["--select", "W"]
    if len(argv) > 1:
        args.append(argv[1])
    return analysis_main(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
