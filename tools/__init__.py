"""Repository tooling: documentation checks and the static-analysis suite.

``python -m tools.analysis`` is the unified entry point (CI ``analysis``
job); ``tools/check_docs.py`` remains as a thin compatibility shim over
the ``docs`` checkers.
"""
