"""Profile the event-engine hot path of an open-system stream.

The optimisation loop behind ``docs/PERFORMANCE.md`` is: run this
harness, read the ranked hot-function table, gate the win behind
``fast_path``, re-run the A/B bench.  It drives the same bursty
multi-tenant stream as ``benchmarks/bench_engine.py`` through
cProfile and prints the top functions by own-time (``tottime``) —
the number that tells you where the interpreter actually spends its
per-event budget, as opposed to cumulative time, which every caller
up the stack inherits.

Usage:

    python tools/profile_hotpath.py                   # fast path, 10^4
    python tools/profile_hotpath.py --reference       # reference path
    python tools/profile_hotpath.py --count 50000 --top 40
    python tools/profile_hotpath.py --fleet           # fleet leg
    python tools/profile_hotpath.py --sort cumtime    # callers' view
    python tools/profile_hotpath.py --output prof.out # pstats dump

Warm-up (2000 requests, untraced) fills the interpreter-lifetime
caches first, so the profile shows the steady-state engine, not
first-touch kernel-profile loads.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import pstats
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

DEFAULT_COUNT = 10_000
WARMUP_COUNT = 2_000
SEED = 2016
LOAD = 0.8
BURST_FACTOR = 1.4
SCENARIO = "multi-tenant"
SCHEME = "accelos"
PLACEMENT = "least-loaded"
SMALL_KERNELS = (
    "mri-gridding_scan_inter1", "mri-q_ComputePhiMag",
    "sad_larger_calc_16", "histo_final", "mri-gridding_scan_L1",
    "sad_larger_calc_8", "mri-gridding_uniformAdd", "histo_prescan",
)


def arrival_iter(count, seed=SEED):
    from repro.workloads import calibrated_model
    model, rate = calibrated_model(SCENARIO, load=LOAD,
                                   names=list(SMALL_KERNELS))
    return model.iter_arrivals(rate * BURST_FACTOR, count, seed=seed)


def build_runner(fleet):
    """``(warm, run)`` thunk pair for the chosen leg."""
    if fleet:
        from repro.cl import derated_device, nvidia_k20m
        from repro.harness import FleetOpenSystemExperiment
        from repro.sim import DeviceFleet

        def make():
            return FleetOpenSystemExperiment(DeviceFleet([
                ("fast", nvidia_k20m()),
                ("slow", derated_device(nvidia_k20m(), "K20m-derated", 0.5)),
            ]))

        def run(experiment, count):
            return experiment.run_stream(arrival_iter(count), SCHEME,
                                         PLACEMENT)
    else:
        from repro.cl import nvidia_k20m
        from repro.harness import OpenSystemExperiment

        def make():
            return OpenSystemExperiment(nvidia_k20m())

        def run(experiment, count):
            return experiment.run_stream(arrival_iter(count), SCHEME)
    return make, run


def profile_stream(count, fleet=False, reference=False, sort="tottime",
                   top=25, output=None):
    """Profile one streaming run; returns the report text."""
    from repro.sim import set_fast_path

    make, run = build_runner(fleet)
    previous = set_fast_path(not reference)
    try:
        run(make(), WARMUP_COUNT)          # untraced cache warm-up
        experiment = make()
        profiler = cProfile.Profile()
        profiler.enable()
        run(experiment, count)
        profiler.disable()
    finally:
        set_fast_path(previous)
    if output:
        profiler.dump_stats(output)
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats(sort).print_stats(top)
    events = getattr(experiment, "events_processed", 0)
    header = "{} leg, {} path, {} requests, {} engine events".format(
        "fleet" if fleet else "single-device",
        "reference" if reference else "fast", count, events)
    return header + "\n" + buffer.getvalue()


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="cProfile the open-system event-engine hot path")
    parser.add_argument("--count", type=int, default=DEFAULT_COUNT,
                        help="requests in the profiled stream "
                             "(default {})".format(DEFAULT_COUNT))
    parser.add_argument("--fleet", action="store_true",
                        help="profile the fleet leg (placement + "
                             "per-device engines) instead of one device")
    parser.add_argument("--reference", action="store_true",
                        help="profile the unoptimised reference path")
    parser.add_argument("--sort", default="tottime",
                        choices=["tottime", "cumtime", "ncalls"],
                        help="pstats sort column (default tottime)")
    parser.add_argument("--top", type=int, default=25,
                        help="rows in the ranked table (default 25)")
    parser.add_argument("--output", metavar="PATH",
                        help="also dump raw pstats here (for snakeviz "
                             "or pstats.Stats)")
    args = parser.parse_args(argv)
    print(profile_stream(args.count, fleet=args.fleet,
                         reference=args.reference, sort=args.sort,
                         top=args.top, output=args.output))
    return 0


if __name__ == "__main__":
    sys.exit(main())
