"""Setuptools shim.

The execution environment has no ``wheel`` package, so PEP 660 editable
installs fail; keeping a ``setup.py`` lets ``pip install -e .`` use the
legacy ``setup.py develop`` path. All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
