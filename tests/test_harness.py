"""Unit tests for the experiment harness."""

import pytest

from repro.accelos.adaptive import SchedulingPolicy
from repro.cl import amd_r9_295x2, nvidia_k20m
from repro.harness import (format_table, isolated_time, run_single_kernel,
                           run_workload, run_sweep, summarize)
from repro.harness.experiment import chunk_for_profile, transform_chunks
from repro.workloads import profile_by_name


def test_isolated_time_positive_and_cached():
    dev = nvidia_k20m()
    t1 = isolated_time("bfs", dev)
    t2 = isolated_time("bfs", dev)
    assert t1 == t2 > 0


def test_isolated_time_differs_across_devices():
    assert isolated_time("cutcp", nvidia_k20m()) != \
        isolated_time("cutcp", amd_r9_295x2())


def test_chunks_come_from_real_jit():
    chunks = transform_chunks("histo")
    assert set(chunks) >= {"histo_final", "histo_main"}
    assert all(c in (1, 2, 4, 6, 8) for c in chunks.values())


def test_naive_policy_chunk_is_one():
    profile = profile_by_name("histo_final")
    assert chunk_for_profile(profile, SchedulingPolicy.NAIVE) == 1


def test_run_workload_baseline_metrics():
    result = run_workload(("bfs", "tpacf"), "baseline", nvidia_k20m(),
                          repetitions=2)
    assert result.unfairness >= 1.0
    assert result.makespan > 0
    assert len(result.slowdowns) == 2
    # serialisation: the first kernel's slowdown is ~1
    assert result.slowdowns[0] == pytest.approx(1.0, rel=0.15)


def test_run_workload_accelos_fairer_than_baseline():
    dev = nvidia_k20m()
    workload = ("histo_main", "mri-q_ComputeQ", "spmv", "sgemm")
    base = run_workload(workload, "baseline", dev, repetitions=2)
    accel = run_workload(workload, "accelos", dev, repetitions=2)
    assert accel.unfairness < base.unfairness
    assert accel.overlap > base.overlap


def test_run_workload_ek_serialises_large_batches():
    dev = nvidia_k20m()
    workload = tuple(["cutcp", "tpacf", "mri-q_ComputeQ", "sgemm",
                      "lbm", "stencil", "spmv", "bfs"])
    result = run_workload(workload, "ek", dev, repetitions=1)
    assert result.overlap < 0.2  # >MAX_MERGE kernels cannot all co-run


def test_run_workload_deterministic():
    dev = nvidia_k20m()
    a = run_workload(("bfs", "sgemm"), "accelos", dev, repetitions=2)
    b = run_workload(("bfs", "sgemm"), "accelos", dev, repetitions=2)
    assert a.turnarounds == b.turnarounds


def test_run_single_kernel_accelos_close_to_baseline():
    dev = nvidia_k20m()
    t, iso = run_single_kernel("sgemm", dev)
    assert 0.7 <= iso / t <= 1.4


def test_run_sweep_and_summary():
    dev = nvidia_k20m()
    workloads = [("bfs", "tpacf"), ("sgemm", "spmv")]
    results = run_sweep(workloads, dev, repetitions=1)
    summary = summarize(results)
    assert summary.count == 2
    assert summary.avg_unfairness["baseline"] >= \
        summary.avg_unfairness["accelos"]
    assert summary.avg_fairness_improvement("accelos") > 1.0
    assert 0.0 <= summary.negative_fairness_fraction("accelos") <= 1.0
    assert summary.worst_antt["baseline"] >= summary.avg_antt["baseline"]


def test_format_table_alignment():
    text = format_table(["name", "value"],
                        [["a", 1.5], ["long-name", 123.456]],
                        title="T")
    lines = text.split("\n")
    assert lines[0] == "T"
    assert "name" in lines[1]
    assert len(lines) == 5
