"""Transformation correctness over the whole corpus.

For every one of the 25 Parboil-like kernels: run the original and the
accelOS-transformed version on the same functional dataset and require
bit-identical output buffers.  This is the reproduction's strongest
correctness statement — on real hardware the paper could only trust the
transformation; here we verify it end to end, including atomics, barriers,
local-memory hoisting and 2-D ranges.
"""

import pytest

from repro.ir import compile_source
from repro.workloads.datasets import build_instance
from repro.workloads.parboil import PROFILE_NAMES, profile_by_name
from tests.conftest import assert_transform_equivalent


@pytest.mark.parametrize("name", PROFILE_NAMES)
def test_transform_preserves_semantics(name):
    profile = profile_by_name(name)
    instance = build_instance(name)
    module = compile_source(profile.source, name=profile.benchmark)
    assert_transform_equivalent(
        module, instance.kernel, instance.fresh_args(),
        instance.global_size, instance.local_size, physical_groups=3)


@pytest.mark.parametrize("name", ["bfs", "sgemm", "tpacf",
                                  "mri-gridding_splitSort", "stencil"])
def test_transform_preserves_semantics_without_inlining(name):
    profile = profile_by_name(name)
    instance = build_instance(name, seed=1)
    module = compile_source(profile.source, name=profile.benchmark)
    assert_transform_equivalent(
        module, instance.kernel, instance.fresh_args(),
        instance.global_size, instance.local_size, physical_groups=2,
        inline=False)


@pytest.mark.parametrize("name", ["histo_main", "mri-gridding_scan_L1",
                                  "spmv"])
@pytest.mark.parametrize("physical_groups", [1, 4])
def test_transform_equivalence_across_allocations(name, physical_groups):
    profile = profile_by_name(name)
    instance = build_instance(name, seed=2)
    module = compile_source(profile.source, name=profile.benchmark)
    assert_transform_equivalent(
        module, instance.kernel, instance.fresh_args(),
        instance.global_size, instance.local_size,
        physical_groups=physical_groups)
