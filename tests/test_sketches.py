"""Property tests locking the streaming sketches to the exact path.

The accuracy contract documented in ``repro/metrics/sketches.py``:

* P² estimates of p50/p95/p99 lie within the exact value band of ranks
  ``q ± P2_RANK_TOLERANCE`` percentile points — extended outward to the
  nearest distinct observed values (the sketch interpolates between
  marker heights, so on heavily tied populations the estimate can land
  strictly between two tied groups) — widened by ``P2_RELATIVE_SLACK``
  relative; checked on heavy-tailed, constant, tied and tiny
  populations;
* populations up to ``P2_WARMUP`` values are *exact* (bit-equal to the
  ``tails`` linear-interpolation convention), as are constant
  populations of any size;
* the sketch rejects NaN with the identical ``ValueError`` the exact
  path raises, and positive-slowdown violations with the identical
  message of the fairness/throughput metrics;
* sketch state is a pure function of the observation sequence (same
  values, same order => bit-equal state).
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.metrics import (P2_RANK_TOLERANCE, P2_RELATIVE_SLACK,
                           OnlineStats, P2Quantile, StreamingRecordSink,
                           TailSketch, percentile, tail_summary)
from repro.metrics.sketches import P2_WARMUP
from repro.util import make_rng

QUANTILES = (50.0, 95.0, 99.0)

# value strategies: finite, positive-ish magnitudes the simulator
# actually produces (slowdowns, delays in seconds)
VALUES = st.floats(min_value=1e-6, max_value=1e6,
                   allow_nan=False, allow_infinity=False)

# a heavy-tailed population: lognormal-ish via exponent sampling —
# hypothesis draws the exponent, so the tail is genuinely stretched.
# Magnitudes are kept *distinct* (heavy-tailed means orders of
# magnitude, not duplicates): on adversarially tie-dominated sequences
# P² has no bounded rank error, and the tied/constant regimes have
# their own tests below
HEAVY = st.floats(min_value=0.0, max_value=6.0).map(lambda e: 10.0 ** e)


def rank_window(values, q):
    """The documented tolerance band for a P² estimate of quantile q:
    exact values at ranks ``q ± P2_RANK_TOLERANCE``, extended outward to
    the nearest distinct observed values, widened by
    ``P2_RELATIVE_SLACK`` relative."""
    ordered = sorted(values)
    lo = percentile(ordered, max(0.0, q - P2_RANK_TOLERANCE))
    hi = percentile(ordered, min(100.0, q + P2_RANK_TOLERANCE))
    # an interpolated rank value need not be an observed one: snap the
    # band edges outward to observed values (ties make this matter)
    lo = max((v for v in ordered if v <= lo), default=ordered[0])
    hi = min((v for v in ordered if v >= hi), default=ordered[-1])
    # a marker height interpolates between neighbouring observations,
    # so on tied populations the estimate can land strictly between the
    # band-edge group and the adjacent distinct value — extend one
    # distinct observed value outward on each side
    lo = max((v for v in ordered if v < lo), default=lo)
    hi = min((v for v in ordered if v > hi), default=hi)
    slack = P2_RELATIVE_SLACK
    eps = 1e-9 * max(1.0, abs(lo), abs(hi))
    return (lo - abs(lo) * slack - eps, hi + abs(hi) * slack + eps)


def sketch_of(values, q):
    sketch = P2Quantile(q)
    for value in values:
        sketch.observe(value)
    return sketch


# -- accuracy: the documented rank window -------------------------------------

@pytest.mark.parametrize("q", QUANTILES)
@given(values=st.lists(HEAVY, min_size=50, max_size=400, unique=True))
@settings(max_examples=40, deadline=None)
def test_p2_within_rank_window_heavy_tailed(q, values):
    estimate = sketch_of(values, q).value()
    lo, hi = rank_window(values, q)
    assert lo <= estimate <= hi


@pytest.mark.parametrize("q", QUANTILES)
@given(values=st.lists(VALUES, min_size=5, max_size=120))
@settings(max_examples=40, deadline=None)
def test_p2_within_rank_window_general(q, values):
    estimate = sketch_of(values, q).value()
    lo, hi = rank_window(values, q)
    assert lo <= estimate <= hi


@pytest.mark.parametrize("q", QUANTILES)
@given(value=VALUES, n=st.integers(min_value=1, max_value=200))
@settings(max_examples=25, deadline=None)
def test_p2_exact_on_constant_population(q, value, n):
    """All markers collapse onto the constant: bit-equal to the exact
    convention (which itself interpolates, so it can sit one ulp off
    the constant — match it, don't beat it)."""
    estimate = sketch_of([value] * n, q).value()
    assert estimate == percentile([value] * n, q)
    assert estimate == pytest.approx(value, rel=1e-12)


@pytest.mark.parametrize("q", QUANTILES)
@given(values=st.lists(st.sampled_from([1.0, 2.0, 5.0]),
                       min_size=20, max_size=200))
@settings(max_examples=25, deadline=None)
def test_p2_within_rank_window_tied_values(q, values):
    """Massively tied populations (few distinct values) stay in band."""
    estimate = sketch_of(values, q).value()
    lo, hi = rank_window(values, q)
    assert lo <= estimate <= hi


@pytest.mark.parametrize("q", QUANTILES)
@given(values=st.lists(VALUES, min_size=1, max_size=5))
@settings(max_examples=25, deadline=None)
def test_p2_exact_on_tiny_populations(q, values):
    """n < 5 never hits the marker machinery: bit-equal to exact."""
    assert sketch_of(values, q).value() == percentile(values, q)


@pytest.mark.parametrize("q", QUANTILES)
@given(n=st.integers(min_value=1, max_value=P2_WARMUP),
       seed=st.integers(min_value=0, max_value=10**6))
@settings(max_examples=15, deadline=None)
def test_p2_exact_up_to_warmup(q, n, seed):
    """The whole warm-up regime is exact, not approximated."""
    values = list(make_rng("sketch-warmup", seed).pareto(1.5, size=n) + 1.0)
    assert sketch_of(values, q).value() == percentile(values, q)


# -- accuracy beyond the warm-up buffer (deterministic large-n shapes) --------

def _large_population(shape, n=5000, seed=7):
    rng = make_rng("sketch-large", shape, seed)
    if shape == "pareto":
        return list(rng.pareto(1.5, size=n) + 1.0)
    if shape == "uniform":
        return list(rng.uniform(0.5, 50.0, size=n))
    if shape == "tied":
        return [float(v) for v in rng.choice([1.0, 2.0, 5.0], size=n,
                                             p=[0.6, 0.3, 0.1])]
    if shape == "sorted":
        return sorted(rng.pareto(1.5, size=n) + 1.0)
    raise AssertionError(shape)


@pytest.mark.parametrize("q", QUANTILES)
@pytest.mark.parametrize("shape", ["pareto", "uniform", "tied", "sorted"])
def test_p2_within_rank_window_beyond_warmup(shape, q):
    values = _large_population(shape)
    assert len(values) > P2_WARMUP
    estimate = sketch_of(values, q).value()
    lo, hi = rank_window(values, q)
    assert lo <= estimate <= hi, (shape, q, estimate, (lo, hi))


@given(values=st.lists(VALUES, min_size=1, max_size=300))
@settings(max_examples=25, deadline=None)
def test_tail_sketch_summary_mirrors_exact_moments(values):
    """count/mean/max are exact (same summation order); percentiles
    land in the documented band."""
    sketch = TailSketch()
    for value in values:
        sketch.observe(value)
    summary = sketch.summary()
    exact = tail_summary(values)
    assert summary.count == exact.count
    assert summary.max == exact.max
    assert summary.mean == pytest.approx(exact.mean, rel=1e-12)
    for q, estimate in ((50.0, summary.p50), (95.0, summary.p95),
                        (99.0, summary.p99)):
        lo, hi = rank_window(values, q)
        assert lo <= estimate <= hi


# -- contract parity with the exact path --------------------------------------

def exact_nan_message():
    with pytest.raises(ValueError) as excinfo:
        tail_summary([1.0, float("nan")])
    return str(excinfo.value)


@pytest.mark.parametrize("make", [
    lambda: OnlineStats(),
    lambda: P2Quantile(99.0),
    lambda: TailSketch(),
])
def test_sketches_reject_nan_like_checked_sorted(make):
    sketch = make()
    sketch.observe(1.0)
    with pytest.raises(ValueError) as excinfo:
        sketch.observe(float("nan"))
    assert str(excinfo.value) == exact_nan_message()


class _Record:
    def __init__(self, slowdown, queueing_delay=0.0, turnaround=1.0,
                 finish=1.0, tenant=None):
        self.slowdown = slowdown
        self.queueing_delay = queueing_delay
        self.turnaround = turnaround
        self.finish = finish
        self.tenant = tenant


def test_streaming_sink_rejects_nan_and_nonpositive_slowdowns():
    sink = StreamingRecordSink()
    with pytest.raises(ValueError) as excinfo:
        sink.observe(_Record(float("nan")))
    assert str(excinfo.value) == exact_nan_message()
    with pytest.raises(ValueError, match="slowdowns must be positive"):
        sink.observe(_Record(0.0))
    with pytest.raises(ValueError, match="slowdowns must be positive"):
        sink.observe(_Record(-1.0))


def test_empty_sketches_raise_like_exact_path():
    with pytest.raises(ValueError, match="need at least one value"):
        OnlineStats().mean
    with pytest.raises(ValueError, match="need at least one value"):
        P2Quantile(50.0).value()
    with pytest.raises(ValueError, match="need at least one value"):
        TailSketch().summary()


def test_p2_rejects_degenerate_quantiles():
    for q in (0.0, 100.0, -1.0, 150.0):
        with pytest.raises(ValueError, match="quantile must be in"):
            P2Quantile(q)


# -- determinism --------------------------------------------------------------

@pytest.mark.parametrize("q", QUANTILES)
@given(values=st.lists(VALUES, min_size=1, max_size=200))
@settings(max_examples=25, deadline=None)
def test_p2_state_is_pure_function_of_sequence(q, values):
    a = sketch_of(values, q)
    b = sketch_of(list(values), q)
    assert a.state() == b.state()
    assert a.value() == b.value()


def test_streaming_sink_replays_bit_identically():
    records = [_Record(1.0 + 0.37 * i, queueing_delay=0.01 * i,
                       turnaround=1.0 + 0.1 * i, finish=0.5 * i + 1.0,
                       tenant="t{}".format(i % 3))
               for i in range(64)]
    sinks = [StreamingRecordSink(), StreamingRecordSink()]
    for sink in sinks:
        for record in records:
            sink.observe(record)
    a, b = sinks
    assert a.inverse_slowdown_sum == b.inverse_slowdown_sum
    assert a.slowdown.summary().as_dict() == b.slowdown.summary().as_dict()
    assert {t: s.as_dict() for t, s in a.tenant_summaries().items()} \
        == {t: s.as_dict() for t, s in b.tenant_summaries().items()}
    # tenant key order matches the exact path: untenanted first, then str
    assert list(a.tenant_summaries()) == ["t0", "t1", "t2"]
