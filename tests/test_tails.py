"""Tests for the tail-latency metrics plane (metrics/tails.py) and its
wiring through the open-system and fleet harnesses."""

import math

import pytest

from repro.accelos.placement import LeastLoadedPlacement
from repro.cl import nvidia_k20m
from repro.harness.open_system import (FleetOpenSystemExperiment,
                                       OpenSystemExperiment, RequestRecord)
from repro.metrics import (per_tenant_tails, percentile, request_tails,
                           tail_summary)
from repro.sim import DeviceFleet
from repro.workloads import from_name


def record(slowdown, tenant=None, queueing=0.0):
    """A RequestRecord with the given slowdown and queueing delay
    (arrival 0, isolated time 1.0, so turnaround == slowdown)."""
    assert queueing <= slowdown
    return RequestRecord("k", 0.0, queueing, slowdown, 1.0, tenant=tenant)


# -- percentile: hand-computed cases ------------------------------------------

def test_percentile_odd_count():
    values = [1.0, 2.0, 3.0, 4.0, 5.0]
    assert percentile(values, 50) == 3.0
    # rank (5-1)*0.95 = 3.8 -> 4 + 0.8*(5-4)
    assert percentile(values, 95) == pytest.approx(4.8)
    # rank 3.96 -> 4 + 0.96
    assert percentile(values, 99) == pytest.approx(4.96)
    assert percentile(values, 0) == 1.0
    assert percentile(values, 100) == 5.0


def test_percentile_even_count():
    values = [1.0, 2.0, 3.0, 4.0]
    # rank (4-1)*0.5 = 1.5 -> midpoint of 2 and 3
    assert percentile(values, 50) == 2.5
    # rank 2.85 -> 3 + 0.85
    assert percentile(values, 95) == pytest.approx(3.85)


def test_percentile_ties():
    values = [2.0, 2.0, 2.0, 5.0]
    assert percentile(values, 50) == 2.0
    # rank 2.25 -> 2 + 0.25*(5-2)
    assert percentile(values, 75) == pytest.approx(2.75)


def test_percentile_single_element():
    for q in (0, 50, 95, 99, 100):
        assert percentile([7.0], q) == 7.0


def test_percentile_unsorted_input():
    assert percentile([5.0, 1.0, 3.0, 2.0, 4.0], 50) == 3.0


def test_percentile_validation():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], -1)
    with pytest.raises(ValueError):
        percentile([1.0], 101)
    with pytest.raises(ValueError):
        percentile([1.0, float("nan")], 50)


# -- TailSummary --------------------------------------------------------------

def test_tail_summary_hand_computed():
    s = tail_summary([1.0, 2.0, 3.0, 4.0, 5.0])
    assert s.count == 5
    assert s.mean == 3.0
    assert s.p50 == 3.0
    assert s.p95 == pytest.approx(4.8)
    assert s.p99 == pytest.approx(4.96)
    assert s.max == 5.0
    assert s.max_over_mean == pytest.approx(5.0 / 3.0)


def test_tail_summary_percentiles_monotone():
    s = tail_summary([3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0])
    assert s.p50 <= s.p95 <= s.p99 <= s.max


def test_tail_summary_all_zero_population():
    s = tail_summary([0.0, 0.0])
    assert s.max_over_mean == 1.0


def test_tail_summary_as_dict_round_trip():
    s = tail_summary([1.0, 10.0])
    d = s.as_dict()
    assert d["count"] == 2
    assert d["p50"] == 5.5
    assert d["max_over_mean"] == pytest.approx(10.0 / 5.5)
    assert s == tail_summary([1.0, 10.0])
    assert s != tail_summary([1.0, 11.0])


def test_tail_summary_rejects_empty():
    with pytest.raises(ValueError):
        tail_summary([])


# -- per-tenant split ---------------------------------------------------------

def test_per_tenant_split_hand_computed():
    records = [record(1.0, "a"), record(3.0, "a"),
               record(2.0, "b"), record(10.0, "b"), record(4.0, "b")]
    split = per_tenant_tails(records)
    assert sorted(split) == ["a", "b"]
    assert split["a"].count == 2
    assert split["a"].p50 == 2.0      # midpoint of 1 and 3
    assert split["b"].count == 3
    assert split["b"].p50 == 4.0      # median of 2, 4, 10
    assert split["b"].max == 10.0


def test_per_tenant_split_untagged_grouped_under_none():
    records = [record(1.0), record(2.0), record(5.0, "a")]
    split = per_tenant_tails(records)
    assert set(split) == {None, "a"}
    assert split[None].count == 2
    assert split["a"].count == 1


def test_request_tails_triple():
    records = [record(1.0, queueing=0.5), record(3.0, queueing=1.5)]
    slowdown, queueing, tenants = request_tails(records)
    assert slowdown.p50 == 2.0
    assert queueing.p50 == 1.0
    assert list(tenants) == [None]


# -- harness wiring -----------------------------------------------------------

def test_open_system_result_exposes_tails():
    device = nvidia_k20m()
    stream = from_name("multi-tenant", seed=3, load=1.0, count=10,
                       device=device)
    result = OpenSystemExperiment(device).run(stream, "accelos")
    # the result's tails are exactly the tails of its record population
    assert result.slowdown_tails \
        == tail_summary([r.slowdown for r in result.records])
    assert result.queueing_tails \
        == tail_summary([r.queueing_delay for r in result.records])
    assert result.p99_slowdown == result.slowdown_tails.p99
    # every arriving tenant appears in the breakdown, and the per-tenant
    # populations partition the records
    tenants = result.tenant_slowdown_tails
    assert set(tenants) == set(a.tenant for a in stream)
    assert sum(s.count for s in tenants.values()) == len(result.records)


def test_fleet_tail_aggregation():
    device = nvidia_k20m()
    fleet = DeviceFleet([("a", nvidia_k20m()), ("b", nvidia_k20m())])
    stream = from_name("multi-tenant", seed=3, load=1.0, count=12,
                       device=device)
    result = FleetOpenSystemExperiment(fleet).run(stream, "accelos",
                                                  LeastLoadedPlacement())
    # fleet-wide tails == tails over the union of per-device records
    assert result.slowdown_tails \
        == tail_summary([r.slowdown for r in result.overall.records])
    assert result.p99_slowdown == result.overall.slowdown_tails.p99
    # per-device populations partition the fleet population
    assert sum(r.slowdown_tails.count for r in result.per_device.values()) \
        == result.slowdown_tails.count
    # the fleet max is attained on some device
    assert result.slowdown_tails.max == pytest.approx(max(
        r.slowdown_tails.max for r in result.per_device.values()))
    # tenant breakdown survives placement across devices
    assert set(result.tenant_slowdown_tails) \
        == set(a.tenant for a in stream)


def test_fleet_tenant_counts_conserved():
    fleet = DeviceFleet([("a", nvidia_k20m()), ("b", nvidia_k20m())])
    stream = from_name("multi-tenant", seed=9, load=1.5, count=12,
                       device=fleet[0].device)
    result = FleetOpenSystemExperiment(fleet).run(stream, "baseline",
                                                  LeastLoadedPlacement())
    by_tenant = result.tenant_slowdown_tails
    arriving = {}
    for a in stream:
        arriving[a.tenant] = arriving.get(a.tenant, 0) + 1
    assert {t: s.count for t, s in by_tenant.items()} == arriving


def test_nan_guard_in_percentile_is_reachable():
    with pytest.raises(ValueError):
        percentile([math.nan], 99)


def test_nan_rejected_anywhere_in_population():
    """sorted() leaves NaN wherever it started (all comparisons false), so
    the guard must scan the whole population, not just the extremes."""
    with pytest.raises(ValueError):
        percentile([1.0, math.nan, 2.0], 50)
    with pytest.raises(ValueError):
        percentile([math.nan, 1.0, 2.0], 50)
