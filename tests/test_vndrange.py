"""Unit tests for Virtual NDRanges."""

import numpy as np

from repro.accelos import rtlib
from repro.accelos.vndrange import VirtualNDRange
from repro.cl import Context, NDRange, nvidia_k20m


def test_descriptor_layout():
    nd = NDRange((256, 64), (16, 8))
    v = VirtualNDRange(nd, chunk=4)
    words = v.descriptor()
    assert words[rtlib.RT_COUNTER] == 0
    assert words[rtlib.RT_TOTAL] == 16 * 8
    assert words[rtlib.RT_CHUNK] == 4
    assert words[rtlib.RT_WORK_DIM] == 2
    assert list(words[rtlib.RT_GROUPS0:rtlib.RT_GROUPS0 + 3]) == [16, 8, 1]


def test_scheduling_operations_is_ceil():
    nd = NDRange((100 * 32,), (32,))
    assert VirtualNDRange(nd, chunk=8).scheduling_operations() == 13
    assert VirtualNDRange(nd, chunk=1).scheduling_operations() == 100


def test_upload_and_release_track_device_memory():
    ctx = Context(nvidia_k20m())
    before = ctx.allocator.free_bytes
    v = VirtualNDRange(NDRange((64,), (32,)), chunk=2)
    buf = v.upload(ctx)
    assert ctx.allocator.free_bytes == before - rtlib.RT_WORDS * 8
    got = buf.read(np.int64)
    assert got[rtlib.RT_TOTAL] == 2
    v.release()
    assert ctx.allocator.free_bytes == before
    v.release()  # idempotent
