"""Unit tests for the §6.4 adaptive scheduling policy."""

import pytest

from repro.accelos.adaptive import (SchedulingPolicy, chunk_size_for,
                                    effective_chunk)


@pytest.mark.parametrize("insns,expected", [
    (1, 8), (9, 8),          # < 10 -> 8
    (10, 6), (19, 6),        # < 20 -> 6
    (20, 4), (29, 4),        # < 30 -> 4
    (30, 2), (39, 2),        # < 40 -> 2
    (40, 1), (100, 1), (10_000, 1),
])
def test_paper_table(insns, expected):
    assert chunk_size_for(insns) == expected


def test_naive_policy_always_one():
    for insns in (1, 15, 35, 400):
        assert chunk_size_for(insns, SchedulingPolicy.NAIVE) == 1


def test_unknown_policy_rejected():
    with pytest.raises(ValueError):
        chunk_size_for(10, "wild")


def test_effective_chunk_caps_by_groups_per_slot():
    # 64 virtual groups on 64 slots: one per slot, never 8
    assert effective_chunk(8, 64, 64) == 1
    # plenty of groups per slot: the table chunk survives
    assert effective_chunk(8, 10_000, 64) == 8
    # intermediate: capped at groups-per-slot
    assert effective_chunk(8, 256, 64) == 4


def test_effective_chunk_minimum_one():
    assert effective_chunk(8, 1, 16) == 1


def test_effective_chunk_validates_groups():
    with pytest.raises(ValueError):
        effective_chunk(4, 100, 0)
