"""Tests for the future-work slot-rebalancing extension (paper §2.5/§10).

The paper's accelOS binds every allocation for the kernel's lifetime; the
conclusion lists "additional techniques for software managed scheduling" as
future work.  The simulator's ``rebalance`` flag implements the obvious one
(re-granting freed slots) so its value can be quantified.
"""

import numpy as np
import pytest

from repro.cl import nvidia_k20m
from repro.sim import ExecutionMode, GPUSimulator, KernelExecSpec
from repro.sim.resources import max_resident_groups


def spec(name, n, cost, wg=256, sat=0.5):
    return KernelExecSpec(name, wg, np.full(n, cost), 0.0, 16, 0,
                          sat_occupancy=sat)


def half_split(long_spec, short_spec, device):
    cap = max_resident_groups(long_spec, device)
    return (
        long_spec.with_mode(ExecutionMode.ACCELOS, physical_groups=cap // 2,
                            chunk=1),
        short_spec.with_mode(ExecutionMode.ACCELOS, physical_groups=cap // 2,
                             chunk=1),
    )


def test_rebalance_speeds_up_the_survivor():
    device = nvidia_k20m()
    long_kernel = spec("long", 2048, 100e-6)
    short_kernel = spec("short", 32, 50e-6)
    bound = GPUSimulator(device, rebalance=False)
    t_bound = bound.run(half_split(long_kernel, short_kernel,
                                   device)).turnarounds[0]
    rebal = GPUSimulator(device, rebalance=True)
    t_rebal = rebal.run(half_split(long_kernel, short_kernel,
                                   device)).turnarounds[0]
    # once the short kernel retires, the long one absorbs its slots
    assert t_rebal < t_bound * 0.85


def test_rebalance_conserves_work():
    device = nvidia_k20m()
    long_kernel = spec("long", 777, 80e-6)
    short_kernel = spec("short", 16, 40e-6)
    sim = GPUSimulator(device, rebalance=True)
    sim.run(half_split(long_kernel, short_kernel, device))
    for run in sim.runs:
        assert run.completed == run.total
        assert run.resident == 0


def test_rebalance_no_effect_when_nothing_retires_early():
    device = nvidia_k20m()
    a = spec("a", 512, 100e-6)
    b = spec("b", 512, 100e-6)
    t_bound = GPUSimulator(device, rebalance=False).run(
        half_split(a, b, device)).makespan
    t_rebal = GPUSimulator(device, rebalance=True).run(
        half_split(a, b, device)).makespan
    # symmetric kernels finish together: rebalancing changes nothing much
    assert t_rebal == pytest.approx(t_bound, rel=0.05)


def test_rebalance_off_by_default():
    device = nvidia_k20m()
    assert GPUSimulator(device).rebalance is False
