"""Property-based tests (hypothesis) over the core invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.accelos.sharing import KernelRequirements, compute_allocations
from repro.cl import nvidia_k20m
from repro.ir import arith
from repro.ir.passes.constfold import fold_binop
from repro.ir.values import Constant
from repro.kernelc import types as T
from repro.metrics import execution_overlap, stp, system_unfairness
from repro.sim import ExecutionMode, GPUSimulator, KernelExecSpec
from repro.sim.resources import max_resident_groups

INT_TYPES = st.sampled_from([T.INT, T.UINT, T.LONG, T.ULONG])
SMALL_INTS = st.integers(min_value=-(2**31), max_value=2**31 - 1)
BINOPS = st.sampled_from(["add", "sub", "mul", "and", "or", "xor",
                          "shl", "shr", "div", "rem"])


# -- arithmetic: fold == interpret --------------------------------------------

@given(BINOPS, SMALL_INTS, SMALL_INTS, INT_TYPES)
def test_constant_folding_matches_interpreter(op, a, b, ty):
    a = arith.wrap_int(a, ty)
    b = arith.wrap_int(b, ty)
    if op in ("div", "rem") and b == 0:
        return
    folded = fold_binop(op, Constant(ty, a), Constant(ty, b), ty)
    assert folded is not None
    assert folded.value == arith.eval_binop(op, a, b, ty)


@given(SMALL_INTS, INT_TYPES)
def test_wrap_int_idempotent(value, ty):
    once = arith.wrap_int(value, ty)
    assert arith.wrap_int(once, ty) == once


@given(SMALL_INTS, INT_TYPES)
def test_wrap_int_in_range(value, ty):
    wrapped = arith.wrap_int(value, ty)
    bits, signed = T.SCALAR_INFO[ty.kind]
    if ty.is_bool():
        assert wrapped in (True, False)
    elif signed:
        assert -(2**(bits - 1)) <= wrapped < 2**(bits - 1)
    else:
        assert 0 <= wrapped < 2**bits


# -- sharing algorithm invariants ------------------------------------------------

@st.composite
def requirement_lists(draw):
    k = draw(st.integers(min_value=1, max_value=8))
    reqs = []
    for i in range(k):
        reqs.append(KernelRequirements(
            name="k{}".format(i),
            wg_threads=draw(st.sampled_from([64, 128, 256, 512, 1024])),
            local_mem_bytes=draw(st.sampled_from([0, 256, 1024, 8192])),
            registers_per_thread=draw(st.integers(4, 64)),
            total_groups=draw(st.integers(1, 4096)),
        ))
    return reqs


@given(requirement_lists())
@settings(max_examples=60, deadline=None)
def test_sharing_respects_all_constraints(reqs):
    device = nvidia_k20m()
    allocations = compute_allocations(reqs, device)
    assert sum(a.threads for a in allocations) <= device.max_threads
    assert sum(a.local_mem for a in allocations) <= device.total_local_mem
    assert sum(a.registers for a in allocations) <= device.total_registers
    for allocation in allocations:
        assert 1 <= allocation.groups <= allocation.requirements.total_groups


@given(requirement_lists())
@settings(max_examples=40, deadline=None)
def test_saturation_never_shrinks(reqs):
    device = nvidia_k20m()
    unsat = compute_allocations(reqs, device, saturate=False)
    sat = compute_allocations(reqs, device, saturate=True)
    for a, b in zip(unsat, sat):
        assert b.groups >= a.groups


# -- metrics invariants ------------------------------------------------------------

@given(st.lists(st.floats(min_value=0.01, max_value=100.0),
                min_size=1, max_size=10))
def test_unfairness_at_least_one(slowdowns):
    assert system_unfairness(slowdowns) >= 1.0


@given(st.lists(st.floats(min_value=1.0, max_value=100.0),
                min_size=1, max_size=10))
def test_stp_bounded_by_k(slowdowns):
    # with every IS >= 1, system throughput cannot exceed K
    assert 0.0 < stp(slowdowns) <= len(slowdowns) + 1e-9


@given(st.lists(
    st.tuples(st.floats(0, 100), st.floats(0, 100)).map(
        lambda p: (min(p), max(p))),
    min_size=1, max_size=8))
def test_overlap_in_unit_interval(intervals):
    assert 0.0 <= execution_overlap(intervals) <= 1.0 + 1e-12


# -- simulator invariants -----------------------------------------------------------

@st.composite
def sim_specs(draw):
    n = draw(st.integers(min_value=1, max_value=200))
    wg = draw(st.sampled_from([64, 128, 256]))
    cost = draw(st.floats(min_value=1e-6, max_value=1e-3))
    rng = np.random.default_rng(draw(st.integers(0, 1000)))
    costs = cost * np.clip(1 + 0.4 * rng.standard_normal(n), 0.3, 3.0)
    return KernelExecSpec("k", wg, costs,
                          draw(st.floats(0, 4e9)), 16, 0,
                          sat_occupancy=draw(st.floats(0.2, 1.0)))


@given(sim_specs())
@settings(max_examples=40, deadline=None)
def test_hardware_makespan_bounds(spec):
    device = nvidia_k20m()
    trace = GPUSimulator(device).run([spec])
    capacity = max_resident_groups(spec, device)
    # lower bound: perfect parallelism at best-case (saturated) speed
    lower = spec.total_work / capacity * spec.sat_occupancy * 0.99
    assert trace.makespan >= min(lower, float(spec.wg_costs.max()) * 0.2)
    # upper bound: fully serial with maximal stretch is absurdly pessimistic
    assert trace.makespan <= spec.total_work * 10 + 1.0


@given(sim_specs(), st.integers(1, 64), st.integers(1, 8))
@settings(max_examples=40, deadline=None)
def test_accelos_completes_all_virtual_groups(spec, groups, chunk):
    device = nvidia_k20m()
    accel = spec.with_mode(ExecutionMode.ACCELOS,
                           physical_groups=min(groups, spec.total_groups),
                           chunk=chunk)
    sim = GPUSimulator(device)
    sim.run([accel])
    assert sim.runs[0].completed == spec.total_groups
    assert sim.runs[0].resident == 0


@given(sim_specs(), st.integers(1, 32))
@settings(max_examples=30, deadline=None)
def test_elastic_completes_all_virtual_groups(spec, groups):
    device = nvidia_k20m()
    elastic = spec.with_mode(ExecutionMode.ELASTIC,
                             physical_groups=min(groups, spec.total_groups))
    sim = GPUSimulator(device)
    sim.run([elastic])
    assert sim.runs[0].completed == spec.total_groups


# -- interpreter vs numpy on generated expressions ---------------------------------

@given(st.lists(st.integers(-1000, 1000), min_size=8, max_size=8),
       st.integers(-5, 5))
@settings(max_examples=25, deadline=None)
def test_generated_kernel_matches_numpy(values, scale):
    from repro.interp import KernelLauncher
    from repro.interp.memory import alloc_buffer
    from repro.ir import compile_source

    module = compile_source("""
        kernel void f(global const int* a, global int* out, int s) {
            int g = (int)get_global_id(0);
            int v = a[g];
            out[g] = (v * s + (v >> 1)) ^ (v & 15);
        }
    """)
    host = np.array(values, dtype=np.int32)
    a = alloc_buffer(T.INT, 8)
    a.region.fill_from(host)
    out = alloc_buffer(T.INT, 8)
    KernelLauncher(module).launch("f", [a, out, scale], (8,), (4,))
    expect = (host * scale + (host >> 1)) ^ (host & 15)
    np.testing.assert_array_equal(out.region.to_array(np.int32, 8), expect)
