"""Unit tests for the evaluation metrics (paper §7.4)."""

import pytest

from repro.metrics import (antt, execution_overlap, fairness_improvement,
                           individual_slowdowns, stp, system_unfairness,
                           throughput_speedup, worst_antt)


def test_individual_slowdowns():
    assert individual_slowdowns([2.0, 6.0], [1.0, 2.0]) == [2.0, 3.0]


def test_individual_slowdowns_validates_lengths():
    with pytest.raises(ValueError):
        individual_slowdowns([1.0], [1.0, 2.0])


def test_individual_slowdowns_rejects_zero_iso():
    with pytest.raises(ValueError):
        individual_slowdowns([1.0], [0.0])


def test_unfairness_perfectly_fair():
    assert system_unfairness([2.0, 2.0, 2.0]) == 1.0


def test_unfairness_ratio():
    assert system_unfairness([1.0, 4.0]) == 4.0


def test_unfairness_order_independent():
    assert system_unfairness([3.0, 1.5, 6.0]) == \
        system_unfairness([6.0, 3.0, 1.5])


def test_unfairness_validates():
    with pytest.raises(ValueError):
        system_unfairness([])
    with pytest.raises(ValueError):
        system_unfairness([0.0, 1.0])


def test_fairness_improvement():
    assert fairness_improvement(8.0, 2.0) == 4.0
    assert fairness_improvement(2.0, 4.0) == 0.5  # negative result < 1


def test_throughput_speedup():
    assert throughput_speedup(2.0, 1.0) == 2.0
    with pytest.raises(ValueError):
        throughput_speedup(1.0, 0.0)


def test_stp_bounds():
    # perfect sharing of K non-interfering jobs -> STP = K
    assert stp([1.0, 1.0, 1.0]) == 3.0
    # serialised identical jobs: IS = 1, 2, 3... -> STP < K
    assert stp([1.0, 2.0, 3.0]) == pytest.approx(1.0 + 0.5 + 1 / 3)


def test_antt_is_mean_slowdown():
    assert antt([1.0, 3.0]) == 2.0


def test_worst_antt():
    assert worst_antt([1.5, 7.0, 2.0]) == 7.0


def test_overlap_identical_intervals():
    assert execution_overlap([(0.0, 1.0), (0.0, 1.0)]) == 1.0


def test_overlap_half():
    assert execution_overlap([(0.0, 2.0), (1.0, 3.0)]) == pytest.approx(1 / 3)


def test_overlap_disjoint():
    assert execution_overlap([(0.0, 1.0), (2.0, 3.0)]) == 0.0


def test_overlap_requires_all_kernels():
    # three intervals where only two ever co-execute
    assert execution_overlap([(0.0, 2.0), (1.0, 3.0), (5.0, 6.0)]) == 0.0


def test_overlap_validates():
    with pytest.raises(ValueError):
        execution_overlap([])
    with pytest.raises(ValueError):
        execution_overlap([(1.0, 0.5)])


def test_overlap_zero_length_total():
    assert execution_overlap([(1.0, 1.0)]) == 0.0
