"""Unit tests for the functional interpreter."""

import numpy as np
import pytest

from repro.errors import InterpError, MemoryFault
from repro.interp import KernelLauncher, LocalArg
from repro.interp.memory import MemoryRegion, alloc_buffer, scalar_size
from repro.ir import compile_source
from repro.kernelc import types as T


def run(source, kernel, args, gsize, lsize, optimize=True):
    module = compile_source(source, optimize=optimize)
    return KernelLauncher(module).launch(kernel, args, gsize, lsize)


def test_memory_region_typed_views_share_bytes():
    region = MemoryRegion(16, T.GLOBAL)
    region.view(T.FLOAT)[0] = 1.0
    as_int = region.view(T.INT)[0]
    assert as_int == np.float32(1.0).view(np.int32)


def test_pointer_bounds_checked():
    ptr = alloc_buffer(T.INT, 4)
    with pytest.raises(MemoryFault):
        ptr.add(4).load()
    with pytest.raises(MemoryFault):
        ptr.add(-1).store(0)


def test_pointer_retype_reinterprets():
    ptr = alloc_buffer(T.FLOAT, 4)
    ptr.store(1.0)
    as_int = ptr.retype(T.INT)
    assert as_int.load() == np.float32(1.0).view(np.int32)


def test_pointer_retype_misaligned_rejected():
    ptr = alloc_buffer(T.INT, 8)
    byte_ish = ptr.retype(T.INT)  # fine
    with pytest.raises(MemoryFault):
        # int64 view at odd int32 offset is misaligned
        ptr.add(1).retype(T.LONG)


def test_scalar_sizes():
    assert scalar_size(T.FLOAT) == 4
    assert scalar_size(T.LONG) == 8
    assert scalar_size(T.PointerType(T.INT, T.GLOBAL)) == 8


def test_vector_add():
    n = 128
    a = alloc_buffer(T.FLOAT, n)
    b = alloc_buffer(T.FLOAT, n)
    out = alloc_buffer(T.FLOAT, n)
    ah = np.arange(n, dtype=np.float32)
    bh = np.ones(n, dtype=np.float32)
    a.region.fill_from(ah)
    b.region.fill_from(bh)
    run("""
        kernel void vadd(global const float* a, global const float* b,
                         global float* out) {
            size_t g = get_global_id(0);
            out[g] = a[g] + b[g];
        }
    """, "vadd", [a, b, out], (n,), (32,))
    np.testing.assert_array_equal(out.region.to_array(np.float32, n), ah + bh)


def test_scalar_arguments():
    out = alloc_buffer(T.INT, 8)
    run("""
        kernel void fill(global int* out, int value, float scale) {
            out[get_global_id(0)] = value + (int)scale;
        }
    """, "fill", [out, 40, 2.0], (8,), (4,))
    assert (out.region.to_array(np.int32, 8) == 42).all()


def test_work_item_builtins_2d():
    out = alloc_buffer(T.INT, 64)
    run("""
        kernel void ids(global int* out) {
            size_t x = get_global_id(0);
            size_t y = get_global_id(1);
            out[y * get_global_size(0) + x] =
                (int)(get_group_id(1) * 100 + get_group_id(0) * 10
                      + get_local_id(0));
        }
    """, "ids", [out], (8, 8), (4, 4))
    got = out.region.to_array(np.int32, 64).reshape(8, 8)
    assert got[0, 0] == 0
    assert got[0, 5] == 11    # group (1,0), local x = 1
    assert got[5, 0] == 100   # group (0,1)


def test_get_num_groups_and_work_dim():
    out = alloc_buffer(T.INT, 4)
    run("""
        kernel void q(global int* out) {
            if (get_global_id(0) == 0) {
                out[0] = (int)get_num_groups(0);
                out[1] = (int)get_work_dim();
                out[2] = (int)get_local_size(0);
                out[3] = (int)get_global_size(0);
            }
        }
    """, "q", [out], (64,), (16,))
    assert list(out.region.to_array(np.int32, 4)) == [4, 1, 16, 64]


def test_barrier_local_reduction():
    n = 128
    a = alloc_buffer(T.FLOAT, n)
    data = np.random.default_rng(3).random(n, dtype=np.float32)
    a.region.fill_from(data)
    partial = alloc_buffer(T.FLOAT, 4)
    run("""
        kernel void reduce(global const float* a, global float* out) {
            local float s[32];
            int lid = (int)get_local_id(0);
            s[lid] = a[get_global_id(0)];
            barrier(CLK_LOCAL_MEM_FENCE);
            for (int d = 16; d > 0; d >>= 1) {
                if (lid < d) s[lid] += s[lid + d];
                barrier(CLK_LOCAL_MEM_FENCE);
            }
            if (lid == 0) out[get_group_id(0)] = s[0];
        }
    """, "reduce", [a, partial], (n,), (32,))
    got = partial.region.to_array(np.float32, 4)
    np.testing.assert_allclose(got, data.reshape(4, 32).sum(axis=1), rtol=1e-5)


def test_divergent_barrier_detected():
    a = alloc_buffer(T.FLOAT, 32)
    with pytest.raises(InterpError, match="divergent barrier"):
        run("""
            kernel void bad(global float* a) {
                if (get_local_id(0) < 8)
                    barrier(CLK_LOCAL_MEM_FENCE);
                a[get_global_id(0)] = 1.0f;
            }
        """, "bad", [a], (32,), (32,))


def test_local_arg_buffer_per_group():
    n = 64
    out = alloc_buffer(T.FLOAT, n)
    run("""
        kernel void stage(global float* out, local float* scratch) {
            int lid = (int)get_local_id(0);
            scratch[lid] = (float)get_group_id(0);
            barrier(CLK_LOCAL_MEM_FENCE);
            out[get_global_id(0)] = scratch[(lid + 1) % 16];
        }
    """, "stage", [out, LocalArg(16 * 4)], (n,), (16,))
    got = out.region.to_array(np.float32, n).reshape(4, 16)
    for g in range(4):
        assert (got[g] == g).all()


def test_atomic_add_counts_all_items():
    counter = alloc_buffer(T.INT, 1)
    run("""
        kernel void count(global int* c) { atomic_add(&c[0], 2); }
    """, "count", [counter], (128,), (32,))
    assert counter.region.to_array(np.int32, 1)[0] == 256


def test_atomic_cmpxchg():
    cell = alloc_buffer(T.INT, 2)
    run("""
        kernel void cas(global int* c) {
            if (get_global_id(0) == 0) {
                c[1] = atomic_cmpxchg(&c[0], 0, 7);
                c[1] = atomic_cmpxchg(&c[0], 0, 9);
            }
        }
    """, "cas", [cell], (1,), (1,))
    got = cell.region.to_array(np.int32, 2)
    assert got[0] == 7        # second CAS must fail
    assert got[1] == 7        # returns old value


def test_integer_division_semantics():
    out = alloc_buffer(T.INT, 4)
    run("""
        kernel void dv(global int* out) {
            out[0] = -7 / 2;
            out[1] = -7 % 2;
            out[2] = 7 / -2;
            out[3] = 7 % -2;
        }
    """, "dv", [out], (1,), (1,))
    assert list(out.region.to_array(np.int32, 4)) == [-3, -1, -3, 1]


def test_integer_division_by_zero_traps():
    out = alloc_buffer(T.INT, 1)
    zero = alloc_buffer(T.INT, 1)
    with pytest.raises(InterpError, match="division by zero"):
        run("""
            kernel void dv(global int* out, global int* z) {
                out[0] = 5 / z[0];
            }
        """, "dv", [out, zero], (1,), (1,))


def test_unsigned_wraparound():
    out = alloc_buffer(T.UINT, 1)
    run("""
        kernel void w(global uint* out) {
            uint x = 0;
            out[0] = x - 1;
        }
    """, "w", [out], (1,), (1,))
    assert out.region.to_array(np.uint32, 1)[0] == 2**32 - 1


def test_math_builtins():
    out = alloc_buffer(T.FLOAT, 5)
    run("""
        kernel void m(global float* out) {
            out[0] = sqrt(16.0f);
            out[1] = fmax(1.0f, 2.5f);
            out[2] = fabs(-3.0f);
            out[3] = mad(2.0f, 3.0f, 4.0f);
            out[4] = clamp(7.0f, 0.0f, 5.0f);
        }
    """, "m", [out], (1,), (1,))
    np.testing.assert_allclose(out.region.to_array(np.float32, 5),
                               [4.0, 2.5, 3.0, 10.0, 5.0])


def test_pointer_variable_in_private_slot():
    out = alloc_buffer(T.FLOAT, 8)
    out.region.fill_from(np.arange(8, dtype=np.float32))
    run("""
        kernel void p(global float* a) {
            global float* cursor = a + 2;
            cursor += 1;
            *cursor = 99.0f;
        }
    """, "p", [out], (1,), (1,))
    got = out.region.to_array(np.float32, 8)
    assert got[3] == 99.0


def test_stats_count_instructions_and_barriers():
    a = alloc_buffer(T.FLOAT, 32)
    stats = run("""
        kernel void s(global float* a) {
            a[get_global_id(0)] = 1.0f;
            barrier(CLK_LOCAL_MEM_FENCE);
        }
    """, "s", [a], (32,), (16,))
    assert stats.instructions > 0
    assert stats.barriers == 32
    assert len(stats.instructions_per_group) == 2


def test_global_size_must_divide():
    a = alloc_buffer(T.FLOAT, 10)
    module = compile_source("kernel void f(global float* a) {}")
    with pytest.raises(InterpError, match="divisible"):
        KernelLauncher(module).launch("f", [a], (10,), (4,))


def test_infinite_loop_detected():
    a = alloc_buffer(T.INT, 1)
    module = compile_source("""
        kernel void spin(global int* a) { while (true) { a[0] = 1; } }
    """)
    launcher = KernelLauncher(module, max_steps=10_000)
    with pytest.raises(InterpError, match="exceeded"):
        launcher.launch("spin", [a], (1,), (1,))
