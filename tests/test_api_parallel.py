"""Parallel, cached experiment driver (``run(spec, workers=, cache_dir=)``).

Covers the determinism contract (parallel `to_json` bit-identical to
serial for exact and streaming specs), the content-addressed result
cache (hit/miss/resume, corrupt entry => recompute, changed spec field
=> miss, the stream-seed collision regression), the serial fallback when
no process pool is available, and the driver-plane bugfixes (caller name
in calibration errors, partial progress surfaced on mid-grid failure).
"""

import concurrent.futures
import os
import pickle
import subprocess
import sys
from pathlib import Path

import pytest

from repro.api import ExperimentSpec, ResultCache, cell_key, run, warm_caches
from repro.api import driver as driver_mod
from repro.api.cache import CACHE_FORMAT
from repro.api.driver import (build_stream, build_stream_iter, iter_runs,
                              stream_seed)
from repro.api.kernels import _iso_cache
from repro.api.results import validate_result_surface
from repro.api.spec import Cell
from repro.errors import SimulationError

REPO_ROOT = Path(__file__).resolve().parent.parent
GOLDEN_DIR = REPO_ROOT / "tests" / "goldens"

EXACT_SPEC = dict(scenario="steady", schemes=("baseline", "accelos"),
                  loads=(1.0,), seeds=(7,), count=5)
FLEET_DEVICES = ({"id": "fast", "base": "nvidia-k20m"},
                 {"id": "slow", "base": "nvidia-k20m", "clock_scale": 0.5})
FLEET_SPEC = dict(scenario="bursty", schemes=("accelos",), loads=(1.0,),
                  seeds=(3,), count=8, devices=FLEET_DEVICES,
                  placements=("least-loaded", "round-robin"))
STREAMING_SPEC = dict(scenario="bursty", schemes=("baseline", "accelos"),
                      loads=(1.0,), seeds=(3,), count=8,
                      devices=FLEET_DEVICES, placements=("least-loaded",),
                      metrics_mode="streaming")


# -- parallel-vs-serial equivalence -------------------------------------------

def test_parallel_matches_serial_exact_single_device():
    spec = ExperimentSpec(**EXACT_SPEC)
    assert run(spec, workers=4).to_json() == run(spec, workers=1).to_json()


def test_parallel_matches_serial_exact_fleet():
    spec = ExperimentSpec(**FLEET_SPEC)
    assert run(spec, workers=4).to_json() == run(spec, workers=1).to_json()


def test_parallel_matches_serial_streaming_fleet():
    # streaming cells must regenerate their single-use, unpicklable
    # arrival iterators inside the worker process
    spec = ExperimentSpec(**STREAMING_SPEC)
    assert run(spec, workers=4).to_json() == run(spec, workers=1).to_json()


def test_parallel_merge_preserves_grid_order():
    spec = ExperimentSpec(**FLEET_SPEC)
    serial_cells = [cell for cell, _ in iter_runs(spec)]
    parallel_cells = [cell for cell, _ in iter_runs(spec, workers=4)]
    assert parallel_cells == serial_cells


def test_workers_must_be_a_positive_integer():
    spec = ExperimentSpec(**EXACT_SPEC)
    for bad in (0, -1, 1.5, True, "4"):
        with pytest.raises(SimulationError, match="workers"):
            list(iter_runs(spec, workers=bad))


# -- serial fallback when no pool is available --------------------------------

def test_pool_unavailable_falls_back_to_serial(monkeypatch):
    def no_pool(*args, **kwargs):
        raise OSError("process pools are not available here")

    monkeypatch.setattr(concurrent.futures, "ProcessPoolExecutor", no_pool)
    spec = ExperimentSpec(**EXACT_SPEC)
    assert run(spec, workers=4).to_json() == run(spec, workers=1).to_json()


# -- the result cache ----------------------------------------------------------

def test_cache_cold_run_stores_every_cell(tmp_path):
    spec = ExperimentSpec(**EXACT_SPEC)
    store = ResultCache(tmp_path / "cache")
    run(spec, cache_dir=store)
    assert store.stores == spec.cell_count()
    assert store.hits == 0
    assert len(store) == spec.cell_count()


def test_cache_warm_run_recomputes_nothing(tmp_path, monkeypatch):
    spec = ExperimentSpec(**EXACT_SPEC)
    store = ResultCache(tmp_path / "cache")
    first = run(spec, cache_dir=store)

    def exploding_run_cell(self, cell):
        raise AssertionError("warm run must not re-simulate any cell")

    monkeypatch.setattr(driver_mod._SpecRunner, "run_cell",
                        exploding_run_cell)
    second = run(spec, cache_dir=store)
    assert store.hits == spec.cell_count()
    assert second.to_json() == first.to_json()


def test_cache_accepts_a_directory_path(tmp_path):
    spec = ExperimentSpec(**EXACT_SPEC)
    first = run(spec, cache_dir=tmp_path / "cache")
    second = run(spec, cache_dir=str(tmp_path / "cache"))
    assert second.to_json() == first.to_json()


def test_no_cache_flag_disables_lookups_and_stores(tmp_path):
    spec = ExperimentSpec(**EXACT_SPEC)
    store = ResultCache(tmp_path / "cache")
    run(spec, cache_dir=store, cache=False)
    assert store.hits == store.misses == store.stores == 0
    assert len(store) == 0


def test_corrupt_cache_entry_is_recomputed(tmp_path):
    spec = ExperimentSpec(**EXACT_SPEC)
    store = ResultCache(tmp_path / "cache")
    first = run(spec, cache_dir=store)
    victim = next(iter(sorted(store.directory.glob("*.pkl"))))
    victim.write_bytes(b"not a pickle")
    second = run(spec, cache_dir=store)
    assert store.rejected == 1
    assert store.stores == spec.cell_count() + 1  # the one recompute
    assert second.to_json() == first.to_json()


def test_foreign_entry_under_the_right_name_is_rejected(tmp_path):
    # a well-formed pickle whose key payload does not match the digest's
    # (hash collision, or a file copied between caches) must recompute
    spec = ExperimentSpec(**EXACT_SPEC)
    store = ResultCache(tmp_path / "cache")
    run(spec, cache_dir=store)
    victim = next(iter(sorted(store.directory.glob("*.pkl"))))
    victim.write_bytes(pickle.dumps({"key": {"forged": True},
                                     "result": object()}))
    run(spec, cache_dir=store)
    assert store.rejected == 1


def test_changed_spec_field_misses_the_cache(tmp_path):
    base = ExperimentSpec(**EXACT_SPEC)
    store = ResultCache(tmp_path / "cache")
    run(base, cache_dir=store)
    changed = ExperimentSpec(**dict(EXACT_SPEC, count=base.count + 1))
    run(changed, cache_dir=store)
    assert store.hits == 0
    assert store.stores == base.cell_count() + changed.cell_count()


def test_metric_selection_does_not_invalidate_the_cache(tmp_path):
    # metrics pick what a report prints, not what a cell computes
    base = ExperimentSpec(**EXACT_SPEC)
    store = ResultCache(tmp_path / "cache")
    run(base, cache_dir=store)
    reselected = ExperimentSpec(**dict(EXACT_SPEC, metrics=("antt", "stp")))
    run(reselected, cache_dir=store)
    assert store.hits == base.cell_count()


def test_cache_key_payload_pins_format_and_versions():
    spec = ExperimentSpec(**FLEET_SPEC)
    cell = next(iter(driver_mod._grid_cells(spec)))
    digest, payload = cell_key(spec, cell)
    assert len(digest) == 64
    assert payload["format"] == CACHE_FORMAT
    assert payload["cell"] == cell.to_dict()
    assert payload["spec"] == spec.cell_inputs()
    assert set(payload["versions"]) == {"scenario", "scheme", "placement"}
    # deterministic: same inputs, same digest
    assert cell_key(spec, cell)[0] == digest


# -- the stream-seed collision regression --------------------------------------

def test_cache_key_uses_raw_seed_repetition_pair():
    # construct a genuine collision: seed B's repetition 0 replays the
    # exact stream of seed A's repetition 1 (stream_seed draws 32-bit
    # child seeds, so such pairs exist; this one is pinned)
    seed_a = 0
    seed_b = stream_seed(seed_a, 1)
    assert seed_b != seed_a
    assert stream_seed(seed_a, 1) == stream_seed(seed_b, 0)

    spec_a = ExperimentSpec(scenario="steady", schemes=("baseline",),
                            loads=(1.0,), seeds=(seed_a,), count=4,
                            repetitions=2)
    spec_b = ExperimentSpec(scenario="steady", schemes=("baseline",),
                            loads=(1.0,), seeds=(seed_b,), count=4)
    cell_a = Cell(scheme="baseline", load=1.0, seed=seed_a, repetition=1)
    cell_b = Cell(scheme="baseline", load=1.0, seed=seed_b, repetition=0)

    # the two cells replay the same arrival stream ...
    from repro.api import build_device
    device = build_device(spec_a.devices[0])
    stream_a = build_stream(spec_a, 1.0, seed_a, 1, device=device)
    stream_b = build_stream(spec_b, 1.0, seed_b, 0, device=device)
    assert [(a.name, a.time) for a in stream_a] \
        == [(b.name, b.time) for b in stream_b]

    # ... yet must never share a cache slot: the key holds the raw
    # (seed, repetition) pair, not the derived stream seed
    assert cell_key(spec_a, cell_a)[0] != cell_key(spec_b, cell_b)[0]


# -- mid-grid failure: flush-as-you-go + partial progress ----------------------

def test_mid_grid_failure_keeps_completed_cells_and_reports_progress(
        tmp_path, monkeypatch):
    spec = ExperimentSpec(**EXACT_SPEC)  # 2 cells
    store = ResultCache(tmp_path / "cache")
    original = driver_mod._SpecRunner.run_cell
    calls = {"n": 0}

    def flaky(self, cell):
        calls["n"] += 1
        if calls["n"] == 2:
            raise RuntimeError("device fell off the bus")
        return original(self, cell)

    monkeypatch.setattr(driver_mod._SpecRunner, "run_cell", flaky)
    with pytest.raises(RuntimeError) as excinfo:
        run(spec, cache_dir=store)

    notes = "\n".join(getattr(excinfo.value, "__notes__", []))
    assert "1/2" in notes  # partial progress surfaced
    assert str(store.directory) in notes  # and where the cells live
    assert store.stores == 1  # the completed cell was flushed pre-crash

    # resume: the cached cell is reused, only the lost one recomputes
    monkeypatch.setattr(driver_mod._SpecRunner, "run_cell", original)
    resumed = run(spec, cache_dir=store)
    assert store.hits == 1
    assert len(resumed) == spec.cell_count()


def test_failure_without_cache_still_notes_progress(monkeypatch):
    spec = ExperimentSpec(**EXACT_SPEC)

    def always_fails(self, cell):
        raise RuntimeError("boom")

    monkeypatch.setattr(driver_mod._SpecRunner, "run_cell", always_fails)
    with pytest.raises(RuntimeError) as excinfo:
        run(spec)
    notes = "\n".join(getattr(excinfo.value, "__notes__", []))
    assert "0/2" in notes
    assert "cache" not in notes  # no cache => no resume hint


# -- calibration-error caller name (bugfix) ------------------------------------

def test_stream_model_error_names_the_actual_caller():
    spec = ExperimentSpec(**EXACT_SPEC)
    with pytest.raises(SimulationError,
                       match=r"build_stream needs exactly one"):
        build_stream(spec, 1.0, 7, 0)
    with pytest.raises(SimulationError,
                       match=r"build_stream_iter needs exactly one"):
        build_stream_iter(spec, 1.0, 7, 0)


# -- per-process cache warm-up --------------------------------------------------

def test_warm_caches_populates_what_the_spec_touches():
    spec = ExperimentSpec(**EXACT_SPEC)
    sizes = warm_caches(spec)
    assert sizes["specs"] >= 1
    assert sizes["chunks"] >= 1
    from repro.api import build_device
    from repro.api.kernels import _device_key
    from repro.workloads.scenarios import scenario
    device = build_device(spec.devices[0])
    for name in scenario(spec.scenario).mix_weights():
        assert (name, _device_key(device)) in _iso_cache


# -- the CLI flags --------------------------------------------------------------

def test_cli_workers_and_cache_reproduce_the_golden(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    golden = (GOLDEN_DIR / "spec_smoke_result.json").read_text(
        encoding="utf-8")
    for attempt in ("cold", "warm"):  # second pass resolves from cache
        out = tmp_path / "result_{}.json".format(attempt)
        subprocess.run(
            [sys.executable, "-m", "repro.api.run",
             str(GOLDEN_DIR / "spec_smoke.json"), "--out", str(out),
             "--quiet", "--workers", "2",
             "--cache-dir", str(tmp_path / "cache")],
            check=True, cwd=REPO_ROOT, env=env)
        assert out.read_text(encoding="utf-8") == golden, attempt
    assert list((tmp_path / "cache").glob("*.pkl"))


# -- cached-result surface validation -------------------------------------------

def test_validate_result_surface_accepts_real_results_rejects_stubs():
    spec = ExperimentSpec(**dict(EXACT_SPEC, schemes=("baseline",)))
    (_, result), = iter_runs(spec)
    assert validate_result_surface(result, spec.metrics)
    assert not validate_result_surface(object(), spec.metrics)
    assert validate_result_surface(object(), ())  # nothing demanded
