"""Unit tests for the workload corpus and generators."""

import numpy as np
import pytest

from repro.workloads import (PROFILE_NAMES, all_profiles, alphabetic_pairs,
                             pairwise_workloads, profile_by_name,
                             random_workloads)
from repro.workloads.datasets import BUILDERS, build_instance
from repro.workloads.parboil import compiled_module, kernel_resource_usage


def test_exactly_25_kernels():
    assert len(PROFILE_NAMES) == 25
    assert len(all_profiles()) == 25


def test_profiles_sorted_alphabetically():
    assert list(PROFILE_NAMES) == sorted(PROFILE_NAMES)


def test_every_profile_compiles_and_analyzes():
    for profile in all_profiles():
        module = compiled_module(profile.benchmark)
        assert profile.kernel in module
        usage = kernel_resource_usage(profile)
        assert usage.registers >= 4
        assert usage.local_memory_bytes >= 0


def test_wg_costs_deterministic_and_positive():
    profile = profile_by_name("spmv")
    a = profile.wg_costs()
    b = profile.wg_costs()
    np.testing.assert_array_equal(a, b)
    assert (a > 0).all()
    assert a.size == profile.n_wgs


def test_wg_costs_clipped_imbalance():
    profile = profile_by_name("sad_calc_8")  # cv = 0.7
    costs = profile.wg_costs()
    mean = profile.wg_cost_us * 1e-6
    assert costs.max() <= mean * 3.0 + 1e-12
    assert costs.min() >= mean * 0.3 - 1e-12


def test_exec_spec_uses_compiled_resources():
    profile = profile_by_name("sgemm")
    spec = profile.exec_spec()
    usage = kernel_resource_usage(profile)
    assert spec.registers_per_thread == usage.registers
    assert spec.local_mem_per_wg == usage.local_memory_bytes
    assert spec.wg_threads == 128


def test_pairwise_workloads_complete():
    pairs = pairwise_workloads()
    assert len(pairs) == 625
    assert ("bfs", "bfs") in pairs
    assert ("tpacf", "bfs") in pairs


def test_random_workloads_sizes_and_determinism():
    a = random_workloads(4, 10)
    b = random_workloads(4, 10)
    assert a == b
    assert all(len(w) == 4 for w in a)
    # no duplicate kernels within a workload when the pool allows it
    assert all(len(set(w)) == 4 for w in a)


def test_random_workloads_different_seeds_differ():
    assert random_workloads(4, 10, seed=1) != random_workloads(4, 10, seed=2)


def test_alphabetic_pairs_shape():
    pairs = alphabetic_pairs()
    assert len(pairs) == 13
    assert pairs[0] == ("bfs", "cutcp")
    # the wrap pair pairs the last kernel with the first
    assert pairs[-1] == (PROFILE_NAMES[-1], PROFILE_NAMES[0])


def test_every_profile_has_a_dataset():
    assert set(BUILDERS) == set(PROFILE_NAMES)


@pytest.mark.parametrize("name", PROFILE_NAMES)
def test_dataset_launch_geometry_valid(name):
    instance = build_instance(name)
    for g, l in zip(instance.global_size + (1,) * 3,
                    instance.local_size + (1,) * 3):
        assert g % l == 0
    module = compiled_module(instance.benchmark)
    kernel = module.get(instance.kernel)
    assert len(instance.args) == len(kernel.arguments)


def test_fresh_args_are_copies():
    instance = build_instance("bfs")
    first = instance.fresh_args()
    second = instance.fresh_args()
    for (k1, v1), (k2, v2) in zip(first, second):
        if k1 != "scalar":
            assert v1 is not v2
