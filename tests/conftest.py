"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accelos import rtlib
from repro.accelos.transform import AccelOSTransform
from repro.interp import KernelLauncher
from repro.interp.memory import alloc_buffer
from repro.kernelc import types as T

def pytest_addoption(parser):
    parser.addoption(
        "--regen-goldens", action="store_true", default=False,
        help="rewrite the golden-trace fixtures under tests/goldens/ from "
             "the current simulator output (then commit the diff "
             "deliberately — see tests/test_golden_traces.py)")


@pytest.fixture
def regen_goldens(request):
    return request.config.getoption("--regen-goldens")


_NUMPY_TO_ELEM = {
    np.dtype(np.int32): T.INT,
    np.dtype(np.uint32): T.UINT,
    np.dtype(np.int64): T.LONG,
    np.dtype(np.uint64): T.ULONG,
    np.dtype(np.float32): T.FLOAT,
}


def upload_args(arg_specs):
    """Turn ("in"/"out"/"scalar", value) descriptors into interpreter args.

    Returns ``(args, outputs)`` where outputs maps arg index -> (pointer,
    dtype, count) for later readback.
    """
    args = []
    outputs = {}
    for index, (kind, value) in enumerate(arg_specs):
        if kind == "scalar":
            args.append(value)
            continue
        array = np.asarray(value)
        elem = _NUMPY_TO_ELEM[array.dtype]
        pointer = alloc_buffer(elem, array.size, name="arg{}".format(index))
        pointer.region.fill_from(array)
        args.append(pointer)
        if kind == "out":
            outputs[index] = (pointer, array.dtype, array.size)
    return args, outputs


def read_outputs(outputs):
    return {index: ptr.region.to_array(dtype, count)
            for index, (ptr, dtype, count) in outputs.items()}


def run_functional(module, kernel_name, arg_specs, global_size, local_size,
                   extra_args=()):
    """Run a kernel functionally; returns {out-arg-index: array}."""
    args, outputs = upload_args(arg_specs)
    launcher = KernelLauncher(module)
    launcher.launch(kernel_name, list(args) + list(extra_args),
                    global_size, local_size)
    return read_outputs(outputs)


def make_rt_buffer(total_groups, chunk, work_dim, groups_per_dim):
    """Device rt descriptor for driving a transformed kernel directly."""
    rt = alloc_buffer(T.LONG, rtlib.RT_WORDS, name="rt")
    words = np.zeros(rtlib.RT_WORDS, dtype=np.int64)
    words[rtlib.RT_TOTAL] = total_groups
    words[rtlib.RT_CHUNK] = chunk
    words[rtlib.RT_WORK_DIM] = work_dim
    for d in range(3):
        words[rtlib.RT_GROUPS0 + d] = groups_per_dim[d]
    rt.region.fill_from(words)
    return rt


def assert_transform_equivalent(module, kernel_name, arg_specs, global_size,
                                local_size, physical_groups=2, inline=True,
                                chunk=None):
    """Original vs accelOS-transformed execution must match bit-for-bit."""
    global_size = _norm(global_size)
    local_size = _norm(local_size)
    groups_per_dim = tuple(g // l for g, l in zip(global_size, local_size))
    total_groups = int(np.prod(groups_per_dim))
    work_dim = 3
    while work_dim > 1 and global_size[work_dim - 1] == 1:
        work_dim -= 1

    reference = run_functional(module, kernel_name, arg_specs,
                               global_size, local_size)

    transformed, infos = AccelOSTransform(inline=inline).run(module)
    info = infos[kernel_name]
    rt = make_rt_buffer(total_groups, chunk or info.chunk, work_dim,
                        groups_per_dim)
    physical = min(physical_groups, total_groups)
    phys_global = (physical * local_size[0], local_size[1], local_size[2])
    got = run_functional(transformed, kernel_name, arg_specs,
                         phys_global, local_size, extra_args=(rt,))

    assert reference.keys() == got.keys()
    for index in reference:
        np.testing.assert_array_equal(
            reference[index], got[index],
            err_msg="output arg {} of {} differs".format(index, kernel_name))
    return info


def _norm(size):
    if isinstance(size, int):
        size = (size,)
    return tuple(size) + (1,) * (3 - len(size))


@pytest.fixture
def k20m():
    from repro.cl import nvidia_k20m
    return nvidia_k20m()


@pytest.fixture
def r9(
):
    from repro.cl import amd_r9_295x2
    return amd_r9_295x2()
