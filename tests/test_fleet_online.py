"""Closed-loop fleet co-simulation: equivalence, online policies,
re-balancing, and the new spec surface.

The backward-compatibility contract of the refactor (ISSUE 5): driving
the closed loop with a legacy offline policy in estimate mode must
reproduce the historical offline pre-pass — placement decisions AND
simulated records — **bit-identically**, for every scheme.  On top of
that, the online protocol (live loads, burst detection, work stealing)
is exercised directly.
"""

import pytest

from repro.accelos.placement import (AffinityPlacement,
                                     BurstAwareOnlinePlacement,
                                     LeastLoadedPlacement,
                                     OfflinePolicyAdapter,
                                     RoundRobinPlacement,
                                     WorkStealingRebalance, place_arrivals)
from repro.api import ExperimentSpec, run
from repro.api.placements import (is_online_placement, placement_from_name,
                                  placement_names, rebalancer_names)
from repro.api.schemes import scheme_from_name
from repro.cl import derated_device, nvidia_k20m
from repro.errors import SchedulingError, SimulationError
from repro.harness import (FleetOpenSystemExperiment,
                           fleet_arrival_rate_for_load, isolated_time)
from repro.sim import DeviceFleet, ExecutionMode, GPUSimulator
from repro.workloads import trace_arrivals
from repro.workloads.scenarios import scenario


def hetero_fleet():
    return DeviceFleet([
        ("fast", nvidia_k20m()),
        ("slow", derated_device(nvidia_k20m(), "K20m-derated",
                                clock_scale=0.4, cu_scale=0.5)),
    ])


def homo_fleet(n=2):
    return DeviceFleet([("dev{}".format(i), nvidia_k20m())
                        for i in range(n)])


def bursty_stream(fleet, count=40, seed=2016, load=1.5):
    rate = fleet_arrival_rate_for_load(load, fleet)
    return scenario("multi-tenant").generate(rate, count, seed=seed)


SCHEMES = ("baseline", "ek", "accelos")
OFFLINE_POLICIES = (RoundRobinPlacement, LeastLoadedPlacement,
                    AffinityPlacement)


# -- offline/closed-loop equivalence ------------------------------------------

@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("policy_cls", OFFLINE_POLICIES)
def test_loop_reproduces_offline_path_bit_identically(scheme, policy_cls):
    """The refactor's contract: the closed loop driven by a legacy policy
    (estimate mode, the 'auto' default) reproduces the offline pre-pass's
    decisions and records bit-for-bit."""
    fleet = hetero_fleet()
    arrivals = bursty_stream(fleet)
    experiment = FleetOpenSystemExperiment(fleet)
    offline = experiment._run_offline(arrivals, scheme_from_name(scheme),
                                      policy_cls())
    loop = experiment.run(arrivals, scheme, policy_cls())
    assert [(d.index, d.penalty, d.pinned) for d in offline.decisions] \
        == [(d.index, d.penalty, d.pinned) for d in loop.decisions]
    assert [(r.start, r.finish) for r in offline.overall.records] \
        == [(r.start, r.finish) for r in loop.overall.records]
    assert offline.overall.unfairness == loop.overall.unfairness
    assert offline.overall.antt == loop.overall.antt
    assert offline.device_share == loop.device_share
    assert loop.rebalances == 0


def test_forced_offline_mode_matches_auto_for_legacy_policies():
    fleet = hetero_fleet()
    arrivals = bursty_stream(fleet, count=24)
    experiment = FleetOpenSystemExperiment(fleet)
    auto = experiment.run(arrivals, "accelos", LeastLoadedPlacement())
    forced = experiment.run(arrivals, "accelos", LeastLoadedPlacement(),
                            mode="offline")
    assert [r.finish for r in auto.overall.records] \
        == [r.finish for r in forced.overall.records]


def test_pinned_requests_honoured_in_the_loop():
    fleet = homo_fleet()
    experiment = FleetOpenSystemExperiment(fleet)
    arrivals = trace_arrivals([
        ("bfs", 0.0, "t0", "dev1"),
        ("sgemm", 0.001, "t1", "dev0"),
        ("spmv", 0.002, "t0", "dev1"),
    ])
    result = experiment.run(arrivals, "accelos", "burst-aware")
    names = {device_id: [r.name for r in res.records]
             for device_id, res in result.per_device.items()}
    assert names == {"dev0": ["sgemm"], "dev1": ["bfs", "spmv"]}


def test_loop_rejects_bad_mode_combinations():
    fleet = homo_fleet()
    experiment = FleetOpenSystemExperiment(fleet)
    arrivals = trace_arrivals([("bfs", 0.0)])
    with pytest.raises(SimulationError, match="closed-loop-only"):
        experiment.run(arrivals, "accelos", "burst-aware", mode="offline")
    with pytest.raises(SimulationError, match="re-balancing"):
        experiment.run(arrivals, "accelos", "least-loaded",
                       mode="offline", rebalance="work-stealing")
    with pytest.raises(SimulationError, match="live-state"):
        experiment.run(arrivals, "accelos", "least-loaded",
                       rebalance="work-stealing")
    with pytest.raises(SimulationError, match="placement mode"):
        experiment.run(arrivals, "accelos", "least-loaded", mode="nope")


# -- online policies -----------------------------------------------------------

def test_online_least_loaded_uses_live_state():
    """mode='online' adapts a legacy policy to live loads; on a stream
    where the single-server estimate misjudges accelOS's space sharing,
    decisions legitimately differ from the estimate replay."""
    fleet = hetero_fleet()
    arrivals = bursty_stream(fleet, count=48)
    experiment = FleetOpenSystemExperiment(fleet)
    estimate = experiment.run(arrivals, "accelos", LeastLoadedPlacement())
    live = experiment.run(arrivals, "accelos", LeastLoadedPlacement(),
                          mode="online")
    assert [d.index for d in estimate.decisions] \
        != [d.index for d in live.decisions]
    # conservation holds in both planes
    assert len(live.overall.records) == len(arrivals)
    assert sum(len(r.records) for r in live.per_device.values()) \
        == len(arrivals)


def test_burst_factor_tracks_surges():
    policy = BurstAwareOnlinePlacement(horizon=4, surge=2.0)

    class A:
        def __init__(self, t):
            self.time = t

    # steady spacing: factor ~1
    for t in (0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0):
        policy.observe_arrival(A(t))
    assert policy.burst_factor(6.0) == pytest.approx(1.0, rel=0.3)
    assert not policy.bursting(6.0)
    # a surge: 4 arrivals in 0.03s after one per second
    for t in (6.01, 6.02, 6.03):
        policy.observe_arrival(A(t))
    assert policy.bursting(6.03)
    policy.reset()
    assert policy.burst_factor(1.0) == 1.0


def test_burst_aware_deterministic_and_conserving():
    fleet = hetero_fleet()
    arrivals = bursty_stream(fleet, count=40)
    experiment = FleetOpenSystemExperiment(fleet)
    a = experiment.run(arrivals, "accelos", "burst-aware")
    b = experiment.run(arrivals, "accelos", "burst-aware")
    assert [r.finish for r in a.overall.records] \
        == [r.finish for r in b.overall.records]
    assert a.device_share == b.device_share
    assert len(a.overall.records) == len(arrivals)


@pytest.mark.parametrize("scheme", SCHEMES)
def test_every_builtin_scheme_serves_the_closed_loop(scheme):
    """All three schemes expose open sessions: the loop is not an
    accelOS-only feature."""
    fleet = hetero_fleet()
    arrivals = bursty_stream(fleet, count=24)
    experiment = FleetOpenSystemExperiment(fleet)
    result = experiment.run(arrivals, scheme, "burst-aware")
    assert len(result.overall.records) == len(arrivals)
    for record in result.overall.records:
        assert record.finish > record.arrival


# -- work stealing -------------------------------------------------------------

def test_work_stealing_moves_queued_work_to_idle_device():
    """A burst pinned (by arrival pattern) onto one device: the other
    device is idle, so the re-balancer steals queued requests and every
    stolen one is charged the migration penalty."""
    fleet = homo_fleet()
    experiment = FleetOpenSystemExperiment(fleet)
    # a tight burst at t=0 all placed before any completion: round-robin
    # would split it, but affinity-for-one-tenant piles it up; use the
    # baseline scheme so requests queue in the firmware FIFO
    arrivals = trace_arrivals([("sgemm", 1e-6 * i, "t0")
                               for i in range(8)])
    policy = WorkStealingRebalance(
        inner=OfflinePolicyAdapter(AffinityPlacement(penalty=0.5),
                                   mode="live"),
        penalty=1e-4)
    result = experiment.run(arrivals, "baseline", policy, mode="online")
    assert result.rebalances > 0
    assert len(result.overall.records) == len(arrivals)
    # stolen requests pay the transfer before starting on the thief
    stolen = [d for d in result.decisions if d.penalty > 0]
    assert len(stolen) == result.rebalances
    for decision in stolen:
        position = result.decisions.index(decision)
        record = result.overall.records[position]
        assert record.start >= decision.arrival.time + 1e-4 - 1e-12
    # both devices ended up serving the tenant
    assert all(share > 0 for share in result.device_share.values())


def test_work_stealing_never_touches_pinned_requests():
    fleet = homo_fleet()
    experiment = FleetOpenSystemExperiment(fleet)
    arrivals = trace_arrivals([("sgemm", 1e-6 * i, "t0", "dev0")
                               for i in range(8)])
    policy = WorkStealingRebalance(penalty=1e-4)
    result = experiment.run(arrivals, "baseline", policy, mode="online")
    assert result.rebalances == 0
    assert result.device_share == {"dev0": 1.0, "dev1": 0.0}


def test_spec_rebalance_runs_through_the_driver():
    spec = ExperimentSpec(
        scenario="multi-tenant", schemes=("accelos",), loads=(1.5,),
        seeds=(2016,), count=32,
        devices=({"id": "fast", "base": "nvidia-k20m"},
                 {"id": "slow", "base": "nvidia-k20m",
                  "clock_scale": 0.4, "cu_scale": 0.5}),
        placements=("least-loaded",), placement_mode="online",
        rebalance="work-stealing")
    results = run(spec)
    result = results.get(placement="least-loaded")
    assert len(result.overall.records) == 32
    # same spec twice: deterministic end to end
    again = run(spec).get(placement="least-loaded")
    assert [r.finish for r in result.overall.records] \
        == [r.finish for r in again.overall.records]


# -- incremental simulator interface ------------------------------------------

def test_open_withdraw_only_before_start():
    device = nvidia_k20m()
    sim = GPUSimulator(device)
    sim.open_begin(ExecutionMode.HARDWARE)
    from repro.api.kernels import base_spec
    first = sim.open_submit(base_spec("sgemm").with_arrival(0.0))
    second = sim.open_submit(base_spec("bfs").with_arrival(1e-7))
    sim.open_advance_before(1e-6)
    # the first request has begun dispatching: it is no longer queued
    assert not sim.open_withdrawable(first)
    with pytest.raises(SimulationError, match="already started"):
        sim.open_withdraw(first)
    # the second still waits for the dispatch window: withdrawable
    assert sim.open_withdrawable(second)
    sim.open_withdraw(second)
    sim.open_drain()
    trace = sim.open_trace()
    assert [iv.name for iv in trace.intervals] == ["sgemm"]


def test_run_open_is_the_incremental_interface():
    """Batch run_open and manual begin/submit/drain produce identical
    traces (one code path, regression-locked)."""
    from repro.api.kernels import base_spec
    device = nvidia_k20m()
    arrivals = [("sgemm", 0.0), ("bfs", 0.0005), ("spmv", 0.001)]
    specs = [base_spec(n).with_arrival(t) for n, t in arrivals]
    batch = GPUSimulator(device).run_open(specs)
    sim = GPUSimulator(device)
    sim.open_begin(ExecutionMode.HARDWARE)
    for spec in specs:
        sim.open_submit(spec)
    sim.open_drain()
    manual = sim.open_trace()
    assert [(iv.name, iv.start, iv.finish) for iv in batch.intervals] \
        == [(iv.name, iv.start, iv.finish) for iv in manual.intervals]


# -- registry & spec surface ---------------------------------------------------

def test_online_policies_registered_and_flagged():
    assert "burst-aware" in placement_names()
    assert "work-stealing" in placement_names()
    assert is_online_placement("burst-aware")
    assert is_online_placement("work-stealing")
    assert not is_online_placement("least-loaded")
    assert "work-stealing" in rebalancer_names()


def test_place_arrivals_rejects_online_policies():
    fleet = homo_fleet()
    with pytest.raises(SchedulingError, match="closed-loop-only"):
        place_arrivals(placement_from_name("burst-aware"),
                       trace_arrivals([("bfs", 0.0)]), fleet.devices,
                       estimator=isolated_time)


def test_spec_round_trips_new_fields():
    spec = ExperimentSpec(
        devices=({"id": "a"}, {"id": "b", "clock_scale": 0.5}),
        placements=("burst-aware",), placement_mode="online",
        rebalance="work-stealing")
    again = ExperimentSpec.from_json(spec.to_json())
    assert again == spec
    assert again.placement_mode == "online"
    assert again.rebalance == "work-stealing"


def test_spec_validates_new_fields_eagerly():
    fleet_devices = ({"id": "a"}, {"id": "b"})
    with pytest.raises(SimulationError, match="placement mode"):
        ExperimentSpec(devices=fleet_devices, placement_mode="sideways")
    with pytest.raises(SimulationError, match="re-balancer"):
        ExperimentSpec(devices=fleet_devices, rebalance="magic")
    with pytest.raises(SimulationError, match="closed-loop-only"):
        ExperimentSpec(devices=fleet_devices,
                       placements=("burst-aware",),
                       placement_mode="offline")
    with pytest.raises(SimulationError, match="closed loop"):
        ExperimentSpec(devices=fleet_devices,
                       placement_mode="offline",
                       rebalance="work-stealing")
    with pytest.raises(SimulationError, match="live-state"):
        ExperimentSpec(devices=fleet_devices,
                       placements=("least-loaded",),
                       rebalance="work-stealing")
    with pytest.raises(SimulationError, match="multi-device"):
        ExperimentSpec(placement_mode="online")
    with pytest.raises(SimulationError, match="multi-device"):
        ExperimentSpec(rebalance="work-stealing")


# -- pinned x affinity interaction (satellite regression lock) -----------------

def constant_estimator(name, device):
    return 1.0


def test_pinned_placement_rehomes_tenant_and_pays_migration():
    """place_arrivals consults migration_penalty for pinned decisions
    too: a hard pin moves the tenant's buffers, so (a) the pinned
    request itself pays the transfer when its home is elsewhere, and
    (b) the tenant is re-homed onto the pinned device, changing what a
    *later* unpinned request is charged.  Intended behaviour — the home
    map tracks where the buffers physically are."""
    fleet = homo_fleet()
    policy = AffinityPlacement(penalty=0.25)
    arrivals = trace_arrivals([
        ("bfs", 0.0, "t0"),            # homes t0 on dev0 (free)
        ("bfs", 0.1, "t0", "dev1"),    # pinned off-home: pays + re-homes
        ("bfs", 0.2, "t0"),            # load draws it back to dev0...
    ])
    decisions = place_arrivals(policy, arrivals, fleet.devices,
                               estimator=constant_estimator,
                               ids=fleet.id_to_index())
    assert [d.index for d in decisions] == [0, 1, 0]
    assert [d.pinned for d in decisions] == [False, True, False]
    # the pinned request paid the buffer transfer...
    assert decisions[1].penalty == 0.25
    # ...and BECAUSE the pin re-homed the tenant to dev1, returning to
    # dev0 — free before the pin — now costs a second transfer
    assert decisions[2].penalty == 0.25


def test_pinned_rehoming_charges_later_unpinned_request():
    """The flip side: after a pin re-homes the tenant, an unpinned
    request drawn back to the old device pays the migration."""
    fleet = homo_fleet()
    policy = AffinityPlacement(penalty=0.05)
    arrivals = trace_arrivals([
        ("bfs", 0.0, "t0", "dev1"),    # first sight of t0: home = dev1
        ("bfs", 0.0001, "u1"), ("bfs", 0.0002, "u2"),  # background load
        ("bfs", 0.0003, "t0"),         # backlog draws t0 off its home
    ])
    decisions = place_arrivals(policy, arrivals, fleet.devices,
                               estimator=constant_estimator,
                               ids=fleet.id_to_index())
    assert decisions[0].penalty == 0.0   # first sight: no old home to leave
    assert decisions[0].index == 1
    # without the pin, t0's first request would have homed on dev0 and
    # its later request would return there free; the pin homed it on
    # dev1, so the return to dev0 is a *charged* migration
    last = decisions[-1]
    assert last.index == 0 and last.penalty == 0.05


def test_pinned_migration_delay_applies_in_simulation():
    """The pinned request's migration penalty delays its start on the
    pinned device in both fleet planes."""
    fleet = homo_fleet()
    experiment = FleetOpenSystemExperiment(fleet)
    arrivals = trace_arrivals([
        ("sgemm", 0.0, "t0"),
        ("sgemm", 0.001, "t0", "dev1"),
    ])
    for mode in ("offline", "auto"):
        result = experiment.run(arrivals, "baseline",
                                AffinityPlacement(penalty=5e-3), mode=mode)
        pinned_record = result.overall.records[1]
        assert result.decisions[1].penalty == 5e-3
        assert pinned_record.start >= 0.001 + 5e-3 - 1e-12


# -- place_arrivals estimator memoisation (satellite perf fix) -----------------

def test_place_arrivals_memoises_estimator_calls():
    fleet = homo_fleet()
    calls = []

    def counting_estimator(name, device):
        calls.append((name, device.name))
        return 1.0

    arrivals = trace_arrivals([("bfs", 0.001 * i) for i in range(50)])
    place_arrivals(LeastLoadedPlacement(), arrivals, fleet.devices,
                   estimator=counting_estimator)
    # one estimate per (kernel, device), not one per request per device
    assert len(calls) == len(fleet)

    calls.clear()
    place_arrivals(RoundRobinPlacement(), arrivals, fleet.devices,
                   estimator=counting_estimator)
    # cost-blind policy: only the busy-until update needs estimates
    assert len(calls) == len(fleet)
