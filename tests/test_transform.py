"""Unit tests for the accelOS JIT transformation (paper §6)."""

import pytest

from repro.accelos import rtlib
from repro.accelos.adaptive import SchedulingPolicy
from repro.accelos.transform import AccelOSTransform
from repro.ir import compile_source, verify_module
from repro.ir import instructions as I
from repro.kernelc import types as T
from tests.conftest import assert_transform_equivalent

SIMPLE = """
kernel void k(global float* a, global float* out)
{
    size_t g = get_global_id(0);
    out[g] = a[g] + 1.0f;
}
"""


def transform(source, **kwargs):
    module = compile_source(source)
    return AccelOSTransform(**kwargs).run(module)


def test_kernel_replaced_under_original_name():
    out, infos = transform(SIMPLE, inline=False)
    assert "k" in out
    assert out.get("k").is_kernel
    assert "k__impl" in out
    assert not out.get("k__impl").is_kernel
    assert infos["k"].impl_name == "k__impl"


def test_scheduling_kernel_has_trailing_rt_arg():
    out, _ = transform(SIMPLE, inline=False)
    sched = out.get("k")
    assert sched.arguments[-1].type == T.PointerType(T.LONG, T.GLOBAL)
    assert sched.metadata["hidden_params"] == 1
    assert sched.metadata["accelos"]["original_params"] == 2


def test_rtlib_statically_linked():
    out, _ = transform(SIMPLE, inline=False)
    for name in rtlib.RTLIB_FUNCTIONS:
        assert name in out


def test_impl_builtins_replaced():
    out, _ = transform(SIMPLE, inline=False)
    impl = out.get("k__impl")
    intrinsics = {i.callee for i in impl.instructions()
                  if isinstance(i, I.Call) and i.is_intrinsic()}
    assert "get_global_id" not in intrinsics
    direct = {i.callee.name for i in impl.instructions()
              if isinstance(i, I.Call) and not i.is_intrinsic()}
    assert "rt_global_id" in direct


def test_local_id_stays_hardware():
    out, _ = transform("""
        kernel void k(global float* a) {
            a[get_local_id(0)] = (float)get_local_size(0);
        }
    """, inline=False)
    impl = out.get("k__impl")
    intrinsics = {i.callee for i in impl.instructions()
                  if isinstance(i, I.Call) and i.is_intrinsic()}
    assert "get_local_id" in intrinsics
    assert "get_local_size" in intrinsics


def test_helper_functions_get_context_params():
    out, _ = transform("""
        float h(global float* a) { return a[get_global_id(0)]; }
        kernel void k(global float* a, global float* out) {
            out[get_global_id(0)] = h(a);
        }
    """, inline=False)
    assert "h__rt" in out
    extended = out.get("h__rt")
    assert [a.name for a in extended.arguments[-3:]] == \
        ["__rt", "__sd", "__hdlr"]
    assert "h" not in out  # original unreachable version dropped


def test_helper_without_builtins_untouched():
    out, _ = transform("""
        float pure(float x) { return x * 2.0f; }
        kernel void k(global float* a) {
            a[get_global_id(0)] = pure(a[0]);
        }
    """, inline=False)
    assert "pure" in out
    assert "pure__rt" not in out


def test_local_data_hoisted_to_scheduling_kernel():
    out, _ = transform("""
        kernel void k(global float* a) {
            local float tile[32];
            tile[get_local_id(0)] = a[get_global_id(0)];
            barrier(CLK_LOCAL_MEM_FENCE);
            a[get_global_id(0)] = tile[0];
        }
    """, inline=False)
    impl = out.get("k__impl")
    # no local allocas remain in the computation function
    assert not any(isinstance(i, I.Alloca) and i.address_space == T.LOCAL
                   for i in impl.instructions())
    # the scheduling kernel owns them (sd block + 1 hoisted tile)
    sched = out.get("k")
    local_allocas = [i for i in sched.instructions()
                     if isinstance(i, I.Alloca) and i.address_space == T.LOCAL]
    assert len(local_allocas) == 2


def test_transformed_module_verifies():
    for inline in (False, True):
        out, _ = transform(SIMPLE, inline=inline)
        verify_module(out)


def test_inline_mode_leaves_single_kernel_body():
    out, _ = transform(SIMPLE, inline=True)
    sched = out.get("k")
    direct = [i for i in sched.instructions()
              if isinstance(i, I.Call) and not i.is_intrinsic()]
    assert direct == []


def test_chunk_recorded_from_instruction_count():
    _, infos = transform(SIMPLE, inline=False)
    info = infos["k"]
    assert info.chunk >= 1
    assert info.instruction_count > 0


def test_naive_policy_forces_chunk_one():
    _, infos = transform(SIMPLE, policy=SchedulingPolicy.NAIVE, inline=False)
    assert infos["k"].chunk == 1


def test_original_module_not_mutated():
    module = compile_source(SIMPLE)
    before = module.get("k").instruction_count()
    AccelOSTransform().run(module)
    assert module.get("k").instruction_count() == before
    assert "k__impl" not in module


def test_equivalence_simple(k20m):
    import numpy as np
    module = compile_source(SIMPLE)
    a = np.random.default_rng(0).random(256).astype(np.float32)
    out = np.zeros(256, dtype=np.float32)
    assert_transform_equivalent(
        module, "k", [("in", a), ("out", out)], (256,), (64,),
        physical_groups=2)


@pytest.mark.parametrize("physical_groups", [1, 2, 3, 5])
def test_equivalence_any_physical_group_count(physical_groups):
    import numpy as np
    module = compile_source(SIMPLE)
    a = np.random.default_rng(1).random(512).astype(np.float32)
    out = np.zeros(512, dtype=np.float32)
    assert_transform_equivalent(
        module, "k", [("in", a), ("out", out)], (512,), (64,),
        physical_groups=physical_groups)


@pytest.mark.parametrize("chunk", [1, 2, 3, 8])
def test_equivalence_any_chunk(chunk):
    import numpy as np
    module = compile_source(SIMPLE)
    a = np.random.default_rng(2).random(512).astype(np.float32)
    out = np.zeros(512, dtype=np.float32)
    assert_transform_equivalent(
        module, "k", [("in", a), ("out", out)], (512,), (64,),
        physical_groups=3, chunk=chunk)


def test_equivalence_2d_range():
    import numpy as np
    module = compile_source("""
        kernel void t2d(global float* a, global float* out) {
            size_t x = get_global_id(0);
            size_t y = get_global_id(1);
            size_t w = get_global_size(0);
            out[y * w + x] = a[y * w + x]
                + (float)(get_group_id(0) * 10 + get_group_id(1));
        }
    """)
    a = np.random.default_rng(3).random(32 * 16).astype(np.float32)
    out = np.zeros(32 * 16, dtype=np.float32)
    assert_transform_equivalent(
        module, "t2d", [("in", a), ("out", out)], (32, 16), (8, 8),
        physical_groups=3)
