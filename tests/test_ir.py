"""Unit tests for IR lowering, the verifier, printing and cloning."""

import pytest

from repro.errors import IRError
from repro.ir import compile_source, print_function, print_module, verify_module
from repro.ir import instructions as I
from repro.ir.builder import IRBuilder
from repro.ir.clone import clone_function, clone_module
from repro.ir.function import Function
from repro.ir.values import Constant
from repro.ir.verifier import verify_function
from repro.kernelc import types as T


SIMPLE = """
kernel void f(global float* a, int n)
{
    int gid = (int)get_global_id(0);
    if (gid < n)
        a[gid] = a[gid] * 2.0f;
}
"""


def test_compile_simple_kernel():
    module = compile_source(SIMPLE)
    assert "f" in module
    assert module.get("f").is_kernel


def test_module_repr_and_kernels():
    module = compile_source(SIMPLE)
    assert len(module.kernels()) == 1
    assert module.plain_functions() == []


def test_every_block_terminated():
    module = compile_source(SIMPLE, optimize=False)
    for func in module.functions.values():
        for block in func.blocks:
            assert block.terminator is not None


def test_lowering_loops_produce_back_edge():
    module = compile_source("""
        kernel void f(global int* a) {
            for (int i = 0; i < 10; ++i) a[i] = i;
        }
    """, optimize=False)
    func = module.get("f")
    # some block must branch backwards (to an earlier block)
    index = func.block_index()
    has_back_edge = any(
        index[succ] <= index[block]
        for block in func.blocks for succ in block.successors())
    assert has_back_edge


def test_short_circuit_generates_control_flow():
    module = compile_source("""
        kernel void f(global int* a, int n) {
            if (n > 0 && a[0] > 5) a[1] = 1;
        }
    """, optimize=False)
    func = module.get("f")
    names = [b.name for b in func.blocks]
    assert any("sc." in n for n in names)


def test_verifier_accepts_all_compiled_functions():
    module = compile_source(SIMPLE)
    assert verify_module(module)


def test_verifier_rejects_missing_terminator():
    func = Function("g", T.VOID, [], [])
    func.add_block("entry")
    with pytest.raises(IRError, match="terminator"):
        verify_function(func)


def test_verifier_rejects_type_mismatched_store():
    func = Function("g", T.VOID, [], [])
    entry = func.add_block("entry")
    builder = IRBuilder(func, entry)
    slot = builder.alloca(T.INT)
    bad = I.Store(slot, Constant(T.FLOAT, 1.0))
    bad.parent = entry
    entry.instructions.append(bad)
    builder.position_at_end(entry)
    builder.ret()
    with pytest.raises(IRError, match="store type mismatch"):
        verify_function(func)


def test_verifier_rejects_use_before_def():
    func = Function("g", T.VOID, [], [])
    entry = func.add_block("entry")
    builder = IRBuilder(func, entry)
    slot = builder.alloca(T.INT)
    load = I.Load(slot)
    use = I.Store(slot, load)
    use.parent = entry
    entry.instructions.append(use)   # store before the load is defined
    load.parent = entry
    entry.instructions.append(load)
    builder.position_at_end(entry)
    builder.ret()
    with pytest.raises(IRError, match="use before def"):
        verify_function(func)


def test_verifier_rejects_foreign_branch_target():
    f1 = Function("f1", T.VOID, [], [])
    b1 = f1.add_block("entry")
    f2 = Function("f2", T.VOID, [], [])
    foreign = f2.add_block("entry")
    br = I.Br(foreign)
    br.parent = b1
    b1.instructions.append(br)
    with pytest.raises(IRError, match="foreign block"):
        verify_function(f1)


def test_builder_coerces_scalar_pairs():
    func = Function("g", T.VOID, [], [])
    builder = IRBuilder(func, func.add_block("entry"))
    out = builder.binop("add", Constant(T.INT, 1), Constant(T.FLOAT, 2.0))
    assert out.type == T.FLOAT


def test_builder_pointer_displacement():
    ptr_ty = T.PointerType(T.FLOAT, T.GLOBAL)
    func = Function("g", T.VOID, [ptr_ty], ["p"])
    builder = IRBuilder(func, func.add_block("entry"))
    out = builder.binop("add", func.arguments[0], Constant(T.INT, 4))
    assert isinstance(out, I.PtrAdd)


def test_dominators_entry_dominates_all():
    module = compile_source(SIMPLE, optimize=False)
    func = module.get("f")
    dom = func.dominators()
    entry = func.entry
    for block in func.reachable_blocks():
        assert entry in dom[block]


def test_instruction_count_excludes_nothing_by_default():
    module = compile_source(SIMPLE)
    func = module.get("f")
    assert func.instruction_count() == sum(
        len(b.instructions) for b in func.blocks)


def test_printer_output_contains_blocks_and_calls():
    module = compile_source(SIMPLE, optimize=False)
    text = print_module(module)
    assert "kernel void @f" in text
    assert "call" in text and "get_global_id" in text


def test_print_function_roundtrips_names():
    module = compile_source(SIMPLE)
    text = print_function(module.get("f"))
    assert text.startswith("kernel void @f")
    assert text.rstrip().endswith("}")


def test_clone_function_is_deep():
    module = compile_source(SIMPLE)
    func = module.get("f")
    clone, mapping = clone_function(func, "f2")
    assert clone.name == "f2"
    assert clone.instruction_count() == func.instruction_count()
    originals = set(func.instructions())
    for insn in clone.instructions():
        assert insn not in originals


def test_clone_module_retargets_calls():
    module = compile_source("""
        float helper(float x) { return x + 1.0f; }
        kernel void f(global float* a) { a[0] = helper(a[0]); }
    """)
    cloned = clone_module(module)
    for insn in cloned.get("f").instructions():
        if isinstance(insn, I.Call) and not insn.is_intrinsic():
            assert insn.callee is cloned.get("helper")
    verify_module(cloned)


def test_link_collision_detected():
    a = compile_source("void f() {}")
    b = compile_source("void f() {}")
    with pytest.raises(IRError, match="collision"):
        a.link(b)


def test_link_allow_duplicates_keeps_first():
    a = compile_source("void f() {}")
    first = a.get("f")
    b = compile_source("void f() {}")
    a.link(b, allow_duplicates=True)
    assert a.get("f") is first
