"""A/B equivalence suite for the event-engine fast path (PR 10).

The open-system engine has two switchable implementations of every
per-event decision procedure: the optimised fast path (incremental
admission totals, allocation memo, indexed pending slots — the
default) and the original reference scans (``reference_path()``).
The optimisation contract is **zero behavioural drift**: both paths
must produce bit-identical traces, records, and metrics on *every*
stream, not just the benchmarked one.  This suite pins that contract

* against the four committed golden traces (each path must equal the
  fixture, not merely each other),
* across randomised scenario x scheme x load draws (hypothesis),
* through withdraw/migration interleavings (a work-stealing fleet,
  where runs are withdrawn from one device mid-flight and replayed
  on another),
* through the spec driver (``run(spec)`` on the committed smoke spec
  must reproduce the committed result golden under *both* paths),

and pins the memo machinery itself: ``_compute_allocations_incremental``
must equal ``compute_allocations`` on random requirement mixes, and
``AllocationMemo`` must be order-insensitive with exact hit/miss
bookkeeping.
"""

import json
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.accelos.sharing import (AllocationMemo, KernelRequirements,
                                   _compute_allocations_incremental,
                                   compute_allocations)
from repro.api import ExperimentSpec, run
from repro.cl import amd_r9_295x2, derated_device, nvidia_k20m
from repro.harness import FleetOpenSystemExperiment, OpenSystemExperiment
from repro.sim import DeviceFleet, fast_path_enabled, reference_path
from repro.workloads import from_name

GOLDEN_DIR = Path(__file__).parent / "goldens"

TRACE_SEED = 5
TRACE_COUNT = 6
TRACE_LOAD = 1.0


def _trace_payload(device, scheme):
    """Same shape as tests/test_golden_traces.py builds the fixtures."""
    stream = from_name("steady", seed=TRACE_SEED, load=TRACE_LOAD,
                       count=TRACE_COUNT, device=device)
    records = OpenSystemExperiment(device).scheme_records(stream, scheme)
    return [[r.name, r.arrival, r.start, r.finish] for r in records]


def test_fast_path_is_the_default():
    assert fast_path_enabled()
    with reference_path():
        assert not fast_path_enabled()
    assert fast_path_enabled()


# -- the four committed golden traces, under both paths -----------------------

@pytest.mark.parametrize("fixture, device_factory, scheme", [
    ("trace_fifo_baseline.json", nvidia_k20m, "baseline"),
    ("trace_exclusive_baseline.json", amd_r9_295x2, "baseline"),
    ("trace_accelos.json", nvidia_k20m, "accelos"),
    ("trace_ek.json", nvidia_k20m, "ek"),
])
def test_both_paths_reproduce_the_golden_trace(fixture, device_factory,
                                               scheme):
    stored = json.loads((GOLDEN_DIR / fixture).read_text(encoding="utf-8"))
    fast = _trace_payload(device_factory(), scheme)
    with reference_path():
        reference = _trace_payload(device_factory(), scheme)
    assert fast == stored, "fast path drifted from golden " + fixture
    assert reference == stored, \
        "reference path drifted from golden " + fixture


# -- randomised scenario x scheme x load draws --------------------------------

@settings(max_examples=12, deadline=None)
@given(
    scenario=st.sampled_from(("steady", "bursty", "diurnal", "heavy-tailed",
                              "heavy-lognormal", "multi-tenant")),
    scheme=st.sampled_from(("baseline", "ek", "accelos")),
    load=st.sampled_from((0.5, 0.9, 1.3)),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_random_streams_are_path_invariant(scenario, scheme, load, seed):
    device = nvidia_k20m()
    stream = from_name(scenario, seed=seed, load=load, count=24,
                       device=device)
    fast = OpenSystemExperiment(device).scheme_records(stream, scheme)
    with reference_path():
        reference = OpenSystemExperiment(device).scheme_records(stream,
                                                                scheme)
    assert [(r.name, r.arrival, r.start, r.finish) for r in fast] \
        == [(r.name, r.arrival, r.start, r.finish) for r in reference]


# -- withdraw/migration interleavings -----------------------------------------

def _stealing_fleet():
    return DeviceFleet([
        ("fast", nvidia_k20m()),
        ("slow", derated_device(nvidia_k20m(), "K20m-derated", 0.4)),
    ])


@pytest.mark.parametrize("seed", [2016, 7, 23])
def test_work_stealing_migrations_are_path_invariant(seed):
    """Work stealing withdraws queued runs from a busy device and
    replays them elsewhere — the interleaving that exercises
    ``open_withdraw`` tombstones against the indexed pending state."""
    def one_run():
        stream = from_name("multi-tenant", seed=seed, load=1.5, count=48,
                           device=nvidia_k20m())
        experiment = FleetOpenSystemExperiment(_stealing_fleet())
        return experiment.run_stream(iter(stream), "accelos",
                                     "least-loaded", mode="online",
                                     rebalance="work-stealing")
    fast = one_run()
    with reference_path():
        reference = one_run()
    assert repr(vars(fast)) == repr(vars(reference))
    assert fast.migrations == reference.migrations
    assert fast.rebalances == reference.rebalances


# -- the committed smoke spec through the driver ------------------------------

def test_spec_smoke_golden_holds_under_both_paths():
    spec = ExperimentSpec.from_json(
        (GOLDEN_DIR / "spec_smoke.json").read_text(encoding="utf-8"))
    golden = json.loads(
        (GOLDEN_DIR / "spec_smoke_result.json").read_text(encoding="utf-8"))
    expected = {cell["cell"]["scheme"]: cell["metrics"]
                for cell in golden["cells"]}

    def metric_cells(results):
        return {scheme: {metric: results.metric(metric, scheme=scheme)
                         for metric in metrics}
                for scheme, metrics in expected.items()}

    fast = metric_cells(run(spec, cache=False))
    with reference_path():
        reference = metric_cells(run(spec, cache=False))
    assert fast == expected
    assert reference == expected


# -- the incremental allocator against the reference algorithm ----------------

REQUIREMENT = st.builds(
    KernelRequirements,
    name=st.sampled_from(("bfs", "sgemm", "histo", "mri-q", "sad", "spmv")),
    wg_threads=st.sampled_from((32, 64, 128, 192, 256)),
    local_mem_bytes=st.sampled_from((0, 512, 2048, 4096)),
    registers_per_thread=st.sampled_from((8, 16, 24, 32)),
    total_groups=st.integers(min_value=1, max_value=400),
)


@settings(max_examples=200, deadline=None)
@given(
    requirements=st.lists(REQUIREMENT, min_size=1, max_size=8),
    device_factory=st.sampled_from((nvidia_k20m, amd_r9_295x2)),
    saturate=st.booleans(),
)
def test_incremental_allocator_matches_reference(requirements,
                                                 device_factory, saturate):
    device = device_factory()
    reference = compute_allocations(requirements, device, saturate=saturate)
    incremental = _compute_allocations_incremental(requirements, device,
                                                   saturate)
    assert [a.groups for a in incremental] \
        == [a.groups for a in reference]
    assert [a.requirements is r for a, r in zip(incremental, requirements)]


# -- the memo itself ----------------------------------------------------------

def _mix():
    return [
        KernelRequirements("histo", 128, 2048, 16, 120),
        KernelRequirements("sgemm", 256, 0, 32, 300),
        KernelRequirements("bfs", 64, 512, 8, 80),
    ]


def test_memo_results_match_compute_allocations():
    device = nvidia_k20m()
    memo = AllocationMemo(device)
    requirements = _mix()
    groups = memo.groups_for(requirements)
    expected = [a.groups
                for a in compute_allocations(requirements, device)]
    assert list(groups) == expected


def test_memo_hit_and_miss_bookkeeping():
    memo = AllocationMemo(nvidia_k20m())
    requirements = _mix()
    memo.groups_for(requirements)
    assert (memo.misses, memo.hits) == (1, 0)
    memo.groups_for(requirements)
    assert (memo.misses, memo.hits) == (1, 1)
    memo.groups_for(requirements[:2])       # novel multiset: a miss
    assert (memo.misses, memo.hits) == (2, 1)


# corpus-style draws for the memo: one name maps to exactly one
# footprint (the memo's documented precondition — engine requirements
# come from a fixed kernel corpus, so equal names mean equal keys;
# only total-group duplicates of whole profiles occur)
PROFILES = {
    "bfs": (64, 512, 8, 80),
    "sgemm": (256, 0, 32, 300),
    "histo": (128, 2048, 16, 120),
    "mri-q": (192, 0, 24, 220),
    "sad": (32, 4096, 8, 50),
}


def _profile_requirement(name):
    wg_threads, lmem, regs, total_groups = PROFILES[name]
    return KernelRequirements(name, wg_threads, lmem, regs, total_groups)


CORPUS_REQUIREMENT = st.sampled_from(sorted(PROFILES)).map(
    _profile_requirement)


@settings(max_examples=60, deadline=None)
@given(
    requirements=st.lists(CORPUS_REQUIREMENT, min_size=1, max_size=6),
    shuffle_seed=st.randoms(use_true_random=False),
)
def test_memo_is_order_insensitive(requirements, shuffle_seed):
    """Any permutation of one corpus multiset hits the same entry and
    gets the same per-requirement group counts (aligned to its own
    order)."""
    device = nvidia_k20m()
    memo = AllocationMemo(device)
    first = memo.groups_for(requirements)
    assert list(first) \
        == [a.groups for a in compute_allocations(requirements, device)]
    shuffled = list(requirements)
    shuffle_seed.shuffle(shuffled)
    again = memo.groups_for(shuffled)
    assert memo.misses == 1     # the permutation is a hit, not a re-plan
    # the replayed entry must equal what a fresh reference computation
    # on the *shuffled* order would produce — replay is undetectable
    assert list(again) \
        == [a.groups for a in compute_allocations(shuffled, device)]
