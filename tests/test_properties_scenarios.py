"""Property-based tests: allocator/scheduler invariants under every
registered traffic scenario (hypothesis over seeds and offered loads).

Four invariant families the scenario engine must never violate, whatever
the traffic shape:

* **device capacity** — every allocation the §3 sharing policy hands the
  open-system simulator fits the device (threads, local memory, registers)
  and grants every active kernel at least one group;
* **weighted shares** — `share_ratio` weighting is preserved within the
  integer work-group granularity;
* **work conservation** — a request only waits while the device is busy
  serving others (no idle device with a non-empty queue), and every
  virtual group of every request is eventually executed exactly once;
* **determinism** — the same (scenario, seed, load) replays bit-for-bit,
  stream and simulation both.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.accelos.sharing import KernelRequirements, compute_allocations
from repro.api.schemes import scheme_from_name
from repro.cl import nvidia_k20m
from repro.harness.experiment import isolated_time
from repro.harness.open_system import (OpenSystemExperiment,
                                       sharing_allocator)
from repro.sim import GPUSimulator
from repro.sim.gpu import KERNEL_HANDOFF_LATENCY
from repro.workloads import SCENARIOS, from_name, scenario

DEVICE = nvidia_k20m()

STREAM_COUNT = 8  # requests per generated stream (kept small: these run
                  # under hypothesis, many examples per property)

SEEDS = st.integers(min_value=0, max_value=10**6)
LOADS = st.floats(min_value=0.3, max_value=2.5)


def stream_for(scenario_name, seed, load, count=STREAM_COUNT):
    return from_name(scenario_name, seed=seed, load=load, count=count,
                     device=DEVICE)


# -- stream-shape invariants --------------------------------------------------

@pytest.mark.parametrize("scenario_name", sorted(SCENARIOS))
@given(seed=SEEDS, load=LOADS)
@settings(max_examples=10, deadline=None)
def test_streams_well_formed(scenario_name, seed, load):
    stream = stream_for(scenario_name, seed, load, count=16)
    assert len(stream) == 16
    times = [a.time for a in stream]
    assert times == sorted(times)
    assert all(t >= 0.0 for t in times)
    model = scenario(scenario_name)
    assert all(a.name in model.names for a in stream)
    if scenario_name == "multi-tenant":
        assert all(a.tenant is not None for a in stream)
        assert len(set(a.tenant for a in stream)) > 1
    else:
        assert all(a.tenant is None for a in stream)


@pytest.mark.parametrize("scenario_name", sorted(SCENARIOS))
@given(seed=SEEDS, load=LOADS)
@settings(max_examples=6, deadline=None)
def test_same_seed_same_stream(scenario_name, seed, load):
    assert stream_for(scenario_name, seed, load) \
        == stream_for(scenario_name, seed, load)


# -- allocator invariants under every scenario --------------------------------

def spying_allocator(device):
    """The §3 allocator wrapped to record every (specs, targets) decision."""
    inner = sharing_allocator(device)
    calls = []

    def allocate(specs):
        targets = inner(specs)
        calls.append((list(specs), list(targets)))
        return targets

    return allocate, calls


@pytest.mark.parametrize("scenario_name", sorted(SCENARIOS))
@given(seed=SEEDS, load=LOADS)
@settings(max_examples=5, deadline=None)
def test_allocations_fit_device_under_scenario_traffic(scenario_name, seed,
                                                       load):
    arrivals = stream_for(scenario_name, seed, load)
    accelos = scheme_from_name("accelos")
    specs = [accelos.admission_spec(a, DEVICE) for a in arrivals]
    allocator, calls = spying_allocator(DEVICE)
    sim = GPUSimulator(DEVICE)
    sim.run_open(specs, allocator=allocator)

    assert calls  # re-allocation ran at least once
    for active_specs, targets in calls:
        assert len(targets) == len(active_specs)
        assert all(t >= 1 for t in targets)
        threads = sum(t * s.wg_threads
                      for t, s in zip(targets, active_specs))
        local_mem = sum(t * s.local_mem_per_wg
                        for t, s in zip(targets, active_specs))
        registers = sum(t * s.registers_per_group
                        for t, s in zip(targets, active_specs))
        assert threads <= DEVICE.max_threads
        assert local_mem <= DEVICE.total_local_mem
        assert registers <= DEVICE.total_registers

    # every virtual group executed exactly once, everything drained
    for run in sim.runs:
        assert run.completed == run.total
        assert run.resident == 0
        assert run.live_slots == 0
    # all compute units handed back
    for cu in sim.cus:
        assert cu.threads_free == DEVICE.max_threads_per_cu


# -- weighted shares within work-group granularity ----------------------------

@st.composite
def weighted_requirements(draw):
    k = draw(st.integers(min_value=2, max_value=6))
    reqs, weights = [], []
    for i in range(k):
        # thread-bound kernels (no local memory, light registers, huge
        # grids) so the §3 thread share is the binding constraint and the
        # granularity bound below is exact
        reqs.append(KernelRequirements(
            name="k{}".format(i),
            wg_threads=draw(st.sampled_from([64, 128, 256, 512])),
            local_mem_bytes=0,
            registers_per_thread=4,
            total_groups=4096,
        ))
        weights.append(draw(st.floats(min_value=0.25, max_value=4.0)))
    return reqs, weights


@given(weighted_requirements())
@settings(max_examples=40, deadline=None)
def test_weighted_shares_preserved_within_group_granularity(case):
    reqs, weights = case
    allocations = compute_allocations(reqs, DEVICE, saturate=False,
                                      share_ratio=weights)
    # the base §3 allocation rounds each weighted thread share down to a
    # whole number of work groups: normalised shares may differ by at most
    # one group's thread footprint (scaled by the weight)
    per_weight = [(a.threads / w, r.wg_threads / w)
                  for a, r, w in zip(allocations, reqs, weights)]
    for (share_i, step_i) in per_weight:
        for (share_j, step_j) in per_weight:
            assert abs(share_i - share_j) <= max(step_i, step_j) + 1e-9


# -- work conservation: no idle device with a non-empty queue -----------------

@pytest.mark.parametrize("scheme", ["baseline", "accelos"])
@given(seed=SEEDS)
@settings(max_examples=6, deadline=None)
def test_no_idle_device_while_requests_wait(scheme, seed):
    arrivals = stream_for("bursty", seed, load=1.5)
    records = OpenSystemExperiment(DEVICE).scheme_records(arrivals, scheme)
    busy = sorted((r.start, r.finish) for r in records)
    # per-request firmware handoff windows are legitimate idle time
    tolerance = len(records) * KERNEL_HANDOFF_LATENCY + 1e-9
    for record in records:
        wait_start, wait_end = record.arrival, record.start
        if wait_end - wait_start <= tolerance:
            continue
        covered = 0.0
        cursor = wait_start
        for start, finish in busy:
            lo = max(cursor, start)
            hi = min(wait_end, finish)
            if hi > lo:
                covered += hi - lo
                cursor = hi
        # the device was serving other requests for essentially the whole
        # time this one queued
        assert covered >= (wait_end - wait_start) - tolerance


# -- end-to-end determinism ---------------------------------------------------

@pytest.mark.parametrize("scenario_name", sorted(SCENARIOS))
def test_simulation_deterministic_per_scenario(scenario_name):
    arrivals = stream_for(scenario_name, seed=42, load=1.2)
    experiment = OpenSystemExperiment(DEVICE)
    first = experiment.run(arrivals, "accelos")
    second = experiment.run(stream_for(scenario_name, seed=42, load=1.2),
                            "accelos")
    assert [r.finish for r in first.records] \
        == [r.finish for r in second.records]
    assert first.slowdown_tails == second.slowdown_tails
    assert first.queueing_tails == second.queueing_tails
    assert first.tenant_slowdown_tails == second.tenant_slowdown_tails


@pytest.mark.parametrize("scenario_name", sorted(SCENARIOS))
def test_name_restriction_reaches_every_substream(scenario_name):
    """from_name(..., names=...) must constrain composite scenarios too —
    multi-tenant child scenarios draw kernels of their own."""
    pool = ("bfs", "sgemm")
    stream = from_name(scenario_name, seed=4, load=1.0, count=12,
                       device=DEVICE, names=pool)
    assert all(a.name in pool for a in stream)


def test_restriction_keeps_demand_weighting():
    """Restricting a weighted scenario conditions the weights on the
    surviving pool instead of degrading to uniform: a restricted
    heavy-tailed stream must differ from the restricted steady control."""
    from repro.workloads import scenario as make_scenario

    pool = ("bfs", "sgemm", "lbm")
    heavy = make_scenario("heavy-tailed")
    heavy.restrict_names(pool)
    assert heavy.weights is not None
    assert heavy.weights != pytest.approx([1 / 3] * 3)
    assert sum(heavy.weights) == pytest.approx(1.0)
    heavy_stream = from_name("heavy-tailed", seed=4, load=1.0, count=20,
                             device=DEVICE, names=pool)
    steady_stream = from_name("steady", seed=4, load=1.0, count=20,
                              device=DEVICE, names=pool)
    assert heavy_stream != steady_stream


def test_restriction_conditions_duplicate_names_correctly():
    """Pools may repeat a name (demand ties); restriction must condition
    on aggregated per-name mass, not drop all but one duplicate."""
    from repro.workloads import PoissonScenario

    s = PoissonScenario(names=["bfs", "bfs", "sgemm"],
                        weights=[0.25, 0.25, 0.5])
    assert s.mix_weights() == pytest.approx({"bfs": 0.5, "sgemm": 0.5})
    s.restrict_names(["bfs", "sgemm"])
    assert s.mix_weights() == pytest.approx({"bfs": 0.5, "sgemm": 0.5})


def test_restriction_to_unknown_kernel_rejected_for_weighted():
    from repro.errors import SimulationError
    from repro.workloads import scenario as make_scenario

    heavy = make_scenario("heavy-tailed")
    with pytest.raises(SimulationError, match="unknown kernel"):
        heavy.restrict_names(["bfs", "no-such-kernel"])


def test_mmpp_stationary_start_delivers_rate():
    """The ON/OFF chain starts in its stationary distribution: short
    streams must deliver close to the nominal rate (a deterministic OFF
    start prepended ~one OFF sojourn, inflating the mean span to the
    N-th arrival by ~40% at N=10).  Deterministic over a fixed seed set."""
    from repro.workloads import MMPPScenario

    rate, count = 100.0, 10
    spans = [MMPPScenario().generate(rate, count, seed=s)[-1].time
             for s in range(200)]
    ratio = (sum(spans) / len(spans)) / (count / rate)
    # residual upward bias is inherent to clustered arrivals at small N;
    # the deterministic-OFF-start bug sat at ~1.39
    assert 0.85 < ratio < 1.30


def test_restriction_to_unknown_kernel_rejected_for_unweighted():
    """The unweighted path must validate too — otherwise unknown names
    surface later as a raw KeyError deep inside load calibration."""
    from repro.errors import SimulationError
    from repro.workloads import scenario as make_scenario

    steady = make_scenario("steady")
    with pytest.raises(SimulationError, match="unknown kernel"):
        steady.restrict_names(["bfs", "no-such-kernel"])


def test_restriction_cannot_expand_a_narrowed_pool():
    """'Restrict' means restrict: names outside the scenario's current
    pool are rejected on the unweighted path as well."""
    from repro.errors import SimulationError
    from repro.workloads import PoissonScenario

    narrow = PoissonScenario(names=["bfs"])
    with pytest.raises(SimulationError, match="unknown kernel"):
        narrow.restrict_names(["sgemm"])


def test_mixed_type_tenant_ids_are_handled():
    """Deterministic ordering must not crash on comparison-incompatible
    tenant id types (sorted by str everywhere)."""
    from repro.metrics import per_tenant_tails
    from repro.workloads import MultiTenantScenario

    stream = MultiTenantScenario({1: 1.0, "a": 2.0}).generate(50.0, 8,
                                                              seed=0)
    assert len(stream) == 8
    assert set(a.tenant for a in stream) == {1, "a"}
    # equal weights force a remainder tie in the largest-remainder
    # apportionment: the tie-break must sort by str too
    tied = MultiTenantScenario({1: 1.0, "a": 1.0}).generate(50.0, 3, seed=0)
    assert len(tied) == 3
    records = OpenSystemExperiment(DEVICE).scheme_records(stream,
                                                          "baseline")
    split = per_tenant_tails(records)
    assert set(split) == {1, "a"}


def test_composite_mix_weights_reach_children():
    """Load calibration must see the traffic a composite actually
    generates: a multi-tenant scenario whose only tenant draws one kernel
    has that kernel's demand, not the corpus-uniform mean."""
    from repro.workloads import (MultiTenantScenario, PoissonScenario,
                                 reference_demand)

    composite = MultiTenantScenario(
        {"big": (1.0, PoissonScenario(names=["lbm"]))})
    assert composite.mix_weights() == {"lbm": 1.0}
    assert composite.mean_demand() == pytest.approx(reference_demand("lbm"))

    blended = MultiTenantScenario({
        "a": (1.0, PoissonScenario(names=["lbm"])),
        "b": (3.0, PoissonScenario(names=["bfs"])),
    })
    mix = blended.mix_weights()
    assert mix["lbm"] == pytest.approx(0.25)
    assert mix["bfs"] == pytest.approx(0.75)


def test_fleet_arrival_rate_for_load_weighted_mix():
    """The fleet load helper honours mix weights like its single-device
    counterpart: an all-on-one-kernel mix matches the solo-name rate."""
    from repro.harness.open_system import fleet_arrival_rate_for_load
    from repro.sim import DeviceFleet

    fleet = DeviceFleet([("a", nvidia_k20m()), ("b", nvidia_k20m())])
    names = ("bfs", "lbm")
    weighted = fleet_arrival_rate_for_load(1.0, fleet, names=names,
                                           weights=(0.0, 1.0))
    solo = fleet_arrival_rate_for_load(1.0, fleet, names=("lbm",))
    uniform = fleet_arrival_rate_for_load(1.0, fleet, names=names)
    assert weighted == pytest.approx(solo)
    assert weighted < uniform


def test_arrival_rate_for_load_weighted_mix():
    """The shared load->rate helper honours mix weights: a mix
    concentrated on a longer kernel needs a lower rate for the same
    offered load."""
    from repro.harness.open_system import arrival_rate_for_load

    names = ("bfs", "lbm")
    uniform = arrival_rate_for_load(1.0, DEVICE, names=names)
    all_long = arrival_rate_for_load(1.0, DEVICE, names=names,
                                     weights=(0.0, 1.0))
    solo_long = arrival_rate_for_load(1.0, DEVICE, names=("lbm",))
    assert all_long == pytest.approx(solo_long)
    assert all_long < uniform
    with pytest.raises(Exception):
        arrival_rate_for_load(1.0, DEVICE, names=names, weights=(1.0,))


def test_heavy_tailed_weights_split_ties():
    """Kernels with tied reference demand share their bin's mass instead
    of the earlier one silently dropping to weight zero."""
    from repro.workloads import heavy_tailed_weights

    names, weights = heavy_tailed_weights(["bfs", "bfs", "sgemm", "lbm"])
    by_name = {}
    for name, weight in zip(names, weights):
        by_name.setdefault(name, []).append(weight)
    assert all(w > 0 for w in weights)
    # the duplicated kernel's two entries carry equal, positive mass
    assert by_name["bfs"][0] == pytest.approx(by_name["bfs"][1])
    assert sum(weights) == pytest.approx(1.0)


def test_isolated_time_cache_consistency():
    """Scenario streams reuse the harness's isolated-time denominator: the
    cached value must match a fresh simulation (guards cache poisoning)."""
    fresh = GPUSimulator(DEVICE)
    name = scenario("steady").names[0]
    from repro.harness.experiment import _base_spec
    assert isolated_time(name, DEVICE) \
        == fresh.run([_base_spec(name)]).makespan
