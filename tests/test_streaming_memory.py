"""Memory-bound regression lock: streaming runs must not scale with n.

The streaming evaluation plane exists so a million-request campaign fits
in bounded memory: arrivals are generated lazily, finished runs are
harvested out of the simulator, and metrics accumulate in O(1) sketches.
This test pins that property with tracemalloc at tier-1-friendly sizes —
the peak of a streaming fleet run at 4x the requests must stay within a
constant factor (the in-flight population, not the stream length, sets
the working set), and under a fixed absolute budget.

The exact path is measured alongside as the *contrasting control*: it
retains every request record by design, so its peak must grow with n —
if it ever stops growing, this test's instrument (or the exact plane's
contract) changed and the lock needs re-examining.
"""

import tracemalloc

import pytest

from repro.cl import derated_device, nvidia_k20m
from repro.harness import FleetOpenSystemExperiment
from repro.sim import DeviceFleet
from repro.workloads import calibrated_model

SMALL_N = 600
LARGE_N = 2_400

# absolute ceiling for the streaming peak at either size: far above the
# observed in-flight working set (sub-MB), far below what retaining
# LARGE_N records costs
STREAMING_BUDGET_BYTES = 16 * 1024 * 1024
# 4x the requests must cost < 3x the peak (i.e. NOT linear scaling)
SCALE_BUDGET = 3.0

# the §8.5 small-kernel regime keeps these runs fast enough for tier-1
SMALL_KERNELS = [
    "mri-gridding_scan_inter1", "mri-q_ComputePhiMag",
    "sad_larger_calc_16", "histo_final", "mri-gridding_scan_L1",
    "sad_larger_calc_8", "mri-gridding_uniformAdd", "histo_prescan",
]


def build_fleet():
    return DeviceFleet([
        ("fast", nvidia_k20m()),
        ("slow", derated_device(nvidia_k20m(), "K20m-derated", 0.5)),
    ])


def arrivals(count, lazy):
    model, rate = calibrated_model("multi-tenant", load=0.8,
                                   names=SMALL_KERNELS)
    if lazy:
        return model.iter_arrivals(rate * 1.4, count, seed=1)
    return model.generate(rate * 1.4, count, seed=1)


def measured_run(count, streaming):
    experiment = FleetOpenSystemExperiment(build_fleet())
    tracemalloc.start()
    try:
        if streaming:
            result = experiment.run_stream(arrivals(count, lazy=True),
                                           "accelos", "least-loaded")
        else:
            result = experiment.run(arrivals(count, lazy=False),
                                    "accelos", "least-loaded")
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, peak


@pytest.fixture(scope="module")
def warmed_up():
    """Populate interpreter-lifetime caches (kernel profiles,
    isolated-time memos) outside any traced region, so peaks measure
    the evaluation plane rather than first-touch cache fills."""
    experiment = FleetOpenSystemExperiment(build_fleet())
    experiment.run_stream(arrivals(500, lazy=True), "accelos",
                          "least-loaded")


def test_streaming_peak_is_bounded_and_sublinear(warmed_up):
    small_result, small_peak = measured_run(SMALL_N, streaming=True)
    large_result, large_peak = measured_run(LARGE_N, streaming=True)
    # sanity: both runs actually served their streams
    assert small_result.count == SMALL_N
    assert large_result.count == LARGE_N
    assert large_peak < STREAMING_BUDGET_BYTES, large_peak
    # the lock: 4x the requests must NOT cost ~4x the memory
    assert large_peak < small_peak * SCALE_BUDGET, (small_peak, large_peak)


def test_exact_peak_grows_with_n_the_streaming_peak_does_not(warmed_up):
    """The contrasting control: the exact plane retains records, so its
    peak grows roughly linearly; the streaming plane's does not."""
    _, exact_small = measured_run(SMALL_N, streaming=False)
    _, exact_large = measured_run(LARGE_N, streaming=False)
    _, stream_large = measured_run(LARGE_N, streaming=True)
    # 4x requests: the retained-record plane must grow measurably
    assert exact_large > exact_small * 2.0, (exact_small, exact_large)
    # and the streaming plane undercuts it at the same workload
    assert stream_large < exact_large, (stream_large, exact_large)
