"""Unit tests for the preprocessor."""

import pytest

from repro.errors import ParseError
from repro.kernelc.preprocessor import parse_options, preprocess


def test_plain_text_passthrough():
    assert preprocess("int x = 1;") == "int x = 1;"


def test_object_macro_substitution():
    out = preprocess("#define N 16\nint a[N];")
    assert "int a[16];" in out


def test_define_line_becomes_blank_preserving_lines():
    out = preprocess("#define N 4\nx N x")
    assert out.split("\n")[0] == ""
    assert out.split("\n")[1] == "x 4 x"


def test_macro_whole_identifier_only():
    out = preprocess("#define N 4\nint NN = N;")
    assert "int NN = 4;" in out


def test_macro_referencing_earlier_macro():
    out = preprocess("#define A 2\n#define B (A + 1)\nint x = B;")
    assert "int x = (2 + 1);" in out


def test_predefined_barrier_flags():
    out = preprocess("barrier(CLK_LOCAL_MEM_FENCE | CLK_GLOBAL_MEM_FENCE);")
    assert out == "barrier(1 | 2);"


def test_options_define_value():
    out = preprocess("int x = WIDTH;", options="-D WIDTH=128")
    assert out == "int x = 128;"


def test_options_define_flag_defaults_to_one():
    out = preprocess("int x = FLAG;", options="-DFLAG")
    assert out == "int x = 1;"


def test_options_multiple_defines():
    macros = parse_options("-D A=1 -D B=2 -DC")
    assert macros == {"A": "1", "B": "2", "C": "1"}


def test_options_bad_name_rejected():
    with pytest.raises(ParseError):
        parse_options("-D 9bad=1")


def test_function_like_macro_rejected():
    with pytest.raises(ParseError):
        preprocess("#define F(x) (x + 1)\n")


def test_unknown_directive_rejected():
    with pytest.raises(ParseError):
        preprocess("#include <foo.h>\n")


def test_pragma_ignored():
    out = preprocess("#pragma OPENCL EXTENSION foo : enable\nint x;")
    assert "int x;" in out


def test_recursive_macro_detected():
    with pytest.raises(ParseError):
        preprocess("#define A B\n#define B A2\n#define A2 A\nA\n")


def test_comments_stripped_before_macros():
    out = preprocess("#define N 3\nint x = N; // N in comment\n")
    assert "int x = 3;" in out
    assert "comment" not in out
